"""Unit tests for trace propagation (repro.obs.context).

Minting, the ID format contract the log-grep workflow depends on, child
contexts and span allocation, and the contextvar-based ambient context
(install/restore, nesting, thread isolation).
"""

import re
import threading

from repro.obs.context import (
    TraceContext,
    current_trace,
    set_current_trace,
    use_trace,
)

ID_SHAPE = re.compile(r"^[0-9a-f]{8}-[0-9a-f]{8}$")


class TestMinting:
    def test_ids_are_fixed_width_hex(self):
        trace = TraceContext.mint()
        assert ID_SHAPE.match(trace.trace_id)
        assert trace.parent_span_id is None

    def test_ids_are_unique_and_ordered(self):
        ids = [TraceContext.mint().trace_id for _ in range(100)]
        assert len(set(ids)) == 100
        # Fixed-width hex sequences sort in mint order within a process.
        assert ids == sorted(ids)

    def test_ids_unique_across_threads(self):
        out = []
        lock = threading.Lock()

        def mint_some():
            local = [TraceContext.mint().trace_id for _ in range(200)]
            with lock:
                out.extend(local)

        threads = [threading.Thread(target=mint_some) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(out)) == 800


class TestSpansAndChildren:
    def test_span_ids_count_up_within_a_trace(self):
        trace = TraceContext.mint()
        assert trace.next_span_id() == "1"
        assert trace.next_span_id() == "2"

    def test_child_shares_trace_and_records_parent(self):
        trace = TraceContext.mint()
        child = trace.child()
        assert child.trace_id == trace.trace_id
        assert child.parent_span_id == "1"
        assert trace.child("7").parent_span_id == "7"

    def test_equality_and_hash(self):
        a = TraceContext("t", "1")
        b = TraceContext("t", "1")
        c = TraceContext("t", "2")
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a != "t"


class TestAmbientContext:
    def test_defaults_to_none(self):
        assert current_trace() is None

    def test_use_trace_installs_and_restores(self):
        trace = TraceContext.mint()
        with use_trace(trace) as installed:
            assert installed is trace
            assert current_trace() is trace
        assert current_trace() is None

    def test_use_trace_nests(self):
        outer, inner = TraceContext.mint(), TraceContext.mint()
        with use_trace(outer):
            with use_trace(inner):
                assert current_trace() is inner
            assert current_trace() is outer

    def test_use_trace_restores_on_exception(self):
        trace = TraceContext.mint()
        try:
            with use_trace(trace):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert current_trace() is None

    def test_set_current_trace_returns_reset_token(self):
        trace = TraceContext.mint()
        token = set_current_trace(trace)
        try:
            assert current_trace() is trace
        finally:
            token.var.reset(token)
        assert current_trace() is None

    def test_threads_do_not_share_the_ambient_trace(self):
        trace = TraceContext.mint()
        seen = []
        with use_trace(trace):
            thread = threading.Thread(
                target=lambda: seen.append(current_trace())
            )
            thread.start()
            thread.join()
        # A fresh thread starts from the default, not the caller's trace.
        assert seen == [None]
