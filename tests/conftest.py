"""Shared fixtures: a small populated world, its web stack, and a crawl.

World construction replays tens of thousands of check-ins, so the expensive
fixtures are session-scoped; tests must treat them as read-only and build
their own ``LbsnService`` when they need to mutate state.
"""

from __future__ import annotations

import pytest

from repro.crawler import crawl_full_site
from repro.geo import GeoPoint
from repro.lbsn import LbsnService
from repro.workload import build_web_stack, build_world

#: Small but structurally complete: ~950 users, ~2800 venues.
WORLD_SCALE = 0.0005
WORLD_SEED = 424_242


@pytest.fixture(scope="session")
def world():
    """A populated simulated world (read-only)."""
    return build_world(scale=WORLD_SCALE, seed=WORLD_SEED)


@pytest.fixture(scope="session")
def web_stack(world):
    """The world's website + API over simulated HTTP (read-only)."""
    return build_web_stack(world, seed=7)


@pytest.fixture(scope="session")
def crawl(world, web_stack):
    """A completed full-site crawl: (database, user_stats, venue_stats)."""
    machines = [web_stack.network.create_egress() for _ in range(3)]
    database, user_stats, venue_stats = crawl_full_site(
        web_stack.transport, machines
    )
    return database, user_stats, venue_stats


@pytest.fixture(scope="session")
def crawl_db(crawl):
    """Just the crawl database (derived columns recomputed)."""
    return crawl[0]


@pytest.fixture
def service():
    """A fresh, empty service for tests that mutate state."""
    return LbsnService()


@pytest.fixture
def sf_venue(service):
    """The thesis's remote target: Fisherman's Wharf Sign, San Francisco."""
    return service.create_venue(
        "Fisherman's Wharf Sign",
        GeoPoint(37.8080, -122.4177),
        city="San Francisco, CA",
    )
