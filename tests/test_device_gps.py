"""Unit tests for GPS modules."""

import pytest

from repro.device.gps import FakeGpsModule, GpsFix, HardwareGpsModule
from repro.errors import DeviceError
from repro.geo.coordinates import GeoPoint
from repro.geo.distance import haversine_m

ABQ = GeoPoint(35.0844, -106.6504)
SF = GeoPoint(37.8080, -122.4177)


class TestGpsFix:
    def test_fields(self):
        fix = GpsFix(location=ABQ, accuracy_m=5.0, timestamp=1.0, satellites=8)
        assert fix.location == ABQ
        assert fix.satellites == 8

    def test_negative_accuracy_rejected(self):
        with pytest.raises(DeviceError):
            GpsFix(location=ABQ, accuracy_m=-1.0, timestamp=0.0)

    def test_negative_satellites_rejected(self):
        with pytest.raises(DeviceError):
            GpsFix(location=ABQ, accuracy_m=1.0, timestamp=0.0, satellites=-1)


class TestHardwareGpsModule:
    def test_fix_near_physical_location(self):
        module = HardwareGpsModule(ABQ, noise_m=5.0, seed=1)
        fix = module.current_fix(0.0)
        assert haversine_m(fix.location, ABQ) < 50.0
        assert fix.accuracy_m == 5.0

    def test_noise_varies_between_fixes(self):
        module = HardwareGpsModule(ABQ, noise_m=5.0, seed=1)
        first = module.current_fix(0.0)
        second = module.current_fix(1.0)
        assert first.location != second.location

    def test_move_to_relocates(self):
        module = HardwareGpsModule(ABQ, seed=1)
        module.move_to(SF)
        fix = module.current_fix(0.0)
        assert haversine_m(fix.location, SF) < 50.0

    def test_no_signal_returns_none(self):
        module = HardwareGpsModule(ABQ, has_signal=False)
        assert module.current_fix(0.0) is None

    def test_negative_noise_rejected(self):
        with pytest.raises(DeviceError):
            HardwareGpsModule(ABQ, noise_m=-1.0)

    def test_zero_noise_exact(self):
        module = HardwareGpsModule(ABQ, noise_m=0.0, seed=1)
        fix = module.current_fix(0.0)
        assert haversine_m(fix.location, ABQ) < 0.5


class TestFakeGpsModule:
    def test_no_location_no_fix(self):
        assert FakeGpsModule().current_fix(0.0) is None

    def test_reports_exactly_the_fake_location(self):
        module = FakeGpsModule()
        module.set_location(SF)
        fix = module.current_fix(42.0)
        assert fix.location == SF
        assert fix.timestamp == 42.0

    def test_indistinguishable_fix_shape(self):
        # The hacked module must look like real hardware to the OS:
        # plausible accuracy and satellite counts.
        module = FakeGpsModule(SF)
        fix = module.current_fix(0.0)
        assert 0 < fix.accuracy_m <= 50.0
        assert 4 <= fix.satellites <= 14

    def test_location_updates(self):
        module = FakeGpsModule(ABQ)
        module.set_location(SF)
        assert module.current_fix(0.0).location == SF
