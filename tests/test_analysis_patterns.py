"""Tests for the Fig 4.3/4.4 geographic pattern analysis."""

import pytest

from repro.analysis.patterns import (
    PatternVerdict,
    analyze_pattern,
    checkin_map,
    cluster_cities,
    scan_patterns,
)
from repro.crawler.database import CrawlDatabase
from repro.crawler.parser import ParsedVenue
from repro.errors import ReproError
from repro.geo.coordinates import GeoPoint
from repro.geo.distance import destination_point
from repro.geo.regions import US_CITIES

NYC = GeoPoint(40.7128, -74.0060)
LA = GeoPoint(34.0522, -118.2437)


def db_with_user_at(user_id, points):
    db = CrawlDatabase()
    for index, point in enumerate(points, start=1):
        db.upsert_venue(
            ParsedVenue(
                venue_id=index,
                name=f"V{index}",
                address="",
                city="",
                latitude=point.latitude,
                longitude=point.longitude,
                checkins_here=1,
                unique_visitors=1,
                mayor_id=None,
                special=None,
                special_mayor_only=False,
                recent_visitor_ids=[user_id],
            )
        )
    return db


class TestClusterCities:
    def test_two_distant_cities(self):
        points = [NYC, destination_point(NYC, 90.0, 500.0), LA]
        clusters = cluster_cities(points)
        assert len(clusters) == 2

    def test_single_metro(self):
        points = [destination_point(NYC, b, 5_000.0) for b in (0, 90, 180)]
        assert len(cluster_cities(points)) == 1

    def test_empty(self):
        assert cluster_cities([]) == []

    def test_invalid_radius(self):
        with pytest.raises(ReproError):
            cluster_cities([NYC], radius_m=0.0)

    def test_all_us_cities_distinct(self):
        centers = [city.center for city in US_CITIES]
        clusters = cluster_cities(centers)
        # The metro list was chosen with >60 km separations.
        assert len(clusters) >= len(US_CITIES) - 3


class TestCheckinMap:
    def test_joins_recent_rows_to_coordinates(self):
        db = db_with_user_at(1, [NYC, LA])
        points = checkin_map(db, 1)
        assert len(points) == 2

    def test_unknown_user_empty(self):
        assert checkin_map(CrawlDatabase(), 99) == []


class TestAnalyzePattern:
    def test_scattered_user_suspicious(self):
        # 12 distinct metros: the Fig 4.3 shape.
        points = [city.center for city in US_CITIES[:12]]
        db = db_with_user_at(1, points)
        report = analyze_pattern(db, 1, suspicious_city_count=10)
        assert report.verdict is PatternVerdict.SUSPICIOUS
        assert report.city_count >= 10
        assert report.diameter_m > 1_000_000

    def test_concentrated_user_normal(self):
        # The Fig 4.4 shape: one home metro plus a vacation.
        points = [destination_point(NYC, b * 36.0, 4_000.0) for b in range(8)]
        points += [LA, destination_point(LA, 10.0, 2_000.0)]
        db = db_with_user_at(1, points)
        report = analyze_pattern(db, 1)
        assert report.verdict is PatternVerdict.NORMAL
        assert report.city_count == 2
        assert report.concentration >= 0.5

    def test_insufficient_data(self):
        db = db_with_user_at(1, [NYC])
        report = analyze_pattern(db, 1, min_points=5)
        assert report.verdict is PatternVerdict.INSUFFICIENT_DATA
        assert report.bbox is None


class TestWorldPatterns:
    def test_mega_cheater_vs_normal_user(self, world, crawl_db):
        mega_report = analyze_pattern(
            crawl_db, world.roster.mega_cheater.user_id
        )
        assert mega_report.verdict is PatternVerdict.SUSPICIOUS

        # A power user concentrates in one city: normal verdict.
        power_report = analyze_pattern(
            crawl_db, world.roster.power_users[0].user_id
        )
        assert power_report.verdict is PatternVerdict.NORMAL
        assert power_report.city_count <= 3

    def test_scan_finds_the_mega_cheater_first(self, world, crawl_db):
        reports = scan_patterns(crawl_db, min_recent_checkins=30)
        assert reports
        top_ids = [r.user_id for r in reports[:3]]
        assert world.roster.mega_cheater.user_id in top_ids
