"""Unit tests for the structured JSONL logging layer (repro.obs.log).

Covers levels and per-logger overrides, deterministic stride sampling,
sink fan-out (including broken sinks), bound loggers, the ring buffer's
wraparound accounting, the ``records()`` query filters behind
``/debug/logs``, and the lazy JSONL serialisation contract.
"""

import json

import pytest

from repro.obs.log import (
    DEBUG,
    ERROR,
    INFO,
    WARNING,
    LogError,
    LogHub,
    LogRecord,
    StructuredLogger,
    level_name,
)
from repro.obs.metrics import MetricsRegistry


class TestLevels:
    def test_default_hub_level_suppresses_debug(self):
        hub = LogHub()
        logger = hub.logger("svc")
        assert not logger.debug("ignored")
        assert logger.info("kept")
        assert hub.emitted == 1

    def test_logger_override_beats_hub_level(self):
        hub = LogHub(level=WARNING)
        noisy = hub.logger("noisy", level=DEBUG)
        quiet = hub.logger("quiet")
        assert noisy.debug("kept")
        assert not quiet.info("ignored")
        assert [r.logger for r in hub.records()] == ["noisy"]

    def test_set_level_accepts_names_and_none_reverts(self):
        hub = LogHub(level="warning")
        logger = hub.logger("svc")
        assert not logger.info("ignored")
        logger.set_level("info")
        assert logger.info("kept")
        logger.set_level(None)  # back to the hub's WARNING
        assert not logger.info("ignored again")

    def test_enabled_for_mirrors_threshold(self):
        hub = LogHub(level=INFO)
        logger = hub.logger("svc")
        assert not logger.enabled_for(DEBUG)
        assert logger.enabled_for(INFO)
        logger.set_level(ERROR)
        assert not logger.enabled_for(WARNING)

    def test_unknown_level_name_raises(self):
        hub = LogHub()
        with pytest.raises(LogError):
            hub.set_level("chatty")

    def test_level_name_falls_back_to_number(self):
        assert level_name(INFO) == "info"
        assert level_name(55) == "55"


class TestSampling:
    def test_stride_sampling_keeps_exactly_the_fraction(self):
        hub = LogHub()
        logger = hub.logger("svc", sample=0.25)
        kept = [n for n in range(1, 101) if logger.info("e", n=n)]
        assert len(kept) == 25
        assert hub.suppressed == 75

    def test_sampling_is_deterministic_across_runs(self):
        def kept_set():
            hub = LogHub()
            logger = hub.logger("svc", sample=0.25)
            return [n for n in range(1, 101) if logger.info("e", n=n)]

        assert kept_set() == kept_set()

    def test_warnings_and_errors_never_sampled(self):
        hub = LogHub()
        logger = hub.logger("svc", sample=0.01)
        assert all(logger.warning("w", n=n) for n in range(50))
        assert all(logger.error("e", n=n) for n in range(50))
        assert hub.emitted == 100
        assert hub.suppressed == 0

    def test_bad_sample_rates_rejected(self):
        hub = LogHub()
        with pytest.raises(LogError):
            hub.logger("svc", sample=0.0)
        with pytest.raises(LogError):
            hub.logger("svc2").set_sample(1.5)


class TestSinks:
    def test_sink_receives_every_kept_record(self):
        hub = LogHub()
        seen = []
        hub.add_sink(seen.append)
        hub.logger("svc").info("one", k=1)
        hub.logger("svc").info("two", k=2)
        assert [r.event for r in seen] == ["one", "two"]
        assert all(isinstance(r, LogRecord) for r in seen)

    def test_jsonl_sink_writes_parseable_lines(self):
        hub = LogHub()
        lines = []
        hub.add_jsonl_sink(lines.append)
        hub.logger("svc").info("checkin", user_id=7)
        assert len(lines) == 1
        assert lines[0].endswith("\n")
        obj = json.loads(lines[0])
        assert obj["event"] == "checkin"
        assert obj["user_id"] == 7

    def test_raising_sink_is_counted_not_propagated(self):
        hub = LogHub()
        seen = []

        def broken(record):
            raise RuntimeError("sink down")

        hub.add_sink(broken)
        hub.add_sink(seen.append)
        assert hub.logger("svc").info("kept")
        assert hub.sink_errors == 1
        # The later sink and the ring both still saw the record.
        assert len(seen) == 1
        assert len(hub.records()) == 1


class TestBoundLoggers:
    def test_bound_fields_stamped_on_every_record(self):
        hub = LogHub()
        bound = hub.logger("svc").bind(user_id=7, run="a")
        bound.info("step", phase=1)
        (record,) = hub.records()
        assert record.fields["user_id"] == 7
        assert record.fields["run"] == "a"
        assert record.fields["phase"] == 1

    def test_call_site_fields_override_bound(self):
        hub = LogHub()
        bound = hub.logger("svc").bind(user_id=7)
        bound.info("step", user_id=9)
        (record,) = hub.records()
        assert record.fields["user_id"] == 9

    def test_bind_does_not_replace_the_cached_logger(self):
        hub = LogHub()
        base = hub.logger("svc")
        bound = base.bind(user_id=7)
        assert hub.logger("svc") is base
        assert bound is not base
        assert isinstance(bound, StructuredLogger)

    def test_rebinding_layers_fields(self):
        hub = LogHub()
        outer = hub.logger("svc").bind(a=1)
        inner = outer.bind(b=2)
        inner.info("step")
        (record,) = hub.records()
        assert record.fields["a"] == 1
        assert record.fields["b"] == 2


class TestRing:
    def test_wraparound_keeps_newest_and_counts_dropped(self):
        hub = LogHub(ring_size=4)
        logger = hub.logger("svc")
        for n in range(1, 11):
            logger.info("e", n=n)
        assert hub.emitted == 10
        assert hub.dropped == 6
        assert len(hub) == 4
        assert [r.fields["n"] for r in hub.records()] == [7, 8, 9, 10]

    def test_partial_ring_in_emission_order(self):
        hub = LogHub(ring_size=100)
        logger = hub.logger("svc")
        for n in range(5):
            logger.info("e", n=n)
        assert hub.dropped == 0
        assert [r.fields["n"] for r in hub.records()] == [0, 1, 2, 3, 4]

    def test_ring_size_must_be_positive(self):
        with pytest.raises(LogError):
            LogHub(ring_size=0)


class TestRecordsQuery:
    def _hub(self):
        hub = LogHub(level=DEBUG)
        a, b = hub.logger("a"), hub.logger("b")
        a.info("checkin", trace_id="t1", n=1)
        a.debug("commit", trace_id="t1", n=2)
        b.warning("drop", trace_id="t2", n=3)
        a.info("checkin", trace_id="t2", n=4)
        return hub

    def test_filter_by_trace_id(self):
        hub = self._hub()
        assert [r.fields["n"] for r in hub.records(trace_id="t1")] == [1, 2]

    def test_filter_by_logger_and_event(self):
        hub = self._hub()
        assert [r.fields["n"] for r in hub.records(logger="a")] == [1, 2, 4]
        assert [r.fields["n"] for r in hub.records(event="checkin")] == [1, 4]

    def test_filter_by_min_level(self):
        hub = self._hub()
        assert [r.fields["n"] for r in hub.records(min_level=WARNING)] == [3]

    def test_limit_keeps_newest_matches(self):
        hub = self._hub()
        assert [r.fields["n"] for r in hub.records(limit=2)] == [3, 4]

    def test_filters_compose(self):
        hub = self._hub()
        out = hub.records(logger="a", event="checkin", trace_id="t2")
        assert [r.fields["n"] for r in out] == [4]


class TestSerialisation:
    def test_jsonl_key_order_is_stable(self):
        hub = LogHub()
        hub.logger("svc").info("checkin", z_field=1, a_field=2)
        line = hub.export_jsonl().splitlines()[0]
        keys = list(json.loads(line))
        assert keys[:4] == ["ts", "level", "logger", "event"]
        # Field insertion order is preserved after the header keys.
        assert keys[4:] == ["z_field", "a_field"]

    def test_unserialisable_field_falls_back_to_repr(self):
        hub = LogHub()
        hub.logger("svc").info("odd", payload=object())
        obj = json.loads(hub.export_jsonl())
        assert obj["payload"].startswith("<object object")

    def test_export_jsonl_covers_the_ring(self):
        hub = LogHub()
        logger = hub.logger("svc")
        for n in range(3):
            logger.info("e", n=n)
        lines = hub.export_jsonl().splitlines()
        assert [json.loads(line)["n"] for line in lines] == [0, 1, 2]

    def test_trace_id_property(self):
        record = LogRecord(0.0, INFO, "svc", "e", {"trace_id": "t9"})
        assert record.trace_id == "t9"
        assert LogRecord(0.0, INFO, "svc", "e", {}).trace_id is None


class TestHubMetrics:
    def test_kept_records_counted_by_logger_and_level(self):
        registry = MetricsRegistry()
        hub = LogHub(metrics=registry)
        hub.logger("a").info("e")
        hub.logger("a").info("e")
        hub.logger("b").warning("w")
        hub.logger("a", sample=0.5).info("suppressed?")  # stride: 1st dropped
        flat = registry.snapshot()["repro_log_records_total"]
        assert flat[("a", "info")] == 2.0
        assert flat[("b", "warning")] == 1.0

    def test_logger_cache_returns_same_instance(self):
        hub = LogHub()
        assert hub.logger("svc") is hub.logger("svc")
        assert hub.logger_names() == ["svc"]

    def test_logger_reconfigure_on_lookup(self):
        hub = LogHub()
        logger = hub.logger("svc")
        hub.logger("svc", level=ERROR, sample=0.5)
        assert logger.level == ERROR
        assert logger.sample == 0.5
