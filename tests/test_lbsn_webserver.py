"""Unit tests for the HTML profile pages the crawler targets."""

import pytest

from repro.geo.coordinates import GeoPoint
from repro.lbsn.models import Special
from repro.lbsn.service import LbsnService
from repro.lbsn.webserver import LbsnWebServer
from repro.simnet.http import HTTP_NOT_FOUND, HttpTransport, Router
from repro.simnet.network import Network

ABQ = GeoPoint(35.0844, -106.6504)


@pytest.fixture
def site():
    service = LbsnService()
    user = service.register_user(
        "Ann <script>", username="ann", home_city="Albuquerque, NM"
    )
    friend = service.register_user("Bob")
    user.friends.add(friend.user_id)
    venue = service.create_venue(
        "Taco & Co",
        ABQ,
        address="1 Main St",
        city="Albuquerque, NM",
        special=Special("Free taco for the mayor!"),
    )
    service.check_in(user.user_id, venue.venue_id, ABQ)
    webserver = LbsnWebServer(service)
    router = Router()
    webserver.install_routes(router)
    network = Network(seed=0)
    transport = HttpTransport(router, network)
    egress = network.create_egress()
    return service, user, venue, webserver, transport, egress


class TestUserPage:
    def test_served_by_numeric_id(self, site):
        service, user, venue, webserver, transport, egress = site
        response = transport.get(f"/user/{user.user_id}", egress)
        assert response.ok
        assert f'data-user-id="{user.user_id}"' in response.body

    def test_served_by_username(self, site):
        service, user, venue, webserver, transport, egress = site
        response = transport.get("/user/ann", egress)
        assert response.ok
        assert f'data-user-id="{user.user_id}"' in response.body

    def test_unknown_user_404(self, site):
        _, _, _, _, transport, egress = site
        assert transport.get("/user/99999", egress).status == HTTP_NOT_FOUND
        assert transport.get("/user/ghost", egress).status == HTTP_NOT_FOUND

    def test_html_escaping(self, site):
        service, user, venue, webserver, transport, egress = site
        body = transport.get(f"/user/{user.user_id}", egress).body
        assert "<script>" not in body
        assert "&lt;script&gt;" in body

    def test_stats_visible(self, site):
        service, user, venue, webserver, transport, egress = site
        body = transport.get(f"/user/{user.user_id}", egress).body
        assert '<span class="checkin-count">1</span>' in body
        assert '<span class="points">' in body

    def test_friends_linked(self, site):
        service, user, venue, webserver, transport, egress = site
        body = transport.get(f"/user/{user.user_id}", egress).body
        assert '<a class="friend" href="/user/2">' in body

    def test_mayorships_not_exposed(self, site):
        # §3.2: "A user's mayorships and check-in history are hidden from
        # the public" — the crawler must infer them from venue pages.
        service, user, venue, webserver, transport, egress = site
        body = transport.get(f"/user/{user.user_id}", egress).body
        assert 'class="mayor"' not in body
        assert "/venue/" not in body  # no check-in history links either


class TestVenuePage:
    def test_core_fields(self, site):
        service, user, venue, webserver, transport, egress = site
        body = transport.get(f"/venue/{venue.venue_id}", egress).body
        assert f'data-venue-id="{venue.venue_id}"' in body
        assert "Taco &amp; Co" in body
        assert f'<span class="latitude">{ABQ.latitude:.6f}</span>' in body
        assert '<span class="checkins-here">1</span>' in body

    def test_mayor_link(self, site):
        service, user, venue, webserver, transport, egress = site
        body = transport.get(f"/venue/{venue.venue_id}", egress).body
        assert f'<a class="mayor" href="/user/{user.user_id}">' in body

    def test_no_mayor_placeholder(self, site):
        service, user, venue, webserver, transport, egress = site
        lonely = service.create_venue("Lonely", ABQ)
        body = transport.get(f"/venue/{lonely.venue_id}", egress).body
        assert "No mayor yet" in body

    def test_special_rendered_with_kind(self, site):
        service, user, venue, webserver, transport, egress = site
        body = transport.get(f"/venue/{venue.venue_id}", egress).body
        assert '<div class="special mayor-only">' in body

    def test_whos_been_here_lists_visitors(self, site):
        service, user, venue, webserver, transport, egress = site
        body = transport.get(f"/venue/{venue.venue_id}", egress).body
        assert "Who's been here" in body
        assert f'<a class="visitor" href="/user/{user.user_id}">' in body

    def test_unknown_venue_404(self, site):
        _, _, _, _, transport, egress = site
        assert transport.get("/venue/424242", egress).status == HTTP_NOT_FOUND


class TestDefenseHooks:
    def test_whos_been_here_removable(self, site):
        # Foursquare removed the section right after the thesis's crawl.
        service, user, venue, webserver, transport, egress = site
        webserver.show_whos_been_here = False
        body = webserver.render_venue(venue)
        assert "Who's been here" not in body
        assert 'class="visitor"' not in body

    def test_visitor_obfuscation_hides_ids(self, site):
        service, user, venue, webserver, transport, egress = site
        webserver.visitor_obfuscator = lambda uid: f"anon-{uid % 7}"
        body = webserver.render_venue(venue)
        assert 'href="/user/' not in body.split("whos-been-here")[1]
        assert "anon-" in body
