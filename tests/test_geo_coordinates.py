"""Unit tests for repro.geo.coordinates."""

import math

import pytest

from repro.errors import GeoError
from repro.geo.coordinates import (
    BoundingBox,
    GeoPoint,
    centroid,
    normalize_longitude,
    validate_latitude,
    validate_longitude,
)


class TestValidation:
    def test_valid_latitude_passes_through(self):
        assert validate_latitude(45.5) == 45.5

    def test_latitude_bounds_inclusive(self):
        assert validate_latitude(90.0) == 90.0
        assert validate_latitude(-90.0) == -90.0

    def test_latitude_out_of_range(self):
        with pytest.raises(GeoError):
            validate_latitude(90.1)
        with pytest.raises(GeoError):
            validate_latitude(-91)

    def test_latitude_nan_rejected(self):
        with pytest.raises(GeoError):
            validate_latitude(float("nan"))

    def test_latitude_bool_rejected(self):
        with pytest.raises(GeoError):
            validate_latitude(True)

    def test_latitude_string_rejected(self):
        with pytest.raises(GeoError):
            validate_latitude("40")

    def test_longitude_bounds_inclusive(self):
        assert validate_longitude(180.0) == 180.0
        assert validate_longitude(-180.0) == -180.0

    def test_longitude_out_of_range(self):
        with pytest.raises(GeoError):
            validate_longitude(180.5)


class TestNormalizeLongitude:
    def test_identity_in_range(self):
        assert normalize_longitude(-96.7) == pytest.approx(-96.7)

    def test_wraps_past_180(self):
        assert normalize_longitude(190.0) == pytest.approx(-170.0)

    def test_wraps_below_minus_180(self):
        assert normalize_longitude(-190.0) == pytest.approx(170.0)

    def test_wraps_multiple_revolutions(self):
        assert normalize_longitude(370.0) == pytest.approx(10.0)

    def test_180_maps_to_minus_180(self):
        assert normalize_longitude(180.0) == pytest.approx(-180.0)


class TestGeoPoint:
    def test_construction_and_accessors(self):
        point = GeoPoint(35.0844, -106.6504)
        assert point.latitude == 35.0844
        assert point.longitude == -106.6504
        assert point.as_tuple() == (35.0844, -106.6504)

    def test_invalid_construction_raises(self):
        with pytest.raises(GeoError):
            GeoPoint(95.0, 0.0)

    def test_of_wraps_longitude(self):
        point = GeoPoint.of(10.0, 370.0)
        assert point.longitude == pytest.approx(10.0)

    def test_as_radians(self):
        lat, lon = GeoPoint(90.0, -180.0).as_radians()
        assert lat == pytest.approx(math.pi / 2)
        assert lon == pytest.approx(-math.pi)

    def test_iteration_unpacks(self):
        lat, lon = GeoPoint(1.0, 2.0)
        assert (lat, lon) == (1.0, 2.0)

    def test_equality_and_hash(self):
        assert GeoPoint(1.0, 2.0) == GeoPoint(1.0, 2.0)
        assert len({GeoPoint(1.0, 2.0), GeoPoint(1.0, 2.0)}) == 1

    def test_str_format(self):
        assert str(GeoPoint(1.5, -2.25)) == "(1.500000, -2.250000)"

    def test_immutability(self):
        point = GeoPoint(1.0, 2.0)
        with pytest.raises(AttributeError):
            point.latitude = 5.0


class TestCentroid:
    def test_single_point(self):
        assert centroid([GeoPoint(3.0, 4.0)]) == GeoPoint(3.0, 4.0)

    def test_symmetric_pair(self):
        center = centroid([GeoPoint(0.0, 10.0), GeoPoint(10.0, 0.0)])
        assert center == GeoPoint(5.0, 5.0)

    def test_empty_raises(self):
        with pytest.raises(GeoError):
            centroid([])


class TestBoundingBox:
    def test_contains_inside_point(self):
        box = BoundingBox(south=0.0, west=0.0, north=10.0, east=10.0)
        assert box.contains(GeoPoint(5.0, 5.0))

    def test_contains_boundary(self):
        box = BoundingBox(south=0.0, west=0.0, north=10.0, east=10.0)
        assert box.contains(GeoPoint(0.0, 0.0))
        assert box.contains(GeoPoint(10.0, 10.0))

    def test_excludes_outside(self):
        box = BoundingBox(south=0.0, west=0.0, north=10.0, east=10.0)
        assert not box.contains(GeoPoint(11.0, 5.0))
        assert not box.contains(GeoPoint(5.0, -1.0))

    def test_inverted_bounds_raise(self):
        with pytest.raises(GeoError):
            BoundingBox(south=10.0, west=0.0, north=0.0, east=10.0)
        with pytest.raises(GeoError):
            BoundingBox(south=0.0, west=10.0, north=10.0, east=0.0)

    def test_around_points(self):
        box = BoundingBox.around(
            [GeoPoint(1.0, 2.0), GeoPoint(-1.0, 5.0), GeoPoint(0.5, -3.0)]
        )
        assert box.south == -1.0
        assert box.north == 1.0
        assert box.west == -3.0
        assert box.east == 5.0

    def test_around_empty_raises(self):
        with pytest.raises(GeoError):
            BoundingBox.around([])

    def test_center(self):
        box = BoundingBox(south=0.0, west=0.0, north=10.0, east=20.0)
        assert box.center == GeoPoint(5.0, 10.0)
