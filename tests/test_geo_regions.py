"""Unit tests for the US region model used by Fig 3.4."""

import pytest

from repro.errors import GeoError
from repro.geo.coordinates import GeoPoint
from repro.geo.regions import (
    CONTIGUOUS_US_OUTLINE,
    EUROPEAN_CITIES,
    US_CITIES,
    all_cities,
    city_by_name,
    contiguous_us_bbox,
    in_contiguous_us,
    point_in_polygon,
)


class TestPointInPolygon:
    def test_unit_square(self):
        square = [(0.0, 0.0), (0.0, 10.0), (10.0, 10.0), (10.0, 0.0)]
        assert point_in_polygon(GeoPoint(5.0, 5.0), square)
        assert not point_in_polygon(GeoPoint(15.0, 5.0), square)
        assert not point_in_polygon(GeoPoint(5.0, -1.0), square)

    def test_degenerate_polygon_raises(self):
        with pytest.raises(GeoError):
            point_in_polygon(GeoPoint(0.0, 0.0), [(0.0, 0.0), (1.0, 1.0)])


class TestContiguousUs:
    @pytest.mark.parametrize(
        "name,lat,lon",
        [
            ("Albuquerque", 35.0844, -106.6504),
            ("Lincoln", 40.8136, -96.7026),
            ("Kansas City", 39.0997, -94.5786),
            ("Denver", 39.7392, -104.9903),
            ("Atlanta", 33.7490, -84.3880),
        ],
    )
    def test_interior_cities_inside(self, name, lat, lon):
        assert in_contiguous_us(GeoPoint(lat, lon)), name

    @pytest.mark.parametrize(
        "name,lat,lon",
        [
            ("London", 51.5074, -0.1278),
            ("Honolulu", 21.3069, -157.8583),
            ("Anchorage", 61.2181, -149.9003),
            ("Mexico City", 19.4326, -99.1332),
            ("Atlantic Ocean", 35.0, -60.0),
        ],
    )
    def test_outside_points_excluded(self, name, lat, lon):
        assert not in_contiguous_us(GeoPoint(lat, lon)), name

    def test_bbox_contains_outline(self):
        box = contiguous_us_bbox()
        for lat, lon in CONTIGUOUS_US_OUTLINE:
            assert box.contains(GeoPoint(lat, lon))


class TestCities:
    def test_city_by_name_found(self):
        city = city_by_name("Albuquerque, NM")
        assert city.center.latitude == pytest.approx(35.0844)

    def test_city_by_name_unknown(self):
        with pytest.raises(GeoError):
            city_by_name("Gotham City")

    def test_experiment_cities_present(self):
        # The thesis ran experiments from Albuquerque and Lincoln, and
        # checked into San Francisco; Fig 4.3 reaches Alaska and Europe.
        names = {city.name for city in all_cities()}
        for required in (
            "Albuquerque, NM",
            "Lincoln, NE",
            "San Francisco, CA",
            "Anchorage, AK",
            "London, UK",
        ):
            assert required in names

    def test_weights_positive(self):
        for city in all_cities():
            assert city.weight > 0
            assert city.radius_m > 0

    def test_us_and_europe_disjoint(self):
        us = {city.name for city in US_CITIES}
        europe = {city.name for city in EUROPEAN_CITIES}
        assert not us & europe
