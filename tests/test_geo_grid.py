"""Unit tests for the spatial grid index."""

import threading

import pytest

from repro.errors import GeoError
from repro.geo.coordinates import GeoPoint
from repro.geo.distance import destination_point, haversine_m
from repro.geo.grid import SpatialGrid

CENTER = GeoPoint(35.0844, -106.6504)


def make_ring(grid, count, radius_m):
    """Insert `count` items evenly on a circle of `radius_m`."""
    for index in range(count):
        bearing = 360.0 * index / count
        grid.insert(index, destination_point(CENTER, bearing, radius_m))


class TestInsertRemove:
    def test_len_and_contains(self):
        grid = SpatialGrid()
        grid.insert("a", CENTER)
        assert len(grid) == 1
        assert "a" in grid
        assert "b" not in grid

    def test_reinsert_moves_item(self):
        grid = SpatialGrid()
        grid.insert("a", CENTER)
        elsewhere = destination_point(CENTER, 90.0, 10_000.0)
        grid.insert("a", elsewhere)
        assert len(grid) == 1
        assert grid.location_of("a") == elsewhere

    def test_remove(self):
        grid = SpatialGrid()
        grid.insert("a", CENTER)
        assert grid.remove("a") is True
        assert grid.remove("a") is False
        assert len(grid) == 0

    def test_invalid_cell_size(self):
        with pytest.raises(GeoError):
            SpatialGrid(cell_size_deg=0.0)


class TestQueryRadius:
    def test_finds_items_within_radius(self):
        grid = SpatialGrid()
        make_ring(grid, 8, 500.0)
        make_ring_ids = {i for i in range(8)}
        hits = grid.query_radius(CENTER, 600.0)
        assert {item for item, _, _ in hits} == make_ring_ids

    def test_excludes_items_beyond_radius(self):
        grid = SpatialGrid()
        grid.insert("near", destination_point(CENTER, 0.0, 100.0))
        grid.insert("far", destination_point(CENTER, 0.0, 5_000.0))
        hits = grid.query_radius(CENTER, 1_000.0)
        assert [item for item, _, _ in hits] == ["near"]

    def test_results_sorted_by_distance(self):
        grid = SpatialGrid()
        for index, radius in enumerate([900.0, 100.0, 500.0]):
            grid.insert(index, destination_point(CENTER, 45.0, radius))
        hits = grid.query_radius(CENTER, 1_000.0)
        distances = [distance for _, _, distance in hits]
        assert distances == sorted(distances)

    def test_negative_radius_raises(self):
        with pytest.raises(GeoError):
            SpatialGrid().query_radius(CENTER, -1.0)

    def test_radius_accuracy_against_brute_force(self):
        grid = SpatialGrid()
        points = {}
        for index in range(200):
            point = destination_point(
                CENTER, (index * 37) % 360, (index * 53) % 3_000
            )
            grid.insert(index, point)
            points[index] = point
        radius = 1_500.0
        expected = {
            index
            for index, point in points.items()
            if haversine_m(CENTER, point) <= radius
        }
        actual = {item for item, _, _ in grid.query_radius(CENTER, radius)}
        assert actual == expected


class TestNearest:
    def test_nearest_picks_closest(self):
        grid = SpatialGrid()
        grid.insert("close", destination_point(CENTER, 10.0, 200.0))
        grid.insert("far", destination_point(CENTER, 10.0, 2_000.0))
        item, _, distance = grid.nearest(CENTER)
        assert item == "close"
        assert distance == pytest.approx(200.0, rel=1e-6)

    def test_nearest_respects_exclusions(self):
        grid = SpatialGrid()
        grid.insert("close", destination_point(CENTER, 10.0, 200.0))
        grid.insert("far", destination_point(CENTER, 10.0, 2_000.0))
        item, _, _ = grid.nearest(CENTER, exclude={"close"})
        assert item == "far"

    def test_nearest_none_when_out_of_range(self):
        grid = SpatialGrid()
        grid.insert("far", destination_point(CENTER, 10.0, 40_000.0))
        assert grid.nearest(CENTER, max_radius_m=10_000.0) is None

    def test_nearest_on_empty_grid(self):
        assert SpatialGrid().nearest(CENTER) is None

    def test_nearest_beyond_first_ring(self):
        # Forces the expanding-ring search past its initial 500 m radius.
        grid = SpatialGrid()
        grid.insert("only", destination_point(CENTER, 200.0, 9_000.0))
        item, _, _ = grid.nearest(CENTER)
        assert item == "only"


class TestKNearest:
    def test_k_nearest_ordering_and_count(self):
        grid = SpatialGrid()
        make_ring(grid, 10, 800.0)
        grid.insert("bull", CENTER)
        hits = grid.k_nearest(CENTER, 3)
        assert len(hits) == 3
        assert hits[0][0] == "bull"

    def test_k_zero_returns_empty(self):
        grid = SpatialGrid()
        grid.insert("a", CENTER)
        assert grid.k_nearest(CENTER, 0) == []

    def test_k_larger_than_population(self):
        grid = SpatialGrid()
        make_ring(grid, 4, 300.0)
        assert len(grid.k_nearest(CENTER, 10)) == 4


class TestThreadSafety:
    def test_concurrent_inserts_and_queries(self):
        grid = SpatialGrid()
        errors = []

        def writer(base):
            try:
                for index in range(200):
                    grid.insert(
                        base + index,
                        destination_point(
                            CENTER, (base + index) % 360, index % 2_000
                        ),
                    )
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def reader():
            try:
                for _ in range(100):
                    grid.query_radius(CENTER, 1_000.0)
                    grid.nearest(CENTER)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(base,))
            for base in (0, 1_000, 2_000)
        ] + [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(grid) == 600
