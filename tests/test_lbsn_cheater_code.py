"""Unit tests for the cheater code — the §2.3 rules verbatim."""


from repro.geo.coordinates import METERS_PER_MILE, GeoPoint
from repro.geo.distance import destination_point
from repro.lbsn.cheater_code import (
    RULE_FREQUENT,
    RULE_RAPID_FIRE,
    RULE_SHADOW_BAN,
    RULE_SUPERHUMAN,
    CheaterCode,
    CheaterCodeConfig,
    RuleAction,
)
from repro.lbsn.models import CheckIn, CheckInStatus

ORIGIN = GeoPoint(35.0844, -106.6504)
FAR_AWAY = GeoPoint(37.7749, -122.4194)  # ~1430 km


def checkin(
    venue_id, timestamp, location=ORIGIN, status=CheckInStatus.VALID, cid=None
):
    return CheckIn(
        checkin_id=cid or venue_id * 1000 + int(timestamp),
        user_id=1,
        venue_id=venue_id,
        timestamp=timestamp,
        reported_location=location,
        status=status,
    )


def locations(mapping):
    return lambda venue_id: mapping.get(venue_id)


class TestFrequentCheckins:
    def test_same_venue_within_hour_rejected(self):
        code = CheaterCode()
        history = [checkin(7, 1_000.0)]
        verdict = code.evaluate(
            venue_id=7,
            venue_location=ORIGIN,
            timestamp=1_000.0 + 1_800.0,
            history=history,
            location_of_venue=locations({7: ORIGIN}),
        )
        assert verdict.action is RuleAction.REJECT
        assert verdict.rule == RULE_FREQUENT

    def test_same_venue_after_hour_allowed(self):
        code = CheaterCode()
        history = [checkin(7, 1_000.0)]
        verdict = code.evaluate(
            venue_id=7,
            venue_location=ORIGIN,
            timestamp=1_000.0 + 3_700.0,
            history=history,
            location_of_venue=locations({7: ORIGIN}),
        )
        assert verdict.action is RuleAction.ALLOW

    def test_different_venue_within_hour_allowed(self):
        code = CheaterCode()
        near = destination_point(ORIGIN, 90.0, 400.0)
        history = [checkin(7, 1_000.0)]
        verdict = code.evaluate(
            venue_id=8,
            venue_location=near,
            timestamp=1_000.0 + 600.0,
            history=history,
            location_of_venue=locations({7: ORIGIN, 8: near}),
        )
        assert verdict.action is RuleAction.ALLOW

    def test_rule_can_be_disabled(self):
        code = CheaterCode(CheaterCodeConfig(enable_frequent=False))
        history = [checkin(7, 1_000.0)]
        verdict = code.evaluate(
            venue_id=7,
            venue_location=ORIGIN,
            timestamp=1_000.0 + 60.0,
            history=history,
            location_of_venue=locations({7: ORIGIN}),
        )
        assert verdict.action is RuleAction.ALLOW


class TestSuperHumanSpeed:
    def test_cross_country_in_minutes_flagged(self):
        code = CheaterCode()
        history = [checkin(1, 0.0, location=ORIGIN)]
        verdict = code.evaluate(
            venue_id=2,
            venue_location=FAR_AWAY,
            timestamp=600.0,  # 1430 km in 10 minutes
            history=history,
            location_of_venue=locations({1: ORIGIN, 2: FAR_AWAY}),
        )
        assert verdict.action is RuleAction.FLAG
        assert verdict.rule == RULE_SUPERHUMAN

    def test_thesis_safe_envelope_passes(self):
        # "venues less than 1 mile apart with a 5-minute interval"
        code = CheaterCode()
        near = destination_point(ORIGIN, 0.0, 0.9 * METERS_PER_MILE)
        history = [checkin(1, 0.0, location=ORIGIN)]
        verdict = code.evaluate(
            venue_id=2,
            venue_location=near,
            timestamp=300.0,
            history=history,
            location_of_venue=locations({1: ORIGIN, 2: near}),
        )
        assert verdict.action is RuleAction.ALLOW

    def test_long_elapsed_time_makes_distance_plausible(self):
        code = CheaterCode()
        history = [checkin(1, 0.0, location=ORIGIN)]
        verdict = code.evaluate(
            venue_id=2,
            venue_location=FAR_AWAY,
            timestamp=8.0 * 3_600.0,  # 1430 km in 8 hours ~ 50 m/s
            history=history,
            location_of_venue=locations({1: ORIGIN, 2: FAR_AWAY}),
        )
        assert verdict.action is RuleAction.ALLOW

    def test_small_displacement_never_triggers(self):
        # GPS jitter across the street in seconds is not "travel".
        code = CheaterCode()
        near = destination_point(ORIGIN, 90.0, 500.0)
        history = [checkin(1, 0.0, location=ORIGIN)]
        verdict = code.evaluate(
            venue_id=2,
            venue_location=near,
            timestamp=1.0,
            history=history,
            location_of_venue=locations({1: ORIGIN, 2: near}),
        )
        assert verdict.action is RuleAction.ALLOW

    def test_anchors_on_last_valid_not_flagged(self):
        # A flagged check-in must not reset the attacker's position.
        code = CheaterCode()
        history = [
            checkin(1, 0.0, location=ORIGIN),
            checkin(
                2, 300.0, location=FAR_AWAY, status=CheckInStatus.FLAGGED
            ),
        ]
        verdict = code.evaluate(
            venue_id=3,
            venue_location=FAR_AWAY,
            timestamp=600.0,
            history=history,
            location_of_venue=locations(
                {1: ORIGIN, 2: FAR_AWAY, 3: FAR_AWAY}
            ),
        )
        assert verdict.action is RuleAction.FLAG

    def test_no_history_allows_anything(self):
        code = CheaterCode()
        verdict = code.evaluate(
            venue_id=1,
            venue_location=FAR_AWAY,
            timestamp=0.0,
            history=[],
            location_of_venue=locations({1: FAR_AWAY}),
        )
        assert verdict.action is RuleAction.ALLOW

    def test_rule_can_be_disabled(self):
        code = CheaterCode(CheaterCodeConfig(enable_superhuman=False))
        history = [checkin(1, 0.0, location=ORIGIN)]
        verdict = code.evaluate(
            venue_id=2,
            venue_location=FAR_AWAY,
            timestamp=60.0,
            history=history,
            location_of_venue=locations({1: ORIGIN, 2: FAR_AWAY}),
        )
        assert verdict.action is RuleAction.ALLOW


class TestRapidFire:
    def _square_venues(self, edge_m=150.0):
        # Four venues inside a 150 m square (well under the 180 m limit).
        a = ORIGIN
        b = destination_point(ORIGIN, 90.0, edge_m / 2)
        c = destination_point(ORIGIN, 0.0, edge_m / 2)
        d = destination_point(c, 90.0, edge_m / 2)
        return {1: a, 2: b, 3: c, 4: d}

    def test_fourth_rapid_checkin_flagged(self):
        code = CheaterCode()
        venues = self._square_venues()
        history = [
            checkin(1, 0.0, location=venues[1]),
            checkin(2, 55.0, location=venues[2]),
            checkin(3, 110.0, location=venues[3]),
        ]
        verdict = code.evaluate(
            venue_id=4,
            venue_location=venues[4],
            timestamp=165.0,
            history=history,
            location_of_venue=locations(venues),
        )
        assert verdict.action is RuleAction.FLAG
        assert verdict.rule == RULE_RAPID_FIRE
        assert "rapid-fire" in verdict.warnings[0]

    def test_third_checkin_not_flagged(self):
        code = CheaterCode()
        venues = self._square_venues()
        history = [
            checkin(1, 0.0, location=venues[1]),
            checkin(2, 55.0, location=venues[2]),
        ]
        verdict = code.evaluate(
            venue_id=3,
            venue_location=venues[3],
            timestamp=110.0,
            history=history,
            location_of_venue=locations(venues),
        )
        assert verdict.action is RuleAction.ALLOW

    def test_slow_spacing_not_flagged(self):
        # Same square, but 5-minute intervals (the thesis's safe spacing).
        code = CheaterCode()
        venues = self._square_venues()
        history = [
            checkin(1, 0.0, location=venues[1]),
            checkin(2, 300.0, location=venues[2]),
            checkin(3, 600.0, location=venues[3]),
        ]
        verdict = code.evaluate(
            venue_id=4,
            venue_location=venues[4],
            timestamp=900.0,
            history=history,
            location_of_venue=locations(venues),
        )
        assert verdict.action is RuleAction.ALLOW

    def test_wide_area_not_flagged(self):
        # Rapid but spread over ~2 km: not a "180 m square" pattern.
        code = CheaterCode()
        venues = {
            index: destination_point(ORIGIN, 90.0, index * 700.0)
            for index in range(1, 5)
        }
        history = [
            checkin(1, 0.0, location=venues[1]),
            checkin(2, 55.0, location=venues[2]),
            checkin(3, 110.0, location=venues[3]),
        ]
        verdict = code.evaluate(
            venue_id=4,
            venue_location=venues[4],
            timestamp=165.0,
            history=history,
            location_of_venue=locations(venues),
        )
        # May trip the speed rule at these gaps?  700 m hops in 55 s is
        # ~13 m/s — under the threshold and under the distance floor, so
        # the verdict must be ALLOW.
        assert verdict.action is RuleAction.ALLOW

    def test_rule_can_be_disabled(self):
        code = CheaterCode(CheaterCodeConfig(enable_rapid_fire=False))
        venues = self._square_venues()
        history = [
            checkin(1, 0.0, location=venues[1]),
            checkin(2, 55.0, location=venues[2]),
            checkin(3, 110.0, location=venues[3]),
        ]
        verdict = code.evaluate(
            venue_id=4,
            venue_location=venues[4],
            timestamp=165.0,
            history=history,
            location_of_venue=locations(venues),
        )
        assert verdict.action is RuleAction.ALLOW


class TestShadowBan:
    def test_banned_user_always_flagged(self):
        code = CheaterCode(CheaterCodeConfig(shadow_ban_threshold=50))
        verdict = code.evaluate(
            venue_id=1,
            venue_location=ORIGIN,
            timestamp=0.0,
            history=[],
            location_of_venue=locations({1: ORIGIN}),
            prior_flagged_count=50,
        )
        assert verdict.action is RuleAction.FLAG
        assert verdict.rule == RULE_SHADOW_BAN

    def test_below_threshold_not_banned(self):
        code = CheaterCode(CheaterCodeConfig(shadow_ban_threshold=50))
        verdict = code.evaluate(
            venue_id=1,
            venue_location=ORIGIN,
            timestamp=0.0,
            history=[],
            location_of_venue=locations({1: ORIGIN}),
            prior_flagged_count=49,
        )
        assert verdict.action is RuleAction.ALLOW

    def test_zero_threshold_disables_ban(self):
        code = CheaterCode(CheaterCodeConfig(shadow_ban_threshold=0))
        verdict = code.evaluate(
            venue_id=1,
            venue_location=ORIGIN,
            timestamp=0.0,
            history=[],
            location_of_venue=locations({1: ORIGIN}),
            prior_flagged_count=10_000,
        )
        assert verdict.action is RuleAction.ALLOW
