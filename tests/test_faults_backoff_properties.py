"""Property tests (hypothesis) for :class:`repro.faults.BackoffPolicy`.

Pins the schedule invariants the retry layer leans on:

* pre-jitter delays are monotone non-decreasing and capped;
* jitter stays within ``±jitter_fraction`` of the base delay;
* a ``max_total_delay_s`` budget is never exceeded, jitter included;
* schedules are pure functions of (policy, rng seed).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import BackoffPolicy

#: Keep the float ranges tame: these are seconds, not stress tests for
#: IEEE-754 — the retry layer never sees subnormal or 1e300 delays.
initial_delays = st.floats(min_value=0.001, max_value=10.0)
multipliers = st.floats(min_value=1.0, max_value=4.0)
cap_factors = st.floats(min_value=1.0, max_value=100.0)
jitters = st.floats(min_value=0.0, max_value=0.9)
attempt_counts = st.integers(min_value=1, max_value=30)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


@st.composite
def policies(draw, with_budget=False):
    initial = draw(initial_delays)
    cap = initial * draw(cap_factors)
    budget = None
    if with_budget:
        budget = draw(st.floats(min_value=0.0, max_value=50.0))
    return BackoffPolicy(
        max_attempts=draw(attempt_counts),
        initial_delay_s=initial,
        multiplier=draw(multipliers),
        max_delay_s=cap,
        jitter_fraction=draw(jitters),
        max_total_delay_s=budget,
    )


class TestBaseDelayShape:
    @settings(max_examples=80, deadline=None)
    @given(policy=policies())
    def test_monotone_non_decreasing_pre_jitter(self, policy):
        delays = [
            policy.base_delay(n) for n in range(1, policy.max_attempts + 1)
        ]
        assert all(b >= a for a, b in zip(delays, delays[1:]))

    @settings(max_examples=80, deadline=None)
    @given(policy=policies())
    def test_capped_and_floored(self, policy):
        for n in range(1, policy.max_attempts + 1):
            delay = policy.base_delay(n)
            assert delay <= policy.max_delay_s
            assert delay >= min(policy.initial_delay_s, policy.max_delay_s)

    @settings(max_examples=60, deadline=None)
    @given(policy=policies())
    def test_first_delay_is_the_initial_delay(self, policy):
        assert policy.base_delay(1) == min(
            policy.initial_delay_s, policy.max_delay_s
        )


class TestJitterBounds:
    @settings(max_examples=100, deadline=None)
    @given(policy=policies(), seed=seeds, n=st.integers(1, 30))
    def test_jitter_within_fraction_of_base(self, policy, seed, n):
        n = min(n, policy.max_attempts)
        base = policy.base_delay(n)
        jittered = policy.delay(n, random.Random(seed))
        low = base * (1.0 - policy.jitter_fraction)
        high = base * (1.0 + policy.jitter_fraction)
        assert low * (1 - 1e-12) <= jittered <= high * (1 + 1e-12)
        assert jittered >= 0.0

    @settings(max_examples=60, deadline=None)
    @given(policy=policies(), n=st.integers(1, 30))
    def test_no_rng_means_no_jitter(self, policy, n):
        n = min(n, policy.max_attempts)
        assert policy.delay(n) == policy.base_delay(n)


class TestScheduleBudget:
    @settings(max_examples=100, deadline=None)
    @given(policy=policies(with_budget=True), seed=seeds)
    def test_total_delay_never_exceeds_budget(self, policy, seed):
        schedule = policy.schedule(random.Random(seed))
        assert sum(schedule) <= policy.max_total_delay_s * (1 + 1e-12)

    @settings(max_examples=80, deadline=None)
    @given(policy=policies(), seed=seeds)
    def test_schedule_length_without_budget(self, policy, seed):
        schedule = policy.schedule(random.Random(seed))
        assert len(schedule) == policy.max_attempts - 1

    @settings(max_examples=80, deadline=None)
    @given(policy=policies(with_budget=True), seed=seeds)
    def test_schedule_is_a_prefix(self, policy, seed):
        """Budget truncation drops a suffix, never reorders or scales."""
        budgeted = policy.schedule(random.Random(seed))
        free = BackoffPolicy(
            max_attempts=policy.max_attempts,
            initial_delay_s=policy.initial_delay_s,
            multiplier=policy.multiplier,
            max_delay_s=policy.max_delay_s,
            jitter_fraction=policy.jitter_fraction,
        ).schedule(random.Random(seed))
        assert budgeted == free[: len(budgeted)]

    @settings(max_examples=60, deadline=None)
    @given(policy=policies(with_budget=True), seed=seeds)
    def test_schedule_is_deterministic_per_seed(self, policy, seed):
        assert policy.schedule(random.Random(seed)) == policy.schedule(
            random.Random(seed)
        )
