"""Tests for the Fig 4.1 analysis (recent vs total check-ins)."""

import pytest

from repro.analysis.activity import (
    high_ratio_users,
    recent_vs_total_curve,
    trackable_users,
)
from repro.crawler.database import CrawlDatabase
from repro.crawler.parser import ParsedUser, ParsedVenue
from repro.errors import ReproError


def seed_db(entries):
    """entries: list of (user_id, total_checkins, recent_venue_count)."""
    db = CrawlDatabase()
    venue_id = 0
    for user_id, total, recent in entries:
        db.upsert_user(
            ParsedUser(
                user_id=user_id,
                display_name=f"U{user_id}",
                username=None,
                home_city="",
                total_checkins=total,
                total_badges=0,
                points=0,
            )
        )
        for _ in range(recent):
            venue_id += 1
            db.upsert_venue(
                ParsedVenue(
                    venue_id=venue_id,
                    name=f"V{venue_id}",
                    address="",
                    city="",
                    latitude=35.0,
                    longitude=-106.0,
                    checkins_here=1,
                    unique_visitors=1,
                    mayor_id=None,
                    special=None,
                    special_mayor_only=False,
                    recent_visitor_ids=[user_id],
                )
            )
    db.recompute_derived()
    return db


class TestCurve:
    def test_bucket_averages(self):
        db = seed_db([(1, 10, 2), (2, 12, 4), (3, 200, 50)])
        curve = recent_vs_total_curve(db, bucket_width=25)
        first = curve[0]
        assert first.total_checkins == 12  # bucket [0,25) centered
        assert first.average_recent == pytest.approx(3.0)
        assert first.users == 2

    def test_zero_checkin_users_excluded(self):
        db = seed_db([(1, 0, 0), (2, 10, 1)])
        curve = recent_vs_total_curve(db)
        assert sum(point.users for point in curve) == 1

    def test_max_total_cutoff(self):
        db = seed_db([(1, 10, 1), (2, 5_000, 10)])
        curve = recent_vs_total_curve(db, max_total=2_000)
        assert sum(point.users for point in curve) == 1

    def test_invalid_bucket_width(self):
        with pytest.raises(ReproError):
            recent_vs_total_curve(seed_db([]), bucket_width=0)

    def test_fig41_shape_on_world(self, crawl_db):
        # The curve must rise: heavier users have more recent check-ins.
        curve = recent_vs_total_curve(crawl_db, bucket_width=50)
        assert len(curve) >= 3
        light = [p for p in curve if p.total_checkins <= 100]
        heavy = [p for p in curve if p.total_checkins >= 300]
        assert light and heavy
        light_avg = sum(p.average_recent for p in light) / len(light)
        heavy_avg = sum(p.average_recent for p in heavy) / len(heavy)
        assert heavy_avg > light_avg


class TestHighRatio:
    def test_finds_ratio_outliers(self):
        db = seed_db([(1, 600, 500), (2, 600, 20)])
        suspects = high_ratio_users(db, min_total=500, min_ratio=0.5)
        assert [u.user_id for u in suspects] == [1]

    def test_sorted_by_ratio(self):
        db = seed_db([(1, 600, 400), (2, 500, 450)])
        suspects = high_ratio_users(db, min_total=500, min_ratio=0.5)
        assert [u.user_id for u in suspects] == [2, 1]

    def test_mega_cheater_flagged_in_world(self, world, crawl_db):
        # The Fig 4.3 persona keeps a very high recent/total ratio.
        suspects = high_ratio_users(crawl_db, min_total=100, min_ratio=0.3)
        assert world.roster.mega_cheater.user_id in {
            u.user_id for u in suspects
        }


class TestTrackableUsers:
    def test_band_statistics(self):
        db = seed_db([(1, 600, 100), (2, 1_000, 200), (3, 100, 5)])
        count, average = trackable_users(db, min_total=500, max_total=2_000)
        assert count == 2
        assert average == pytest.approx(150.0)

    def test_empty_band(self):
        db = seed_db([(1, 10, 1)])
        assert trackable_users(db) == (0, 0.0)
