"""Unit tests for specials helpers and models."""

from repro.geo.coordinates import GeoPoint
from repro.lbsn.models import Special, User, Venue
from repro.lbsn.specials import (
    mayor_only_fraction,
    no_mayorship_specials,
    special_unlocked_by,
    undefended_special_venues,
    venues_with_specials,
)

ABQ = GeoPoint(35.0844, -106.6504)


def venue(venue_id, special=None, mayor_id=None):
    return Venue(
        venue_id=venue_id,
        name=f"V{venue_id}",
        location=ABQ,
        special=special,
        mayor_id=mayor_id,
    )


def user():
    return User(user_id=1, display_name="U")


class TestSpecialUnlock:
    def test_none_when_no_special(self):
        assert special_unlocked_by(venue(1), user(), 1, True) is None

    def test_mayor_only_requires_crown(self):
        special = Special("Mayor coffee")
        v = venue(1, special=special)
        assert special_unlocked_by(v, user(), 5, False) is None
        assert special_unlocked_by(v, user(), 5, True) is special

    def test_count_special_threshold(self):
        special = Special("3rd visit", mayor_only=False, unlock_checkins=3)
        v = venue(1, special=special)
        assert special_unlocked_by(v, user(), 2, False) is None
        assert special_unlocked_by(v, user(), 3, False) is special


class TestCatalogQueries:
    def _venues(self):
        mayor_special = Special("mayor-only", mayor_only=True)
        open_special = Special("open", mayor_only=False, unlock_checkins=2)
        return [
            venue(1),
            venue(2, special=mayor_special),
            venue(3, special=mayor_special, mayor_id=9),
            venue(4, special=open_special),
        ]

    def test_venues_with_specials(self):
        assert {v.venue_id for v in venues_with_specials(self._venues())} == {
            2,
            3,
            4,
        }

    def test_mayor_only_fraction(self):
        assert mayor_only_fraction(self._venues()) == 2 / 3

    def test_mayor_only_fraction_empty(self):
        assert mayor_only_fraction([venue(1)]) == 0.0

    def test_undefended_special_venues(self):
        # Venue 2 has a mayor-only special and no mayor: prime target.
        targets = undefended_special_venues(self._venues())
        assert [v.venue_id for v in targets] == [2]

    def test_no_mayorship_specials(self):
        assert [v.venue_id for v in no_mayorship_specials(self._venues())] == [4]


class TestVenueModel:
    def test_recent_visitor_rotation(self):
        v = venue(1)
        for uid in range(1, 15):
            v.record_recent_visitor(uid)
        assert len(v.recent_visitors) == Venue.RECENT_VISITOR_LIMIT
        assert v.recent_visitors[0] == 14

    def test_recent_visitor_dedup_moves_to_front(self):
        v = venue(1)
        v.record_recent_visitor(1)
        v.record_recent_visitor(2)
        v.record_recent_visitor(1)
        assert v.recent_visitors == [1, 2]

    def test_profile_urls(self):
        assert venue(7).profile_url() == "/venue/7"
        assert user().profile_url() == "/user/1"
