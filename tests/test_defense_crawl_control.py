"""Tests for crawl access control: login gating + rate limiting."""


from repro.crawler.crawler import MultiThreadedCrawler
from repro.crawler.database import CrawlDatabase
from repro.crawler.frontier import CrawlMode
from repro.defense.crawl_control import (
    IpRateLimiter,
    LoginGate,
    RateLimiterConfig,
    SessionRegistry,
)
from repro.simnet.http import (
    HTTP_FORBIDDEN,
    HTTP_TOO_MANY_REQUESTS,
    HTTP_UNAUTHORIZED,
    HttpRequest,
)


def request(path, ip="1.1.1.1", headers=None):
    return HttpRequest(
        method="GET", path=path, client_ip=ip, headers=headers or {}
    )


class TestSessionRegistry:
    def test_login_resolve_revoke(self):
        sessions = SessionRegistry()
        token = sessions.login(7)
        assert sessions.resolve(token) == 7
        assert sessions.revoke(token)
        assert sessions.resolve(token) is None


class TestLoginGate:
    def test_anonymous_profile_access_denied(self):
        gate = LoginGate(SessionRegistry())
        response = gate(request("/user/1"))
        assert response.status == HTTP_UNAUTHORIZED
        assert gate.stats.anonymous_denied == 1

    def test_non_profile_paths_unaffected(self):
        gate = LoginGate(SessionRegistry())
        assert gate(request("/api/checkin")) is None
        assert gate(request("/")) is None

    def test_logged_in_access_allowed(self):
        sessions = SessionRegistry()
        token = sessions.login(7)
        gate = LoginGate(sessions)
        response = gate(request("/user/1", headers={"X-Session": token}))
        assert response is None
        assert gate.stats.allowed == 1

    def test_per_account_budget_enforced(self):
        sessions = SessionRegistry()
        token = sessions.login(7)
        gate = LoginGate(sessions, per_account_budget=5)
        for _ in range(5):
            assert gate(request("/user/1", headers={"X-Session": token})) is None
        response = gate(request("/user/1", headers={"X-Session": token}))
        assert response.status == HTTP_TOO_MANY_REQUESTS
        assert gate.stats.over_budget_denied == 1

    def test_unlimited_budget(self):
        sessions = SessionRegistry()
        token = sessions.login(7)
        gate = LoginGate(sessions, per_account_budget=None)
        for _ in range(100):
            assert gate(request("/venue/1", headers={"X-Session": token})) is None


class TestIpRateLimiter:
    def test_burst_rate_triggers_block(self):
        limiter = IpRateLimiter(
            RateLimiterConfig(window_s=10.0, max_requests_per_window=20)
        )
        responses = [limiter(request(f"/user/{i*7}")) for i in range(1, 40)]
        assert any(
            r is not None and r.status == HTTP_TOO_MANY_REQUESTS
            for r in responses
        )
        assert "1.1.1.1" in limiter.stats.blocked_ips
        # Once blocked, everything is denied.
        assert limiter(request("/user/1")).status == HTTP_FORBIDDEN

    def test_sequential_enumeration_detected(self):
        limiter = IpRateLimiter(
            RateLimiterConfig(
                window_s=0.0001,  # rate rule effectively off
                max_requests_per_window=10_000,
                enumeration_run_length=50,
            )
        )
        response = None
        for profile_id in range(1, 60):
            response = limiter(request(f"/venue/{profile_id}"))
            if response is not None:
                break
        assert response is not None
        assert response.status == HTTP_FORBIDDEN
        assert limiter.stats.enumeration_triggers == 1

    def test_non_sequential_browsing_not_flagged(self):
        limiter = IpRateLimiter(
            RateLimiterConfig(
                window_s=0.0001,
                max_requests_per_window=10_000,
                enumeration_run_length=20,
            )
        )
        for profile_id in (5, 900, 23, 512, 7, 44, 1020, 3, 88, 61) * 5:
            assert limiter(request(f"/user/{profile_id}")) is None

    def test_different_ips_tracked_separately(self):
        limiter = IpRateLimiter(
            RateLimiterConfig(
                window_s=0.0001,
                max_requests_per_window=10_000,
                enumeration_run_length=30,
            )
        )
        for profile_id in range(1, 25):
            assert limiter(request(f"/user/{profile_id}", ip="1.1.1.1")) is None
            assert limiter(request(f"/user/{profile_id}", ip="2.2.2.2")) is None

    def test_unblock(self):
        limiter = IpRateLimiter(
            RateLimiterConfig(enumeration_run_length=5)
        )
        for profile_id in range(1, 10):
            limiter(request(f"/user/{profile_id}"))
        assert "1.1.1.1" in limiter.stats.blocked_ips
        assert limiter.unblock("1.1.1.1")
        assert limiter(request("/user/500")) is None
        assert not limiter.unblock("9.9.9.9")


class TestAgainstRealCrawler:
    def test_login_gate_stops_the_thesis_crawler(self, world, web_stack):
        # Installing the gate on a fresh transport: the crawler's
        # anonymous enumeration dies immediately.
        from repro.simnet.http import HttpTransport

        transport = HttpTransport(
            web_stack.router, web_stack.network, clock=world.service.clock
        )
        transport.add_middleware(LoginGate(SessionRegistry()))
        crawler = MultiThreadedCrawler(
            transport,
            CrawlDatabase(),
            CrawlMode.USER,
            [web_stack.network.create_egress()],
            threads_per_machine=4,
            stop_at=5_000,
            abort_after_failures=100,
        )
        stats = crawler.run()
        assert crawler.aborted
        assert stats.hits == 0

    def test_enumeration_detector_stops_single_ip_crawler(
        self, world, web_stack
    ):
        from repro.simnet.http import HttpTransport

        transport = HttpTransport(
            web_stack.router, web_stack.network, clock=world.service.clock
        )
        limiter = IpRateLimiter(
            RateLimiterConfig(
                window_s=0.001,
                max_requests_per_window=10_000,
                enumeration_run_length=100,
            )
        )
        transport.add_middleware(limiter)
        crawler = MultiThreadedCrawler(
            transport,
            CrawlDatabase(),
            CrawlMode.USER,
            [web_stack.network.create_egress()],
            threads_per_machine=1,  # single thread: perfectly sequential
            stop_at=5_000,
            abort_after_failures=50,
        )
        stats = crawler.run()
        assert crawler.aborted
        assert stats.hits < 200
        assert limiter.stats.enumeration_triggers >= 1


class TestNatCollateral:
    def test_blocking_a_nat_counts_bystanders(self):
        """§5.2 cites Casado & Freedman: most NATs hide only a few hosts,
        so IP blocking's collateral damage is limited but nonzero."""
        from repro.simnet.network import EgressKind, Network

        network = Network(seed=8)
        nat = network.create_egress(kind=EgressKind.NAT)
        nat.add_client("crawler")
        nat.add_client("innocent-roommate")
        nat.add_client("innocent-flatmate")
        limiter = IpRateLimiter(RateLimiterConfig(enumeration_run_length=5))
        for profile_id in range(1, 10):
            limiter(request(f"/user/{profile_id}", ip=nat.ip.value))
        assert nat.ip.value in limiter.stats.blocked_ips
        assert limiter.stats.collateral_clients(network) == 2

    def test_direct_egress_has_no_collateral(self):
        from repro.simnet.network import EgressKind, Network

        network = Network(seed=9)
        egress = network.create_egress(kind=EgressKind.DIRECT)
        egress.add_client("crawler")
        limiter = IpRateLimiter(RateLimiterConfig(enumeration_run_length=5))
        for profile_id in range(1, 10):
            limiter(request(f"/user/{profile_id}", ip=egress.ip.value))
        assert limiter.stats.collateral_clients(network) == 0

    def test_unknown_blocked_ip_ignored_in_collateral(self):
        from repro.simnet.network import Network

        network = Network(seed=10)
        limiter = IpRateLimiter()
        limiter.stats.blocked_ips.add("203.0.113.7")  # never allocated
        assert limiter.stats.collateral_clients(network) == 0
