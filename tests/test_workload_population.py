"""Tests for the user population generator."""

import pytest

from repro.errors import ReproError
from repro.lbsn.service import LbsnService
from repro.workload.population import Persona, PopulationGenerator


@pytest.fixture(scope="module")
def generated():
    service = LbsnService()
    generator = PopulationGenerator(service, seed=7)
    population = generator.generate(4_000)
    return service, population


class TestDistribution:
    def test_count(self, generated):
        service, population = generated
        assert population.count == 4_000
        assert service.store.user_count() == 4_000

    def test_zero_checkin_fraction(self, generated):
        _, population = generated
        inactive = population.by_persona(Persona.INACTIVE)
        assert len(inactive) / population.count == pytest.approx(
            0.363, abs=0.03
        )
        assert all(spec.target_checkins == 0 for spec in inactive)

    def test_light_fraction_and_range(self, generated):
        _, population = generated
        casual = population.by_persona(Persona.CASUAL)
        assert len(casual) / population.count == pytest.approx(0.204, abs=0.03)
        assert all(1 <= spec.target_checkins <= 5 for spec in casual)

    def test_active_tail(self, generated):
        _, population = generated
        active = population.by_persona(Persona.ACTIVE)
        assert all(spec.target_checkins >= 6 for spec in active)
        heavy = [s for s in active if s.target_checkins >= 1_000]
        # ~0.2% of all users (paper); allow sampling noise at n=4000.
        assert 0 <= len(heavy) <= 0.01 * population.count

    def test_cap_enforced(self, generated):
        _, population = generated
        assert max(s.target_checkins for s in population.specs) < 2_500

    def test_username_fraction(self, generated):
        service, population = generated
        with_username = sum(
            1 for u in service.store.iter_users() if u.username
        )
        assert with_username / population.count == pytest.approx(
            0.261, abs=0.03
        )

    def test_travel_cities_differ_from_home(self, generated):
        _, population = generated
        for spec in population.specs:
            if spec.travel_city is not None:
                assert spec.travel_city.name != spec.home_city.name


class TestDeterminism:
    def test_same_seed_same_population(self):
        def build(seed):
            service = LbsnService()
            generator = PopulationGenerator(service, seed=seed)
            return [
                (s.persona, s.target_checkins, s.home_city.name)
                for s in generator.generate(200).specs
            ]

        assert build(5) == build(5)
        assert build(5) != build(6)


class TestPersonaRegistration:
    def test_register_persona(self):
        service = LbsnService()
        generator = PopulationGenerator(service, seed=1)
        from repro.geo.regions import city_by_name

        spec = generator.register_persona(
            Persona.MAYOR_FARMER,
            city_by_name("Lincoln, NE"),
            1_265,
            display_name="Farmer",
        )
        assert spec.persona is Persona.MAYOR_FARMER
        assert service.store.get_user(spec.user_id).display_name == "Farmer"

    def test_negative_count_rejected(self):
        generator = PopulationGenerator(LbsnService())
        with pytest.raises(ReproError):
            generator.generate(-1)
