"""Unit tests for repro.geo.distance."""

import math

import pytest

from repro.errors import GeoError
from repro.geo.coordinates import METERS_PER_MILE, GeoPoint
from repro.geo.distance import (
    destination_point,
    equirectangular_m,
    haversine_m,
    haversine_miles,
    initial_bearing_deg,
    meters_per_degree_latitude,
    meters_per_degree_longitude,
    pairwise_max_distance_m,
    path_length_m,
    speed_mps,
)

ALBUQUERQUE = GeoPoint(35.0844, -106.6504)
SAN_FRANCISCO = GeoPoint(37.7749, -122.4194)
LINCOLN = GeoPoint(40.8136, -96.7026)


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_m(ALBUQUERQUE, ALBUQUERQUE) == 0.0

    def test_symmetry(self):
        assert haversine_m(ALBUQUERQUE, SAN_FRANCISCO) == pytest.approx(
            haversine_m(SAN_FRANCISCO, ALBUQUERQUE)
        )

    def test_abq_to_sf_roughly_1430km(self):
        # Known city-pair distance, within 2%.
        distance = haversine_m(ALBUQUERQUE, SAN_FRANCISCO)
        assert distance == pytest.approx(1_430_000, rel=0.02)

    def test_one_degree_latitude_is_111km(self):
        distance = haversine_m(GeoPoint(0.0, 0.0), GeoPoint(1.0, 0.0))
        assert distance == pytest.approx(111_195, rel=0.001)

    def test_antipodal_is_half_circumference(self):
        distance = haversine_m(GeoPoint(0.0, 0.0), GeoPoint(0.0, 180.0))
        assert distance == pytest.approx(math.pi * 6_371_008.8, rel=0.001)

    def test_miles_conversion(self):
        a, b = GeoPoint(0.0, 0.0), GeoPoint(1.0, 0.0)
        assert haversine_miles(a, b) == pytest.approx(
            haversine_m(a, b) / METERS_PER_MILE
        )


class TestEquirectangular:
    def test_close_to_haversine_at_city_scale(self):
        a = GeoPoint(35.08, -106.65)
        b = GeoPoint(35.10, -106.60)
        assert equirectangular_m(a, b) == pytest.approx(
            haversine_m(a, b), rel=0.01
        )


class TestBearing:
    def test_due_north(self):
        bearing = initial_bearing_deg(GeoPoint(0.0, 0.0), GeoPoint(10.0, 0.0))
        assert bearing == pytest.approx(0.0, abs=1e-9)

    def test_due_east(self):
        bearing = initial_bearing_deg(GeoPoint(0.0, 0.0), GeoPoint(0.0, 10.0))
        assert bearing == pytest.approx(90.0)

    def test_due_south(self):
        bearing = initial_bearing_deg(GeoPoint(10.0, 0.0), GeoPoint(0.0, 0.0))
        assert bearing == pytest.approx(180.0)

    def test_due_west(self):
        bearing = initial_bearing_deg(GeoPoint(0.0, 10.0), GeoPoint(0.0, 0.0))
        assert bearing == pytest.approx(270.0)


class TestDestinationPoint:
    def test_round_trip_with_haversine(self):
        destination = destination_point(ALBUQUERQUE, 73.0, 12_345.0)
        assert haversine_m(ALBUQUERQUE, destination) == pytest.approx(
            12_345.0, rel=1e-6
        )

    def test_bearing_preserved(self):
        destination = destination_point(ALBUQUERQUE, 45.0, 5_000.0)
        assert initial_bearing_deg(ALBUQUERQUE, destination) == pytest.approx(
            45.0, abs=0.1
        )

    def test_zero_distance_is_identity(self):
        destination = destination_point(ALBUQUERQUE, 123.0, 0.0)
        assert destination.latitude == pytest.approx(ALBUQUERQUE.latitude)
        assert destination.longitude == pytest.approx(ALBUQUERQUE.longitude)

    def test_negative_distance_raises(self):
        with pytest.raises(GeoError):
            destination_point(ALBUQUERQUE, 0.0, -1.0)

    def test_crosses_antimeridian(self):
        near_dateline = GeoPoint(0.0, 179.9)
        destination = destination_point(near_dateline, 90.0, 50_000.0)
        assert -180.0 <= destination.longitude <= 180.0
        assert destination.longitude < 0  # wrapped to the western side


class TestSpeed:
    def test_normal_speed(self):
        a, b = GeoPoint(0.0, 0.0), GeoPoint(1.0, 0.0)
        speed = speed_mps(a, b, 3_600.0)
        assert speed == pytest.approx(111_195 / 3_600.0, rel=0.001)

    def test_zero_elapsed_with_distance_is_infinite(self):
        assert speed_mps(ALBUQUERQUE, SAN_FRANCISCO, 0.0) == math.inf

    def test_zero_elapsed_no_distance_is_zero(self):
        assert speed_mps(ALBUQUERQUE, ALBUQUERQUE, 0.0) == 0.0

    def test_negative_elapsed_is_infinite(self):
        assert speed_mps(ALBUQUERQUE, LINCOLN, -5.0) == math.inf


class TestPathsAndAggregates:
    def test_path_length_empty_and_single(self):
        assert path_length_m([]) == 0.0
        assert path_length_m([ALBUQUERQUE]) == 0.0

    def test_path_length_additive(self):
        total = path_length_m([ALBUQUERQUE, SAN_FRANCISCO, LINCOLN])
        expected = haversine_m(ALBUQUERQUE, SAN_FRANCISCO) + haversine_m(
            SAN_FRANCISCO, LINCOLN
        )
        assert total == pytest.approx(expected)

    def test_pairwise_max_distance(self):
        points = [ALBUQUERQUE, SAN_FRANCISCO, LINCOLN]
        assert pairwise_max_distance_m(points) == pytest.approx(
            haversine_m(SAN_FRANCISCO, LINCOLN)
        )

    def test_pairwise_max_of_single_point_is_zero(self):
        assert pairwise_max_distance_m([ALBUQUERQUE]) == 0.0


class TestDegreeScales:
    def test_latitude_degree_constant(self):
        assert meters_per_degree_latitude() == pytest.approx(111_195, rel=0.001)

    def test_longitude_shrinks_with_latitude(self):
        at_equator = meters_per_degree_longitude(0.0)
        at_abq = meters_per_degree_longitude(35.0844)
        assert at_abq < at_equator
        # The thesis's §3.3 numbers: 0.005 deg ~ 550 m lat, ~450 m lon
        # around Albuquerque.
        assert 0.005 * meters_per_degree_latitude() == pytest.approx(556, abs=5)
        assert 0.005 * at_abq == pytest.approx(455, abs=10)
