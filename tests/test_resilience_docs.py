"""docs/RESILIENCE.md is executable documentation.

Two two-way parity checks:

* the failure-point table must name exactly the points in
  :data:`repro.faults.points.FAILURE_POINTS`;
* the metric table must name exactly the metrics the resilience layer
  registers when fully exercised.

Plus a guard that the resilience metrics stay *out* of the plain
``repro metrics`` workload — docs/OBSERVABILITY.md has its own parity
test, and lazily-registered storm metrics must not leak into it.
"""

import re
from pathlib import Path

import pytest

from repro.errors import FaultInjectedError
from repro.faults import (
    FAILURE_POINTS,
    BackoffPolicy,
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    retry_call,
)
from repro.obs.metrics import MetricsRegistry
from repro.simnet.clock import SimClock

DOCS = Path(__file__).resolve().parent.parent / "docs"

RESILIENCE_PREFIXES = ("repro_faults_", "repro_retry_", "repro_breaker_")


@pytest.fixture(scope="module")
def doc_text():
    return (DOCS / "RESILIENCE.md").read_text()


@pytest.fixture(scope="module")
def registered_names():
    """Every metric the resilience layer registers when exercised."""
    metrics = MetricsRegistry()
    clock = SimClock()
    plan = FaultPlan.standard_storm(seed=1)
    FaultInjector(plan, clock=clock, metrics=metrics)
    breaker = CircuitBreaker(
        name="doc", failure_threshold=1, now_fn=clock.now, metrics=metrics
    )
    breaker.record_failure()
    breaker.allow()
    state = {"calls": 0}

    def flaky():
        state["calls"] += 1
        if state["calls"] < 2:
            raise FaultInjectedError("doc")
        return True

    retry_call(
        flaky,
        BackoffPolicy(jitter_fraction=0.0),
        metrics=metrics,
        op="doc",
    )
    return {
        name
        for name in metrics.names()
        if name.startswith(RESILIENCE_PREFIXES)
    }


class TestFailurePointParity:
    def documented_points(self, doc_text):
        names = set()
        for line in doc_text.splitlines():
            match = re.match(r"\| `([a-z]+\.[a-z_]+)` \|", line)
            if match:
                names.add(match.group(1))
        return names

    def test_every_point_is_documented(self, doc_text):
        missing = set(FAILURE_POINTS) - self.documented_points(doc_text)
        assert not missing, (
            f"failure points wired in code but absent from "
            f"docs/RESILIENCE.md: {sorted(missing)}"
        )

    def test_every_documented_point_exists(self, doc_text):
        stale = self.documented_points(doc_text) - set(FAILURE_POINTS)
        assert stale <= set(), (
            f"failure points documented in docs/RESILIENCE.md but not in "
            f"repro.faults.points.FAILURE_POINTS: {sorted(stale)}"
        )

    def test_catalogue_is_complete(self):
        # The five original layers plus the durable-worker kill point.
        assert set(FAILURE_POINTS) == {
            "crawler.fetch",
            "durable.worker",
            "simnet.request",
            "stream.subscriber",
            "store.commit",
            "web.request",
        }


class TestMetricCatalogueParity:
    def documented_metrics(self, doc_text):
        names = set()
        for line in doc_text.splitlines():
            match = re.match(r"\| `(repro_[a-z0-9_]+)`", line)
            if match:
                names.add(match.group(1))
        return names

    def test_every_registered_metric_is_documented(
        self, doc_text, registered_names
    ):
        missing = registered_names - self.documented_metrics(doc_text)
        assert not missing, (
            f"resilience metrics registered but absent from "
            f"docs/RESILIENCE.md: {sorted(missing)}"
        )

    def test_every_documented_metric_is_registered(
        self, doc_text, registered_names
    ):
        stale = self.documented_metrics(doc_text) - registered_names
        assert not stale, (
            f"metrics documented in docs/RESILIENCE.md but never "
            f"registered by the resilience layer: {sorted(stale)}"
        )

    def test_all_three_families_covered(self, registered_names):
        for prefix in RESILIENCE_PREFIXES:
            assert any(
                name.startswith(prefix) for name in registered_names
            ), prefix


class TestNoLeakIntoObservabilityCatalogue:
    def test_plain_metrics_workload_registers_no_storm_metrics(self):
        """The OBSERVABILITY.md parity fixture must stay storm-free."""
        from repro.cli import run_metrics_workload

        registry, _, _ = run_metrics_workload(scale=0.0002, seed=5)
        leaked = {
            name
            for name in registry.names()
            if name.startswith(RESILIENCE_PREFIXES)
        }
        assert not leaked, (
            f"resilience metrics leaked into the plain metrics workload "
            f"(this breaks the OBSERVABILITY.md catalogue): {sorted(leaked)}"
        )
