"""Tests for repeated crawling and snapshot diffing."""

import pytest

from repro.crawler.snapshots import SnapshotStore, diff_snapshots
from repro.errors import CrawlError
from repro.geo.coordinates import GeoPoint
from repro.lbsn.service import LbsnService
from repro.lbsn.webserver import LbsnWebServer
from repro.simnet.clock import SECONDS_PER_DAY
from repro.simnet.http import HttpTransport, Router
from repro.simnet.network import Network

ABQ = GeoPoint(35.0844, -106.6504)


@pytest.fixture
def live_site():
    service = LbsnService()
    users = [service.register_user(f"U{index}") for index in range(4)]
    venues = [
        service.create_venue(f"V{index}", ABQ) for index in range(3)
    ]
    router = Router()
    LbsnWebServer(service).install_routes(router)
    network = Network(seed=2)
    transport = HttpTransport(router, network, clock=service.clock)
    store = SnapshotStore(
        transport, [network.create_egress()], service.clock
    )
    return service, users, venues, store


class TestSnapshotStore:
    def test_snapshot_records_time_and_data(self, live_site):
        service, users, venues, store = live_site
        service.clock.advance(100.0)
        snapshot = store.take_snapshot()
        assert snapshot.taken_at == 100.0
        assert snapshot.database.user_count() == 4
        assert store.latest() is snapshot

    def test_requires_machines(self, live_site):
        service, users, venues, store = live_site
        with pytest.raises(CrawlError):
            SnapshotStore(store.transport, [], service.clock)


class TestDiffing:
    def test_new_visitor_becomes_observation(self, live_site):
        service, users, venues, store = live_site
        store.take_snapshot()
        service.clock.advance(SECONDS_PER_DAY)
        service.check_in(
            users[0].user_id, venues[1].venue_id, ABQ
        )
        store.take_snapshot()
        (diff,) = store.diffs()
        assert len(diff.observed_checkins) == 1
        observation = diff.observed_checkins[0]
        assert observation.user_id == users[0].user_id
        assert observation.venue_id == venues[1].venue_id
        assert observation.window_s == pytest.approx(SECONDS_PER_DAY)
        assert diff.total_deltas[users[0].user_id] == 1

    def test_unchanged_lists_produce_nothing(self, live_site):
        service, users, venues, store = live_site
        service.check_in(users[0].user_id, venues[0].venue_id, ABQ)
        store.take_snapshot()
        service.clock.advance(SECONDS_PER_DAY)
        store.take_snapshot()
        (diff,) = store.diffs()
        assert diff.observed_checkins == []
        assert diff.total_deltas == {}
        assert diff.active_users == set()

    def test_rotated_out_user_still_counted_via_totals(self, live_site):
        """A venue list only holds 10: users pushed out between crawls
        are invisible in lists but still show in the profile total."""
        service, users, venues, store = live_site
        hot = venues[0]
        service.check_in(users[0].user_id, hot.venue_id, ABQ)
        store.take_snapshot()
        service.clock.advance(SECONDS_PER_DAY)
        # Eleven fresh accounts wash user 0 out of the recent list.
        for index in range(11):
            extra = service.register_user(f"Wash {index}")
            service.check_in(
                extra.user_id,
                hot.venue_id,
                ABQ,
                timestamp=service.clock.now() + index * 4_000.0,
            )
        # ...and user 0 checks in at another venue meanwhile.
        service.check_in(
            users[0].user_id,
            venues[2].venue_id,
            ABQ,
            timestamp=service.clock.now() + 50_000.0,
        )
        store.take_snapshot()
        (diff,) = store.diffs()
        assert users[0].user_id in diff.active_users
        assert diff.total_deltas[users[0].user_id] == 1

    def test_wrong_order_rejected(self, live_site):
        service, users, venues, store = live_site
        first = store.take_snapshot()
        service.clock.advance(10.0)
        second = store.take_snapshot()
        with pytest.raises(CrawlError):
            diff_snapshots(second, first)

    def test_multi_day_cadence(self, live_site):
        service, users, venues, store = live_site
        store.take_snapshot()
        for day in range(3):
            service.clock.advance(SECONDS_PER_DAY)
            service.check_in(
                users[day].user_id,
                venues[day % 3].venue_id,
                ABQ,
            )
            store.take_snapshot()
        diffs = store.diffs()
        assert len(diffs) == 3
        observed_users = [
            diff.observed_checkins[0].user_id for diff in diffs
        ]
        assert observed_users == [u.user_id for u in users[:3]]


class TestReorderDetection:
    def test_revisit_detected_via_list_reordering(self, live_site):
        """A user already on a list who overtakes a previously-ahead
        visitor must register as a fresh observation."""
        service, users, venues, store = live_site
        hot = venues[0]
        service.check_in(users[0].user_id, hot.venue_id, ABQ, timestamp=0.0)
        service.check_in(
            users[1].user_id, hot.venue_id, ABQ, timestamp=3_600.0
        )
        service.clock.advance(7_200.0)
        store.take_snapshot()  # list: [u1, u0]
        service.clock.advance(SECONDS_PER_DAY)
        service.check_in(
            users[0].user_id, hot.venue_id, ABQ
        )  # list becomes [u0, u1]
        store.take_snapshot()
        (diff,) = store.diffs()
        observed = {obs.user_id for obs in diff.observed_checkins}
        assert users[0].user_id in observed
        assert users[1].user_id not in observed

    def test_head_stay_revisit_is_invisible(self, live_site):
        """The documented limitation: the sole head visitor re-checking
        in leaves no public trace between crawls (except the total)."""
        service, users, venues, store = live_site
        hot = venues[0]
        service.check_in(users[0].user_id, hot.venue_id, ABQ, timestamp=0.0)
        service.clock.advance(7_200.0)
        store.take_snapshot()
        service.clock.advance(SECONDS_PER_DAY)
        service.check_in(users[0].user_id, hot.venue_id, ABQ)
        store.take_snapshot()
        (diff,) = store.diffs()
        assert diff.observed_checkins == []
        assert diff.total_deltas[users[0].user_id] == 1
