"""Tests for detector quality evaluation."""

import pytest

from repro.analysis.detection import CheaterDetector, DetectorConfig, SuspicionReport
from repro.analysis.evaluation import (
    DetectionQuality,
    best_f1,
    format_sweep_table,
    quality_at_threshold,
    score_population,
    threshold_sweep,
)
from repro.errors import ReproError


def report(user_id, score):
    # combined_score is (a+r+p)/3; set all three factors to `score`.
    return SuspicionReport(
        user_id=user_id,
        total_checkins=100,
        activity_score=score,
        reward_score=score,
        pattern_score=score,
    )


class TestConfusionMatrix:
    def test_perfect_separation(self):
        reports = [report(1, 0.9), report(2, 0.1)]
        quality = quality_at_threshold(reports, {1}, threshold=0.5)
        assert quality.true_positives == 1
        assert quality.true_negatives == 1
        assert quality.false_positives == 0
        assert quality.false_negatives == 0
        assert quality.precision == 1.0
        assert quality.recall == 1.0
        assert quality.f1 == 1.0

    def test_missed_cheater(self):
        reports = [report(1, 0.2)]
        quality = quality_at_threshold(reports, {1}, threshold=0.5)
        assert quality.false_negatives == 1
        assert quality.recall == 0.0

    def test_false_alarm(self):
        reports = [report(2, 0.9)]
        quality = quality_at_threshold(reports, set(), threshold=0.5)
        assert quality.false_positives == 1
        assert quality.false_positive_rate == 1.0

    def test_empty_denominators(self):
        # Degenerate empty matrix: vacuous precision/recall of 1.0.
        quality = DetectionQuality(0.5, 0, 0, 0, 0)
        assert quality.precision == 1.0
        assert quality.recall == 1.0
        assert quality.f1 == 1.0
        assert quality.false_positive_rate == 0.0


class TestSweep:
    def test_recall_monotone_nonincreasing(self):
        reports = [report(i, i / 10.0) for i in range(1, 10)]
        sweep = threshold_sweep(reports, {7, 8, 9})
        recalls = [q.recall for q in sweep]
        assert recalls == sorted(recalls, reverse=True)

    def test_best_f1_selects_maximum(self):
        reports = [report(1, 0.9), report(2, 0.85), report(3, 0.2)]
        sweep = threshold_sweep(reports, {1, 2})
        best = best_f1(sweep)
        assert best.f1 == max(q.f1 for q in sweep)

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            threshold_sweep([], set())
        with pytest.raises(ReproError):
            best_f1([])

    def test_format_table(self):
        reports = [report(1, 0.9)]
        rows = format_sweep_table(threshold_sweep(reports, {1}))
        assert rows[0].startswith("threshold")
        assert len(rows) == 9


class TestOnWorld:
    def test_detector_quality_on_planted_cheaters(self, world, crawl_db):
        detector = CheaterDetector(
            crawl_db, DetectorConfig(min_total_checkins=150)
        )
        reports = score_population(detector)
        cheaters = {s.user_id for s in world.roster.caught_cheaters}
        cheaters.add(world.roster.mega_cheater.user_id)
        scored_ids = {r.user_id for r in reports}
        assert cheaters <= scored_ids

        sweep = threshold_sweep(reports, cheaters)
        best = best_f1(sweep)
        # The planted cheaters are separable well above chance.
        assert best.recall >= 0.5
        assert best.precision >= 0.5
        assert best.false_positive_rate < 0.1
