"""Property tests for the SLO window math (hypothesis).

Two invariants the alerting stack leans on:

1. **The budget never goes negative** — ``budget_remaining`` is clamped
   to [0, 1] for *any* good/total/target combination, including good >
   total (racy cross-family reads) and targets arbitrarily close to 1.
2. **The alert decision equals a brute-force recomputation** — for a
   generated traffic history, the state the engine reports after its
   final evaluation matches an independently-written recomputation of
   every window's burn over ``engine.points()``.  The re-derivation
   below deliberately does NOT call :func:`repro.obs.slo.burn_rate` —
   it reimplements the window rule from the definition, so a bug in the
   production math cannot hide in the oracle.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    AvailabilityObjective,
    BurnRatePolicy,
    SloEngine,
    budget_remaining,
)

POLICY = BurnRatePolicy()

amounts = st.floats(
    min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
)
targets = st.floats(
    min_value=1e-6,
    max_value=1.0 - 1e-6,
    allow_nan=False,
    allow_infinity=False,
)

#: One generated step of traffic: (seconds since previous step, good
#: increment, bad increment).  Gaps up to 2 h let histories straddle —
#: and age out of — every policy window (5 m / 1 h / 6 h).
steps = st.lists(
    st.tuples(
        st.floats(min_value=0.1, max_value=7200.0, allow_nan=False),
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=1000),
    ),
    min_size=1,
    max_size=30,
)


class TestBudgetClamp:
    @given(good=amounts, total=amounts, target=targets)
    def test_budget_remaining_always_in_unit_interval(
        self, good, total, target
    ):
        value = budget_remaining(good, total, target)
        assert 0.0 <= value <= 1.0

    @given(total=amounts, target=targets)
    def test_all_bad_traffic_floors_at_zero(self, total, target):
        value = budget_remaining(0.0, total, target)
        if total > 0:
            assert value == 0.0
        else:
            assert value == 1.0

    @given(good=amounts, target=targets)
    def test_clean_traffic_keeps_full_budget(self, good, target):
        assert budget_remaining(good, good, target) == 1.0


def _brute_force_state(points, now, target):
    """Re-derive the alert state from the window rule's definition.

    Independent of the module under test: windows are membership-filtered
    and differenced inline, then the fast/slow pairing applied exactly as
    the docs state it.
    """

    def window_burn(window_s):
        inside = [p for p in points if p[0] >= now - window_s]
        if len(inside) < 2:
            return 0.0
        first, last = inside[0], inside[-1]
        d_total = last[2] - first[2]
        d_good = last[1] - first[1]
        if d_total <= 0:
            return 0.0
        bad_fraction = (d_total - d_good) / d_total
        bad_fraction = min(1.0, max(0.0, bad_fraction))
        return bad_fraction / (1.0 - target)

    fast = (
        window_burn(POLICY.fast_short_s) > POLICY.fast_threshold
        and window_burn(POLICY.fast_long_s) > POLICY.fast_threshold
    )
    slow = (
        window_burn(POLICY.slow_short_s) > POLICY.slow_threshold
        and window_burn(POLICY.slow_long_s) > POLICY.slow_threshold
    )
    return "fast" if fast else ("slow" if slow else "ok")


class TestAlertOracle:
    @settings(max_examples=60, deadline=None)
    @given(history=steps, target=targets)
    def test_engine_state_matches_brute_force(self, history, target):
        registry = MetricsRegistry()
        family = registry.counter("traffic_total", "traffic", ("outcome",))
        objective = AvailabilityObjective(
            "oracle",
            family="traffic_total",
            good_labels=(("ok",),),
            target=target,
        )
        engine = SloEngine(registry, [objective], policy=POLICY)

        now = 0.0
        report = None
        for gap, good_inc, bad_inc in history:
            now += gap
            if good_inc:
                family.labels("ok").inc(good_inc)
            if bad_inc:
                family.labels("error").inc(bad_inc)
            report = engine.evaluate(now=now)

        expected = _brute_force_state(
            engine.points("oracle"), now, target
        )
        assert report.status("oracle").state == expected
        assert engine.states()["oracle"] == expected

    @settings(max_examples=40, deadline=None)
    @given(history=steps, target=targets)
    def test_budget_column_never_negative_along_history(
        self, history, target
    ):
        registry = MetricsRegistry()
        family = registry.counter("traffic_total", "traffic", ("outcome",))
        objective = AvailabilityObjective(
            "oracle",
            family="traffic_total",
            good_labels=(("ok",),),
            target=target,
        )
        engine = SloEngine(registry, [objective])
        now = 0.0
        for gap, good_inc, bad_inc in history:
            now += gap
            if good_inc:
                family.labels("ok").inc(good_inc)
            if bad_inc:
                family.labels("error").inc(bad_inc)
            status = engine.evaluate(now=now).status("oracle")
            assert 0.0 <= status.budget_remaining <= 1.0
            for rate in status.burn_rates.values():
                assert rate >= 0.0
