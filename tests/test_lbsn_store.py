"""Unit tests for the datastore."""

import threading

import pytest

from repro.errors import ServiceError
from repro.geo.coordinates import GeoPoint
from repro.geo.distance import destination_point
from repro.lbsn.models import CheckIn, User, Venue
from repro.lbsn.store import DataStore
from repro.obs.metrics import MetricsRegistry

ABQ = GeoPoint(35.0844, -106.6504)


def make_user(user_id, username=None):
    return User(user_id=user_id, display_name=f"U{user_id}", username=username)


def make_venue(venue_id, location=ABQ):
    return Venue(venue_id=venue_id, name=f"V{venue_id}", location=location)


def make_checkin(checkin_id, user_id=1, venue_id=1, timestamp=0.0):
    return CheckIn(
        checkin_id=checkin_id,
        user_id=user_id,
        venue_id=venue_id,
        timestamp=timestamp,
        reported_location=ABQ,
    )


class TestUsers:
    def test_add_and_get(self):
        store = DataStore()
        user = store.add_user(make_user(1, username="a"))
        assert store.get_user(1) is user
        assert store.get_user_by_username("a") is user
        assert store.user_count() == 1

    def test_duplicate_id_rejected(self):
        store = DataStore()
        store.add_user(make_user(1))
        with pytest.raises(ServiceError):
            store.add_user(make_user(1))

    def test_duplicate_username_rejected(self):
        store = DataStore()
        store.add_user(make_user(1, username="a"))
        with pytest.raises(ServiceError):
            store.add_user(make_user(2, username="a"))

    def test_require_user_raises_when_missing(self):
        with pytest.raises(ServiceError):
            DataStore().require_user(42)

    def test_iter_users_snapshot(self):
        store = DataStore()
        store.add_user(make_user(1))
        store.add_user(make_user(2))
        assert {u.user_id for u in store.iter_users()} == {1, 2}


class TestVenues:
    def test_add_and_spatial_query(self):
        store = DataStore()
        near = store.add_venue(make_venue(1, destination_point(ABQ, 0, 200.0)))
        store.add_venue(make_venue(2, destination_point(ABQ, 0, 9_000.0)))
        hits = store.venues_near(ABQ, 1_000.0)
        assert [v.venue_id for v in hits] == [near.venue_id]

    def test_nearest_venue(self):
        store = DataStore()
        store.add_venue(make_venue(1, destination_point(ABQ, 0, 200.0)))
        store.add_venue(make_venue(2, destination_point(ABQ, 0, 900.0)))
        assert store.nearest_venue(ABQ).venue_id == 1

    def test_nearest_none_when_empty(self):
        assert DataStore().nearest_venue(ABQ) is None

    def test_duplicate_venue_rejected(self):
        store = DataStore()
        store.add_venue(make_venue(1))
        with pytest.raises(ServiceError):
            store.add_venue(make_venue(1))


class TestCheckins:
    def test_indexes_by_user_and_venue(self):
        store = DataStore()
        store.add_checkin(make_checkin(1, user_id=1, venue_id=5))
        store.add_checkin(make_checkin(2, user_id=1, venue_id=6))
        store.add_checkin(make_checkin(3, user_id=2, venue_id=5))
        assert len(store.checkins_of_user(1)) == 2
        assert len(store.checkins_at_venue(5)) == 2
        assert store.checkin_count() == 3

    def test_duplicate_checkin_rejected(self):
        store = DataStore()
        store.add_checkin(make_checkin(1))
        with pytest.raises(ServiceError):
            store.add_checkin(make_checkin(1))

    def test_last_checkin(self):
        store = DataStore()
        assert store.last_checkin_of_user(1) is None
        store.add_checkin(make_checkin(1, timestamp=10.0))
        store.add_checkin(make_checkin(2, timestamp=20.0))
        assert store.last_checkin_of_user(1).checkin_id == 2

    def test_recent_checkins_newest_first(self):
        store = DataStore()
        for index in range(5):
            store.add_checkin(make_checkin(index + 1, timestamp=index * 10.0))
        recent = store.recent_checkins_of_user(1, limit=3)
        assert [c.checkin_id for c in recent] == [5, 4, 3]

    def test_get_checkin(self):
        store = DataStore()
        added = store.add_checkin(make_checkin(1))
        assert store.get_checkin(1) is added
        assert store.get_checkin(99) is None


class TestConcurrency:
    def test_parallel_checkin_inserts(self):
        store = DataStore()
        errors = []

        def worker(base):
            try:
                for index in range(200):
                    store.add_checkin(
                        make_checkin(base + index, user_id=base, venue_id=1)
                    )
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(base,))
            for base in (1_000, 2_000, 3_000)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert store.checkin_count() == 600
        assert len(store.checkins_at_venue(1)) == 600


class TestBatchCommit:
    def test_batch_allocates_contiguous_block_in_input_order(self):
        store = DataStore()
        rows = [make_checkin(i + 1, user_id=1, venue_id=1) for i in range(5)]
        pairs = store.add_checkins_committed(rows)
        assert [c.checkin_id for c, _ in pairs] == [1, 2, 3, 4, 5]
        seqs = [seq for _, seq in pairs]
        assert seqs == list(range(seqs[0], seqs[0] + 5))
        assert store.event_seq_watermark() == seqs[-1] + 1
        assert len(store.checkins_of_user(1)) == 5
        assert len(store.checkins_at_venue(1)) == 5

    def test_empty_batch_is_a_no_op(self):
        store = DataStore()
        assert store.add_checkins_committed([]) == []
        assert store.event_seq_watermark() == 0

    def test_duplicate_inside_batch_aborts_whole_batch(self):
        store = DataStore()
        rows = [
            make_checkin(1, user_id=1),
            make_checkin(2, user_id=1),
            make_checkin(1, user_id=1),
        ]
        with pytest.raises(ServiceError):
            store.add_checkins_committed(rows)
        # All-or-nothing: no row landed, no seq slot was burned.
        assert store.checkin_count() == 0
        assert store.event_seq_watermark() == 0

    def test_duplicate_against_existing_row_aborts_whole_batch(self):
        store = DataStore()
        store.add_checkin(make_checkin(2))
        with pytest.raises(ServiceError):
            store.add_checkins_committed(
                [make_checkin(1), make_checkin(2)]
            )
        assert store.checkin_count() == 1
        assert store.event_seq_watermark() == 0

    def test_batch_metrics_recorded(self):
        registry = MetricsRegistry()
        store = DataStore(metrics=registry)
        store.add_checkins_committed(
            [make_checkin(i + 1) for i in range(4)]
        )
        snapshot = registry.snapshot()
        assert snapshot["repro_store_batch_commits_total"][()] == 1
        assert snapshot["repro_store_batch_checkins_total"][()] == 4


class TestShardingSeamMethods:
    """The row/index split ``ShardedDataStore`` composes across shards."""

    def test_insert_checkin_rows_skips_venue_index(self):
        store = DataStore()
        store.insert_checkin_rows([make_checkin(1, user_id=3, venue_id=7)])
        assert store.checkin_count() == 1
        assert len(store.checkins_of_user(3)) == 1
        assert store.checkins_at_venue(7) == []

    def test_index_checkins_at_venue_completes_the_commit(self):
        store = DataStore()
        row = make_checkin(1, user_id=3, venue_id=7)
        store.insert_checkin_rows([row])
        store.index_checkins_at_venue([row])
        assert store.checkins_at_venue(7) == [row]

    def test_commit_checkin_rows_returns_block_start(self):
        store = DataStore()
        rows = [make_checkin(i + 1, user_id=1) for i in range(3)]
        start = store.commit_checkin_rows(rows)
        assert start == 0
        assert store.event_seq_watermark() == 3


class TestLockHoldInstrumentation:
    """Regression: attaching metrics mid-commit must not observe garbage.

    The old pattern read ``self._lock_hold`` twice — once to decide
    whether to stamp ``started`` (else ``0.0``) and again to decide
    whether to observe.  An instrument attached between the two reads
    recorded ``perf_counter() - 0.0`` (~machine uptime) into the
    histogram.  The fix binds the instrument once per commit.
    """

    @staticmethod
    def _hold_child(registry):
        return registry.histogram(
            "repro_store_lock_hold_seconds",
            "Store-lock hold time across composite sections.",
        ).child()

    def _attach_mid_commit(self, store, registry):
        """Attach the instrument from inside the locked commit section."""
        original = store._insert_checkin_row_locked

        def hooked(checkin):
            store._lock_hold = self._hold_child(registry)
            store._insert_checkin_row_locked = original
            original(checkin)

        store._insert_checkin_row_locked = hooked

    def test_mid_commit_attach_observes_nothing_garbage(self):
        registry = MetricsRegistry()
        store = DataStore()  # no metrics: _lock_hold starts detached
        self._attach_mid_commit(store, registry)
        store.add_checkin_committed(make_checkin(1))
        hold = store._lock_hold
        # The in-flight commit bound None and must skip the observation;
        # the next commit observes one sane (sub-second) hold time.
        assert hold._count == 0
        store.add_checkin_committed(make_checkin(2))
        assert hold._count == 1
        assert hold._sum < 1.0

    def test_mid_commit_attach_during_batch(self):
        registry = MetricsRegistry()
        store = DataStore()
        original = store._validate_new_rows_locked

        def hooked(checkins):
            store._lock_hold = self._hold_child(registry)
            store._validate_new_rows_locked = original
            original(checkins)

        store._validate_new_rows_locked = hooked
        store.add_checkins_committed(
            [make_checkin(1), make_checkin(2)]
        )
        assert store._lock_hold._count == 0
        store.add_checkins_committed([make_checkin(3)])
        assert store._lock_hold._count == 1
        assert store._lock_hold._sum < 1.0

    def test_mid_section_detach_in_locked_is_safe(self):
        registry = MetricsRegistry()
        store = DataStore(metrics=registry)
        hold = store._lock_hold
        count_before = hold._count
        with store.locked():
            store._lock_hold = None  # detached mid-section
        # The section still observes on the instrument it entered with.
        assert hold._count == count_before + 1

    def test_steady_state_hold_times_stay_sane(self):
        registry = MetricsRegistry()
        store = DataStore(metrics=registry)
        for index in range(10):
            store.add_checkin_committed(make_checkin(index + 1))
        hold = store._lock_hold
        assert hold._count == 10
        assert hold._sum < 1.0
