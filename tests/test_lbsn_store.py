"""Unit tests for the datastore."""

import threading

import pytest

from repro.errors import ServiceError
from repro.geo.coordinates import GeoPoint
from repro.geo.distance import destination_point
from repro.lbsn.models import CheckIn, User, Venue
from repro.lbsn.store import DataStore

ABQ = GeoPoint(35.0844, -106.6504)


def make_user(user_id, username=None):
    return User(user_id=user_id, display_name=f"U{user_id}", username=username)


def make_venue(venue_id, location=ABQ):
    return Venue(venue_id=venue_id, name=f"V{venue_id}", location=location)


def make_checkin(checkin_id, user_id=1, venue_id=1, timestamp=0.0):
    return CheckIn(
        checkin_id=checkin_id,
        user_id=user_id,
        venue_id=venue_id,
        timestamp=timestamp,
        reported_location=ABQ,
    )


class TestUsers:
    def test_add_and_get(self):
        store = DataStore()
        user = store.add_user(make_user(1, username="a"))
        assert store.get_user(1) is user
        assert store.get_user_by_username("a") is user
        assert store.user_count() == 1

    def test_duplicate_id_rejected(self):
        store = DataStore()
        store.add_user(make_user(1))
        with pytest.raises(ServiceError):
            store.add_user(make_user(1))

    def test_duplicate_username_rejected(self):
        store = DataStore()
        store.add_user(make_user(1, username="a"))
        with pytest.raises(ServiceError):
            store.add_user(make_user(2, username="a"))

    def test_require_user_raises_when_missing(self):
        with pytest.raises(ServiceError):
            DataStore().require_user(42)

    def test_iter_users_snapshot(self):
        store = DataStore()
        store.add_user(make_user(1))
        store.add_user(make_user(2))
        assert {u.user_id for u in store.iter_users()} == {1, 2}


class TestVenues:
    def test_add_and_spatial_query(self):
        store = DataStore()
        near = store.add_venue(make_venue(1, destination_point(ABQ, 0, 200.0)))
        store.add_venue(make_venue(2, destination_point(ABQ, 0, 9_000.0)))
        hits = store.venues_near(ABQ, 1_000.0)
        assert [v.venue_id for v in hits] == [near.venue_id]

    def test_nearest_venue(self):
        store = DataStore()
        store.add_venue(make_venue(1, destination_point(ABQ, 0, 200.0)))
        store.add_venue(make_venue(2, destination_point(ABQ, 0, 900.0)))
        assert store.nearest_venue(ABQ).venue_id == 1

    def test_nearest_none_when_empty(self):
        assert DataStore().nearest_venue(ABQ) is None

    def test_duplicate_venue_rejected(self):
        store = DataStore()
        store.add_venue(make_venue(1))
        with pytest.raises(ServiceError):
            store.add_venue(make_venue(1))


class TestCheckins:
    def test_indexes_by_user_and_venue(self):
        store = DataStore()
        store.add_checkin(make_checkin(1, user_id=1, venue_id=5))
        store.add_checkin(make_checkin(2, user_id=1, venue_id=6))
        store.add_checkin(make_checkin(3, user_id=2, venue_id=5))
        assert len(store.checkins_of_user(1)) == 2
        assert len(store.checkins_at_venue(5)) == 2
        assert store.checkin_count() == 3

    def test_duplicate_checkin_rejected(self):
        store = DataStore()
        store.add_checkin(make_checkin(1))
        with pytest.raises(ServiceError):
            store.add_checkin(make_checkin(1))

    def test_last_checkin(self):
        store = DataStore()
        assert store.last_checkin_of_user(1) is None
        store.add_checkin(make_checkin(1, timestamp=10.0))
        store.add_checkin(make_checkin(2, timestamp=20.0))
        assert store.last_checkin_of_user(1).checkin_id == 2

    def test_recent_checkins_newest_first(self):
        store = DataStore()
        for index in range(5):
            store.add_checkin(make_checkin(index + 1, timestamp=index * 10.0))
        recent = store.recent_checkins_of_user(1, limit=3)
        assert [c.checkin_id for c in recent] == [5, 4, 3]

    def test_get_checkin(self):
        store = DataStore()
        added = store.add_checkin(make_checkin(1))
        assert store.get_checkin(1) is added
        assert store.get_checkin(99) is None


class TestConcurrency:
    def test_parallel_checkin_inserts(self):
        store = DataStore()
        errors = []

        def worker(base):
            try:
                for index in range(200):
                    store.add_checkin(
                        make_checkin(base + index, user_id=base, venue_id=1)
                    )
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(base,))
            for base in (1_000, 2_000, 3_000)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert store.checkin_count() == 600
        assert len(store.checkins_at_venue(1)) == 600
