"""Unit tests for the simulation clock."""

import threading

import pytest

from repro.simnet.clock import (
    SECONDS_PER_DAY,
    ClockError,
    SimClock,
    day_index,
)


class TestBasics:
    def test_starts_at_zero(self):
        assert SimClock().now() == 0.0

    def test_custom_start(self):
        assert SimClock(start=100.0).now() == 100.0

    def test_negative_start_rejected(self):
        with pytest.raises(ClockError):
            SimClock(start=-1.0)

    def test_advance(self):
        clock = SimClock()
        assert clock.advance(10.0) == 10.0
        assert clock.now() == 10.0

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(50.0)
        assert clock.now() == 50.0

    def test_advance_negative_rejected(self):
        with pytest.raises(ClockError):
            SimClock().advance(-1.0)

    def test_advance_to_past_rejected(self):
        clock = SimClock(start=100.0)
        with pytest.raises(ClockError):
            clock.advance_to(50.0)

    def test_advance_to_same_time_is_noop(self):
        clock = SimClock(start=100.0)
        clock.advance_to(100.0)
        assert clock.now() == 100.0


class TestConversions:
    def test_minutes_hours_days(self):
        assert SimClock.minutes(2) == 120.0
        assert SimClock.hours(1.5) == 5_400.0
        assert SimClock.days(2) == 172_800.0

    def test_day_index(self):
        assert day_index(0.0) == 0
        assert day_index(SECONDS_PER_DAY - 1) == 0
        assert day_index(SECONDS_PER_DAY) == 1
        assert day_index(10.5 * SECONDS_PER_DAY) == 10

    def test_day_index_rejects_negative(self):
        with pytest.raises(ClockError):
            day_index(-1.0)


class TestScheduledEvents:
    def test_event_fires_on_advance(self):
        clock = SimClock()
        fired = []
        clock.schedule(5.0, lambda: fired.append(clock.now()))
        clock.advance_to(10.0)
        assert fired == [5.0]
        assert clock.now() == 10.0

    def test_events_fire_in_timestamp_order(self):
        clock = SimClock()
        fired = []
        clock.schedule(7.0, lambda: fired.append("b"))
        clock.schedule(3.0, lambda: fired.append("a"))
        clock.advance_to(10.0)
        assert fired == ["a", "b"]

    def test_event_not_fired_before_time(self):
        clock = SimClock()
        fired = []
        clock.schedule(5.0, lambda: fired.append(1))
        clock.advance_to(4.9)
        assert fired == []
        assert clock.pending_events() == 1

    def test_schedule_in_past_rejected(self):
        clock = SimClock(start=10.0)
        with pytest.raises(ClockError):
            clock.schedule(5.0, lambda: None)

    def test_callback_may_schedule_more(self):
        clock = SimClock()
        fired = []

        def first():
            fired.append("first")
            clock.schedule(8.0, lambda: fired.append("second"))

        clock.schedule(4.0, first)
        clock.advance_to(10.0)
        assert fired == ["first", "second"]

    def test_ties_fire_in_schedule_order(self):
        clock = SimClock()
        fired = []
        clock.schedule(5.0, lambda: fired.append("a"))
        clock.schedule(5.0, lambda: fired.append("b"))
        clock.advance_to(5.0)
        assert fired == ["a", "b"]


class TestThreadSafety:
    def test_concurrent_reads_during_advance(self):
        clock = SimClock()
        errors = []

        def reader():
            try:
                for _ in range(1_000):
                    assert clock.now() >= 0.0
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for thread in readers:
            thread.start()
        for _ in range(100):
            clock.advance(1.0)
        for thread in readers:
            thread.join()
        assert not errors
        assert clock.now() == 100.0
