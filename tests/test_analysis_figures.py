"""Tests for the figure-series export API."""

import pytest

from repro.analysis.figures import (
    FigureData,
    all_figures,
    fig_3_4_starbucks,
    fig_3_5_tour,
    fig_4_1_recent_vs_total,
    fig_4_2_badges,
    fig_4_3_user_map,
)
from repro.errors import ReproError


class TestFigureData:
    def test_rows_and_csv(self):
        data = FigureData(
            figure="x",
            title="t",
            columns={"a": [1.0, 2.0], "b": [3.0, 4.5]},
        )
        assert data.rows == 2
        csv = data.to_csv()
        assert csv.splitlines()[0] == "a,b"
        assert csv.splitlines()[1] == "1,3"
        assert csv.splitlines()[2] == "2,4.5"

    def test_ragged_columns_rejected(self):
        with pytest.raises(ReproError):
            FigureData(
                figure="x", title="t", columns={"a": [1.0], "b": [1.0, 2.0]}
            )

    def test_empty(self):
        assert FigureData(figure="x", title="t").rows == 0


class TestCorpusFigures:
    def test_fig_3_4(self, crawl_db):
        data = fig_3_4_starbucks(crawl_db)
        assert data.rows > 10
        assert set(data.columns) == {"longitude", "latitude"}
        # All US/Europe longitudes are west of +20 east.
        assert all(lon < 20.0 for lon in data.columns["longitude"])

    def test_fig_4_1(self, crawl_db):
        data = fig_4_1_recent_vs_total(crawl_db, bucket_width=50)
        assert data.rows >= 3
        assert data.columns["total_checkins"] == sorted(
            data.columns["total_checkins"]
        )

    def test_fig_4_2(self, crawl_db):
        data = fig_4_2_badges(crawl_db, bucket_width=100)
        assert data.rows >= 3
        assert all(b >= 0 for b in data.columns["average_badges"])

    def test_fig_4_3(self, world, crawl_db):
        data = fig_4_3_user_map(
            crawl_db, world.roster.mega_cheater.user_id
        )
        assert data.rows > 10

    def test_all_figures(self, world, crawl_db):
        figures = all_figures(
            crawl_db,
            cheater_user_id=world.roster.mega_cheater.user_id,
            normal_user_id=world.roster.power_users[0].user_id,
        )
        assert len(figures) == 5
        for figure in figures:
            assert figure.to_csv()


class TestTourFigure:
    def test_fig_3_5(self, world):
        from repro.attack.tour import TourPlanner, VenueCatalog
        from repro.geo.regions import city_by_name

        planner = TourPlanner(VenueCatalog.from_service(world.service))
        tour = planner.plan_city_spiral(
            city_by_name("New York, NY").center, steps=20
        )
        data = fig_3_5_tour(tour)
        assert data.rows == len(tour.stops)
        assert set(data.columns) == {
            "intended_longitude",
            "intended_latitude",
            "actual_longitude",
            "actual_latitude",
        }
