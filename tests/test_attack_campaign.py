"""Integration tests for end-to-end cheating campaigns (§3.3-§3.4)."""

import pytest

from repro.attack.campaign import CheatingCampaign, greedy_route, tour_from_targets
from repro.attack.spoofing import build_emulator_attacker
from repro.attack.targeting import TargetVenue
from repro.errors import ReproError
from repro.geo.coordinates import GeoPoint
from repro.geo.distance import destination_point
from repro.lbsn.models import Special
from repro.lbsn.service import LbsnService
from repro.simnet.clock import SECONDS_PER_DAY

ABQ = GeoPoint(35.0844, -106.6504)


def target_from_venue(venue, reason="test"):
    return TargetVenue(
        venue_id=venue.venue_id,
        name=venue.name,
        latitude=venue.location.latitude,
        longitude=venue.location.longitude,
        special=venue.special.description if venue.special else None,
        reason=reason,
    )


class TestGreedyRoute:
    def test_orders_by_nearest_neighbour(self):
        targets = [
            TargetVenue(1, "far", 36.0, -106.65, None, ""),
            TargetVenue(2, "near", 35.09, -106.65, None, ""),
            TargetVenue(3, "mid", 35.5, -106.65, None, ""),
        ]
        route = greedy_route(targets, start=ABQ)
        assert [t.venue_id for t in route] == [2, 3, 1]

    def test_without_start_begins_at_first(self):
        targets = [
            TargetVenue(1, "a", 35.0, -106.0, None, ""),
            TargetVenue(2, "b", 36.0, -106.0, None, ""),
        ]
        route = greedy_route(targets)
        assert route[0].venue_id == 1

    def test_empty(self):
        assert greedy_route([]) == []

    def test_tour_from_targets_preserves_order(self):
        targets = [
            TargetVenue(5, "a", 35.0, -106.0, None, ""),
            TargetVenue(9, "b", 36.0, -106.0, None, ""),
        ]
        assert tour_from_targets(targets).venue_ids == [5, 9]


@pytest.fixture
def harvest_world():
    service = LbsnService()
    venues = []
    for index in range(8):
        venues.append(
            service.create_venue(
                f"Special Cafe {index}",
                destination_point(ABQ, index * 45.0, 1_000.0 + index * 700.0),
                special=Special(f"Mayor special {index}"),
            )
        )
    user, emulator, channel = build_emulator_attacker(service)
    return service, venues, user, channel


class TestHarvest:
    def test_harvest_wins_every_unclaimed_mayorship(self, harvest_world):
        service, venues, user, channel = harvest_world
        campaign = CheatingCampaign(service.clock, channel)
        targets = [target_from_venue(v) for v in venues]
        report = campaign.harvest(targets, start=ABQ)
        assert report.attempts == len(venues)
        assert report.detected == 0
        assert report.mayorships_won == len(venues)
        assert len(report.specials) == len(venues)
        assert service.mayorship_count(user.user_id) == len(venues)

    def test_harvest_requires_targets(self, harvest_world):
        service, venues, user, channel = harvest_world
        campaign = CheatingCampaign(service.clock, channel)
        with pytest.raises(ReproError):
            campaign.harvest([])


class TestMayorshipDenial:
    def test_denial_strips_victim_crowns(self):
        service = LbsnService()
        victim = service.register_user("Victim")
        venues = [
            service.create_venue(
                f"Venue {index}",
                destination_point(ABQ, index * 60.0, 1_200.0 * (index + 1)),
            )
            for index in range(3)
        ]
        # The victim holds all three mayorships via one check-in each.
        for index, venue in enumerate(venues):
            result = service.check_in(
                victim.user_id,
                venue.venue_id,
                venue.location,
                timestamp=index * 7_200.0,
            )
            assert result.became_mayor
        assert service.mayorship_count(victim.user_id) == 3

        user, emulator, channel = build_emulator_attacker(service)
        campaign = CheatingCampaign(service.clock, channel)
        targets = [target_from_venue(v, "denial") for v in venues]
        report = campaign.mayorship_denial(targets, days=3)
        assert report.detected == 0
        assert service.mayorship_count(victim.user_id) == 0
        assert service.mayorship_count(user.user_id) == 3
        assert report.mayorships_won == 3

    def test_denial_validates_inputs(self):
        service = LbsnService()
        user, emulator, channel = build_emulator_attacker(service)
        campaign = CheatingCampaign(service.clock, channel)
        with pytest.raises(ReproError):
            campaign.mayorship_denial([], days=3)
        with pytest.raises(ReproError):
            campaign.mayorship_denial(
                [TargetVenue(1, "x", 35.0, -106.0, None, "")], days=0
            )


class TestMaintenance:
    def test_incumbent_with_daily_checkins_is_unbeatable(self):
        # §2.1's observation, exercised through the campaign API.
        service = LbsnService()
        venue = service.create_venue("Contested", ABQ)
        user, emulator, channel = build_emulator_attacker(service)
        campaign = CheatingCampaign(service.clock, channel)
        target = target_from_venue(venue, "maintain")
        campaign.maintain_mayorships([target], days=5)
        assert venue.mayor_id == user.user_id

        # A rival with a couple of check-ins cannot take the crown.
        rival = service.register_user("Rival")
        for day in range(2):
            service.check_in(
                rival.user_id,
                venue.venue_id,
                ABQ,
                timestamp=service.clock.now() + day * SECONDS_PER_DAY + 60.0,
            )
        assert venue.mayor_id == user.user_id
