"""The write-ahead log: codec round-trips and corruption recovery.

The property suite (hypothesis) pins that ``decode(encode(e)) == e`` for
every event shape the bus can carry, and that the encoding is
byte-stable.  The unit suite covers the damage matrix docs/DURABILITY.md
specifies: truncated tails (tolerated at the end, fatal mid-log),
flipped bits (checksum reject), and empty/short segments.
"""

import os
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.durable.wal import (
    MAX_RECORD_BYTES,
    SEGMENT_MAGIC,
    WalCorruptionError,
    WalError,
    WalReader,
    WalWriter,
    decode_event,
    encode_event,
    encode_record,
)
from repro.geo.coordinates import GeoPoint
from repro.stream.events import (
    CheckInAccepted,
    CheckInFlagged,
    CheckInRejected,
    MayorChanged,
    UserRegistered,
    VenueCreated,
)

latitudes = st.floats(min_value=-90.0, max_value=90.0, allow_nan=False)
longitudes = st.floats(min_value=-180.0, max_value=180.0, allow_nan=False)
seqs = st.integers(min_value=-1, max_value=2**53)
timestamps = st.floats(
    min_value=0.0, max_value=1e12, allow_nan=False, allow_infinity=False
)
ids = st.integers(min_value=0, max_value=2**31)
traces = st.one_of(st.none(), st.text(max_size=32))
points = st.builds(GeoPoint, latitudes, longitudes)


@st.composite
def events(draw):
    kind = draw(st.sampled_from(["user", "venue", "accept", "flag",
                                 "reject", "mayor"]))
    seq, ts = draw(seqs), draw(timestamps)
    if kind == "user":
        return UserRegistered(
            seq, ts, user_id=draw(ids),
            username=draw(st.one_of(st.none(), st.text(max_size=20))),
            trace_id=draw(traces),
        )
    if kind == "venue":
        return VenueCreated(
            seq, ts, venue_id=draw(ids),
            location=draw(st.one_of(st.none(), points)),
            trace_id=draw(traces),
        )
    if kind == "mayor":
        return MayorChanged(
            seq, ts, venue_id=draw(ids),
            new_mayor_id=draw(st.one_of(st.none(), ids)),
            previous_mayor_id=draw(st.one_of(st.none(), ids)),
            trace_id=draw(traces),
        )
    common = dict(
        user_id=draw(ids), venue_id=draw(ids),
        venue_location=draw(points), reported_location=draw(points),
        checkin_id=draw(ids), trace_id=draw(traces),
    )
    if kind == "accept":
        return CheckInAccepted(
            seq, ts, points=draw(st.integers(0, 100)),
            new_badge_count=draw(st.integers(0, 10)),
            became_mayor=draw(st.booleans()),
            first_visit=draw(st.booleans()),
            **common,
        )
    cls = CheckInFlagged if kind == "flag" else CheckInRejected
    return cls(
        seq, ts, rule=draw(st.one_of(st.none(), st.text(max_size=20))),
        **common,
    )


class TestCodecProperties:
    @settings(max_examples=200, deadline=None)
    @given(event=events())
    def test_round_trip(self, event):
        decoded = decode_event(encode_event(event))
        assert type(decoded) is type(event)
        assert decoded == event

    @settings(max_examples=50, deadline=None)
    @given(event=events())
    def test_encoding_is_byte_stable(self, event):
        assert encode_event(event) == encode_event(event)

    @settings(max_examples=50, deadline=None)
    @given(event=events())
    def test_framed_record_round_trips(self, event):
        record = encode_record(event)
        length, crc = struct.unpack_from("<II", record)
        assert length == len(record) - 8
        assert decode_event(record[8:]) == event


class TestCodecErrors:
    def test_unknown_event_type_rejected(self):
        class Rogue:
            pass

        with pytest.raises(WalError):
            encode_event(Rogue())

    def test_unknown_tag_is_corruption(self):
        with pytest.raises(WalCorruptionError):
            decode_event(b'{"t":"nope","seq":1,"timestamp":0.0}')

    def test_non_json_payload_is_corruption(self):
        with pytest.raises(WalCorruptionError):
            decode_event(b"\xff\xfe not json")


@pytest.fixture
def sample_events():
    return [
        CheckInAccepted(
            seq, float(seq), user_id=seq % 5, venue_id=seq % 3,
            venue_location=GeoPoint(40.0, -74.0),
            reported_location=GeoPoint(40.0, -74.0),
            checkin_id=seq, points=3,
        )
        for seq in range(40)
    ]


class TestWriterReader:
    def test_append_and_scan(self, tmp_path, sample_events):
        with WalWriter(tmp_path) as writer:
            for event in sample_events:
                writer.append(event)
        reader = WalReader(tmp_path)
        assert reader.read_all() == sample_events
        assert not reader.torn_tail

    def test_after_seq_filters_the_prefix(self, tmp_path, sample_events):
        with WalWriter(tmp_path) as writer:
            for event in sample_events:
                writer.append(event)
        got = WalReader(tmp_path).read_all(after_seq=29)
        assert [event.seq for event in got] == list(range(30, 40))

    def test_segment_rotation(self, tmp_path, sample_events):
        with WalWriter(tmp_path, segment_max_bytes=600) as writer:
            for event in sample_events:
                writer.append(event)
        reader = WalReader(tmp_path)
        assert reader.read_all() == sample_events
        assert reader.segment_count() > 1
        assert writer.segments_opened == reader.segment_count()

    def test_new_writer_never_appends_to_old_segments(
        self, tmp_path, sample_events
    ):
        with WalWriter(tmp_path) as writer:
            for event in sample_events[:20]:
                writer.append(event)
        before = sorted(os.listdir(tmp_path))
        with WalWriter(tmp_path) as writer:
            for event in sample_events[20:]:
                writer.append(event)
        after = sorted(os.listdir(tmp_path))
        assert set(before) < set(after)  # old files untouched, new added
        assert WalReader(tmp_path).read_all() == sample_events

    def test_fsync_batching_knob(self, tmp_path, sample_events):
        eager = WalWriter(tmp_path / "eager", fsync_every=1)
        lazy = WalWriter(tmp_path / "lazy", fsync_every=0)
        for event in sample_events:
            eager.append(event)
            lazy.append(event)
        eager.close()
        lazy.close()
        assert eager.fsyncs == len(sample_events)
        assert lazy.fsyncs == 0

    def test_append_after_close_raises(self, tmp_path, sample_events):
        writer = WalWriter(tmp_path)
        writer.close()
        with pytest.raises(WalError):
            writer.append(sample_events[0])

    def test_bad_knobs_rejected(self, tmp_path):
        with pytest.raises(WalError):
            WalWriter(tmp_path, segment_max_bytes=4)
        with pytest.raises(WalError):
            WalWriter(tmp_path, fsync_every=-1)


class TestCorruptionRecovery:
    """The damage matrix: where the damage sits decides the outcome."""

    def _write(self, directory, events, **kwargs):
        with WalWriter(directory, **kwargs) as writer:
            for event in events:
                writer.append(event)

    def _last_segment(self, directory):
        return sorted(directory.glob("*.wal"))[-1]

    def test_truncated_tail_is_tolerated(self, tmp_path, sample_events):
        self._write(tmp_path, sample_events)
        path = self._last_segment(tmp_path)
        path.write_bytes(path.read_bytes()[:-5])
        reader = WalReader(tmp_path)
        got = reader.read_all()
        assert got == sample_events[:-1]
        assert reader.torn_tail
        assert "torn" in reader.tail_error

    def test_torn_header_is_tolerated(self, tmp_path, sample_events):
        self._write(tmp_path, sample_events)
        path = self._last_segment(tmp_path)
        with open(path, "ab") as handle:
            handle.write(b"\x03")  # 1 byte of a next record's header
        reader = WalReader(tmp_path)
        assert reader.read_all() == sample_events
        assert reader.torn_tail
        assert "header" in reader.tail_error

    def test_strict_mode_promotes_tail_damage(self, tmp_path, sample_events):
        self._write(tmp_path, sample_events)
        path = self._last_segment(tmp_path)
        path.write_bytes(path.read_bytes()[:-5])
        with pytest.raises(WalCorruptionError):
            WalReader(tmp_path).read_all(strict=True)

    def test_flipped_bit_rejected_by_checksum(self, tmp_path, sample_events):
        self._write(tmp_path, sample_events)
        path = self._last_segment(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[-10] ^= 0x01  # flip one payload bit in the final record
        path.write_bytes(bytes(raw))
        reader = WalReader(tmp_path)
        got = reader.read_all()
        assert got == sample_events[:-1]
        assert reader.torn_tail
        assert "checksum" in reader.tail_error

    def test_mid_log_damage_always_raises(self, tmp_path, sample_events):
        self._write(tmp_path, sample_events, segment_max_bytes=600)
        first = sorted(tmp_path.glob("*.wal"))[0]
        raw = bytearray(first.read_bytes())
        raw[len(SEGMENT_MAGIC) + 10] ^= 0xFF
        first.write_bytes(bytes(raw))
        with pytest.raises(WalCorruptionError, match="mid-log"):
            WalReader(tmp_path).read_all()

    def test_empty_segment_is_tolerated(self, tmp_path, sample_events):
        self._write(tmp_path, sample_events)
        # A writer that died between open() and writing the magic.
        (tmp_path / "00000001.wal").write_bytes(b"")
        assert WalReader(tmp_path).read_all() == sample_events

    def test_short_magic_in_final_segment_is_a_torn_tail(
        self, tmp_path, sample_events
    ):
        self._write(tmp_path, sample_events)
        (tmp_path / "00000001.wal").write_bytes(SEGMENT_MAGIC[:4])
        reader = WalReader(tmp_path)
        assert reader.read_all() == sample_events
        assert reader.torn_tail

    def test_wrong_magic_always_raises(self, tmp_path, sample_events):
        self._write(tmp_path, sample_events)
        path = self._last_segment(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[0] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(WalCorruptionError, match="magic"):
            WalReader(tmp_path).read_all()

    def test_implausible_length_is_a_torn_tail(self, tmp_path, sample_events):
        self._write(tmp_path, sample_events)
        path = self._last_segment(tmp_path)
        with open(path, "ab") as handle:
            handle.write(struct.pack("<II", MAX_RECORD_BYTES + 1, 0))
        reader = WalReader(tmp_path)
        assert reader.read_all() == sample_events
        assert reader.torn_tail
        assert "implausible" in reader.tail_error

    def test_empty_directory_reads_empty(self, tmp_path):
        reader = WalReader(tmp_path / "nothing-here")
        assert reader.read_all() == []
        assert reader.segment_count() == 0
