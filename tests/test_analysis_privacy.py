"""Tests for the §6.2.1 privacy-leakage analysis."""

import pytest

from repro.analysis.privacy import (
    build_timelines,
    find_co_locations,
    infer_home,
    privacy_exposure_report,
)
from repro.crawler.snapshots import SnapshotStore
from repro.errors import ReproError
from repro.geo.coordinates import GeoPoint
from repro.geo.distance import destination_point, haversine_m
from repro.lbsn.service import LbsnService
from repro.lbsn.webserver import LbsnWebServer
from repro.simnet.clock import SECONDS_PER_DAY
from repro.simnet.http import HttpTransport, Router
from repro.simnet.network import Network

LINCOLN = GeoPoint(40.8136, -96.7026)
DENVER = GeoPoint(39.7392, -104.9903)


@pytest.fixture
def surveilled():
    """A site crawled daily while two users live their lives."""
    service = LbsnService()
    alice = service.register_user("Alice")
    bob = service.register_user("Bob")
    home_venues = [
        service.create_venue(
            f"Lincoln {index}",
            destination_point(LINCOLN, index * 30.0, 900.0 * (index + 1)),
        )
        for index in range(10)
    ]
    denver_venue = service.create_venue("Denver Stop", DENVER)

    router = Router()
    LbsnWebServer(service).install_routes(router)
    network = Network(seed=4)
    transport = HttpTransport(router, network, clock=service.clock)
    store = SnapshotStore(transport, [network.create_egress()], service.clock)

    store.take_snapshot()
    # Ten days: Alice visits a different Lincoln venue each day; Bob joins
    # her twice; Alice takes a one-day Denver trip on day 6.
    for day in range(10):
        service.clock.advance(SECONDS_PER_DAY)
        now = service.clock.now()
        if day == 6:
            service.check_in(
                alice.user_id, denver_venue.venue_id, DENVER, timestamp=now
            )
        else:
            venue = home_venues[day]
            service.check_in(
                alice.user_id, venue.venue_id, venue.location, timestamp=now
            )
            if day in (2, 5):
                service.check_in(
                    bob.user_id,
                    venue.venue_id,
                    venue.location,
                    timestamp=now + 1_800.0,
                )
        store.take_snapshot()
    return service, alice, bob, store


class TestTimelines:
    def test_alice_timeline_reconstructed(self, surveilled):
        service, alice, bob, store = surveilled
        timelines = build_timelines(
            store.diffs(), store.latest().database
        )
        assert alice.user_id in timelines
        timeline = timelines[alice.user_id]
        # Daily crawls bound each sighting to a one-day window.
        assert timeline.sightings >= 8
        for entry in timeline.entries:
            assert entry.window_end - entry.window_start == pytest.approx(
                SECONDS_PER_DAY
            )

    def test_entries_time_ordered(self, surveilled):
        service, alice, bob, store = surveilled
        timelines = build_timelines(store.diffs(), store.latest().database)
        entries = timelines[alice.user_id].entries
        starts = [entry.window_start for entry in entries]
        assert starts == sorted(starts)

    def test_between_filters_window(self, surveilled):
        service, alice, bob, store = surveilled
        timelines = build_timelines(store.diffs(), store.latest().database)
        timeline = timelines[alice.user_id]
        day3 = timeline.between(2 * SECONDS_PER_DAY, 3 * SECONDS_PER_DAY)
        assert day3
        assert len(day3) < timeline.sightings


class TestHomeInference:
    def test_home_is_lincoln_despite_the_trip(self, surveilled):
        service, alice, bob, store = surveilled
        timelines = build_timelines(store.diffs(), store.latest().database)
        inference = infer_home(timelines[alice.user_id])
        assert inference.home_center is not None
        assert haversine_m(inference.home_center, LINCOLN) < 20_000.0
        assert inference.confidence > 0.7

    def test_empty_timeline(self):
        from repro.analysis.privacy import LocationTimeline

        inference = infer_home(LocationTimeline(user_id=9))
        assert inference.home_center is None
        assert inference.confidence == 0.0


class TestCoLocation:
    def test_repeated_co_appearances_found(self, surveilled):
        service, alice, bob, store = surveilled
        pairs = find_co_locations(store.diffs(), min_occurrences=2)
        key = tuple(sorted((alice.user_id, bob.user_id)))
        assert key in pairs
        assert len(pairs[key]) == 2

    def test_single_coincidence_filtered(self, surveilled):
        service, alice, bob, store = surveilled
        pairs = find_co_locations(store.diffs(), min_occurrences=3)
        key = tuple(sorted((alice.user_id, bob.user_id)))
        assert key not in pairs

    def test_invalid_threshold(self):
        with pytest.raises(ReproError):
            find_co_locations([], min_occurrences=0)


class TestExposureReport:
    def test_summary_counts(self, surveilled):
        service, alice, bob, store = surveilled
        report = privacy_exposure_report(
            store.diffs(), store.latest().database
        )
        assert report.users_with_timelines == 2
        assert report.total_sightings >= 10
        assert report.median_time_bound_s == pytest.approx(SECONDS_PER_DAY)
        assert report.homes_inferred == 2
        assert report.high_confidence_homes >= 1
        assert report.co_located_pairs == 1

    def test_empty_input(self):
        from repro.crawler.database import CrawlDatabase

        report = privacy_exposure_report([], CrawlDatabase())
        assert report.users_with_timelines == 0
        assert report.median_time_bound_s == 0.0
