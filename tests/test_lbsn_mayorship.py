"""Unit tests for the 60-day mayorship rule."""

from repro.geo.coordinates import GeoPoint
from repro.lbsn.mayorship import (
    MAYORSHIP_WINDOW_DAYS,
    checkin_days_by_user,
    decide_mayor,
)
from repro.lbsn.models import CheckIn, CheckInStatus
from repro.simnet.clock import SECONDS_PER_DAY

LOCATION = GeoPoint(40.0, -100.0)
_counter = [0]


def checkin(user_id, day, status=CheckInStatus.VALID, hour=12.0):
    _counter[0] += 1
    return CheckIn(
        checkin_id=_counter[0],
        user_id=user_id,
        venue_id=1,
        timestamp=day * SECONDS_PER_DAY + hour * 3_600.0,
        reported_location=LOCATION,
        status=status,
    )


class TestDayCounting:
    def test_multiple_checkins_one_day_count_once(self):
        # §2.1: "Only the number of days with check-ins ... are counted,
        # without consideration of how many check-ins occurred per day."
        history = [
            checkin(1, 5, hour=9.0),
            checkin(1, 5, hour=12.0),
            checkin(1, 5, hour=18.0),
        ]
        now = 10 * SECONDS_PER_DAY
        assert checkin_days_by_user(history, now) == {1: 1}

    def test_distinct_days_counted(self):
        history = [checkin(1, d) for d in (3, 4, 5)]
        now = 10 * SECONDS_PER_DAY
        assert checkin_days_by_user(history, now) == {1: 3}

    def test_flagged_checkins_do_not_count(self):
        history = [
            checkin(1, 5),
            checkin(1, 6, status=CheckInStatus.FLAGGED),
        ]
        now = 10 * SECONDS_PER_DAY
        assert checkin_days_by_user(history, now) == {1: 1}

    def test_window_excludes_old_checkins(self):
        history = [checkin(1, 0), checkin(1, 100)]
        now = (100 + MAYORSHIP_WINDOW_DAYS + 5) * SECONDS_PER_DAY
        assert checkin_days_by_user(history, now) == {}

    def test_window_boundary_inclusive_inside(self):
        history = [checkin(1, 50)]
        now = (50 + MAYORSHIP_WINDOW_DAYS) * SECONDS_PER_DAY - 3_600.0
        assert checkin_days_by_user(history, now) == {1: 1}


class TestDecideMayor:
    def test_single_checkin_wins_empty_venue(self):
        # §3.4: "only one check-in is enough to get the mayorship" at a
        # venue with no other visitors.
        history = [checkin(1, 5)]
        decision = decide_mayor(history, 6 * SECONDS_PER_DAY, None)
        assert decision.mayor_id == 1
        assert decision.changed

    def test_most_days_wins(self):
        history = [checkin(1, d) for d in (1, 2, 3)] + [
            checkin(2, d) for d in (4, 5)
        ]
        decision = decide_mayor(history, 10 * SECONDS_PER_DAY, None)
        assert decision.mayor_id == 1

    def test_incumbent_retains_on_tie(self):
        # §2.1's vulnerability: a daily-check-in incumbent is unbeatable.
        history = [checkin(1, d) for d in (1, 2)] + [
            checkin(2, d) for d in (3, 4)
        ]
        decision = decide_mayor(history, 10 * SECONDS_PER_DAY, incumbent_id=1)
        assert decision.mayor_id == 1
        assert not decision.changed

    def test_challenger_with_strictly_more_days_takes_over(self):
        history = [checkin(1, 1)] + [checkin(2, d) for d in (2, 3, 4)]
        decision = decide_mayor(history, 10 * SECONDS_PER_DAY, incumbent_id=1)
        assert decision.mayor_id == 2
        assert decision.changed
        assert decision.previous_mayor_id == 1

    def test_no_valid_checkins_no_mayor(self):
        history = [checkin(1, 5, status=CheckInStatus.FLAGGED)]
        decision = decide_mayor(history, 10 * SECONDS_PER_DAY, incumbent_id=None)
        assert decision.mayor_id is None

    def test_mayor_ages_out_of_window(self):
        history = [checkin(1, 0)]
        now = (MAYORSHIP_WINDOW_DAYS + 10) * SECONDS_PER_DAY
        decision = decide_mayor(history, now, incumbent_id=1)
        assert decision.mayor_id is None
        assert decision.changed

    def test_inactive_incumbent_loses_to_active_challenger(self):
        history = [checkin(1, 0)] + [checkin(2, 70)]
        now = 75 * SECONDS_PER_DAY
        decision = decide_mayor(history, now, incumbent_id=1)
        assert decision.mayor_id == 2

    def test_tie_between_new_users_goes_to_lower_id(self):
        history = [checkin(5, 1), checkin(3, 2)]
        decision = decide_mayor(history, 10 * SECONDS_PER_DAY, incumbent_id=None)
        assert decision.mayor_id == 3

    def test_empty_history(self):
        decision = decide_mayor([], 10 * SECONDS_PER_DAY, incumbent_id=None)
        assert decision.mayor_id is None
        assert not decision.changed
