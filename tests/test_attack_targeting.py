"""Unit tests for crawl-driven victim selection (§3.4)."""

import pytest

from repro.attack.targeting import VenueProfileAnalyzer
from repro.crawler.database import CrawlDatabase
from repro.crawler.parser import ParsedUser, ParsedVenue
from repro.geo.coordinates import GeoPoint

ABQ = GeoPoint(35.0844, -106.6504)


def venue(
    venue_id,
    special=None,
    special_mayor_only=True,
    mayor_id=None,
    unique_visitors=0,
    recent_visitor_ids=(),
):
    return ParsedVenue(
        venue_id=venue_id,
        name=f"V{venue_id}",
        address="",
        city="",
        latitude=ABQ.latitude,
        longitude=ABQ.longitude,
        checkins_here=unique_visitors,
        unique_visitors=unique_visitors,
        mayor_id=mayor_id,
        special=special,
        special_mayor_only=special_mayor_only,
        recent_visitor_ids=list(recent_visitor_ids),
    )


def user(user_id, total_checkins=10):
    return ParsedUser(
        user_id=user_id,
        display_name=f"U{user_id}",
        username=None,
        home_city="",
        total_checkins=total_checkins,
        total_badges=1,
        points=10,
    )


@pytest.fixture
def database():
    db = CrawlDatabase()
    db.upsert_venue(venue(1, special="Mayor coffee", mayor_id=None))
    db.upsert_venue(venue(2, special="Mayor tea", mayor_id=77))
    db.upsert_venue(
        venue(3, special="3rd visit free", special_mayor_only=False)
    )
    db.upsert_venue(venue(4))
    db.upsert_venue(
        venue(
            5,
            special="Mayor cake",
            mayor_id=None,
            unique_visitors=1,
            recent_visitor_ids=[42],
        )
    )
    for venue_id in range(6, 12):
        db.upsert_venue(venue(venue_id, mayor_id=42))
    db.upsert_user(user(42))
    db.recompute_derived()
    return db


class TestTargetQueries:
    def test_easy_mayor_specials(self, database):
        analyzer = VenueProfileAnalyzer(database)
        targets = analyzer.easy_mayor_specials()
        assert {t.venue_id for t in targets} == {1, 5}
        assert all(t.special for t in targets)
        assert all("no mayor" in t.reason for t in targets)

    def test_uncontested_mayor_specials(self, database):
        analyzer = VenueProfileAnalyzer(database)
        targets = analyzer.uncontested_mayor_specials(max_visitors=1)
        # Venues 1, 2 (0 visitors) and 5 (1 visitor) qualify.
        assert {t.venue_id for t in targets} == {1, 2, 5}

    def test_no_mayorship_specials(self, database):
        analyzer = VenueProfileAnalyzer(database)
        assert [t.venue_id for t in analyzer.no_mayorship_specials()] == [3]

    def test_mayorships_of_victim(self, database):
        analyzer = VenueProfileAnalyzer(database)
        targets = analyzer.mayorships_of_victim(42)
        assert {t.venue_id for t in targets} == set(range(6, 12))

    def test_venues_visited_by_victim(self, database):
        analyzer = VenueProfileAnalyzer(database)
        targets = analyzer.venues_visited_by_victim(42)
        assert [t.venue_id for t in targets] == [5]

    def test_suspected_mayor_farmers(self, database):
        analyzer = VenueProfileAnalyzer(database)
        assert analyzer.suspected_mayor_farmers(min_mayorships=5) == [42]
        assert analyzer.suspected_mayor_farmers(min_mayorships=10) == []
