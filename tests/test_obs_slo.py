"""The SLO engine: objectives, budgets, burn-rate alerts, health routes.

Time never comes from the wall clock here — every ``evaluate(now=...)``
pins its own timestamp, so window membership (and therefore burn rates
and alert transitions) is exact.  Traffic comes from synthetic counter
and histogram families written directly into a registry.
"""

import json

import pytest

from repro.geo import GeoPoint
from repro.lbsn.service import LbsnService
from repro.lbsn.webserver import JSON_CONTENT_TYPE, LbsnWebServer
from repro.obs.log import ERROR, INFO, WARNING, LogHub
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    AvailabilityObjective,
    BurnRatePolicy,
    LatencyObjective,
    RatioObjective,
    SloEngine,
    SloError,
    budget_remaining,
    burn_rate,
    default_slos,
    window_label,
)
from repro.simnet.http import HttpTransport, Router
from repro.simnet.network import Network

HOUR = 3600.0


def _availability_registry(good=0.0, bad=0.0):
    registry = MetricsRegistry()
    family = registry.counter("svc_requests_total", "requests", ("outcome",))
    if good:
        family.labels("ok").inc(good)
    if bad:
        family.labels("error").inc(bad)
    return registry, family


def _engine(registry, target=0.9, weight=1.0, **kwargs):
    objective = AvailabilityObjective(
        "availability",
        family="svc_requests_total",
        good_labels=(("ok",),),
        target=target,
        weight=weight,
    )
    return SloEngine(registry, [objective], **kwargs)


class TestPureMath:
    def test_budget_remaining_basics(self):
        assert budget_remaining(0, 0, 0.99) == 1.0  # no traffic, full budget
        assert budget_remaining(100, 100, 0.99) == 1.0
        # 1000 total at target 0.9 → 100 allowed bad; 50 bad → half left.
        assert budget_remaining(950, 1000, 0.9) == pytest.approx(0.5)
        assert budget_remaining(900, 1000, 0.9) == pytest.approx(0.0)

    def test_budget_never_negative(self):
        assert budget_remaining(0, 1000, 0.9) == 0.0
        assert budget_remaining(500, 1000, 0.999) == 0.0

    def test_burn_rate_window_membership(self):
        target = 0.9
        points = [(0.0, 100.0, 100.0), (60.0, 100.0, 200.0)]
        # All bad over the window: bad fraction 1.0 / budget 0.1 = 10x.
        assert burn_rate(points, 60.0, 300.0, target) == pytest.approx(10.0)
        # A window too short to hold both points has no rate.
        assert burn_rate(points, 60.0, 30.0, target) == 0.0

    def test_burn_rate_degenerate_inputs(self):
        assert burn_rate([], 0.0, 300.0, 0.9) == 0.0
        assert burn_rate([(0.0, 1.0, 1.0)], 0.0, 300.0, 0.9) == 0.0
        # No traffic across the window → no burn.
        same = [(0.0, 5.0, 5.0), (60.0, 5.0, 5.0)]
        assert burn_rate(same, 60.0, 300.0, 0.9) == 0.0

    def test_window_label(self):
        assert window_label(300.0) == "5m"
        assert window_label(3600.0) == "1h"
        assert window_label(21600.0) == "6h"
        assert window_label(7.5) == "7.5s"


class TestObjectives:
    def test_validation(self):
        with pytest.raises(SloError):
            AvailabilityObjective("", "f", good_labels=(("ok",),))
        with pytest.raises(SloError):
            AvailabilityObjective("x", "f", good_labels=(("ok",),), target=1.0)
        with pytest.raises(SloError):
            AvailabilityObjective(
                "x", "f", good_labels=(("ok",),), weight=0.0
            )
        with pytest.raises(SloError):
            LatencyObjective("x", "f", threshold_s=0.0)

    def test_latency_objective_reads_cumulative_buckets(self):
        registry = MetricsRegistry()
        spans = registry.histogram("spans", "spans", ("span",))
        child = spans.labels("checkin.commit")
        for _ in range(98):
            child.observe(0.001)
        child.observe(0.03)  # over a 25 ms threshold
        child.observe(2.0)
        objective = LatencyObjective(
            "p99", family="spans", labels=("checkin.commit",),
            threshold_s=0.025,
        )
        good, total = objective.good_total(registry)
        assert (good, total) == (98.0, 100.0)

    def test_latency_threshold_rounds_up_to_next_bound(self):
        registry = MetricsRegistry()
        spans = registry.histogram("spans", "spans")
        spans.observe(0.03)  # lands in the 0.05 bucket
        # 0.03 is not a bucket bound; good counts through the 0.05 bound.
        objective = LatencyObjective("p", family="spans", threshold_s=0.03)
        assert objective.good_total(registry) == (1.0, 1.0)

    def test_latency_objective_missing_family_or_labels(self):
        registry = MetricsRegistry()
        objective = LatencyObjective(
            "p", family="absent", threshold_s=0.01, labels=("x",)
        )
        assert objective.good_total(registry) == (0.0, 0.0)
        registry.histogram("spans", "spans", ("span",))
        assert LatencyObjective(
            "p2", family="spans", threshold_s=0.01, labels=("never",)
        ).good_total(registry) == (0.0, 0.0)

    def test_availability_objective_sums_good_labels(self):
        registry, family = _availability_registry(good=90, bad=10)
        family.labels("flagged").inc(5)
        objective = AvailabilityObjective(
            "avail",
            family="svc_requests_total",
            good_labels=(("ok",), ("flagged",)),
        )
        assert objective.good_total(registry) == (95.0, 105.0)

    def test_ratio_objective_across_families_clamps_good(self):
        registry = MetricsRegistry()
        registry.counter("applied", "applied").inc(120)
        registry.counter("appended", "appended").inc(100)
        objective = RatioObjective(
            "currency", good_family="applied", total_family="appended"
        )
        # Racy reads can overshoot; good is clamped to total.
        assert objective.good_total(registry) == (100.0, 100.0)

    def test_ratio_objective_histogram_total_uses_count(self):
        registry = MetricsRegistry()
        registry.counter("good", "good").inc(3)
        hist = registry.histogram("lat", "lat")
        for _ in range(4):
            hist.observe(0.01)
        objective = RatioObjective(
            "r", good_family="good", total_family="lat"
        )
        assert objective.good_total(registry) == (3.0, 4.0)

    def test_default_slos_cover_the_paper_pipeline(self):
        names = {objective.name for objective in default_slos()}
        assert "checkin-commit-p99" in names
        assert "checkin-availability" in names
        assert "wal-fsync-p99" in names
        assert "detector-replay-currency" in names


class TestEngine:
    def test_engine_validation(self):
        registry = MetricsRegistry()
        with pytest.raises(SloError):
            SloEngine(registry, [])
        objective = AvailabilityObjective(
            "a", "f", good_labels=(("ok",),)
        )
        with pytest.raises(SloError):
            SloEngine(registry, [objective, objective])
        with pytest.raises(SloError):
            SloEngine(registry, [objective], max_points=1)
        with pytest.raises(SloError):
            BurnRatePolicy(fast_short_s=3600.0)

    def test_rings_are_bounded(self):
        registry, _ = _availability_registry(good=1)
        engine = _engine(registry, max_points=4)
        for i in range(10):
            engine.sample(now=float(i))
        points = engine.points("availability")
        assert len(points) == 4
        assert points[0][0] == 6.0
        with pytest.raises(SloError):
            engine.points("nope")

    def test_healthy_report(self):
        registry, _ = _availability_registry(good=100)
        engine = _engine(registry)
        engine.evaluate(now=0.0)
        report = engine.evaluate(now=60.0)
        status = report.status("availability")
        assert status.compliance == 1.0
        assert status.budget_remaining == 1.0
        assert status.state == "ok"
        assert set(status.burn_rates) == {"5m", "1h", "6h"}
        assert report.health_score == 100.0
        assert report.worst == "availability"

    def test_burn_and_fast_alert(self):
        registry, family = _availability_registry(good=1000)
        hub = LogHub()
        engine = _engine(
            registry, target=0.99, metrics=registry, log=hub
        )
        engine.evaluate(now=0.0)
        family.labels("error").inc(100)  # pure-bad burst
        report = engine.evaluate(now=60.0)
        status = report.status("availability")
        # bad fraction 1.0 over every window / 0.01 budget = 100x burn.
        assert status.burn_rates["5m"] == pytest.approx(100.0)
        assert status.burn_rates["1h"] == pytest.approx(100.0)
        assert status.state == "fast"
        snapshot = registry.snapshot()
        assert snapshot["repro_slo_alerts_total"][
            ("availability", "fast")
        ] == 1.0
        alerts = hub.records(event="slo.alert")
        assert len(alerts) == 1
        assert alerts[0].level == ERROR
        assert alerts[0].fields["severity"] == "fast"
        assert alerts[0].fields["trace_id"]

    def test_slow_alert_then_resolve(self):
        registry, family = _availability_registry(good=1000)
        hub = LogHub()
        engine = _engine(registry, target=0.9, log=hub, metrics=registry)
        engine.evaluate(now=0.0)
        family.labels("error").inc(100)
        report = engine.evaluate(now=60.0)
        status = report.status("availability")
        # 10x burn: above the slow threshold (6), below fast (14.4).
        assert status.burn_rates["1h"] == pytest.approx(10.0)
        assert status.state == "slow"
        warnings = hub.records(event="slo.alert")
        assert warnings[-1].level == WARNING
        # Far enough ahead that the burst ages out of every window.
        resolved = engine.evaluate(now=8 * HOUR)
        assert resolved.status("availability").state == "ok"
        records = hub.records(event="slo.resolved")
        assert len(records) == 1
        assert records[0].level == INFO
        assert records[0].fields["previous"] == "slow"

    def test_fast_needs_both_windows(self):
        # A burst visible in the 5m window but diluted over 1h must not
        # page: points where the 1h window holds earlier good traffic.
        registry, family = _availability_registry(good=10_000)
        engine = _engine(registry, target=0.99)
        engine.evaluate(now=0.0)
        family.labels("ok").inc(10_000)
        engine.evaluate(now=55 * 60.0)
        family.labels("error").inc(30)
        report = engine.evaluate(now=58 * 60.0)
        status = report.status("availability")
        assert status.burn_rates["5m"] == pytest.approx(100.0)
        assert status.burn_rates["1h"] < 14.4
        assert status.state == "ok"

    def test_budget_spent_lowers_health_score(self):
        registry, family = _availability_registry(good=900, bad=50)
        # target 0.9: 100 allowed bad per 1000; 50 bad → 47.4%... compute:
        engine = _engine(registry, target=0.9, weight=2.0)
        report = engine.evaluate(now=0.0)
        status = report.status("availability")
        expected = 1.0 - 50.0 / (950.0 * 0.1)
        assert status.budget_remaining == pytest.approx(expected)
        assert report.health_score == pytest.approx(100.0 * expected)

    def test_health_score_weights(self):
        registry, _ = _availability_registry(good=100)
        full = AvailabilityObjective(
            "full", "svc_requests_total", good_labels=(("ok",),),
            target=0.9, weight=3.0,
        )
        empty = RatioObjective(
            "empty", good_family="no_good", total_family="svc_requests_total",
            target=0.5, weight=1.0,
        )
        engine = SloEngine(registry, [full, empty])
        report = engine.evaluate(now=0.0)
        assert report.status("empty").budget_remaining == 0.0
        # (3*1.0 + 1*0.0) / 4 = 0.75
        assert report.health_score == pytest.approx(75.0)
        assert report.worst == "empty"

    def test_metrics_export(self):
        registry, _ = _availability_registry(good=100)
        engine = _engine(registry, metrics=registry)
        engine.evaluate(now=0.0)
        engine.evaluate(now=60.0)
        snapshot = registry.snapshot()
        assert snapshot["repro_slo_evaluations_total"][()] == 2.0
        assert snapshot["repro_slo_budget_remaining"][
            ("availability",)
        ] == 1.0
        assert snapshot["repro_slo_health_score"][()] == 100.0
        assert ("availability", "5m") in snapshot["repro_slo_burn_rate"]

    def test_clock_injection(self):
        class FakeClock:
            def __init__(self):
                self.t = 123.0

            def now(self):
                return self.t

        registry, _ = _availability_registry(good=1)
        clock = FakeClock()
        engine = _engine(registry, clock=clock)
        engine.sample()
        assert engine.points("availability")[0][0] == 123.0

    def test_report_json_shapes(self):
        registry, _ = _availability_registry(good=100)
        engine = _engine(registry)
        report = engine.evaluate(now=0.0)
        doc = report.to_dict()
        assert doc["objectives"][0]["name"] == "availability"
        health = report.health_dict()
        assert health["health_score"] == 100.0
        assert health["objectives"]["availability"]["state"] == "ok"
        json.dumps(doc)
        json.dumps(health)


class TestSloRoutes:
    @pytest.fixture()
    def stack(self):
        registry = MetricsRegistry()
        service = LbsnService(metrics=registry)
        venue = service.create_venue("Spot", GeoPoint(40.7, -74.0))
        user = service.register_user("probe")
        service.check_in(user.user_id, venue.venue_id, venue.location)
        engine = SloEngine(registry, default_slos(), metrics=registry)
        webserver = LbsnWebServer(service, slo=engine)
        router = Router()
        webserver.install_routes(router)
        network = Network(seed=0)
        transport = HttpTransport(router, network)
        return transport, network.create_egress(), engine

    def test_debug_slo_route(self, stack):
        transport, egress, _ = stack
        response = transport.get("/debug/slo", egress)
        assert response.ok
        assert response.headers["Content-Type"] == JSON_CONTENT_TYPE
        doc = json.loads(response.body)
        names = {o["name"] for o in doc["objectives"]}
        assert "checkin-availability" in names
        assert 0.0 <= doc["health_score"] <= 100.0

    def test_debug_health_matches_offline_evaluation(self, stack):
        transport, egress, engine = stack
        offline = engine.evaluate().health_dict()
        response = transport.get("/debug/health", egress)
        assert response.ok
        served = json.loads(response.body)
        # Counters have not moved between the two evaluations, so the
        # budget-derived score is bit-identical.
        assert served["health_score"] == offline["health_score"]
        assert served["objectives"] == offline["objectives"]

    def test_routes_absent_without_engine(self, stack):
        service = LbsnService(metrics=MetricsRegistry())
        webserver = LbsnWebServer(service)
        router = Router()
        webserver.install_routes(router)
        network = Network(seed=0)
        transport = HttpTransport(router, network)
        egress = network.create_egress()
        assert not transport.get("/debug/slo", egress).ok
        assert not transport.get("/debug/health", egress).ok


class TestCli:
    def test_repro_slo_prints_table_and_health(self, capsys):
        from repro.cli import main

        code = main(["slo", "--scale", "0.0002", "--seed", "7"])
        out = capsys.readouterr().out
        assert code == 0
        assert "checkin-commit-p99" in out
        assert "health score:" in out

    def test_top_health_panel_renders_and_clamps(self):
        from repro.cli import _format_health_panel
        from repro.obs.slo import ObjectiveStatus, SloReport

        status = ObjectiveStatus(
            name="an-objective-with-a-very-long-name",
            kind="ratio", target=0.99, weight=1.0, description="",
            good=1.0, total=2.0, compliance=0.5, budget_remaining=0.0,
            burn_rates={"5m": 50.0, "1h": 50.0, "6h": 50.0}, state="fast",
        )
        report = SloReport(
            now=0.0, health_score=0.0, worst=status.name, statuses=[status]
        )
        lines = _format_health_panel(report, width=40)
        assert all(len(line) <= 40 for line in lines)
        assert any("alerting:" in line for line in lines)

    def test_top_rows_clamp_to_width(self):
        from repro.cli import _format_top_rows
        from repro.obs.timeseries import TimeSeriesRecorder

        registry = MetricsRegistry()
        registry.counter(
            "repro_a_very_long_metric_family_name_total",
            "long", ("one_label", "another_label"),
        ).labels("value-one-is-long", "value-two-is-longer").inc()
        recorder = TimeSeriesRecorder(registry)
        recorder.sample()
        recorder.sample()
        lines = _format_top_rows(recorder, limit=5, width=40)
        assert len(lines) >= 2
        assert all(len(line) <= 40 for line in lines)
        assert lines[1].endswith("…")
