"""Concurrency conformance harness for the (sharded) datastore.

A linearizability-style checker for the seq-allocation contract: N
writer threads hammer one store through a deterministic, seeded schedule
of single (``add_checkin_committed``) and batched
(``add_checkins_committed``) commits, every commit is published to a
real :class:`~repro.stream.EventBus` with a recording subscriber, and
the run returns an :class:`ObservedHistory` the checker functions then
interrogate:

* :func:`assert_seqs_dense` — the union of all returned sequence
  numbers is exactly ``range(total)``: gap-free, duplicate-free, global.
* :func:`assert_per_user_order` — for every user, seq numbers are
  strictly increasing in exactly the store's list-append order (the
  contract ``DataStore.add_checkin_committed`` documents, which sharding
  must preserve).
* :func:`assert_observed_exactly_once` — every committed check-in was
  delivered to the bus subscriber exactly once: no loss, no duplication.
* :func:`ledger_replay_digest` — replays the committed history in a
  *canonical* order (timestamp, user, check-in id — all schedule-derived
  and therefore identical across runs) through a fresh
  :class:`~repro.stream.SuspicionLedger` and returns its trace-scrubbed
  digest.  Byte-identical digests between a 1-shard and an N-shard storm
  are the proof that sharding changed scheduling, not semantics.

Determinism rules: every check-in's id, user, venue, and timestamp come
from the precomputed :func:`build_schedule` (pure function of the seed),
never from wall clocks or shared allocators, so two storms over the same
schedule commit the *same set* of check-ins no matter how their threads
interleave.  Only the seq assignment varies — which is exactly the part
the contract constrains.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.detection import DetectorConfig
from repro.geo.coordinates import GeoPoint
from repro.lbsn.models import CheckIn, CheckInStatus, User, Venue, VenueCategory
from repro.lbsn.store import DataStore
from repro.stream.bus import EventBus
from repro.stream.events import CheckInAccepted
from repro.stream.ledger import SuspicionLedger

#: Schedule base coordinates (Albuquerque, the repo's usual test city).
BASE_LAT = 35.0844
BASE_LON = -106.6504

#: Check-in ids are schedule-owned: ``thread * STRIDE + op_offset`` keeps
#: them unique and identical across runs regardless of interleaving.
CHECKIN_ID_STRIDE = 1_000_000


@dataclass
class StormOp:
    """One scheduled commit: a single check-in or a batch."""

    checkins: List[CheckIn]
    batched: bool


@dataclass
class StormSchedule:
    """A full deterministic storm: per-thread op lists plus the world."""

    users: List[User]
    venues: List[Venue]
    per_thread: List[List[StormOp]]

    @property
    def total_checkins(self) -> int:
        return sum(
            len(op.checkins) for ops in self.per_thread for op in ops
        )


@dataclass
class ObservedHistory:
    """What one storm actually did, as seen from every vantage point."""

    schedule: StormSchedule
    store: object
    #: ``(thread, checkin, seq)`` in each thread's local commit order.
    committed: List[Tuple[int, CheckIn, int]]
    #: Bus deliveries: checkin_id → times seen by the recording subscriber.
    observed: Counter
    watermark: int
    seq_base: int = 0

    def seqs(self) -> List[int]:
        return [seq for _, _, seq in self.committed]

    def seq_of(self) -> Dict[int, int]:
        """checkin_id → seq."""
        return {c.checkin_id: seq for _, c, seq in self.committed}


def _venue_location(index: int) -> GeoPoint:
    """Deterministic venue spread: a coarse grid around the base point."""
    return GeoPoint(
        BASE_LAT + 0.002 * (index % 40),
        BASE_LON + 0.002 * (index // 40),
    )


def build_schedule(
    threads: int = 8,
    ops_per_thread: int = 40,
    users_per_thread: int = 3,
    venues: int = 24,
    max_batch: int = 8,
    seed: int = 0x5EED,
) -> StormSchedule:
    """Precompute a storm: pure function of its arguments.

    Each thread owns a disjoint user slice (so per-user order is decided
    by one thread's program order plus the store, never by a data race in
    the harness itself) while all threads share the venue pool — the
    cross-shard contention the harness exists to provoke.  Roughly every
    third op is a batch; timestamps increase strictly within a thread so
    the canonical replay order is well defined.
    """
    import random

    rng = random.Random(seed)
    users = [
        User(user_id=index + 1, display_name=f"storm-u{index + 1}")
        for index in range(threads * users_per_thread)
    ]
    venue_rows = [
        Venue(
            venue_id=index + 1,
            name=f"storm-v{index + 1}",
            location=_venue_location(index),
            category=VenueCategory.OTHER,
        )
        for index in range(venues)
    ]
    per_thread: List[List[StormOp]] = []
    for thread in range(threads):
        owned = users[
            thread * users_per_thread: (thread + 1) * users_per_thread
        ]
        ops: List[StormOp] = []
        next_id = thread * CHECKIN_ID_STRIDE + 1
        clock = float(thread + 1)
        for op_index in range(ops_per_thread):
            batched = rng.random() < 0.34
            size = rng.randint(2, max_batch) if batched else 1
            checkins = []
            for _ in range(size):
                user = rng.choice(owned)
                venue = rng.choice(venue_rows)
                clock += 60.0 + rng.random() * 600.0
                checkins.append(
                    CheckIn(
                        checkin_id=next_id,
                        user_id=user.user_id,
                        venue_id=venue.venue_id,
                        timestamp=clock,
                        reported_location=venue.location,
                        status=CheckInStatus.VALID,
                    )
                )
                next_id += 1
            ops.append(StormOp(checkins=checkins, batched=batched))
        per_thread.append(ops)
    return StormSchedule(
        users=users, venues=venue_rows, per_thread=per_thread
    )


def populate(store, schedule: StormSchedule) -> None:
    """Load the schedule's users and venues into a fresh store."""
    for user in schedule.users:
        store.add_user(user)
    for venue in schedule.venues:
        store.add_venue(venue)


@dataclass
class _Recorder:
    """Thread-safe exactly-once observer on the bus."""

    lock: threading.Lock = field(default_factory=threading.Lock)
    seen: Counter = field(default_factory=Counter)

    def __call__(self, event) -> None:
        if isinstance(event, CheckInAccepted):
            with self.lock:
                self.seen[event.checkin_id] += 1


def run_storm(
    store,
    schedule: StormSchedule,
    subscribers: Sequence[Callable] = (),
) -> ObservedHistory:
    """Run the storm against a pre-populated store; return the history.

    Commits run fully concurrently.  Publication to the bus happens
    under one harness lock — the stand-in for ``LbsnService._lock``,
    which serializes publish in the real pipeline — so detector-style
    subscribers see a serial stream, as they would in production.
    """
    bus = EventBus()
    recorder = _Recorder()
    bus.subscribe("conformance-recorder", recorder)
    for index, subscriber in enumerate(subscribers):
        bus.subscribe(f"conformance-extra-{index}", subscriber)
    seq_base = store.event_seq_watermark()
    venue_locations = {
        venue.venue_id: venue.location for venue in schedule.venues
    }
    publish_lock = threading.Lock()
    committed_lock = threading.Lock()
    committed: List[Tuple[int, CheckIn, int]] = []
    errors: List[BaseException] = []
    barrier = threading.Barrier(len(schedule.per_thread))

    def publish(pairs: Sequence[Tuple[CheckIn, int]]) -> None:
        with publish_lock:
            for checkin, seq in pairs:
                bus.publish(
                    CheckInAccepted(
                        seq=seq,
                        timestamp=checkin.timestamp,
                        user_id=checkin.user_id,
                        venue_id=checkin.venue_id,
                        venue_location=venue_locations[checkin.venue_id],
                        reported_location=checkin.reported_location,
                        checkin_id=checkin.checkin_id,
                    )
                )

    def worker(thread: int, ops: List[StormOp]) -> None:
        try:
            barrier.wait(timeout=30)
            local: List[Tuple[int, CheckIn, int]] = []
            for op in ops:
                if op.batched:
                    pairs = store.add_checkins_committed(op.checkins)
                else:
                    pairs = [store.add_checkin_committed(op.checkins[0])]
                publish(pairs)
                local.extend(
                    (thread, checkin, seq) for checkin, seq in pairs
                )
            with committed_lock:
                committed.extend(local)
        except BaseException as exc:  # surfaced by the caller
            errors.append(exc)

    workers = [
        threading.Thread(target=worker, args=(thread, ops), daemon=True)
        for thread, ops in enumerate(schedule.per_thread)
    ]
    for thread in workers:
        thread.start()
    for thread in workers:
        thread.join(timeout=120)
    if errors:
        raise errors[0]
    return ObservedHistory(
        schedule=schedule,
        store=store,
        committed=committed,
        observed=recorder.seen,
        watermark=store.event_seq_watermark(),
        seq_base=seq_base,
    )


# Checkers --------------------------------------------------------------


def assert_seqs_dense(history: ObservedHistory) -> None:
    """Global seq order is gap-free and duplicate-free."""
    seqs = sorted(history.seqs())
    expected = list(
        range(history.seq_base, history.seq_base + len(seqs))
    )
    assert seqs == expected, (
        f"seq allocation not dense: {len(seqs)} commits, "
        f"min={seqs[0] if seqs else None}, max={seqs[-1] if seqs else None}"
    )
    assert history.watermark == history.seq_base + len(seqs)


def assert_per_user_order(history: ObservedHistory) -> None:
    """Per user: store list order == commit order == seq order."""
    seq_of = history.seq_of()
    by_user: Dict[int, List[int]] = {}
    for _, checkin, _ in history.committed:
        by_user.setdefault(checkin.user_id, [])
    for user_id in by_user:
        listed = history.store.checkins_of_user(user_id)
        listed_seqs = [seq_of[checkin.checkin_id] for checkin in listed]
        assert listed_seqs == sorted(listed_seqs), (
            f"user {user_id}: store append order disagrees with seq order"
        )
        assert sorted(c.checkin_id for c in listed) == sorted(
            checkin.checkin_id
            for _, checkin, _ in history.committed
            if checkin.user_id == user_id
        )


def assert_observed_exactly_once(history: ObservedHistory) -> None:
    """Every committed check-in hit the bus subscriber exactly once."""
    expected = Counter(
        checkin.checkin_id for _, checkin, _ in history.committed
    )
    assert set(expected.values()) <= {1}
    assert history.observed == expected, (
        "bus delivery mismatch: "
        f"{len(expected)} committed, {sum(history.observed.values())} seen"
    )


def canonical_events(history: ObservedHistory) -> List[CheckInAccepted]:
    """The committed history as events, in run-independent order.

    The sort key — ``(timestamp, user_id, checkin_id)`` — is entirely
    schedule-derived, so two storms over the same schedule yield the
    same event list here even though their threads interleaved (and
    seq-assigned) differently.
    """
    venue_locations = {
        venue.venue_id: venue.location for venue in history.schedule.venues
    }
    ordered = sorted(
        (checkin for _, checkin, _ in history.committed),
        key=lambda c: (c.timestamp, c.user_id, c.checkin_id),
    )
    seq_of = history.seq_of()
    return [
        CheckInAccepted(
            seq=seq_of[checkin.checkin_id],
            timestamp=checkin.timestamp,
            user_id=checkin.user_id,
            venue_id=checkin.venue_id,
            venue_location=venue_locations[checkin.venue_id],
            reported_location=checkin.reported_location,
            checkin_id=checkin.checkin_id,
        )
        for checkin in ordered
    ]


def ledger_replay_digest(
    history: ObservedHistory,
    config: Optional[DetectorConfig] = None,
) -> str:
    """Trace-scrubbed SuspicionLedger digest of the canonical replay."""
    ledger = SuspicionLedger(
        config=config or DetectorConfig(min_total_checkins=5)
    )
    for event in canonical_events(history):
        ledger.on_event(event)
    return ledger.digest()


def run_conformance_storm(
    store_factory: Callable[[], object],
    threads: int = 8,
    ops_per_thread: int = 40,
    seed: int = 0x5EED,
    max_batch: int = 8,
) -> ObservedHistory:
    """Build schedule → populate → storm, in one call."""
    schedule = build_schedule(
        threads=threads,
        ops_per_thread=ops_per_thread,
        seed=seed,
        max_batch=max_batch,
    )
    store = store_factory()
    populate(store, schedule)
    return run_storm(store, schedule)


def single_store_factory():
    """A plain single-lock store (the N=1 baseline)."""
    return DataStore()
