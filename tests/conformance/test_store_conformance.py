"""Conformance suite: the sharded store under concurrent writers.

The acceptance bar from the sharding work (docs/SHARDING.md): with 8+
writer threads mixing single and batched commits,

* seq numbers are gap-free and strictly ordered per stream,
* every committed check-in is observed by detectors exactly once,
* a 1-shard and a 4-shard run produce byte-identical trace-scrubbed
  ledger digests once replayed in canonical order.

The 16-thread / bigger-schedule variant runs under ``-m soak`` only.
"""

import pytest

from repro.lbsn.sharded import ShardedDataStore

from tests.conformance.harness import (
    assert_observed_exactly_once,
    assert_per_user_order,
    assert_seqs_dense,
    ledger_replay_digest,
    run_conformance_storm,
    single_store_factory,
)

STORM_SEED = 0x5EED


@pytest.fixture(scope="module")
def sharded_history():
    """One 8-thread storm against a 4-shard store, shared by the checks."""
    return run_conformance_storm(
        lambda: ShardedDataStore(shards=4), threads=8, seed=STORM_SEED
    )


@pytest.fixture(scope="module")
def single_history():
    """The same schedule against the single-lock baseline store."""
    return run_conformance_storm(
        single_store_factory, threads=8, seed=STORM_SEED
    )


class TestShardedStorm:
    def test_commits_all_landed(self, sharded_history):
        history = sharded_history
        assert len(history.committed) == history.schedule.total_checkins
        assert history.store.checkin_count() == len(history.committed)

    def test_seqs_gap_free_and_duplicate_free(self, sharded_history):
        assert_seqs_dense(sharded_history)

    def test_per_user_commit_order_equals_seq_order(self, sharded_history):
        assert_per_user_order(sharded_history)

    def test_every_commit_observed_exactly_once(self, sharded_history):
        assert_observed_exactly_once(sharded_history)

    def test_rows_routed_to_owning_user_shard(self, sharded_history):
        store = sharded_history.store
        for _, checkin, _ in sharded_history.committed:
            owner = store.shards[checkin.user_id % store.shard_count]
            assert owner.get_checkin(checkin.checkin_id) is checkin

    def test_venue_index_complete(self, sharded_history):
        store = sharded_history.store
        by_venue = {}
        for _, checkin, _ in sharded_history.committed:
            by_venue.setdefault(checkin.venue_id, set()).add(
                checkin.checkin_id
            )
        for venue_id, expected in by_venue.items():
            listed = {
                c.checkin_id for c in store.checkins_at_venue(venue_id)
            }
            assert listed == expected


class TestSingleStoreStorm:
    """API parity: the same checker passes on the single-lock store."""

    def test_seqs_gap_free_and_duplicate_free(self, single_history):
        assert_seqs_dense(single_history)

    def test_per_user_commit_order_equals_seq_order(self, single_history):
        assert_per_user_order(single_history)

    def test_every_commit_observed_exactly_once(self, single_history):
        assert_observed_exactly_once(single_history)


class TestLedgerDigestParity:
    def test_n1_vs_n4_digests_byte_identical(
        self, sharded_history, single_history
    ):
        """Sharding changes scheduling, not semantics."""
        assert ledger_replay_digest(sharded_history) == ledger_replay_digest(
            single_history
        )

    def test_digest_stable_across_repeat_sharded_runs(self, sharded_history):
        repeat = run_conformance_storm(
            lambda: ShardedDataStore(shards=4), threads=8, seed=STORM_SEED
        )
        assert ledger_replay_digest(repeat) == ledger_replay_digest(
            sharded_history
        )

    def test_different_schedule_changes_digest(self, sharded_history):
        """Sanity: the digest is not vacuous."""
        other = run_conformance_storm(
            lambda: ShardedDataStore(shards=4),
            threads=8,
            seed=STORM_SEED + 1,
        )
        assert ledger_replay_digest(other) != ledger_replay_digest(
            sharded_history
        )


class TestShardCounts:
    @pytest.mark.parametrize("shards", [2, 7])
    def test_other_shard_counts_hold_the_contract(self, shards):
        history = run_conformance_storm(
            lambda: ShardedDataStore(shards=shards),
            threads=8,
            ops_per_thread=20,
            seed=STORM_SEED + shards,
        )
        assert_seqs_dense(history)
        assert_per_user_order(history)
        assert_observed_exactly_once(history)


@pytest.mark.soak
class TestSoakStorm:
    def test_sixteen_threads_large_schedule(self):
        history = run_conformance_storm(
            lambda: ShardedDataStore(shards=4),
            threads=16,
            ops_per_thread=120,
            seed=STORM_SEED,
            max_batch=16,
        )
        assert_seqs_dense(history)
        assert_per_user_order(history)
        assert_observed_exactly_once(history)

    def test_sixteen_thread_digest_parity_with_single_store(self):
        schedule_kwargs = dict(
            threads=16, ops_per_thread=80, seed=STORM_SEED + 99
        )
        sharded = run_conformance_storm(
            lambda: ShardedDataStore(shards=4), **schedule_kwargs
        )
        single = run_conformance_storm(
            single_store_factory, **schedule_kwargs
        )
        assert ledger_replay_digest(sharded) == ledger_replay_digest(single)
