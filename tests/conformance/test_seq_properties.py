"""Property tests (hypothesis) for the seq-allocation contract.

Arbitrary interleavings of single commits, batched commits, and bare
sequence-slot allocations, across shard counts N ∈ {1, 2, 4, 7}, must
always yield:

* a dense, duplicate-free global seq order (the union of everything the
  store handed out is exactly ``range(total)``),
* per-user seq subsequences in program order,
* stable shard routing — the same key maps to the same shard on every
  instance with the same N, and rows actually live where the router
  says they live.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.coordinates import GeoPoint
from repro.lbsn.models import CheckIn, CheckInStatus, User, Venue, VenueCategory
from repro.lbsn.sharded import ShardedDataStore, shard_for_key
from repro.lbsn.store import EventSequencer

SHARD_COUNTS = [1, 2, 4, 7]

USERS = 9
VENUES = 11

shard_counts = st.sampled_from(SHARD_COUNTS)
user_keys = st.integers(min_value=1, max_value=USERS)
venue_keys = st.integers(min_value=1, max_value=VENUES)

#: One op: a bare seq slot, a single commit, or a batch of 1..6 commits.
ops = st.one_of(
    st.just(("slot",)),
    st.tuples(st.just("single"), user_keys, venue_keys),
    st.tuples(
        st.just("batch"),
        st.lists(st.tuples(user_keys, venue_keys), min_size=1, max_size=6),
    ),
)
op_lists = st.lists(ops, min_size=1, max_size=30)

LOCATION = GeoPoint(35.0844, -106.6504)


def _build_store(shards: int) -> ShardedDataStore:
    store = ShardedDataStore(shards=shards)
    for user_id in range(1, USERS + 1):
        store.add_user(User(user_id=user_id, display_name=f"u{user_id}"))
    for venue_id in range(1, VENUES + 1):
        store.add_venue(
            Venue(
                venue_id=venue_id,
                name=f"v{venue_id}",
                location=LOCATION,
                category=VenueCategory.OTHER,
            )
        )
    return store


def _apply(store: ShardedDataStore, op_list) -> list:
    """Run the ops; returns ``(kind, user_id, seq)`` allocation records."""
    allocations = []
    next_checkin_id = 1
    clock = 0.0

    def checkin(user_id: int, venue_id: int) -> CheckIn:
        nonlocal next_checkin_id, clock
        clock += 60.0
        row = CheckIn(
            checkin_id=next_checkin_id,
            user_id=user_id,
            venue_id=venue_id,
            timestamp=clock,
            reported_location=LOCATION,
            status=CheckInStatus.VALID,
        )
        next_checkin_id += 1
        return row

    for op in op_list:
        if op[0] == "slot":
            allocations.append(("slot", None, store.allocate_event_seq()))
        elif op[0] == "single":
            _, user_id, venue_id = op
            _, seq = store.add_checkin_committed(checkin(user_id, venue_id))
            allocations.append(("commit", user_id, seq))
        else:
            rows = [checkin(u, v) for u, v in op[1]]
            for row, seq in store.add_checkins_committed(rows):
                allocations.append(("commit", row.user_id, seq))
    return allocations


class TestSeqAllocationContract:
    @given(shards=shard_counts, op_list=op_lists)
    @settings(max_examples=60, deadline=None)
    def test_global_seq_order_dense_and_duplicate_free(
        self, shards, op_list
    ):
        store = _build_store(shards)
        base = store.event_seq_watermark()
        allocations = _apply(store, op_list)
        seqs = sorted(seq for _, _, seq in allocations)
        assert seqs == list(range(base, base + len(seqs)))
        assert store.event_seq_watermark() == base + len(seqs)

    @given(shards=shard_counts, op_list=op_lists)
    @settings(max_examples=60, deadline=None)
    def test_per_user_seq_subsequence_in_program_order(
        self, shards, op_list
    ):
        store = _build_store(shards)
        allocations = _apply(store, op_list)
        per_user = {}
        for kind, user_id, seq in allocations:
            if kind == "commit":
                per_user.setdefault(user_id, []).append(seq)
        for user_id, seqs in per_user.items():
            assert seqs == sorted(seqs), (
                f"user {user_id} committed out of seq order: {seqs}"
            )
            listed = store.checkins_of_user(user_id)
            assert len(listed) == len(seqs)

    @given(shards=shard_counts, op_list=op_lists)
    @settings(max_examples=40, deadline=None)
    def test_commit_count_matches_rows(self, shards, op_list):
        store = _build_store(shards)
        allocations = _apply(store, op_list)
        commits = [a for a in allocations if a[0] == "commit"]
        assert store.checkin_count() == len(commits)


class TestRoutingStability:
    @given(shards=shard_counts, key=st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=120, deadline=None)
    def test_same_key_same_shard_across_instances(self, shards, key):
        first = ShardedDataStore(shards=shards)
        second = ShardedDataStore(shards=shards)
        assert first.shard_index(key) == second.shard_index(key)
        assert first.shard_index(key) == shard_for_key(key, shards)
        assert 0 <= first.shard_index(key) < shards

    @given(shards=shard_counts)
    @settings(max_examples=20, deadline=None)
    def test_rows_live_on_routed_shards(self, shards):
        store = _build_store(shards)
        for user_id in range(1, USERS + 1):
            owner = store.shards[shard_for_key(user_id, shards)]
            assert owner.get_user(user_id) is not None
            for other_index, other in enumerate(store.shards):
                if other_index != shard_for_key(user_id, shards):
                    assert other.get_user(user_id) is None
        for venue_id in range(1, VENUES + 1):
            owner = store.shards[shard_for_key(venue_id, shards)]
            assert owner.get_venue(venue_id) is not None


class TestSharedSequencer:
    def test_explicit_sequencer_shared_across_facades(self):
        """Two facades over one sequencer interleave without collisions."""
        sequencer = EventSequencer()
        first = _build_store(2)
        second = ShardedDataStore(shards=4, sequencer=sequencer)
        # The facade built with its own sequencer starts at zero...
        assert first.event_seq_watermark() == 0
        # ...while explicit injection threads one counter through both.
        third = ShardedDataStore(shards=2, sequencer=sequencer)
        seqs = [
            second.allocate_event_seq(),
            third.allocate_event_seq(),
            second.allocate_event_seq(),
        ]
        assert seqs == [0, 1, 2]
        assert second.event_seq_watermark() == 3
        assert third.event_seq_watermark() == 3

    def test_allocate_block_contiguous(self):
        sequencer = EventSequencer()
        start = sequencer.allocate_block(5)
        assert start == 0
        assert sequencer.allocate() == 5
        assert sequencer.watermark() == 6
