"""Unit tests for the simulated IP network."""

import pytest

from repro.errors import NetworkError
from repro.geo.coordinates import GeoPoint
from repro.simnet.network import (
    Egress,
    EgressKind,
    GeoIpRegistry,
    IpAddress,
    IpAllocator,
    LatencyModel,
    Network,
)

LINCOLN = GeoPoint(40.8136, -96.7026)


class TestIpAddress:
    def test_valid(self):
        assert str(IpAddress("192.168.1.1")) == "192.168.1.1"

    @pytest.mark.parametrize(
        "bad", ["1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "1.2.3.-1", ""]
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(NetworkError):
            IpAddress(bad)


class TestIpAllocator:
    def test_uniqueness(self):
        allocator = IpAllocator(seed=1)
        addresses = {allocator.allocate().value for _ in range(500)}
        assert len(addresses) == 500

    def test_deterministic_given_seed(self):
        a = IpAllocator(seed=5).allocate()
        b = IpAllocator(seed=5).allocate()
        assert a == b


class TestGeoIpRegistry:
    def test_register_and_locate(self):
        registry = GeoIpRegistry()
        ip = IpAddress("10.0.0.1")
        registry.register(ip, LINCOLN)
        assert registry.locate(ip) == LINCOLN
        assert len(registry) == 1

    def test_unknown_ip_is_none(self):
        assert GeoIpRegistry().locate(IpAddress("10.0.0.2")) is None


class TestLatencyModel:
    def test_positive_samples(self):
        model = LatencyModel(seed=0)
        egress = Egress(ip=IpAddress("1.1.1.1"), kind=EgressKind.DIRECT)
        for _ in range(100):
            assert model.sample_rtt_s(egress) > 0.0

    def test_tor_much_slower_than_direct(self):
        model = LatencyModel(seed=0, jitter_fraction=0.0)
        direct = Egress(ip=IpAddress("1.1.1.1"), kind=EgressKind.DIRECT)
        tor = Egress(ip=IpAddress("2.2.2.2"), kind=EgressKind.TOR)
        assert model.sample_rtt_s(tor) > 10 * model.sample_rtt_s(direct)

    def test_proxy_slower_than_nat(self):
        model = LatencyModel(seed=0, jitter_fraction=0.0)
        nat = Egress(ip=IpAddress("1.1.1.1"), kind=EgressKind.NAT)
        proxy = Egress(ip=IpAddress("2.2.2.2"), kind=EgressKind.PROXY)
        assert model.sample_rtt_s(proxy) > model.sample_rtt_s(nat)

    def test_invalid_jitter_rejected(self):
        with pytest.raises(NetworkError):
            LatencyModel(jitter_fraction=1.5)


class TestNetwork:
    def test_create_egress_registers_geoip(self):
        network = Network(seed=0)
        egress = network.create_egress(location=LINCOLN)
        assert network.geoip.locate(egress.ip) == LINCOLN

    def test_create_egress_without_geoip(self):
        network = Network(seed=0)
        egress = network.create_egress(location=LINCOLN, register_geoip=False)
        assert network.geoip.locate(egress.ip) is None

    def test_egress_reverse_lookup(self):
        network = Network(seed=0)
        egress = network.create_egress()
        assert network.egress_for_ip(egress.ip) is egress

    def test_egress_client_tracking(self):
        egress = Egress(ip=IpAddress("1.1.1.1"), kind=EgressKind.NAT)
        egress.add_client("alice")
        egress.add_client("bob")
        egress.add_client("alice")
        assert egress.clients == ["alice", "bob"]
