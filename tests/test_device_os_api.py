"""Unit tests for the OS location API and the API-hook spoofing channel."""

import pytest

from repro.device.gps import FakeGpsModule, HardwareGpsModule
from repro.device.os_api import (
    GPS_PROVIDER,
    NETWORK_PROVIDER,
    LocationApi,
    fixed_location_hook,
    remote_feed_hook,
)
from repro.errors import DeviceError
from repro.geo.coordinates import GeoPoint
from repro.geo.distance import haversine_m
from repro.simnet.clock import SimClock

ABQ = GeoPoint(35.0844, -106.6504)
SF = GeoPoint(37.8080, -122.4177)


@pytest.fixture
def api():
    clock = SimClock()
    api = LocationApi(clock)
    api.register_provider(GPS_PROVIDER, HardwareGpsModule(ABQ, seed=1))
    return api, clock


class TestProviders:
    def test_register_and_list(self, api):
        location_api, _ = api
        assert location_api.providers() == [GPS_PROVIDER]
        location_api.register_provider(
            NETWORK_PROVIDER, FakeGpsModule(ABQ, accuracy_m=500.0)
        )
        assert NETWORK_PROVIDER in location_api.providers()

    def test_remove_provider(self, api):
        location_api, _ = api
        assert location_api.remove_provider(GPS_PROVIDER)
        assert not location_api.remove_provider(GPS_PROVIDER)
        assert location_api.get_last_known_location(GPS_PROVIDER) is None

    def test_empty_name_rejected(self, api):
        location_api, _ = api
        with pytest.raises(DeviceError):
            location_api.register_provider("", FakeGpsModule(ABQ))

    def test_get_last_known_location(self, api):
        location_api, _ = api
        fix = location_api.get_last_known_location(GPS_PROVIDER)
        assert haversine_m(fix.location, ABQ) < 50.0

    def test_best_fix_prefers_accuracy(self, api):
        location_api, _ = api
        location_api.register_provider(
            NETWORK_PROVIDER, FakeGpsModule(SF, accuracy_m=500.0)
        )
        best = location_api.best_fix()
        # GPS (5 m accuracy) beats the coarse network provider.
        assert haversine_m(best.location, ABQ) < 100.0

    def test_fix_timestamp_follows_clock(self, api):
        location_api, clock = api
        clock.advance(123.0)
        fix = location_api.get_last_known_location(GPS_PROVIDER)
        assert fix.timestamp == 123.0


class TestApiHook:
    def test_fixed_hook_overrides_all_providers(self, api):
        # §3.1 channel 1: modify the GPS-related APIs.
        location_api, _ = api
        location_api.install_api_hook(fixed_location_hook(SF))
        assert location_api.hooked
        fix = location_api.get_last_known_location(GPS_PROVIDER)
        assert fix.location == SF

    def test_hook_applies_to_best_fix(self, api):
        location_api, _ = api
        location_api.install_api_hook(fixed_location_hook(SF))
        assert location_api.best_fix().location == SF

    def test_clear_hook_restores_truth(self, api):
        location_api, _ = api
        location_api.install_api_hook(fixed_location_hook(SF))
        location_api.clear_api_hook()
        assert not location_api.hooked
        fix = location_api.get_last_known_location(GPS_PROVIDER)
        assert haversine_m(fix.location, ABQ) < 50.0

    def test_remote_feed_hook_pulls_from_server(self, api):
        # The thesis's "from a server that returns fake GPS coordinates".
        location_api, _ = api
        feed_positions = [SF, ABQ]
        location_api.install_api_hook(
            remote_feed_hook(lambda: feed_positions[0])
        )
        assert location_api.best_fix().location == SF
        feed_positions[0] = ABQ
        assert location_api.best_fix().location == ABQ

    def test_hook_works_even_without_signal(self, api):
        # The hook manufactures fixes even when the real GPS has none —
        # e.g. indoors, where the genuine module returns None.
        location_api, _ = api
        location_api.remove_provider(GPS_PROVIDER)
        location_api.register_provider(
            GPS_PROVIDER, HardwareGpsModule(ABQ, has_signal=False)
        )
        location_api.install_api_hook(fixed_location_hook(SF))
        assert location_api.get_last_known_location(GPS_PROVIDER).location == SF
