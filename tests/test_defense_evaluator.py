"""Tests for the head-to-head defense evaluator (E11)."""

import pytest

from repro.defense.address_mapping import AddressMappingVerifier
from repro.defense.distance_bounding import DistanceBoundingVerifier
from repro.defense.evaluator import (
    ClaimWorkload,
    evaluate_verifiers,
    format_evaluation_table,
)
from repro.defense.wifi_verification import deploy_routers
from repro.errors import DefenseError
from repro.geo.regions import city_by_name
from repro.lbsn.service import LbsnService

ATTACKER_AT = city_by_name("Albuquerque, NM").center


@pytest.fixture(scope="module")
def evaluation_setup(world, web_stack):
    workload = ClaimWorkload(world.service, network=web_stack.network, seed=5)
    honest = workload.honest_claims(150)
    naive = workload.spoofed_claims(150, attacker_at=ATTACKER_AT)
    proxied = workload.spoofed_claims(
        150, attacker_at=ATTACKER_AT, proxy_near_target=True
    )
    verifiers = [
        DistanceBoundingVerifier(seed=2),
        AddressMappingVerifier(web_stack.network.geoip),
        deploy_routers(world.service, fraction=1.0),
    ]
    return workload, honest, naive, proxied, verifiers


class TestWorkloads:
    def test_honest_claims_are_at_the_venue(self, evaluation_setup):
        workload, honest, *_ = evaluation_setup
        from repro.geo.distance import haversine_m

        for claim in honest[:20]:
            assert (
                haversine_m(claim.physical_location, claim.venue_location)
                < 200.0
            )

    def test_spoofed_claims_are_remote(self, evaluation_setup):
        workload, _, naive, *_ = evaluation_setup
        from repro.geo.distance import haversine_m

        for claim in naive[:20]:
            assert (
                haversine_m(claim.physical_location, claim.venue_location)
                >= 50_000.0
            )

    def test_empty_service_rejected(self):
        with pytest.raises(DefenseError):
            ClaimWorkload(LbsnService())


class TestNaiveAttacker:
    def test_all_three_defenses_detect(self, evaluation_setup):
        _, honest, naive, _, verifiers = evaluation_setup
        evaluations = evaluate_verifiers(verifiers, honest, naive)
        for evaluation in evaluations:
            assert evaluation.detection_rate > 0.95, evaluation.name

    def test_false_positives_low(self, evaluation_setup):
        _, honest, naive, _, verifiers = evaluation_setup
        evaluations = evaluate_verifiers(verifiers, honest, naive)
        for evaluation in evaluations:
            assert evaluation.false_positive_rate < 0.05, evaluation.name


class TestProxyAttacker:
    def test_address_mapping_evaded_physics_not(self, evaluation_setup):
        # The thesis ranks address mapping "least accurate": a proxy near
        # the claimed venue defeats it completely, while defenses that
        # sense the physical device are untouched.
        _, honest, _, proxied, verifiers = evaluation_setup
        evaluations = {
            e.name: e for e in evaluate_verifiers(verifiers, honest, proxied)
        }
        assert evaluations["address-mapping"].detection_rate < 0.05
        assert evaluations["distance-bounding"].detection_rate > 0.95
        assert evaluations["wifi-venue-verification"].detection_rate > 0.95


class TestPartialWifiCoverage:
    def test_detection_scales_with_coverage(self, world, web_stack):
        workload = ClaimWorkload(
            world.service, network=web_stack.network, seed=6
        )
        attacks = workload.spoofed_claims(200, attacker_at=ATTACKER_AT)
        rates = []
        for fraction in (0.0, 0.5, 1.0):
            wifi = deploy_routers(
                world.service, fraction=fraction, fallback_accept=True
            )
            (evaluation,) = evaluate_verifiers([wifi], [], attacks)
            rates.append(evaluation.detection_rate)
        assert rates[0] == 0.0
        assert rates[0] < rates[1] < rates[2]
        assert rates[2] > 0.95


class TestFormatting:
    def test_table_rows(self, evaluation_setup):
        _, honest, naive, _, verifiers = evaluation_setup
        rows = format_evaluation_table(
            evaluate_verifiers(verifiers, honest, naive)
        )
        assert len(rows) == 3
        assert all("detect=" in row for row in rows)
