"""Unit tests for the LBSN service: the full check-in pipeline."""

import pytest

from repro.errors import ServiceError
from repro.geo.coordinates import GeoPoint
from repro.geo.distance import destination_point
from repro.lbsn.cheater_code import RULE_FREQUENT, RULE_SUPERHUMAN
from repro.lbsn.models import CheckInStatus, Special
from repro.lbsn.service import RULE_GPS_VERIFICATION, LbsnService
from repro.simnet.clock import SECONDS_PER_DAY

ABQ = GeoPoint(35.0844, -106.6504)
SF = GeoPoint(37.8080, -122.4177)


@pytest.fixture
def populated():
    service = LbsnService()
    user = service.register_user("Tester", username="tester")
    venue = service.create_venue("Coffee Corner", ABQ, city="Albuquerque, NM")
    return service, user, venue


class TestRegistration:
    def test_sequential_user_ids(self, service):
        first = service.register_user("A")
        second = service.register_user("B")
        assert (first.user_id, second.user_id) == (1, 2)

    def test_sequential_venue_ids(self, service):
        v1 = service.create_venue("V1", ABQ)
        v2 = service.create_venue("V2", ABQ)
        assert (v1.venue_id, v2.venue_id) == (1, 2)

    def test_empty_names_rejected(self, service):
        with pytest.raises(ServiceError):
            service.register_user("")
        with pytest.raises(ServiceError):
            service.create_venue("", ABQ)

    def test_duplicate_username_rejected(self, service):
        service.register_user("A", username="dup")
        with pytest.raises(ServiceError):
            service.register_user("B", username="dup")

    def test_lookup_by_username(self, service):
        user = service.register_user("A", username="alpha")
        assert service.store.get_user_by_username("alpha") is user


class TestGpsVerification:
    def test_nearby_report_accepted(self, populated):
        service, user, venue = populated
        result = service.check_in(user.user_id, venue.venue_id, ABQ)
        assert result.checkin.status is CheckInStatus.VALID

    def test_distant_report_rejected(self, populated):
        # Claiming a venue while the GPS says 1000+ km away fails the
        # server's GPS verification outright.
        service, user, venue = populated
        result = service.check_in(user.user_id, venue.venue_id, SF)
        assert result.checkin.status is CheckInStatus.REJECTED
        assert result.checkin.flagged_rule == RULE_GPS_VERIFICATION
        assert not result.rewarded

    def test_rejected_checkin_not_counted(self, populated):
        service, user, venue = populated
        service.check_in(user.user_id, venue.venue_id, SF)
        assert user.total_checkins == 0
        assert service.store.checkin_count() == 0

    def test_edge_of_radius_accepted(self, populated):
        service, user, venue = populated
        near = destination_point(ABQ, 0.0, 900.0)
        result = service.check_in(user.user_id, venue.venue_id, near)
        assert result.checkin.status is CheckInStatus.VALID

    def test_unknown_user_or_venue(self, populated):
        service, user, venue = populated
        with pytest.raises(ServiceError):
            service.check_in(999, venue.venue_id, ABQ)
        with pytest.raises(ServiceError):
            service.check_in(user.user_id, 999, ABQ)


class TestRewardPipeline:
    def test_first_checkin_rewards(self, populated):
        service, user, venue = populated
        result = service.check_in(user.user_id, venue.venue_id, ABQ)
        assert result.points > 0
        assert "Newbie" in result.new_badges
        assert result.became_mayor  # sole visitor takes the crown
        assert user.points == result.points
        assert user.valid_checkins == 1

    def test_venue_counters_update(self, populated):
        service, user, venue = populated
        service.check_in(user.user_id, venue.venue_id, ABQ)
        assert venue.checkin_count == 1
        assert venue.unique_visitor_count == 1
        assert venue.recent_visitors == [user.user_id]

    def test_flagged_checkin_counts_but_earns_nothing(self, populated):
        # §4.3's policy: flagged check-ins "still count in the total
        # number of check-ins, but do not receive any rewards".
        service, user, venue = populated
        remote = service.create_venue("Remote", SF, city="San Francisco, CA")
        service.check_in(user.user_id, venue.venue_id, ABQ)
        points_before = user.points
        result = service.check_in(
            user.user_id, remote.venue_id, SF,
            timestamp=service.clock.now() + 60.0,
        )
        assert result.checkin.status is CheckInStatus.FLAGGED
        assert result.checkin.flagged_rule == RULE_SUPERHUMAN
        assert user.total_checkins == 2
        assert user.valid_checkins == 1
        assert user.points == points_before
        assert remote.checkin_count == 0
        assert remote.recent_visitors == []

    def test_same_venue_within_hour_rejected(self, populated):
        service, user, venue = populated
        service.check_in(user.user_id, venue.venue_id, ABQ)
        result = service.check_in(
            user.user_id, venue.venue_id, ABQ,
            timestamp=service.clock.now() + 600.0,
        )
        assert result.checkin.status is CheckInStatus.REJECTED
        assert result.checkin.flagged_rule == RULE_FREQUENT
        assert user.total_checkins == 1

    def test_first_of_day_bonus_applies_once(self, populated):
        service, user, venue = populated
        other = service.create_venue(
            "Second Venue", destination_point(ABQ, 90.0, 400.0)
        )
        first = service.check_in(
            user.user_id, venue.venue_id, ABQ, timestamp=1_000.0
        )
        second = service.check_in(
            user.user_id,
            other.venue_id,
            other.location,
            timestamp=3_500.0,
        )
        # First: base + first-visit + first-of-day + mayor = 1+2+3+5.
        assert first.points == 11
        # Second: base + first-visit + mayor (no first-of-day).
        assert second.points == 8


class TestMayorshipFlow:
    def test_mayor_transfer_emits_loser(self, populated):
        service, user, venue = populated
        rival = service.register_user("Rival")
        service.check_in(
            user.user_id, venue.venue_id, ABQ, timestamp=1_000.0
        )
        assert venue.mayor_id == user.user_id
        # Rival checks in on 3 distinct days; incumbent has 1 day.
        result = None
        for day in range(1, 4):
            result = service.check_in(
                rival.user_id,
                venue.venue_id,
                ABQ,
                timestamp=day * SECONDS_PER_DAY + 1_000.0,
            )
        assert venue.mayor_id == rival.user_id
        assert result.became_mayor or result.checkin.status is CheckInStatus.VALID
        assert service.mayorship_count(user.user_id) == 0
        assert service.mayorship_count(rival.user_id) == 1
        assert user.mayorship_count == 0
        assert rival.mayorship_count == 1

    def test_refresh_mayorship_ages_out(self, populated):
        service, user, venue = populated
        service.check_in(user.user_id, venue.venue_id, ABQ, timestamp=0.0)
        assert venue.mayor_id == user.user_id
        service.clock.advance_to(70 * SECONDS_PER_DAY)
        service.refresh_mayorship(venue.venue_id)
        assert venue.mayor_id is None
        assert service.mayorship_count(user.user_id) == 0

    def test_refresh_all_counts_changes(self, populated):
        service, user, venue = populated
        service.check_in(user.user_id, venue.venue_id, ABQ, timestamp=0.0)
        service.clock.advance_to(70 * SECONDS_PER_DAY)
        assert service.refresh_all_mayorships() == 1
        assert service.refresh_all_mayorships() == 0


class TestSpecials:
    def test_mayor_only_special_unlocks_with_crown(self, service):
        user = service.register_user("A")
        venue = service.create_venue(
            "Cafe", ABQ, special=Special("Free coffee for the mayor!")
        )
        result = service.check_in(user.user_id, venue.venue_id, ABQ)
        assert result.became_mayor
        assert result.special_unlocked is venue.special

    def test_count_special_unlocks_at_threshold(self, service):
        user = service.register_user("A")
        venue = service.create_venue(
            "Cafe",
            ABQ,
            special=Special(
                "Free drink on 2nd visit", mayor_only=False, unlock_checkins=2
            ),
        )
        first = service.check_in(
            user.user_id, venue.venue_id, ABQ, timestamp=0.0
        )
        assert first.special_unlocked is None
        second = service.check_in(
            user.user_id, venue.venue_id, ABQ, timestamp=7_200.0
        )
        assert second.special_unlocked is venue.special


class TestNearbyVenues:
    def test_nearby_ordering_and_radius(self, service):
        close = service.create_venue("Close", destination_point(ABQ, 0, 100.0))
        farther = service.create_venue(
            "Farther", destination_point(ABQ, 0, 800.0)
        )
        service.create_venue("Out of range", destination_point(ABQ, 0, 5_000.0))
        nearby = service.nearby_venues(ABQ)
        assert [v.venue_id for v in nearby] == [close.venue_id, farther.venue_id]

    def test_nearby_limit(self, service):
        for index in range(40):
            service.create_venue(
                f"V{index}", destination_point(ABQ, index * 9.0, 500.0)
            )
        assert len(service.nearby_venues(ABQ)) == service.config.nearby_limit


class TestCounters:
    def test_counter_totals(self, populated):
        service, user, venue = populated
        service.check_in(user.user_id, venue.venue_id, ABQ, timestamp=0.0)
        service.check_in(user.user_id, venue.venue_id, ABQ, timestamp=60.0)
        assert service.counters.valid == 1
        assert service.counters.rejected == 1
