"""Tests for the naive-bot baseline and the multi-account fleet."""

import pytest

from repro.attack.fleet import AttackFleet, partition_targets
from repro.attack.naive import NaiveAutoCheckinBot, NaiveBotConfig
from repro.attack.spoofing import build_emulator_attacker
from repro.attack.targeting import TargetVenue
from repro.errors import ReproError
from repro.geo.coordinates import GeoPoint
from repro.geo.distance import destination_point, haversine_m
from repro.geo.regions import US_CITIES
from repro.lbsn.service import LbsnService

ABQ = GeoPoint(35.0844, -106.6504)


def targets_from_venues(venues):
    return [
        TargetVenue(
            venue_id=venue.venue_id,
            name=venue.name,
            latitude=venue.location.latitude,
            longitude=venue.location.longitude,
            special=None,
            reason="test",
        )
        for venue in venues
    ]


def cross_country_service(count=12):
    service = LbsnService()
    venues = [
        service.create_venue(f"V{index}", US_CITIES[index % len(US_CITIES)].center)
        for index in range(count)
    ]
    return service, venues


def city_service(count=12):
    service = LbsnService()
    venues = [
        service.create_venue(
            f"V{index}",
            destination_point(ABQ, index * 30.0, 800.0 + 150.0 * index),
        )
        for index in range(count)
    ]
    return service, venues


class TestNaiveBot:
    def test_cross_country_bot_gets_caught(self):
        # The §2.2 baseline: Autosquare-style hammering across cities is
        # flagged almost immediately by the speed rule.
        service, venues = cross_country_service()
        _, _, channel = build_emulator_attacker(service)
        bot = NaiveAutoCheckinBot(service.clock, channel)
        report = bot.run(targets_from_venues(venues))
        assert report.attempts == len(venues)
        assert report.detected >= report.attempts - 2
        assert report.rewarded <= 2

    def test_scheduler_beats_naive_on_same_targets(self):
        # Head-to-head: same targets, naive bot vs the §3.3 scheduler.
        from repro.attack.campaign import CheatingCampaign

        service, venues = cross_country_service()
        targets = targets_from_venues(venues)

        _, _, naive_channel = build_emulator_attacker(service)
        naive = NaiveAutoCheckinBot(service.clock, naive_channel).run(targets)

        _, _, smart_channel = build_emulator_attacker(service)
        campaign = CheatingCampaign(service.clock, smart_channel)
        smart = campaign.harvest(targets)

        assert naive.detected > 0
        assert smart.detected == 0
        assert smart.rewarded > naive.rewarded

    def test_dense_city_bot_trips_rapid_fire_or_frequent(self):
        service = LbsnService()
        venues = [
            service.create_venue(
                f"Mall {index}", destination_point(ABQ, index * 30.0, 60.0)
            )
            for index in range(8)
        ]
        _, _, channel = build_emulator_attacker(service)
        bot = NaiveAutoCheckinBot(
            service.clock, channel, NaiveBotConfig(interval_s=30.0)
        )
        report = bot.run(targets_from_venues(venues))
        assert report.flagged > 0

    def test_invalid_inputs(self):
        service = LbsnService()
        _, _, channel = build_emulator_attacker(service)
        with pytest.raises(ReproError):
            NaiveAutoCheckinBot(
                service.clock, channel, NaiveBotConfig(interval_s=0.0)
            )
        bot = NaiveAutoCheckinBot(service.clock, channel)
        with pytest.raises(ReproError):
            bot.run([])


class TestPartitioning:
    def test_partition_counts(self):
        service, venues = city_service(10)
        targets = targets_from_venues(venues)
        batches = partition_targets(targets, 3)
        assert sum(len(batch) for batch in batches) == 10
        assert all(batch for batch in batches)

    def test_partition_is_geographically_coherent(self):
        # Two far-apart clusters, two accounts: each account should get
        # one cluster, not a mix.
        service = LbsnService()
        cluster_a = [
            service.create_venue(
                f"A{index}", destination_point(ABQ, index * 40.0, 500.0)
            )
            for index in range(4)
        ]
        far = destination_point(ABQ, 90.0, 800_000.0)
        cluster_b = [
            service.create_venue(
                f"B{index}", destination_point(far, index * 40.0, 500.0)
            )
            for index in range(4)
        ]
        targets = targets_from_venues(cluster_a + cluster_b)
        batches = partition_targets(targets, 2)
        for batch in batches:
            points = [GeoPoint(t.latitude, t.longitude) for t in batch]
            spread = max(
                haversine_m(points[0], point) for point in points
            )
            assert spread < 100_000.0

    def test_single_account_gets_everything(self):
        service, venues = city_service(5)
        batches = partition_targets(targets_from_venues(venues), 1)
        assert len(batches) == 1
        assert len(batches[0]) == 5

    def test_invalid_account_count(self):
        with pytest.raises(ReproError):
            partition_targets([], 0)


class TestFleet:
    def test_fleet_sweeps_undetected(self):
        service, venues = city_service(12)
        fleet = AttackFleet(service, accounts=3)
        report = fleet.sweep(targets_from_venues(venues))
        assert report.accounts == 3
        assert report.attempts == 12
        assert report.detected == 0
        assert report.rewarded == 12
        assert report.mayorships_won == 12

    def test_fleet_makespan_shrinks_with_accounts(self):
        # More accounts = shorter per-account sweeps: the scale-up payoff.
        def makespan(accounts):
            service, venues = cross_country_service(12)
            fleet = AttackFleet(service, accounts=accounts)
            return fleet.sweep(targets_from_venues(venues)).makespan_s

        assert makespan(4) < makespan(1)

    def test_fleet_accounts_are_distinct_users(self):
        service, venues = city_service(6)
        fleet = AttackFleet(service, accounts=3)
        fleet.sweep(targets_from_venues(venues))
        names = {
            user.display_name
            for user in service.store.iter_users()
            if user.display_name.startswith("Fleet Account")
        }
        assert len(names) == 3

    def test_invalid_fleet_size(self):
        with pytest.raises(ReproError):
            AttackFleet(LbsnService(), accounts=0)
