"""Unit tests for the ID frontier."""

import threading

from repro.crawler.frontier import CrawlMode, IdFrontier


class TestDispensing:
    def test_sequential_ids(self):
        frontier = IdFrontier(CrawlMode.USER)
        assert [frontier.next_id() for _ in range(3)] == [1, 2, 3]

    def test_url_format(self):
        assert IdFrontier(CrawlMode.USER).url_for(42) == "/user/42"
        assert IdFrontier(CrawlMode.VENUE).url_for(7) == "/venue/7"

    def test_stop_at_cap(self):
        frontier = IdFrontier(CrawlMode.USER, start=5, stop_at=6)
        assert frontier.next_id() == 5
        assert frontier.next_id() == 6
        assert frontier.next_id() is None
        assert frontier.exhausted


class TestExhaustion:
    def test_miss_run_past_highest_hit_exhausts(self):
        frontier = IdFrontier(CrawlMode.USER, miss_threshold=3)
        for _ in range(5):
            frontier.next_id()
        frontier.report_hit(2)
        frontier.report_miss(3)
        frontier.report_miss(4)
        assert not frontier.exhausted
        frontier.report_miss(5)
        assert frontier.exhausted
        assert frontier.next_id() is None

    def test_hit_resets_miss_run(self):
        frontier = IdFrontier(CrawlMode.USER, miss_threshold=2)
        frontier.report_miss(1)
        frontier.report_hit(2)
        frontier.report_miss(3)
        assert not frontier.exhausted
        assert frontier.highest_hit == 2

    def test_misses_below_highest_hit_ignored(self):
        # Deleted profiles inside the ID space must not end the crawl.
        frontier = IdFrontier(CrawlMode.USER, miss_threshold=2)
        frontier.report_hit(100)
        for gap_id in range(3, 50):
            frontier.report_miss(gap_id)
        assert not frontier.exhausted


class TestConcurrency:
    def test_ids_unique_across_threads(self):
        frontier = IdFrontier(CrawlMode.VENUE, stop_at=2_000)
        seen = []
        lock = threading.Lock()

        def worker():
            while True:
                value = frontier.next_id()
                if value is None:
                    return
                with lock:
                    seen.append(value)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(seen) == list(range(1, 2_001))
