"""Tests for the live suspicion ledger: scoring, churn, inline defense,
and online-vs-offline parity on a full seeded world."""

import pytest

from repro.analysis.detection import CheaterDetector, DetectorConfig
from repro.crawler import crawl_full_site
from repro.defense.distance_bounding import DistanceBoundingVerifier
from repro.defense.integration import (
    RULE_STREAM_SUSPECT,
    DefendedLbsnService,
    DeviceRegistry,
    registry_locator,
)
from repro.geo.coordinates import GeoPoint
from repro.geo.regions import US_CITIES
from repro.lbsn.models import CheckInStatus
from repro.lbsn.service import LbsnService
from repro.stream import CheckInAccepted, EventBus, SuspicionLedger
from repro.workload import build_web_stack, build_world

HERE = GeoPoint(35.0844, -106.6504)


def accepted(user_id, venue_id, ts, where=HERE, badges=0):
    return CheckInAccepted(
        seq=-1,
        timestamp=ts,
        user_id=user_id,
        venue_id=venue_id,
        venue_location=where,
        reported_location=where,
        new_badge_count=badges,
    )


class TestLedgerScoring:
    def test_below_min_total_never_reported(self):
        ledger = SuspicionLedger(DetectorConfig(min_total_checkins=50))
        for i in range(30):
            ledger.on_event(accepted(1, i, ts=float(i)))
        assert not ledger.is_suspect(1)
        assert len(ledger) == 0

    def test_strong_activity_factor_reports(self):
        # 25 distinct venues, well-badged: only the activity factor is hot
        # (recent == total), and a single screaming factor suffices.
        ledger = SuspicionLedger(DetectorConfig(min_total_checkins=20))
        for i in range(25):
            ledger.on_event(accepted(1, i, ts=float(i), badges=2))
        report = ledger.score_user(1)
        assert report.activity_score == 1.0
        assert report.reward_score == 0.0
        assert ledger.is_suspect(1)

    def test_suspect_leaves_ledger_when_displaced(self):
        ledger = SuspicionLedger(DetectorConfig(min_total_checkins=20))
        for i in range(25):
            ledger.on_event(accepted(1, i, ts=float(i), badges=2))
        assert ledger.is_suspect(1)
        # Ten later visitors per venue push user 1 off every recent list.
        ts = 100.0
        for venue in range(25):
            for other in range(2, 13):
                ts += 1.0
                ledger.on_event(accepted(other, venue, ts=ts, badges=2))
        assert not ledger.is_suspect(1)

    def test_top_k_orders_by_combined_score(self):
        ledger = SuspicionLedger(DetectorConfig(min_total_checkins=10))
        # User 1: one city.  User 2: many cities -> higher pattern score.
        for i in range(15):
            ledger.on_event(accepted(1, i, ts=float(i)))
        for i, city in enumerate(US_CITIES[:15]):
            ledger.on_event(accepted(2, 100 + i, ts=float(i), where=city.center))
        top = ledger.top(2)
        assert [r.user_id for r in top] == [2, 1]
        assert top[0].city_count == 15

    def test_events_processed_and_seq_watermark(self):
        ledger = SuspicionLedger()
        bus = EventBus()
        ledger.attach(bus)
        for i in range(5):
            bus.publish(accepted(1, i, ts=float(i)))
        assert ledger.events_processed == 5
        assert ledger.last_seq == 4


class TestInlineDefense:
    def test_ledger_verdict_refuses_checkins(self):
        config = DetectorConfig(min_total_checkins=20)
        bus = EventBus()
        ledger = SuspicionLedger(config).attach(bus)
        service = LbsnService(event_bus=bus)
        registry = DeviceRegistry()
        defended = DefendedLbsnService(
            service,
            DistanceBoundingVerifier(seed=1),
            registry_locator(registry),
            suspicion_ledger=ledger,
        )
        cheater = service.register_user("Cheater")
        venues = [
            service.create_venue(f"V{i}", HERE) for i in range(30)
        ]
        registry.place(cheater.user_id, HERE)
        # Burn through venues (2h apart — no cheater-code trips); once the
        # account crosses the reporting bar the ledger starts refusing.
        results = [
            defended.check_in(
                cheater.user_id, venue.venue_id, HERE,
                timestamp=7_200.0 * (i + 1),
            )
            for i, venue in enumerate(venues[:25])
        ]
        assert ledger.is_suspect(cheater.user_id)
        assert defended.stats.ledger_refused > 0
        refused = [
            r for r in results
            if r.checkin.flagged_rule == RULE_STREAM_SUSPECT
        ]
        assert len(refused) == defended.stats.ledger_refused
        # The gate stays shut for further attempts.
        result = defended.check_in(
            cheater.user_id, venues[25].venue_id, HERE,
            timestamp=7_200.0 * 40,
        )
        assert result.checkin.status is CheckInStatus.REJECTED
        assert result.checkin.flagged_rule == RULE_STREAM_SUSPECT

    def test_honest_user_unaffected(self):
        bus = EventBus()
        ledger = SuspicionLedger(DetectorConfig(min_total_checkins=20)).attach(bus)
        service = LbsnService(event_bus=bus)
        registry = DeviceRegistry()
        defended = DefendedLbsnService(
            service,
            DistanceBoundingVerifier(seed=1),
            registry_locator(registry),
            suspicion_ledger=ledger,
        )
        user = service.register_user("Honest")
        venue = service.create_venue("Cafe", HERE)
        registry.place(user.user_id, HERE)
        result = defended.check_in(user.user_id, venue.venue_id, HERE)
        assert result.rewarded
        assert defended.stats.ledger_refused == 0


class TestOnlineOfflineParity:
    """The E19 acceptance: streaming flags >= 90% of offline suspects."""

    @pytest.fixture(scope="class")
    def streamed_world(self):
        config = DetectorConfig(min_total_checkins=100)
        bus = EventBus()
        ledger = SuspicionLedger(config=config).attach(bus)
        service = LbsnService(event_bus=bus)
        world = build_world(scale=0.0004, seed=20_110_601, service=service)
        return world, bus, ledger, config

    def test_world_streams_through_pipeline(self, streamed_world):
        world, bus, ledger, _ = streamed_world
        assert bus.published > 0
        assert ledger.events_processed > 1_000

    def test_streaming_flags_offline_suspects(self, streamed_world):
        world, bus, ledger, config = streamed_world
        stack = build_web_stack(world, seed=11)
        database, _, _ = crawl_full_site(
            stack.transport, [stack.network.create_egress()]
        )
        offline = CheaterDetector(database, config).find_suspects()
        offline_ids = {r.user_id for r in offline}
        assert offline_ids, "seeded world must contain offline suspects"
        online_ids = set(ledger.suspect_ids())
        overlap = offline_ids & online_ids
        assert len(overlap) / len(offline_ids) >= 0.9

    def test_planted_mega_cheater_caught_online(self, streamed_world):
        world, bus, ledger, _ = streamed_world
        mega = world.roster.mega_cheater
        assert mega is not None
        assert ledger.is_suspect(mega.user_id)
        report = ledger.score_user(mega.user_id)
        assert report.city_count >= 10
