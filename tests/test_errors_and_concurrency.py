"""Exception-hierarchy tests and cross-component concurrency."""

import threading


from repro import errors


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in (
            "GeoError",
            "NetworkError",
            "HttpError",
            "ServiceError",
            "CheatDetectedError",
            "DeviceError",
            "CrawlError",
            "DefenseError",
        ):
            exc_class = getattr(errors, name)
            assert issubclass(exc_class, errors.ReproError)

    def test_http_error_carries_status(self):
        exc = errors.HttpError(429)
        assert exc.status == 429
        assert "429" in str(exc)

    def test_cheat_detected_carries_rule(self):
        exc = errors.CheatDetectedError("super-human-speed")
        assert exc.rule == "super-human-speed"
        assert "super-human-speed" in str(exc)

    def test_http_error_is_network_error(self):
        assert issubclass(errors.HttpError, errors.NetworkError)

    def test_cheat_detected_is_service_error(self):
        assert issubclass(errors.CheatDetectedError, errors.ServiceError)


class TestCrawlerDuringLiveTraffic:
    def test_crawl_while_attack_campaign_runs(self):
        """The crawler hammers the site from threads while a spoofing
        campaign mutates service state; both must complete cleanly and
        the final crawl must be internally consistent."""
        from repro.attack import (
            CheatingCampaign,
            TargetVenue,
            build_emulator_attacker,
        )
        from repro.crawler import (
            CrawlDatabase,
            CrawlMode,
            MultiThreadedCrawler,
        )
        from repro.workload import build_web_stack, build_world

        world = build_world(scale=0.0003, seed=303)
        stack = build_web_stack(world, seed=304)
        service = world.service

        crawl_errors = []
        databases = []

        def crawl_loop():
            try:
                for _ in range(3):
                    database = CrawlDatabase()
                    crawler = MultiThreadedCrawler(
                        stack.transport,
                        database,
                        CrawlMode.VENUE,
                        [stack.network.create_egress()],
                        threads_per_machine=6,
                    )
                    crawler.run()
                    databases.append(database)
            except Exception as exc:  # pragma: no cover
                crawl_errors.append(exc)

        crawl_thread = threading.Thread(target=crawl_loop)
        crawl_thread.start()

        # Meanwhile, the attacker harvests venues.
        _, _, channel = build_emulator_attacker(service)
        venues = world.service.store.iter_venues()[:20]
        targets = [
            TargetVenue(
                venue_id=venue.venue_id,
                name=venue.name,
                latitude=venue.location.latitude,
                longitude=venue.location.longitude,
                special=None,
                reason="stress",
            )
            for venue in venues
        ]
        campaign = CheatingCampaign(service.clock, channel)
        report = campaign.harvest(targets)
        crawl_thread.join(timeout=60.0)
        assert not crawl_thread.is_alive()
        assert not crawl_errors
        assert report.attempts == 20
        # The final crawl sees a consistent venue count.
        assert databases[-1].venue_count() == service.store.venue_count()

    def test_parallel_checkins_across_users(self):
        """Concurrent check-ins from many threads keep counters coherent."""
        from repro.geo.coordinates import GeoPoint
        from repro.geo.distance import destination_point
        from repro.lbsn.service import LbsnService

        service = LbsnService()
        anchor = GeoPoint(40.0, -100.0)
        venues = [
            service.create_venue(
                f"V{index}", destination_point(anchor, index * 7.0, 300.0)
            )
            for index in range(10)
        ]
        users = [service.register_user(f"U{index}") for index in range(8)]
        failures = []

        def worker(user):
            try:
                for round_index in range(20):
                    venue = venues[(user.user_id + round_index) % len(venues)]
                    service.check_in(
                        user.user_id,
                        venue.venue_id,
                        venue.location,
                        timestamp=round_index * 7_200.0 + user.user_id,
                    )
            except Exception as exc:  # pragma: no cover
                failures.append(exc)

        threads = [
            threading.Thread(target=worker, args=(user,)) for user in users
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        total_recorded = service.store.checkin_count()
        total_counted = sum(
            user.total_checkins for user in service.store.iter_users()
        )
        assert total_recorded == total_counted
        venue_total = sum(
            venue.checkin_count for venue in service.store.iter_venues()
        )
        valid_total = sum(
            user.valid_checkins for user in service.store.iter_users()
        )
        assert venue_total == valid_total
