"""Tests for black-box rule discovery (the thesis's own methodology)."""

import pytest

from repro.attack.probing import ProbedEnvelope, RuleProber
from repro.errors import ReproError
from repro.lbsn.cheater_code import CheaterCode, CheaterCodeConfig
from repro.lbsn.service import LbsnService


def service_with(config=None):
    service = LbsnService()
    if config is not None:
        service.cheater_code = CheaterCode(config)
    return service


class TestIndividualProbes:
    def test_discovers_the_one_hour_holddown(self):
        prober = RuleProber(service_with())
        hold = prober.probe_same_venue_hold()
        # True boundary: 3600 s.  The probe returns an accepted value
        # within its resolution of the boundary, from above.
        assert 3_600.0 <= hold <= 3_600.0 * 1.1

    def test_discovers_a_custom_holddown(self):
        config = CheaterCodeConfig(same_venue_interval_s=7_200.0)
        prober = RuleProber(service_with(config))
        hold = prober.probe_same_venue_hold()
        assert 7_200.0 <= hold <= 7_200.0 * 1.1

    def test_discovers_the_speed_ceiling(self):
        prober = RuleProber(service_with())
        speed = prober.probe_speed_ceiling()
        # True ceiling: 67 m/s; probe returns accepted value just below.
        assert 0.85 * 67.0 <= speed <= 67.0

    def test_discovers_a_custom_speed_ceiling(self):
        config = CheaterCodeConfig(max_speed_mps=200.0)
        prober = RuleProber(service_with(config))
        speed = prober.probe_speed_ceiling()
        assert 0.85 * 200.0 <= speed <= 200.0

    def test_discovers_the_rapid_fire_gap(self):
        prober = RuleProber(service_with())
        gap = prober.probe_rapid_fire_gap()
        # The rule's chain-break boundary is interval * 1.5 = 90 s.
        assert 85.0 <= gap <= 110.0

    def test_invalid_resolution(self):
        with pytest.raises(ReproError):
            RuleProber(service_with(), resolution=0.0)


class TestEnvelope:
    def test_probe_all_assembles_envelope(self):
        envelope = RuleProber(service_with()).probe_all()
        assert envelope.same_venue_hold_s >= 3_600.0
        assert envelope.safe_speed_mps <= 67.0
        assert envelope.rapid_fire_safe_gap_s >= 85.0

    def test_interval_for_respects_speed_margin(self):
        envelope = ProbedEnvelope(
            same_venue_hold_s=3_700.0,
            safe_speed_mps=60.0,
            rapid_fire_safe_gap_s=100.0,
        )
        interval = envelope.interval_for(48_000.0)  # 48 km hop
        implied = 48_000.0 / interval
        assert implied <= 60.0 * 0.8 + 1e-9
        # Short hops floor at the rapid-fire-safe spacing.
        assert envelope.interval_for(10.0) == 100.0

    def test_probed_envelope_schedules_cleanly_on_a_strict_service(self):
        """End-to-end generalisation: probe a STRICTER-than-Foursquare
        service, then run an attack paced by the probed envelope —
        undetected, where the stock scheduler would have been flagged."""
        from repro.attack.spoofing import build_emulator_attacker
        from repro.geo.coordinates import GeoPoint
        from repro.geo.distance import destination_point

        config = CheaterCodeConfig(
            max_speed_mps=3.0,  # walking pace only!
            same_venue_interval_s=2.0 * 3_600.0,
        )
        service = service_with(config)
        prober = RuleProber(service)
        envelope = prober.probe_all()
        assert envelope.safe_speed_mps <= 3.0

        anchor = GeoPoint(35.2, -106.6)
        venues = [
            service.create_venue(
                f"Strict V{index}",
                destination_point(anchor, index * 40.0, 4_000.0 * (index + 1)),
            )
            for index in range(5)
        ]
        _, _, channel = build_emulator_attacker(service)
        timestamp = service.clock.now()
        previous = None
        detected = 0
        for venue in venues:
            if previous is not None:
                from repro.geo.distance import haversine_m

                hop = haversine_m(previous.location, venue.location)
                timestamp += envelope.interval_for(hop)
            if timestamp > service.clock.now():
                service.clock.advance_to(timestamp)
            channel.set_location(venue.location)
            outcome = channel.check_in(venue.venue_id)
            if not outcome.rewarded:
                detected += 1
            previous = venue
        assert detected == 0
