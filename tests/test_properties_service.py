"""Stateful property testing of the LBSN service's bookkeeping.

Hypothesis drives random sequences of registrations and check-ins (honest,
teleporting, rapid) against a live service, then checks the global
invariants after every step: counters reconcile, mayorship indexes agree
from every direction, and flagged check-ins never produce rewards.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.geo.coordinates import GeoPoint
from repro.geo.distance import destination_point
from repro.lbsn.models import CheckInStatus
from repro.lbsn.service import LbsnService

ANCHOR = GeoPoint(39.0, -95.0)
FAR = GeoPoint(47.0, -122.0)


class ServiceMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self) -> None:
        self.service = LbsnService()
        self.users = []
        self.venues = []
        self.now = 0.0

    @rule(name_suffix=st.integers(min_value=0, max_value=10_000))
    def register_user(self, name_suffix):
        self.users.append(
            self.service.register_user(f"User {name_suffix}")
        )

    @rule(
        bearing=st.floats(min_value=0.0, max_value=360.0),
        distance=st.floats(min_value=0.0, max_value=5_000.0),
    )
    def create_venue(self, bearing, distance):
        location = destination_point(ANCHOR, bearing, distance)
        self.venues.append(
            self.service.create_venue(
                f"Venue {len(self.venues)}", location
            )
        )

    def _advance(self, seconds):
        self.now += seconds
        return self.now

    @rule(
        user_index=st.integers(min_value=0, max_value=50),
        venue_index=st.integers(min_value=0, max_value=50),
        gap_minutes=st.floats(min_value=0.5, max_value=300.0),
        teleport=st.booleans(),
    )
    def check_in(self, user_index, venue_index, gap_minutes, teleport):
        if not self.users or not self.venues:
            return
        user = self.users[user_index % len(self.users)]
        venue = self.venues[venue_index % len(self.venues)]
        timestamp = self._advance(gap_minutes * 60.0)
        location = FAR if teleport else venue.location
        result = self.service.check_in(
            user.user_id, venue.venue_id, location, timestamp=timestamp
        )
        # Local invariants on the single result.
        if result.checkin.status is not CheckInStatus.VALID:
            assert result.points == 0
            assert result.new_badges == []
            assert not result.became_mayor

    @invariant()
    def totals_reconcile(self):
        if not hasattr(self, "service"):
            return
        recorded = self.service.store.checkin_count()
        counted = sum(u.total_checkins for u in self.service.store.iter_users())
        assert recorded == counted

    @invariant()
    def valid_counts_reconcile(self):
        if not hasattr(self, "service"):
            return
        venue_valid = sum(
            v.checkin_count for v in self.service.store.iter_venues()
        )
        user_valid = sum(
            u.valid_checkins for u in self.service.store.iter_users()
        )
        assert venue_valid == user_valid

    @invariant()
    def mayorship_indexes_agree(self):
        if not hasattr(self, "service"):
            return
        # Venue -> mayor agrees with user.mayorship_count and the
        # service's per-user venue sets.
        by_user = {}
        for venue in self.service.store.iter_venues():
            if venue.mayor_id is not None:
                by_user[venue.mayor_id] = by_user.get(venue.mayor_id, 0) + 1
        for user in self.service.store.iter_users():
            expected = by_user.get(user.user_id, 0)
            assert user.mayorship_count == expected
            assert self.service.mayorship_count(user.user_id) == expected

    @invariant()
    def recent_visitor_lists_bounded_and_valid(self):
        if not hasattr(self, "service"):
            return
        for venue in self.service.store.iter_venues():
            assert len(venue.recent_visitors) <= venue.RECENT_VISITOR_LIMIT
            assert len(set(venue.recent_visitors)) == len(
                venue.recent_visitors
            )
            for user_id in venue.recent_visitors:
                assert user_id in venue.unique_visitors


TestServiceStateMachine = ServiceMachine.TestCase
TestServiceStateMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
