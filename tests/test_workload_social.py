"""Tests for friend-graph generation and the co-location friendship signal."""

import pytest

from repro.errors import ReproError
from repro.lbsn.service import LbsnService
from repro.workload.population import PopulationGenerator
from repro.workload.social import SocialGraphConfig, generate_friend_graph


@pytest.fixture(scope="module")
def graph_setup():
    service = LbsnService()
    generator = PopulationGenerator(service, seed=9)
    population = generator.generate(600)
    graph = generate_friend_graph(service, population.specs, seed=10)
    return service, population, graph


class TestGeneration:
    def test_edges_symmetric_on_user_records(self, graph_setup):
        service, population, graph = graph_setup
        for user_a, user_b in list(graph.edges)[:100]:
            first = service.store.get_user(user_a)
            second = service.store.get_user(user_b)
            assert user_b in first.friends
            assert user_a in second.friends

    def test_no_self_edges(self, graph_setup):
        _, _, graph = graph_setup
        assert all(a != b for a, b in graph.edges)

    def test_mean_degree_near_target(self, graph_setup):
        service, population, graph = graph_setup
        active = [s for s in population.specs if s.target_checkins > 0]
        degrees = [graph.degree(s.user_id) for s in active[:150]]
        mean = sum(degrees) / len(degrees)
        assert 1.0 < mean < 10.0

    def test_homophily(self, graph_setup):
        service, population, graph = graph_setup
        city_of = {s.user_id: s.home_city.name for s in population.specs}
        same = cross = 0
        for user_a, user_b in graph.edges:
            if city_of.get(user_a) == city_of.get(user_b):
                same += 1
            else:
                cross += 1
        assert same > cross

    def test_inactive_users_sparser(self, graph_setup):
        service, population, graph = graph_setup
        inactive = [s for s in population.specs if s.target_checkins == 0]
        active = [s for s in population.specs if s.target_checkins > 0]
        inactive_mean = sum(
            graph.degree(s.user_id) for s in inactive
        ) / max(1, len(inactive))
        active_mean = sum(graph.degree(s.user_id) for s in active) / max(
            1, len(active)
        )
        assert inactive_mean < active_mean

    def test_are_friends_symmetric(self, graph_setup):
        _, _, graph = graph_setup
        user_a, user_b = next(iter(graph.edges))
        assert graph.are_friends(user_a, user_b)
        assert graph.are_friends(user_b, user_a)
        assert not graph.are_friends(user_a, user_a)

    def test_invalid_config(self):
        service = LbsnService()
        with pytest.raises(ReproError):
            generate_friend_graph(
                service, [], config=SocialGraphConfig(mean_degree=-1.0)
            )


class TestCrawledFriends:
    def test_friend_ids_crawled(self, world, crawl_db):
        """Friend lists round-trip through the HTML pages into the crawl."""
        with_friends = [
            user
            for user in world.service.store.iter_users()
            if user.friends
        ][:30]
        assert with_friends
        for user in with_friends:
            row = crawl_db.user(user.user_id)
            assert set(row.friend_ids) == user.friends


class TestFriendshipSignal:
    def test_colocation_predicts_friendship(self):
        """Friends who really go places together are recovered with high
        lift over the base friendship rate."""
        from repro.analysis.privacy import friendship_signal
        from repro.crawler.snapshots import SnapshotStore
        from repro.geo.coordinates import GeoPoint
        from repro.lbsn.webserver import LbsnWebServer
        from repro.simnet.clock import SECONDS_PER_DAY
        from repro.simnet.http import HttpTransport, Router
        from repro.simnet.network import Network

        service = LbsnService()
        anchor = GeoPoint(41.0, -96.0)
        users = [service.register_user(f"U{i}") for i in range(20)]
        venues = [
            service.create_venue(f"V{i}", anchor) for i in range(40)
        ]
        # Users 0&1 are friends and move together; everyone else solo.
        users[0].friends.add(users[1].user_id)
        users[1].friends.add(users[0].user_id)
        router = Router()
        LbsnWebServer(service).install_routes(router)
        network = Network(seed=1)
        transport = HttpTransport(router, network, clock=service.clock)
        store = SnapshotStore(transport, [network.create_egress()], service.clock)
        store.take_snapshot()
        for day in range(4):
            service.clock.advance(SECONDS_PER_DAY)
            now = service.clock.now()
            venue = venues[day]
            service.check_in(users[0].user_id, venue.venue_id, anchor, timestamp=now)
            service.check_in(
                users[1].user_id, venue.venue_id, anchor, timestamp=now + 900.0
            )
            solo_venue = venues[10 + day]
            service.check_in(
                users[2 + day].user_id,
                solo_venue.venue_id,
                anchor,
                timestamp=now + 1_800.0,
            )
            store.take_snapshot()
        signal = friendship_signal(
            store.diffs(), store.latest().database, min_occurrences=2
        )
        assert signal.co_located_pairs >= 1
        assert signal.co_located_friend_rate == 1.0
        assert signal.lift > 10.0
