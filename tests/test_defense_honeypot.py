"""Honeypot-venue defense tier: seeding, the visibility law, flagging.

The registry's contract has two halves.  Seeding must put fake venues
into the *store* (and thus every crawl surface) while keeping them out
of every :class:`GeneratedVenues` list honest itineraries draw from —
the visibility law.  Flagging must catch any account whose check-in
stream touches a honeypot, exactly once, with the triggering trace, and
pin it onto the live ledger.
"""

import pytest

from repro.analysis.detection import DetectorConfig
from repro.defense.honeypot import (
    HONEYPOT_SPECIAL_TEXT,
    RULE_HONEYPOT,
    HoneypotRegistry,
)
from repro.errors import ReproError
from repro.geo.coordinates import GeoPoint
from repro.lbsn.models import VenueCategory
from repro.lbsn.service import LbsnService
from repro.obs.log import LogHub
from repro.obs.metrics import MetricsRegistry
from repro.stream.bus import EventBus
from repro.stream.events import CheckInAccepted, CheckInRejected
from repro.stream.ledger import SuspicionLedger
from repro.workload.scenario import build_world

HERE = GeoPoint(35.0844, -106.6504)


def small_service(venues: int = 20) -> LbsnService:
    service = LbsnService()
    for index in range(venues):
        service.create_venue(
            name=f"Real Venue {index}",
            location=GeoPoint(
                HERE.latitude + index * 0.01, HERE.longitude
            ),
            category=VenueCategory.COFFEE,
        )
    return service


def accepted(user_id, venue_id, ts=0.0, seq=1, trace_id=None):
    return CheckInAccepted(
        seq=seq,
        timestamp=ts,
        user_id=user_id,
        venue_id=venue_id,
        venue_location=HERE,
        reported_location=HERE,
        trace_id=trace_id,
    )


class TestSeeding:
    def test_density_sets_count_from_store_size(self):
        service = small_service(venues=200)
        registry = HoneypotRegistry(service)
        created = registry.seed(density=0.05, seed=1)
        assert len(created) == 10
        assert registry.honeypot_ids() == sorted(created)

    def test_density_floor_is_one_venue(self):
        service = small_service(venues=20)
        registry = HoneypotRegistry(service)
        assert len(registry.seed(density=0.001, seed=1)) == 1

    def test_zero_density_seeds_nothing(self):
        registry = HoneypotRegistry(small_service())
        assert registry.seed(density=0.0, seed=1) == []

    def test_explicit_count_overrides_density(self):
        registry = HoneypotRegistry(small_service())
        assert len(registry.seed(density=0.9, seed=1, count=3)) == 3

    def test_empty_world_refuses_to_seed(self):
        registry = HoneypotRegistry(LbsnService())
        with pytest.raises(ReproError):
            registry.seed(density=0.01, seed=1)

    def test_honeypots_wear_the_prime_target_profile(self):
        # §3.4's easy-target query — mayor-only special, no mayor — is
        # what exhaustive-enumeration attackers filter for; honeypots
        # must match it exactly or they catch nothing.
        service = small_service()
        registry = HoneypotRegistry(service)
        for venue_id in registry.seed(density=0.2, seed=3):
            venue = service.store.require_venue(venue_id)
            assert venue.special is not None
            assert venue.special.mayor_only
            assert venue.special.description == HONEYPOT_SPECIAL_TEXT
            assert venue.mayor_id is None
            assert registry.is_honeypot(venue_id)

    def test_seeding_is_deterministic(self):
        locations = []
        for _ in range(2):
            service = small_service()
            registry = HoneypotRegistry(service)
            ids = registry.seed(density=0.2, seed=9)
            locations.append(
                [
                    (
                        service.store.require_venue(venue_id).name,
                        round(
                            service.store.require_venue(
                                venue_id
                            ).location.latitude,
                            9,
                        ),
                    )
                    for venue_id in ids
                ]
            )
        assert locations[0] == locations[1]

    def test_real_venues_are_not_honeypots(self):
        service = small_service()
        registry = HoneypotRegistry(service)
        registry.seed(density=0.2, seed=1)
        assert not registry.is_honeypot(1)


class TestVisibilityLaw:
    def test_seeded_after_world_build_invisible_to_itineraries(self):
        # Honeypots live in the store (crawlable) but in none of the
        # GeneratedVenues lists honest persona itineraries sample from.
        world = build_world(scale=0.0002, seed=5)
        registry = HoneypotRegistry(world.service)
        created = set(registry.seed(density=0.05, seed=7))
        venues = world.venues
        visible = set(venues.venue_ids) | set(venues.small_town_venue_ids)
        for pool in venues.venue_ids_by_city.values():
            visible.update(pool)
        assert not created & visible
        # ... and yet every one of them is a real, crawlable store venue.
        for venue_id in created:
            assert world.service.store.get_venue(venue_id) is not None


class TestFlagging:
    def test_accepted_checkin_at_honeypot_flags_account(self):
        service = small_service()
        registry = HoneypotRegistry(service)
        trap = registry.seed(density=0.01, seed=1)[0]
        registry.on_event(accepted(7, trap, trace_id="tr-7"))
        assert registry.flagged_accounts() == [7]
        flag = registry.flag_of(7)
        assert flag.venue_id == trap
        assert flag.trace_id == "tr-7"

    def test_rejected_attempt_still_flags(self):
        # Attempting is proof enough: the account selected a venue no
        # honest itinerary contains, whatever the cheater code said.
        service = small_service()
        registry = HoneypotRegistry(service)
        trap = registry.seed(density=0.01, seed=1)[0]
        registry.on_event(
            CheckInRejected(
                seq=1,
                timestamp=0.0,
                user_id=8,
                venue_id=trap,
                venue_location=HERE,
                reported_location=HERE,
                rule="super-human speed",
            )
        )
        assert registry.flagged_accounts() == [8]

    def test_flag_is_once_per_account_but_checkins_all_count(self):
        service = small_service()
        metrics = MetricsRegistry()
        registry = HoneypotRegistry(service, metrics=metrics)
        trap = registry.seed(density=0.01, seed=1)[0]
        first = accepted(7, trap, ts=0.0, trace_id="tr-first")
        registry.on_event(first)
        registry.on_event(accepted(7, trap, ts=10.0, trace_id="tr-later"))
        assert registry.checkins_observed == 2
        assert len(registry) == 1
        assert registry.flag_of(7).trace_id == "tr-first"
        assert metrics.get("repro_honeypot_checkins_total").value == 2
        assert metrics.get("repro_honeypot_flags_total").value == 1
        assert metrics.get("repro_honeypot_flagged_accounts").value == 1

    def test_non_honeypot_checkins_ignored(self):
        registry = HoneypotRegistry(small_service())
        registry.seed(density=0.01, seed=1)
        registry.on_event(accepted(7, 1))
        assert registry.checkins_observed == 0
        assert registry.flagged_accounts() == []

    def test_flag_pins_account_onto_ledger_with_trace(self):
        service = small_service()
        ledger = SuspicionLedger(DetectorConfig(min_total_checkins=100))
        registry = HoneypotRegistry(service, ledger=ledger)
        trap = registry.seed(density=0.01, seed=1)[0]
        registry.on_event(accepted(7, trap, trace_id="tr-pin"))
        assert ledger.is_suspect(7)
        assert ledger.pinned_rule(7) == RULE_HONEYPOT
        assert ledger.flag_trace_id(7) == "tr-pin"

    def test_flag_emits_trace_stamped_record(self):
        hub = LogHub()
        service = small_service()
        registry = HoneypotRegistry(service, log=hub)
        trap = registry.seed(density=0.01, seed=1)[0]
        registry.on_event(accepted(7, trap, trace_id="tr-log"))
        records = [
            record
            for record in hub.records()
            if record.event == "honeypot.flag"
        ]
        assert len(records) == 1
        assert records[0].fields["trace_id"] == "tr-log"
        assert records[0].fields["user_id"] == 7
        assert records[0].fields["rule"] == RULE_HONEYPOT

    def test_venue_gauge_tracks_seeded_count(self):
        metrics = MetricsRegistry()
        registry = HoneypotRegistry(small_service(), metrics=metrics)
        registry.seed(density=0.01, seed=1, count=4)
        assert metrics.get("repro_honeypot_venues").value == 4


class TestLiveWiring:
    def test_checkin_through_service_trips_the_trap(self):
        # End to end over the real bus: check-in → commit → publish →
        # honeypot flag → ledger pin, all in one request.
        service = small_service()
        bus = EventBus()
        service.event_bus = bus
        ledger = SuspicionLedger(
            DetectorConfig(min_total_checkins=100)
        ).attach(bus)
        registry = HoneypotRegistry(service, ledger=ledger).attach(bus)
        trap = registry.seed(density=0.01, seed=1)[0]
        user = service.register_user("Crawler Alt")
        venue = service.store.require_venue(trap)
        service.check_in(user.user_id, trap, venue.location)
        assert registry.flagged_accounts() == [user.user_id]
        assert ledger.pinned_rule(user.user_id) == RULE_HONEYPOT
        # The ledger's flag trace is the check-in request's own trace.
        assert ledger.flag_trace_id(user.user_id) == (
            registry.flag_of(user.user_id).trace_id
        )

    def test_honest_traffic_through_service_stays_clean(self):
        service = small_service()
        bus = EventBus()
        service.event_bus = bus
        registry = HoneypotRegistry(service).attach(bus)
        registry.seed(density=0.01, seed=1)
        user = service.register_user("Honest Regular")
        venue = service.store.require_venue(1)
        service.check_in(user.user_id, 1, venue.location)
        assert registry.flagged_accounts() == []
