"""Tests for the world builder and web stack wiring."""

import pytest

from repro.errors import ReproError
from repro.workload.scenario import build_world


class TestBuildWorld:
    def test_world_shape(self, world):
        assert world.service.store.user_count() > 500
        assert world.service.store.venue_count() > 1_500
        assert world.service.store.checkin_count() > 5_000
        assert world.replay.attempted >= world.service.store.checkin_count()

    def test_clock_at_horizon(self, world):
        assert world.service.clock.now() >= world.horizon_s

    def test_invalid_scale(self):
        with pytest.raises(ReproError):
            build_world(scale=0.0)

    def test_personas_optional(self):
        tiny = build_world(scale=0.0001, seed=5, include_personas=False)
        assert tiny.roster.mega_cheater is None
        assert tiny.roster.power_users == []

    def test_determinism(self):
        a = build_world(scale=0.0001, seed=9)
        b = build_world(scale=0.0001, seed=9)
        assert a.replay.attempted == b.replay.attempted
        assert a.replay.valid == b.replay.valid
        assert a.service.store.checkin_count() == b.service.store.checkin_count()

    def test_mayorships_settled(self, world):
        # refresh_all_mayorships ran: no stale crowns outside the window.
        assert world.service.refresh_all_mayorships() == 0


class TestWebStack:
    def test_pages_served(self, world, web_stack):
        egress = web_stack.network.create_egress()
        response = web_stack.transport.get("/user/1", egress)
        assert response.ok
        response = web_stack.transport.get("/venue/1", egress)
        assert response.ok

    def test_api_served(self, world, web_stack):
        egress = web_stack.network.create_egress()
        response = web_stack.transport.get(
            "/api/venues/near",
            egress,
            params={"ll_lat": "40.7", "ll_lng": "-74.0"},
        )
        assert response.ok
        assert response.body.startswith("count=")


class TestSocialIntegration:
    def test_world_has_friend_graph(self, world):
        assert world.social is not None
        assert world.social.edge_count > 100
        # Graph edges materialize on the user records the site renders.
        sampled = 0
        for user_a, user_b in list(world.social.edges)[:20]:
            user = world.service.store.get_user(user_a)
            assert user_b in user.friends
            sampled += 1
        assert sampled == 20
