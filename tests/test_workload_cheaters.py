"""Tests for the injected cheater/power-user personas."""


from repro.workload.cheaters import (
    CAUGHT_CHEATER_COUNT,
    POWER_USER_COUNT,
)
from repro.workload.population import Persona


class TestRosterShape:
    def test_counts_fixed(self, world):
        roster = world.roster
        assert len(roster.power_users) == POWER_USER_COUNT
        assert len(roster.caught_cheaters) == CAUGHT_CHEATER_COUNT
        assert roster.mega_cheater is not None
        assert roster.mayor_farmer is not None
        assert len(roster.all_specs()) == POWER_USER_COUNT + CAUGHT_CHEATER_COUNT + 2

    def test_personas_tagged(self, world):
        for spec in world.roster.power_users:
            assert spec.persona is Persona.POWER_USER
        for spec in world.roster.caught_cheaters:
            assert spec.persona is Persona.CAUGHT_CHEATER
        assert world.roster.mega_cheater.persona is Persona.MEGA_CHEATER
        assert world.roster.mayor_farmer.persona is Persona.MAYOR_FARMER


class TestPowerUsers:
    def test_all_valid_and_heavily_mayored(self, world):
        service = world.service
        for spec in world.roster.power_users:
            user = service.store.get_user(spec.user_id)
            assert user.valid_checkins == user.total_checkins
            assert service.mayorship_count(spec.user_id) >= 10

    def test_concentrated_in_one_city(self, world):
        from repro.geo.distance import haversine_m

        service = world.service
        spec = world.roster.power_users[0]
        checkins = service.store.checkins_of_user(spec.user_id)
        for checkin in checkins[:200]:
            assert (
                haversine_m(checkin.reported_location, spec.home_city.center)
                < 80_000.0
            )


class TestCaughtCheaters:
    def test_mostly_flagged(self, world):
        service = world.service
        for spec in world.roster.caught_cheaters:
            user = service.store.get_user(spec.user_id)
            assert user.total_checkins > 0
            assert user.valid_checkins / user.total_checkins < 0.1

    def test_few_badges(self, world):
        service = world.service
        for spec in world.roster.caught_cheaters:
            user = service.store.get_user(spec.user_id)
            assert user.badge_count < 20

    def test_shadow_banned(self, world):
        from repro.lbsn.cheater_code import RULE_SHADOW_BAN

        service = world.service
        spec = world.roster.caught_cheaters[0]
        rules = {
            c.flagged_rule
            for c in service.store.checkins_of_user(spec.user_id)
            if c.flagged_rule
        }
        assert RULE_SHADOW_BAN in rules


class TestMegaCheater:
    def test_wide_city_coverage(self, world):
        from repro.analysis.patterns import cluster_cities

        service = world.service
        spec = world.roster.mega_cheater
        points = [
            c.reported_location
            for c in service.store.checkins_of_user(spec.user_id)
            if c.is_valid
        ]
        assert len(cluster_cities(points)) >= 15

    def test_mostly_undetected(self, world):
        # The mega cheater works the rules correctly: high valid rate.
        service = world.service
        user = service.store.get_user(world.roster.mega_cheater.user_id)
        assert user.valid_checkins / user.total_checkins > 0.8


class TestMayorFarmer:
    def test_many_mayorships_few_checkins(self, world):
        service = world.service
        spec = world.roster.mayor_farmer
        user = service.store.get_user(spec.user_id)
        mayorships = service.mayorship_count(spec.user_id)
        # §3.4 ratio: 865 mayorships from 1265 check-ins (~0.68).
        assert mayorships / max(1, user.total_checkins) > 0.5
        assert mayorships >= 20

    def test_farms_deserted_venues(self, world):
        service = world.service
        spec = world.roster.mayor_farmer
        solo = 0
        venues = service.mayorships_of(spec.user_id)
        for venue in venues:
            if venue.unique_visitor_count == 1:
                solo += 1
        # "most of the 865 venues have no other visitors"
        assert solo / max(1, len(venues)) > 0.7
