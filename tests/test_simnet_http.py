"""Unit tests for the simulated HTTP layer."""

import time

import pytest

from repro.errors import HttpError
from repro.simnet.http import (
    HTTP_FORBIDDEN,
    HTTP_NOT_FOUND,
    HTTP_OK,
    HttpRequest,
    HttpResponse,
    HttpTransport,
    Router,
)
from repro.simnet.network import Network


def make_transport(blocking=False):
    network = Network(seed=3)
    router = Router()
    router.add(
        "GET",
        r"/hello/(?P<name>\w+)",
        lambda request, match: HttpResponse(
            body=f"hi {match.group('name')}"
        ),
    )
    router.add(
        "POST",
        r"/echo",
        lambda request, match: HttpResponse(
            body=request.params.get("message", "")
        ),
    )
    transport = HttpTransport(router, network, blocking=blocking)
    egress = network.create_egress()
    return transport, egress


class TestRouting:
    def test_basic_get(self):
        transport, egress = make_transport()
        response = transport.get("/hello/world", egress)
        assert response.status == HTTP_OK
        assert response.body == "hi world"

    def test_unknown_path_404(self):
        transport, egress = make_transport()
        assert transport.get("/nope", egress).status == HTTP_NOT_FOUND

    def test_method_mismatch_404(self):
        transport, egress = make_transport()
        assert transport.post("/hello/x", egress).status == HTTP_NOT_FOUND

    def test_post_with_params(self):
        transport, egress = make_transport()
        response = transport.post(
            "/echo", egress, params={"message": "ping"}
        )
        assert response.body == "ping"

    def test_partial_path_does_not_match(self):
        # Patterns are full-match: /hello/world/extra must 404.
        transport, egress = make_transport()
        assert transport.get("/hello/world/extra", egress).status == HTTP_NOT_FOUND


class TestResponse:
    def test_ok_property(self):
        assert HttpResponse(status=200).ok
        assert not HttpResponse(status=404).ok

    def test_raise_for_status(self):
        with pytest.raises(HttpError) as excinfo:
            HttpResponse(status=500).raise_for_status()
        assert excinfo.value.status == 500

    def test_raise_for_status_passthrough(self):
        response = HttpResponse(status=200)
        assert response.raise_for_status() is response


class TestRequestHeaders:
    def test_case_insensitive_header(self):
        request = HttpRequest(
            method="GET",
            path="/",
            client_ip="1.1.1.1",
            headers={"X-Session": "abc"},
        )
        assert request.header("x-session") == "abc"
        assert request.header("missing", "default") == "default"


class TestMiddleware:
    def test_middleware_can_short_circuit(self):
        transport, egress = make_transport()
        transport.add_middleware(
            lambda request: HttpResponse(status=HTTP_FORBIDDEN, body="no")
            if request.path.startswith("/hello")
            else None
        )
        assert transport.get("/hello/x", egress).status == HTTP_FORBIDDEN

    def test_middleware_pass_through(self):
        transport, egress = make_transport()
        seen = []
        transport.add_middleware(
            lambda request: seen.append(request.path) or None
        )
        response = transport.get("/hello/y", egress)
        assert response.ok
        assert seen == ["/hello/y"]

    def test_first_middleware_wins(self):
        transport, egress = make_transport()
        transport.add_middleware(
            lambda request: HttpResponse(status=401, body="first")
        )
        transport.add_middleware(
            lambda request: HttpResponse(status=403, body="second")
        )
        assert transport.get("/hello/z", egress).status == 401


class TestStats:
    def test_counters_accumulate(self):
        transport, egress = make_transport()
        transport.get("/hello/a", egress)
        transport.get("/nope", egress)
        assert transport.stats.requests == 2
        assert transport.stats.responses_by_status[HTTP_OK] == 1
        assert transport.stats.responses_by_status[HTTP_NOT_FOUND] == 1
        assert transport.stats.total_latency_s > 0.0


class TestBlockingMode:
    def test_blocking_sleeps_roughly_the_latency(self):
        transport, egress = make_transport(blocking=True)
        started = time.perf_counter()
        transport.get("/hello/a", egress)
        elapsed = time.perf_counter() - started
        # Direct egress base latency 20 ms one-way -> ~40 ms RTT +- jitter.
        assert elapsed >= 0.025

    def test_non_blocking_is_fast(self):
        transport, egress = make_transport(blocking=False)
        started = time.perf_counter()
        for _ in range(50):
            transport.get("/hello/a", egress)
        assert time.perf_counter() - started < 0.5
