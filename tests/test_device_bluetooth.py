"""Unit tests for the NMEA Bluetooth GPS receiver simulation."""

import pytest

from repro.device.bluetooth import (
    BluetoothGpsModule,
    BluetoothGpsSimulator,
    build_gpgga,
    nmea_checksum,
    parse_gpgga,
)
from repro.errors import DeviceError
from repro.geo.coordinates import GeoPoint
from repro.geo.distance import haversine_m

SF = GeoPoint(37.8080, -122.4177)
SOUTHERN = GeoPoint(-33.8688, 151.2093)  # Sydney: S/E hemispheres


class TestChecksum:
    def test_known_value(self):
        # XOR of "A" with itself is 0; sanity-check the hex format.
        assert nmea_checksum("A") == "41"
        assert nmea_checksum("AA") == "00"

    def test_round_trip_sentence_validates(self):
        sentence = build_gpgga(SF, 3_600.0)
        body = sentence[1:].split("*")[0]
        assert sentence.endswith(nmea_checksum(body))


class TestBuildParse:
    def test_round_trip_location(self):
        sentence = build_gpgga(SF, 12 * 3_600.0, satellites=7, hdop=1.2)
        fix = parse_gpgga(sentence, timestamp=99.0)
        assert haversine_m(fix.location, SF) < 1.0
        assert fix.satellites == 7
        assert fix.timestamp == 99.0

    def test_southern_eastern_hemispheres(self):
        sentence = build_gpgga(SOUTHERN, 0.0)
        assert ",S," in sentence and ",E," in sentence
        fix = parse_gpgga(sentence, 0.0)
        assert haversine_m(fix.location, SOUTHERN) < 1.0

    def test_checksum_mismatch_rejected(self):
        sentence = build_gpgga(SF, 0.0)
        corrupted = sentence[:-2] + "00"
        if sentence.endswith("00"):  # pragma: no cover
            corrupted = sentence[:-2] + "FF"
        with pytest.raises(DeviceError):
            parse_gpgga(corrupted, 0.0)

    def test_not_a_sentence_rejected(self):
        with pytest.raises(DeviceError):
            parse_gpgga("hello world", 0.0)

    def test_wrong_sentence_type_rejected(self):
        body = "GPRMC,123519,A,4807.038,N,01131.000,E,022.4,084.4"
        with pytest.raises(DeviceError):
            parse_gpgga(f"${body}*{nmea_checksum(body)}", 0.0)

    def test_no_fix_quality_rejected(self):
        sentence = build_gpgga(SF, 0.0)
        body = sentence[1:].split("*")[0].split(",")
        body[6] = "0"  # fix quality: invalid
        rebuilt = ",".join(body)
        with pytest.raises(DeviceError):
            parse_gpgga(f"${rebuilt}*{nmea_checksum(rebuilt)}", 0.0)


class TestSimulatorAndModule:
    def test_simulator_requires_location(self):
        with pytest.raises(DeviceError):
            BluetoothGpsSimulator().next_sentence(0.0)

    def test_module_delivers_spoofed_fix(self):
        simulator = BluetoothGpsSimulator()
        simulator.set_location(SF)
        module = BluetoothGpsModule(simulator)
        fix = module.current_fix(100.0)
        assert haversine_m(fix.location, SF) < 1.0

    def test_module_none_before_location_set(self):
        module = BluetoothGpsModule(BluetoothGpsSimulator())
        assert module.current_fix(0.0) is None

    def test_location_change_propagates(self):
        simulator = BluetoothGpsSimulator(SF)
        module = BluetoothGpsModule(simulator)
        simulator.set_location(SOUTHERN)
        fix = module.current_fix(0.0)
        assert haversine_m(fix.location, SOUTHERN) < 1.0
