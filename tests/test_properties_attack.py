"""Property-based tests for the attack/cheater-code interplay.

The central invariant of §3.3: a schedule built by
:class:`CheckInScheduler` from ANY venue set never triggers the cheater
code.  Hypothesis searches venue geometries (dense clusters, cross-country
scatters, duplicates) for a counterexample.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attack.campaign import greedy_route, tour_from_targets
from repro.attack.scheduler import CheckInScheduler, interval_for_distance
from repro.attack.spoofing import build_emulator_attacker
from repro.attack.targeting import TargetVenue
from repro.geo.coordinates import METERS_PER_MILE, GeoPoint
from repro.geo.distance import haversine_m
from repro.lbsn.service import LbsnService

# Venue coordinates spanning dense-city and cross-country scales.
coordinate = st.tuples(
    st.floats(min_value=30.0, max_value=48.0),
    st.floats(min_value=-122.0, max_value=-72.0),
)
venue_sets = st.lists(coordinate, min_size=2, max_size=10)


def run_schedule(points):
    service = LbsnService()
    targets = []
    for index, (lat, lon) in enumerate(points):
        venue = service.create_venue(f"V{index}", GeoPoint(lat, lon))
        targets.append(
            TargetVenue(
                venue_id=venue.venue_id,
                name=venue.name,
                latitude=lat,
                longitude=lon,
                special=None,
                reason="prop",
            )
        )
    _, _, channel = build_emulator_attacker(service)
    scheduler = CheckInScheduler(service.clock)
    tour = tour_from_targets(greedy_route(targets))
    schedule = scheduler.build(tour)
    return scheduler.execute(schedule, channel), schedule


class TestSchedulerInvariant:
    @given(venue_sets)
    @settings(max_examples=60, deadline=None)
    def test_scheduled_attacks_are_never_detected(self, points):
        report, _ = run_schedule(points)
        assert report.attempts == len(points)
        assert report.detected == 0
        assert report.rewarded == report.attempts

    @given(venue_sets)
    @settings(max_examples=40, deadline=None)
    def test_schedule_respects_the_interval_rule(self, points):
        _, schedule = run_schedule(points)
        entries = schedule.entries
        for previous, current in zip(entries, entries[1:]):
            distance = haversine_m(previous.location, current.location)
            minimum = interval_for_distance(distance)
            gap = current.fire_at - previous.fire_at
            assert gap >= minimum - 1e-6

    @given(
        st.lists(coordinate, min_size=1, max_size=4),
        st.integers(min_value=2, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_revisits_respect_the_hour_holddown(self, points, repeats):
        # The same targets repeated several times: every same-venue pair
        # of fire times must be > 1 hour apart.
        service = LbsnService()
        targets = []
        for index, (lat, lon) in enumerate(points):
            venue = service.create_venue(f"V{index}", GeoPoint(lat, lon))
            targets.append(
                TargetVenue(
                    venue_id=venue.venue_id,
                    name=venue.name,
                    latitude=lat,
                    longitude=lon,
                    special=None,
                    reason="prop",
                )
            )
        scheduler = CheckInScheduler(service.clock)
        tour = tour_from_targets(list(targets) * repeats)
        schedule = scheduler.build(tour)
        by_venue = {}
        for entry in schedule:
            by_venue.setdefault(entry.venue_id, []).append(entry.fire_at)
        for fire_times in by_venue.values():
            fire_times.sort()
            for earlier, later in zip(fire_times, fire_times[1:]):
                assert later - earlier > 3_600.0


class TestIntervalRuleProperties:
    @given(st.floats(min_value=0.0, max_value=5_000_000.0))
    def test_interval_monotone_in_distance(self, distance):
        assert interval_for_distance(distance) <= interval_for_distance(
            distance + 1_000.0
        )

    @given(st.floats(min_value=0.0, max_value=5_000_000.0))
    def test_implied_speed_is_at_most_12mph(self, distance):
        interval = interval_for_distance(distance)
        speed_mph = (distance / METERS_PER_MILE) / (interval / 3_600.0)
        assert speed_mph <= 12.0 + 1e-9
