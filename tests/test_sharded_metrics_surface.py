"""Operational surface of the sharded store: web routes and the CLI.

Satellite coverage for the sharding PR: when a service runs on a
:class:`~repro.lbsn.sharded.ShardedDataStore`, its per-shard telemetry
(``repro_store_shard_*``) must be visible everywhere an operator looks —
the ``/metrics`` Prometheus scrape, the ``/debug/vars`` JSON dump, and
the ``repro metrics`` CLI snapshot — while the label-less aggregate
families keep reading the same as on a single-lock store.
"""

import json

import pytest

from repro.geo.coordinates import GeoPoint
from repro.lbsn.service import LbsnService
from repro.lbsn.sharded import ShardedDataStore
from repro.lbsn.webserver import (
    JSON_CONTENT_TYPE,
    METRICS_CONTENT_TYPE,
    LbsnWebServer,
)
from repro.obs import MetricsRegistry
from repro.simnet.http import HttpTransport, Router
from repro.simnet.network import Network
from repro.stream import EventBus

SHARDS = 4
CHECKINS = 8
BASE = GeoPoint(35.0844, -106.6504)


@pytest.fixture(scope="module")
def sharded_web():
    """A sharded service with traffic on every shard, behind the router.

    The event bus matters: committed check-ins only flow through
    ``add_checkin_committed`` (the path that feeds the per-shard commit
    histogram) when the service publishes stream events.
    """
    registry = MetricsRegistry()
    bus = EventBus(metrics=registry)
    service = LbsnService(
        event_bus=bus, metrics=registry, store_shards=SHARDS
    )
    assert isinstance(service.store, ShardedDataStore)
    users = [
        service.register_user(f"shard-user-{i}") for i in range(CHECKINS)
    ]
    venues = [
        service.create_venue(f"shard-venue-{i}", BASE)
        for i in range(CHECKINS)
    ]
    for user, venue in zip(users, venues):
        result = service.check_in(user.user_id, venue.venue_id, BASE)
        assert result.rewarded
    webserver = LbsnWebServer(service)
    router = Router()
    webserver.install_routes(router)
    network = Network(seed=0)
    transport = HttpTransport(router, network)
    return {
        "registry": registry,
        "service": service,
        "transport": transport,
        "egress": network.create_egress(),
    }


class TestMetricsRoute:
    def test_scrape_exposes_per_shard_gauges(self, sharded_web):
        response = sharded_web["transport"].get(
            "/metrics", sharded_web["egress"]
        )
        assert response.ok
        assert response.headers["Content-Type"] == METRICS_CONTENT_TYPE
        for shard in range(SHARDS):
            assert f'repro_store_shard_users{{shard="{shard}"}}' in (
                response.body
            )
            assert f'repro_store_shard_checkins{{shard="{shard}"}}' in (
                response.body
            )
        assert "repro_store_shard_commit_seconds_bucket" in response.body

    def test_scrape_keeps_labelless_aggregates(self, sharded_web):
        """Dashboards keyed on the single-store names keep working."""
        response = sharded_web["transport"].get(
            "/metrics", sharded_web["egress"]
        )
        body = response.body
        assert "# TYPE repro_store_checkins gauge" in body
        assert "# TYPE repro_store_users gauge" in body

    def test_shard_gauges_sum_to_aggregates(self, sharded_web):
        flat = sharded_web["registry"].snapshot()
        for family, total_family in (
            ("repro_store_shard_users", "repro_store_users"),
            ("repro_store_shard_venues", "repro_store_venues"),
            ("repro_store_shard_checkins", "repro_store_checkins"),
        ):
            per_shard = flat[family]
            assert set(per_shard) == {
                (str(shard),) for shard in range(SHARDS)
            }
            assert sum(per_shard.values()) == flat[total_family][()]
        assert flat["repro_store_checkins"][()] == float(CHECKINS)


class TestDebugVarsRoute:
    def test_debug_vars_carries_shard_samples(self, sharded_web):
        response = sharded_web["transport"].get(
            "/debug/vars", sharded_web["egress"]
        )
        assert response.ok
        assert response.headers["Content-Type"] == JSON_CONTENT_TYPE
        parsed = json.loads(response.body)
        family = parsed["repro_store_shard_checkins"]
        assert family["kind"] == "gauge"
        by_shard = {
            sample["labels"]["shard"]: sample["value"]
            for sample in family["samples"]
        }
        assert set(by_shard) == {str(shard) for shard in range(SHARDS)}
        assert sum(by_shard.values()) == float(CHECKINS)

    def test_commit_histogram_counted_every_commit(self, sharded_web):
        parsed = json.loads(
            sharded_web["transport"]
            .get("/debug/vars", sharded_web["egress"])
            .body
        )
        family = parsed["repro_store_shard_commit_seconds"]
        assert family["kind"] == "histogram"
        # Buckets are cumulative; +Inf is each child's observation count.
        total = sum(
            sample["buckets"]["+Inf"] for sample in family["samples"]
        )
        assert total == CHECKINS


class TestMetricsCli:
    def test_cli_snapshot_includes_shard_labels(self, capsys):
        from repro.cli import main

        assert main(
            [
                "metrics",
                "--scale",
                "0.0002",
                "--seed",
                "5",
                "--store-shards",
                "2",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert 'repro_store_shard_checkins{shard="0"}' in out
        assert 'repro_store_shard_checkins{shard="1"}' in out
        # Aggregates stay exposed under the single-store names.
        assert "# TYPE repro_store_checkins gauge" in out

    def test_cli_store_shards_default_is_single_lock(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["metrics"])
        assert args.store_shards == 1

    def test_workload_wires_the_sharded_store(self):
        from repro.cli import run_metrics_workload

        registry, exposition, _ = run_metrics_workload(
            scale=0.0002, seed=5, registry=MetricsRegistry(), store_shards=2
        )
        names = set(registry.names())
        assert "repro_store_shard_users" in names
        assert "repro_store_shard_commit_seconds" in names
        assert 'repro_store_shard_users{shard="0"}' in exposition
