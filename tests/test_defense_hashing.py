"""Tests for profile-ID hashing (§5.2)."""

import pytest

from repro.defense.hashing import (
    crack_unsalted_token,
    hashed_visitor_obfuscator,
    unsalted_visitor_obfuscator,
)
from repro.errors import DefenseError


class TestKeyedObfuscator:
    def test_deterministic(self):
        obfuscate = hashed_visitor_obfuscator(b"secret")
        assert obfuscate(42) == obfuscate(42)

    def test_distinct_users_distinct_tokens(self):
        obfuscate = hashed_visitor_obfuscator(b"secret")
        tokens = {obfuscate(uid) for uid in range(1, 2_000)}
        assert len(tokens) == 1_999

    def test_secret_changes_tokens(self):
        a = hashed_visitor_obfuscator(b"secret-a")
        b = hashed_visitor_obfuscator(b"secret-b")
        assert a(42) != b(42)

    def test_token_reveals_no_id(self):
        obfuscate = hashed_visitor_obfuscator(b"secret")
        token = obfuscate(1852791)
        assert "1852791" not in token

    def test_empty_secret_rejected(self):
        with pytest.raises(DefenseError):
            hashed_visitor_obfuscator(b"")

    def test_short_digest_rejected(self):
        with pytest.raises(DefenseError):
            hashed_visitor_obfuscator(b"secret", digest_chars=4)


class TestUnsaltedWeakness:
    def test_unsalted_token_cracked_by_enumeration(self):
        # The dense public ID space makes unkeyed hashing worthless.
        obfuscate = unsalted_visitor_obfuscator()
        token = obfuscate(1_234)
        assert crack_unsalted_token(token, max_user_id=2_000) == 1_234

    def test_crack_fails_outside_range(self):
        obfuscate = unsalted_visitor_obfuscator()
        token = obfuscate(5_000)
        assert crack_unsalted_token(token, max_user_id=100) is None

    def test_keyed_token_survives_same_attack(self):
        keyed = hashed_visitor_obfuscator(b"server-secret")
        token = keyed(1_234)
        assert crack_unsalted_token(token, max_user_id=5_000) is None


class TestEndToEndStarvation:
    def test_obfuscated_site_starves_pattern_analysis(self, world):
        """With hashing deployed, a fresh crawl yields zero RecentCheckin
        rows, killing Figs 4.1/4.3 and the §3.4 victim queries."""
        from repro.analysis.patterns import analyze_pattern, PatternVerdict
        from repro.crawler import crawl_full_site
        from repro.workload import build_web_stack

        stack = build_web_stack(
            world,
            seed=11,
            visitor_obfuscator=hashed_visitor_obfuscator(b"prod-secret"),
        )
        database, _, _ = crawl_full_site(
            stack.transport, [stack.network.create_egress()]
        )
        assert len(database.recent_checkins()) == 0
        mega = world.roster.mega_cheater.user_id
        report = analyze_pattern(database, mega)
        assert report.verdict is PatternVerdict.INSUFFICIENT_DATA
        # Profile-level stats still work: usability/cheap analyses remain.
        assert database.user(mega).total_checkins > 0
