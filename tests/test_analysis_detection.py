"""Tests for the combined three-factor cheater detector."""

import pytest

from repro.analysis.detection import CheaterDetector, DetectorConfig
from repro.crawler.database import CrawlDatabase
from repro.crawler.parser import ParsedUser, ParsedVenue
from repro.geo.regions import US_CITIES


def seed(db, user_id, total, badges, recent_cities=0, venues_per_city=1,
         next_venue=[1000]):
    db.upsert_user(
        ParsedUser(
            user_id=user_id,
            display_name=f"U{user_id}",
            username=None,
            home_city="",
            total_checkins=total,
            total_badges=badges,
            points=0,
        )
    )
    for city in US_CITIES[:recent_cities]:
        for _ in range(venues_per_city):
            next_venue[0] += 1
            db.upsert_venue(
                ParsedVenue(
                    venue_id=next_venue[0],
                    name=f"V{next_venue[0]}",
                    address="",
                    city=city.name,
                    latitude=city.center.latitude,
                    longitude=city.center.longitude,
                    checkins_here=1,
                    unique_visitors=1,
                    mayor_id=None,
                    special=None,
                    special_mayor_only=False,
                    recent_visitor_ids=[user_id],
                )
            )


class TestScoring:
    def test_zero_checkins_all_zero(self):
        db = CrawlDatabase()
        seed(db, 1, 0, 0)
        db.recompute_derived()
        report = CheaterDetector(db).score_user(db.user(1))
        assert report.combined_score == 0.0

    def test_activity_factor_saturates(self):
        db = CrawlDatabase()
        seed(db, 1, 20, 50, recent_cities=4, venues_per_city=5)
        db.recompute_derived()
        report = CheaterDetector(db).score_user(db.user(1))
        assert report.activity_score == 1.0

    def test_reward_factor_shortfall(self):
        db = CrawlDatabase()
        seed(db, 1, 1_000, 0)
        db.recompute_derived()
        report = CheaterDetector(db).score_user(db.user(1))
        assert report.reward_score == 1.0

    def test_reward_factor_zero_for_well_badged(self):
        db = CrawlDatabase()
        seed(db, 1, 100, 50)
        db.recompute_derived()
        report = CheaterDetector(db).score_user(db.user(1))
        assert report.reward_score == 0.0

    def test_pattern_factor_scales_with_cities(self):
        db = CrawlDatabase()
        seed(db, 1, 100, 50, recent_cities=10)
        db.recompute_derived()
        config = DetectorConfig(saturating_city_count=20)
        report = CheaterDetector(db, config).score_user(db.user(1))
        assert report.pattern_score == pytest.approx(0.5, abs=0.15)


class TestFindSuspects:
    def test_threshold_filters(self):
        db = CrawlDatabase()
        seed(db, 1, 1_000, 0, recent_cities=15)  # screaming cheater
        seed(db, 2, 1_000, 60, recent_cities=1, venues_per_city=3)  # honest
        db.recompute_derived()
        detector = CheaterDetector(
            db, DetectorConfig(min_total_checkins=100)
        )
        suspects = detector.find_suspects()
        ids = [report.user_id for report in suspects]
        assert 1 in ids
        assert 2 not in ids

    def test_world_detector_finds_personas(self, world, crawl_db):
        # At test-world persona volumes the mega cheater and the heaviest
        # caught cheater are unambiguous; the smaller caught cheaters only
        # become flagrant at full persona activity (their badge shortfall
        # grows with lifetime totals).
        detector = CheaterDetector(
            crawl_db, DetectorConfig(min_total_checkins=150)
        )
        suspects = {r.user_id for r in detector.find_suspects()}
        assert world.roster.mega_cheater.user_id in suspects
        top_caught = max(
            world.roster.caught_cheaters,
            key=lambda s: crawl_db.user(s.user_id).total_checkins,
        )
        assert top_caught.user_id in suspects

    def test_world_detector_spares_most_normals(self, world, crawl_db):
        detector = CheaterDetector(
            crawl_db, DetectorConfig(min_total_checkins=150)
        )
        suspects = {r.user_id for r in detector.find_suspects()}
        persona_ids = {s.user_id for s in world.roster.all_specs()}
        organic_suspects = suspects - persona_ids
        organic_heavy = [
            u
            for u in crawl_db.users()
            if u.total_checkins >= 150 and u.user_id not in persona_ids
        ]
        # The false-positive rate over heavy organic users stays low.
        assert len(organic_suspects) <= max(2, len(organic_heavy) // 10)


class TestUndetectedMayorHolders:
    def test_finds_suspicious_mayor_farmer(self, world, crawl_db):
        # §4.3: cheaters still holding mayorships are "new discoveries".
        detector = CheaterDetector(
            crawl_db,
            DetectorConfig(min_total_checkins=50, report_threshold=0.4),
        )
        reports = detector.undetected_mayor_holders(min_mayorships=20)
        assert world.roster.mayor_farmer.user_id in {
            r.user_id for r in reports
        }
