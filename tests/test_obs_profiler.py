"""The sampling profiler: folding, aggregation, sections, and routes.

Determinism strategy: almost every test drives :meth:`SamplingProfiler.
sample_once` synchronously from the test thread (which the pass skips)
against helper threads parked at *known* program points — an
``Event``-gated spin loop pins the thread inside a named function, so
the folded stack's content is predictable without racing a background
sampler.  Only the lifecycle tests start the real daemon thread.
"""

import json
import re
import sys
import threading

import pytest

from repro.lbsn.service import LbsnService
from repro.lbsn.webserver import (
    COLLAPSED_CONTENT_TYPE,
    JSON_CONTENT_TYPE,
    LbsnWebServer,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import (
    DEFAULT_SECTION,
    ProfiledSection,
    ProfileSnapshot,
    ProfilerError,
    SamplingProfiler,
    fold_stack,
)
from repro.simnet.http import HttpTransport, Router
from repro.simnet.network import Network

THREADS = 8


class _Spinner:
    """A thread parked in a recognisably-named function until released."""

    def __init__(self, name="spinner", section=None, profiler=None):
        self.ready = threading.Event()
        self.release = threading.Event()
        self._section = section
        self._profiler = profiler
        self.thread = threading.Thread(
            target=self._run, name=name, daemon=True
        )

    def _run(self):
        if self._section is not None:
            with ProfiledSection(self._profiler, self._section):
                self._park_here()
        else:
            self._park_here()

    def _park_here(self):
        self.ready.set()
        while not self.release.is_set():
            sum(i for i in range(64))

    def __enter__(self):
        self.thread.start()
        assert self.ready.wait(timeout=10.0)
        return self

    def __exit__(self, *exc):
        self.release.set()
        self.thread.join(timeout=10.0)


def _sample_until(profiler, predicate, attempts=2000):
    """Drive synchronous passes until ``predicate(snapshot)`` holds."""
    for _ in range(attempts):
        profiler.sample_once()
        snapshot = profiler.snapshot()
        if predicate(snapshot):
            return snapshot
    raise AssertionError(
        f"predicate never satisfied after {attempts} passes: "
        f"{profiler.snapshot().stacks}"
    )


class TestFoldStack:
    def test_root_first_module_dot_function(self):
        frame = sys._getframe()
        folded = fold_stack(frame, max_depth=64)
        frames = folded.split(";")
        # This test function is the leaf; the runner is above it.
        assert frames[-1].endswith(
            ".test_root_first_module_dot_function"
        )
        assert len(frames) > 1

    def test_max_depth_keeps_leaf_and_marks_elided_root(self):
        def deeper(n):
            if n == 0:
                return fold_stack(sys._getframe(), max_depth=3)
            return deeper(n - 1)

        folded = deeper(10)
        frames = folded.split(";")
        assert frames[0] == "…"
        assert len(frames) == 4  # ellipsis + 3 kept frames
        assert frames[-1].endswith(".deeper")


class TestSampling:
    def test_sample_once_records_other_threads_not_caller(self):
        profiler = SamplingProfiler()
        with _Spinner(name="park-target") as spinner:
            snapshot = _sample_until(
                profiler,
                lambda s: any(
                    key[0] == "park-target" and "_park_here" in key[2]
                    for key in s.stacks
                ),
            )
        threads_seen = {key[0] for key in snapshot.stacks}
        assert "park-target" in threads_seen
        assert threading.current_thread().name not in threads_seen

    def test_sample_counts_and_self_metrics(self):
        registry = MetricsRegistry()
        profiler = SamplingProfiler(metrics=registry)
        with _Spinner():
            for _ in range(5):
                profiler.sample_once()
        assert profiler.samples == 5
        assert registry.get("repro_profiler_samples_total").value == 5.0
        assert registry.get("repro_profiler_sample_seconds").count == 5
        assert registry.get("repro_profiler_stacks_dropped_total").value == 0.0

    def test_bounded_table_drops_and_counts_new_stacks(self):
        registry = MetricsRegistry()
        profiler = SamplingProfiler(max_stacks=1, metrics=registry)
        with _Spinner(name="a"), _Spinner(name="b"):
            snapshot = _sample_until(profiler, lambda s: s.dropped > 0)
        assert len(snapshot.stacks) == 1
        assert registry.get("repro_profiler_stacks_dropped_total").value > 0

    def test_reset_clears_table_and_counters(self):
        profiler = SamplingProfiler()
        with _Spinner():
            profiler.sample_once()
        profiler.reset()
        snapshot = profiler.snapshot()
        assert snapshot.samples == 0
        assert snapshot.stacks == {}


class TestSections:
    def test_section_labels_only_the_entering_thread(self):
        profiler = SamplingProfiler()
        with _Spinner(
            name="tagged", section="phase-a", profiler=profiler
        ), _Spinner(name="plain"):
            snapshot = _sample_until(
                profiler,
                lambda s: any(k[0] == "tagged" for k in s.stacks)
                and any(k[0] == "plain" for k in s.stacks),
            )
        tagged = {k[1] for k in snapshot.stacks if k[0] == "tagged"}
        plain = {k[1] for k in snapshot.stacks if k[0] == "plain"}
        assert tagged == {"phase-a"}
        assert plain == {DEFAULT_SECTION}

    def test_nested_sections_restore_the_outer_label(self):
        profiler = SamplingProfiler()
        ident = threading.get_ident()
        with profiler.section("outer"):
            with profiler.section("inner"):
                assert profiler._sections[ident] == "inner"
            assert profiler._sections[ident] == "outer"
        assert ident not in profiler._sections

    def test_empty_label_rejected(self):
        with pytest.raises(ProfilerError):
            ProfiledSection(SamplingProfiler(), "")


class TestSnapshotExports:
    def _synthetic(self):
        return ProfileSnapshot(
            hz=97.0,
            samples=10,
            dropped=0,
            elapsed_s=0.1,
            stacks={
                ("worker", "-", "m.a;m.b;m.hot"): 6,
                ("worker", "-", "m.a;m.hot;m.hot"): 3,
                ("worker", "storm", "m.a;m.cold"): 1,
            },
        )

    def test_collapsed_format_lines(self):
        text = self._synthetic().collapsed()
        assert text.endswith("\n")
        lines = text.splitlines()
        assert "worker;m.a;m.b;m.hot 6" in lines
        assert "worker;[storm];m.a;m.cold 1" in lines
        # Every line is `frames count`.
        for line in lines:
            assert re.fullmatch(r"[^ ]+ \d+", line)

    def test_top_self_vs_total(self):
        rows = {name: (s, t) for name, s, t in self._synthetic().top(10)}
        # m.hot leafs 6+3 samples; appears on 9 stacks total (set-per-stack
        # semantics: recursion doesn't double-count a sample).
        assert rows["m.hot"] == (9, 9)
        assert rows["m.a"] == (0, 10)
        assert rows["m.b"] == (0, 6)
        assert rows["m.cold"] == (1, 1)

    def test_top_sorted_by_self_samples(self):
        names = [name for name, _, _ in self._synthetic().top(10)]
        assert names[0] == "m.hot"

    def test_to_dict_shape(self):
        doc = self._synthetic().to_dict()
        assert doc["stack_samples"] == 10
        assert doc["unique_stacks"] == 3
        assert doc["top"][0]["function"] == "m.hot"
        assert doc["top"][0]["self_pct"] == pytest.approx(90.0)
        json.dumps(doc)  # must be JSON-ready

    def test_empty_snapshot(self):
        empty = ProfileSnapshot(97.0, 0, 0, 0.0, {})
        assert empty.collapsed() == ""
        assert empty.top(5) == []
        assert empty.to_dict()["stack_samples"] == 0


class TestLifecycle:
    def test_start_stop_background_sampler(self):
        profiler = SamplingProfiler(hz=500.0)
        with _Spinner():
            with profiler:
                assert profiler.running
                deadline = threading.Event()
                for _ in range(100):
                    if profiler.samples > 0:
                        break
                    deadline.wait(0.01)
            assert not profiler.running
        assert profiler.samples > 0
        assert profiler.snapshot().elapsed_s > 0

    def test_double_start_raises(self):
        profiler = SamplingProfiler(hz=500.0)
        profiler.start()
        try:
            with pytest.raises(ProfilerError):
                profiler.start()
        finally:
            profiler.stop()

    def test_stop_idempotent(self):
        profiler = SamplingProfiler()
        profiler.stop()
        profiler.stop()

    def test_validation(self):
        with pytest.raises(ProfilerError):
            SamplingProfiler(hz=0)
        with pytest.raises(ProfilerError):
            SamplingProfiler(max_stacks=0)
        with pytest.raises(ProfilerError):
            SamplingProfiler(max_depth=0)


class TestConcurrentWorkload:
    """The profiler under the obs-suite's standard 8-thread pressure."""

    def test_eight_threads_all_attributed(self):
        profiler = SamplingProfiler()
        spinners = [
            _Spinner(name=f"conc-{i}", section=f"sec-{i}", profiler=profiler)
            for i in range(THREADS)
        ]
        for spinner in spinners:
            spinner.__enter__()
        try:
            snapshot = _sample_until(
                profiler,
                lambda s: len({k[0] for k in s.stacks}) >= THREADS,
                attempts=5000,
            )
        finally:
            for spinner in spinners:
                spinner.__exit__()
        for i in range(THREADS):
            keys = [k for k in snapshot.stacks if k[0] == f"conc-{i}"]
            assert keys, f"thread conc-{i} never sampled"
            assert {k[1] for k in keys} == {f"sec-{i}"}
        # Accounting is consistent under concurrency.
        assert snapshot.stack_samples == sum(snapshot.stacks.values())
        assert snapshot.dropped == 0

    def test_concurrent_sampling_and_snapshots(self):
        """Many threads sampling + snapshotting the same profiler race-free."""
        profiler = SamplingProfiler()
        barrier = threading.Barrier(THREADS)
        errors = []

        def hammer():
            try:
                barrier.wait(timeout=10.0)
                for _ in range(50):
                    profiler.sample_once()
                    profiler.snapshot().collapsed()
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, name=f"hammer-{i}", daemon=True)
            for i in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
        assert profiler.samples == THREADS * 50


class TestProfileRoute:
    @pytest.fixture()
    def web(self):
        registry = MetricsRegistry()
        service = LbsnService(metrics=registry)
        profiler = SamplingProfiler(metrics=registry)
        with _Spinner(name="route-target"):
            for _ in range(3):
                profiler.sample_once()
        webserver = LbsnWebServer(service, profiler=profiler)
        router = Router()
        webserver.install_routes(router)
        network = Network(seed=0)
        transport = HttpTransport(router, network)
        return transport, network.create_egress()

    def test_json_body(self, web):
        transport, egress = web
        response = transport.get("/debug/profile", egress)
        assert response.ok
        assert response.headers["Content-Type"] == JSON_CONTENT_TYPE
        assert int(response.headers["Content-Length"]) == len(
            response.body.encode("utf-8")
        )
        doc = json.loads(response.body)
        assert doc["samples"] == 3
        assert doc["unique_stacks"] >= 1

    def test_collapsed_body(self, web):
        transport, egress = web
        response = transport.get(
            "/debug/profile", egress, params={"format": "collapsed"}
        )
        assert response.ok
        assert response.headers["Content-Type"] == COLLAPSED_CONTENT_TYPE
        assert "route-target;" in response.body

    def test_route_absent_without_profiler(self):
        service = LbsnService(metrics=MetricsRegistry())
        webserver = LbsnWebServer(service)
        router = Router()
        webserver.install_routes(router)
        network = Network(seed=0)
        transport = HttpTransport(router, network)
        response = transport.get("/debug/profile", network.create_egress())
        assert not response.ok
