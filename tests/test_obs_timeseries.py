"""Unit tests for the time-series recorder and the shared JSON serializer
(repro.obs.timeseries).

The delta/rate queries use explicit ``now`` stamps so the arithmetic is
deterministic; the background-sampler thread is covered separately in
``test_obs_concurrency``.
"""

import json
import math

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import (
    TimeSeriesError,
    TimeSeriesRecorder,
    registry_to_dict,
    registry_to_json,
)


def _registry():
    registry = MetricsRegistry()
    checkins = registry.counter(
        "t_checkins_total", "Check-ins.", ("status",)
    )
    depth = registry.gauge("t_queue_depth", "Queue depth.")
    latency = registry.histogram(
        "t_latency_seconds", "Latency.", buckets=(0.1, 1.0)
    )
    return registry, checkins, depth, latency


class TestRegistrySerializer:
    def test_counter_and_gauge_shapes(self):
        registry, checkins, depth, _ = _registry()
        checkins.labels("valid").inc(3)
        checkins.labels("flagged").inc()
        depth.set(7)
        out = registry_to_dict(registry)
        family = out["t_checkins_total"]
        assert family["kind"] == "counter"
        assert family["labelnames"] == ["status"]
        values = {
            sample["labels"]["status"]: sample["value"]
            for sample in family["samples"]
        }
        assert values == {"valid": 3.0, "flagged": 1.0}
        (gauge_sample,) = out["t_queue_depth"]["samples"]
        assert gauge_sample == {"labels": {}, "value": 7.0}

    def test_histogram_sample_carries_count_sum_buckets(self):
        registry, _, _, latency = _registry()
        latency.observe(0.05)
        latency.observe(0.5)
        latency.observe(5.0)
        (sample,) = registry_to_dict(registry)["t_latency_seconds"]["samples"]
        assert sample["value"] == 3.0  # observation count
        assert math.isclose(sample["sum"], 5.55)
        assert sample["buckets"]["0.1"] == 1
        assert sample["buckets"]["1.0"] == 2  # cumulative
        assert sample["buckets"]["+Inf"] == 3

    def test_json_round_trips(self):
        registry, checkins, _, _ = _registry()
        checkins.labels("valid").inc()
        parsed = json.loads(registry_to_json(registry, indent=2))
        assert parsed == registry_to_dict(registry)


class TestSampling:
    def test_sample_records_every_series(self):
        registry, checkins, depth, latency = _registry()
        checkins.labels("valid").inc(4)
        depth.set(2)
        latency.observe(0.3)
        recorder = TimeSeriesRecorder(registry)
        updated = recorder.sample(now=100.0)
        assert updated == 3
        assert recorder.samples_taken == 1
        assert recorder.latest("t_checkins_total", ("valid",)) == (100.0, 4.0)
        assert recorder.latest("t_queue_depth") == (100.0, 2.0)
        # Histogram series store the observation count.
        assert recorder.latest("t_latency_seconds") == (100.0, 1.0)

    def test_new_series_picked_up_mid_flight(self):
        registry, checkins, _, _ = _registry()
        recorder = TimeSeriesRecorder(registry)
        checkins.labels("valid").inc()
        recorder.sample(now=1.0)
        checkins.labels("rejected").inc()
        recorder.sample(now=2.0)
        keys = recorder.series_keys()
        assert ("t_checkins_total", ("rejected",)) in keys
        assert len(recorder.series("t_checkins_total", ("valid",))) == 2

    def test_max_points_bounds_each_ring(self):
        registry, checkins, _, _ = _registry()
        child = checkins.labels("valid")
        recorder = TimeSeriesRecorder(registry, max_points=2)
        for stamp in (1.0, 2.0, 3.0):
            child.inc()
            recorder.sample(now=stamp)
        points = recorder.series("t_checkins_total", ("valid",))
        assert points == [(2.0, 2.0), (3.0, 3.0)]

    def test_unknown_series_is_empty(self):
        registry, _, _, _ = _registry()
        recorder = TimeSeriesRecorder(registry)
        assert recorder.series("t_missing") == []
        assert recorder.latest("t_missing") is None


class TestDeltaAndRate:
    def _recorder(self):
        registry, checkins, _, _ = _registry()
        child = checkins.labels("valid")
        recorder = TimeSeriesRecorder(registry)
        child.inc(10)
        recorder.sample(now=100.0)
        child.inc(20)
        recorder.sample(now=110.0)
        child.inc(10)
        recorder.sample(now=120.0)
        return recorder

    def test_delta_over_full_window(self):
        recorder = self._recorder()
        assert recorder.delta("t_checkins_total", ("valid",)) == 30.0

    def test_rate_per_s_over_full_window(self):
        recorder = self._recorder()
        assert recorder.rate_per_s("t_checkins_total", ("valid",)) == 1.5

    def test_windowed_queries_trim_old_points(self):
        recorder = self._recorder()
        delta = recorder.delta("t_checkins_total", ("valid",), window_s=10.0)
        assert delta == 10.0
        rate = recorder.rate_per_s(
            "t_checkins_total", ("valid",), window_s=10.0
        )
        assert rate == 1.0

    def test_fewer_than_two_points_is_zero(self):
        registry, checkins, _, _ = _registry()
        checkins.labels("valid").inc()
        recorder = TimeSeriesRecorder(registry)
        recorder.sample(now=1.0)
        assert recorder.delta("t_checkins_total", ("valid",)) == 0.0
        assert recorder.rate_per_s("t_checkins_total", ("valid",)) == 0.0


class TestExport:
    def test_to_dict_shape(self):
        registry, checkins, _, _ = _registry()
        checkins.labels("valid").inc(4)
        recorder = TimeSeriesRecorder(registry)
        recorder.sample(now=100.0)
        out = recorder.to_dict()
        assert out["t_checkins_total"] == [
            {"labels": ["valid"], "points": [[100.0, 4.0]]}
        ]
        # Unlabelled families appear as one solo series each.
        assert out["t_queue_depth"] == [
            {"labels": [], "points": [[100.0, 0.0]]}
        ]

    def test_to_json_round_trips(self):
        registry, checkins, _, _ = _registry()
        checkins.labels("valid").inc()
        recorder = TimeSeriesRecorder(registry)
        recorder.sample(now=1.0)
        assert json.loads(recorder.to_json()) == recorder.to_dict()


class TestGuards:
    def test_max_points_floor(self):
        registry, _, _, _ = _registry()
        with pytest.raises(TimeSeriesError):
            TimeSeriesRecorder(registry, max_points=1)

    def test_interval_must_be_positive(self):
        registry, _, _, _ = _registry()
        recorder = TimeSeriesRecorder(registry)
        with pytest.raises(TimeSeriesError):
            recorder.start(interval_s=0.0)

    def test_double_start_rejected(self):
        registry, _, _, _ = _registry()
        recorder = TimeSeriesRecorder(registry)
        recorder.start(interval_s=60.0)
        try:
            with pytest.raises(TimeSeriesError):
                recorder.start(interval_s=60.0)
        finally:
            recorder.stop()

    def test_context_manager_stops_the_sampler(self):
        registry, _, _, _ = _registry()
        with TimeSeriesRecorder(registry).start(interval_s=60.0) as recorder:
            assert recorder._thread.is_alive()
        assert recorder._thread is None
        recorder.stop()  # idempotent
