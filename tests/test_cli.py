"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

SMALL = ["--scale", "0.0002", "--seed", "5"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.scale == 0.0005
        assert args.seed == 42

    def test_every_subcommand_has_help(self, capsys):
        """``--help`` must work (and exit 0) for every registered command."""
        from repro.cli import _COMMANDS

        for command in _COMMANDS:
            with pytest.raises(SystemExit) as excinfo:
                build_parser().parse_args([command, "--help"])
            assert excinfo.value.code == 0
            out = capsys.readouterr().out
            assert "--scale" in out
            assert "--seed" in out

    def test_stream_detect_defaults(self):
        args = build_parser().parse_args(["stream-detect"])
        assert args.min_checkins == 150
        assert args.top == 15
        assert args.no_parity is False


class TestCommands:
    def test_demo_succeeds(self, capsys):
        assert main(["demo"] + SMALL) == 0
        out = capsys.readouterr().out
        assert "status=valid" in out
        assert "mayor=True" in out

    def test_crawl_prints_statistics(self, capsys):
        assert main(["crawl"] + SMALL + ["--machines", "2"]) == 0
        out = capsys.readouterr().out
        assert "crawled" in out
        assert "zero-check-in users" in out

    def test_attack_runs_clean(self, capsys):
        assert main(["attack"] + SMALL + ["--steps", "15", "--harvest", "5"]) == 0
        out = capsys.readouterr().out
        assert "0 detected" in out
        assert "harvest:" in out

    def test_detect_lists_suspects(self, capsys):
        assert main(["detect"] + SMALL + ["--min-checkins", "100"]) == 0
        out = capsys.readouterr().out
        assert "suspects:" in out

    def test_stream_detect_reports_parity(self, capsys):
        assert main(["stream-detect"] + SMALL + ["--min-checkins", "100"]) == 0
        out = capsys.readouterr().out
        assert "events/s through the live pipeline" in out
        assert "online suspects" in out
        assert "offline parity:" in out

    def test_stream_detect_no_parity_skips_crawl(self, capsys):
        assert (
            main(["stream-detect"] + SMALL + ["--no-parity", "--top", "5"]) == 0
        )
        out = capsys.readouterr().out
        assert "online suspects" in out
        assert "offline parity:" not in out

    def test_defend_prints_table(self, capsys):
        assert main(["defend"] + SMALL + ["--claims", "50"]) == 0
        out = capsys.readouterr().out
        assert "distance-bounding" in out
        assert "wifi-venue-verification" in out

    def test_figures_writes_csvs(self, tmp_path, capsys):
        out = tmp_path / "figs"
        assert main(["figures"] + SMALL + ["--out", str(out)]) == 0
        written = list(out.glob("*.csv"))
        assert len(written) >= 5
        header = written[0].read_text().splitlines()[0]
        assert "," in header


class TestVersionFlag:
    def test_version_prints_and_exits_zero(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert __version__ in out


class TestMetricsCommand:
    def test_metrics_snapshot_spans_all_three_layers(self, capsys):
        """One run must export lbsn, stream, and crawler counters."""
        assert main(["metrics"] + SMALL) == 0
        out = capsys.readouterr().out
        # Service pipeline.
        assert "repro_lbsn_checkins_total" in out
        assert "repro_span_seconds_bucket" in out
        # Stream pipeline.
        assert "repro_bus_published_total" in out
        assert "repro_ledger_checkins_scored_total" in out
        # Crawler.
        assert "repro_crawler_pages_fetched_total" in out
        assert "repro_crawler_worker_items_total" in out
        # It is valid Prometheus text exposition.
        assert "# HELP repro_lbsn_checkins_total" in out
        assert "# TYPE repro_lbsn_checkins_total counter" in out

    def test_metrics_defaults(self):
        args = build_parser().parse_args(["metrics"])
        assert args.slow_spans == 5
        assert args.format == "text"

    def test_metrics_json_format_shares_the_debug_vars_shape(self, capsys):
        import json

        assert main(["metrics", "--format", "json"] + SMALL) == 0
        parsed = json.loads(capsys.readouterr().out)
        # Every instrumented layer present, in the registry_to_dict shape.
        for family in (
            "repro_lbsn_checkins_total",
            "repro_bus_published_total",
            "repro_crawler_pages_fetched_total",
            "repro_log_records_total",
            "repro_defense_verdicts_total",
            "repro_defense_actions_total",
        ):
            assert family in parsed, family
            assert set(parsed[family]) == {"kind", "labelnames", "samples"}
        histogram = parsed["repro_defense_check_seconds"]
        assert histogram["kind"] == "histogram"
        for sample in histogram["samples"]:
            assert "buckets" in sample and "sum" in sample

    def test_metrics_format_choices_enforced(self):
        args = build_parser().parse_args(["metrics", "--format", "json"])
        assert args.format == "json"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["metrics", "--format", "yaml"])


class TestTopCommand:
    def test_top_defaults(self):
        args = build_parser().parse_args(["top"])
        assert args.interval == 0.5
        assert args.refreshes == 0
        assert args.rows == 12

    def test_top_renders_rate_dashboard(self, capsys):
        argv = ["top", "--interval", "0.2", "--refreshes", "2", "--rows", "6"]
        assert main(argv + SMALL) == 0
        out = capsys.readouterr().out
        assert "repro top: refresh 1" in out
        assert "rate/s" in out and "series" in out
        # At least one real series row made it onto the board.
        assert "repro_" in out
