"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

SMALL = ["--scale", "0.0002", "--seed", "5"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.scale == 0.0005
        assert args.seed == 42

    def test_every_subcommand_has_help(self, capsys):
        """``--help`` must work (and exit 0) for every registered command."""
        from repro.cli import _COMMANDS

        # wal-replay reads an existing tree; it takes no world knobs.
        worldless = {"wal-replay"}
        for command in _COMMANDS:
            with pytest.raises(SystemExit) as excinfo:
                build_parser().parse_args([command, "--help"])
            assert excinfo.value.code == 0
            out = capsys.readouterr().out
            if command not in worldless:
                assert "--scale" in out
                assert "--seed" in out

    def test_stream_detect_defaults(self):
        args = build_parser().parse_args(["stream-detect"])
        assert args.min_checkins == 150
        assert args.top == 15
        assert args.no_parity is False


class TestCommands:
    def test_demo_succeeds(self, capsys):
        assert main(["demo"] + SMALL) == 0
        out = capsys.readouterr().out
        assert "status=valid" in out
        assert "mayor=True" in out

    def test_crawl_prints_statistics(self, capsys):
        assert main(["crawl"] + SMALL + ["--machines", "2"]) == 0
        out = capsys.readouterr().out
        assert "crawled" in out
        assert "zero-check-in users" in out

    def test_attack_runs_clean(self, capsys):
        assert main(["attack"] + SMALL + ["--steps", "15", "--harvest", "5"]) == 0
        out = capsys.readouterr().out
        assert "0 detected" in out
        assert "harvest:" in out

    def test_detect_lists_suspects(self, capsys):
        assert main(["detect"] + SMALL + ["--min-checkins", "100"]) == 0
        out = capsys.readouterr().out
        assert "suspects:" in out

    def test_stream_detect_reports_parity(self, capsys):
        assert main(["stream-detect"] + SMALL + ["--min-checkins", "100"]) == 0
        out = capsys.readouterr().out
        assert "events/s through the live pipeline" in out
        assert "online suspects" in out
        assert "offline parity:" in out

    def test_stream_detect_no_parity_skips_crawl(self, capsys):
        assert (
            main(["stream-detect"] + SMALL + ["--no-parity", "--top", "5"]) == 0
        )
        out = capsys.readouterr().out
        assert "online suspects" in out
        assert "offline parity:" not in out

    def test_defend_prints_table(self, capsys):
        assert main(["defend"] + SMALL + ["--claims", "50"]) == 0
        out = capsys.readouterr().out
        assert "distance-bounding" in out
        assert "wifi-venue-verification" in out

    def test_figures_writes_csvs(self, tmp_path, capsys):
        out = tmp_path / "figs"
        assert main(["figures"] + SMALL + ["--out", str(out)]) == 0
        written = list(out.glob("*.csv"))
        assert len(written) >= 5
        header = written[0].read_text().splitlines()[0]
        assert "," in header


class TestVersionFlag:
    def test_version_prints_and_exits_zero(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert __version__ in out


class TestMetricsCommand:
    def test_metrics_snapshot_spans_all_three_layers(self, capsys):
        """One run must export lbsn, stream, and crawler counters."""
        assert main(["metrics"] + SMALL) == 0
        out = capsys.readouterr().out
        # Service pipeline.
        assert "repro_lbsn_checkins_total" in out
        assert "repro_span_seconds_bucket" in out
        # Stream pipeline.
        assert "repro_bus_published_total" in out
        assert "repro_ledger_checkins_scored_total" in out
        # Crawler.
        assert "repro_crawler_pages_fetched_total" in out
        assert "repro_crawler_worker_items_total" in out
        # It is valid Prometheus text exposition.
        assert "# HELP repro_lbsn_checkins_total" in out
        assert "# TYPE repro_lbsn_checkins_total counter" in out

    def test_metrics_defaults(self):
        args = build_parser().parse_args(["metrics"])
        assert args.slow_spans == 5
        assert args.format == "text"

    def test_metrics_json_format_shares_the_debug_vars_shape(self, capsys):
        import json

        assert main(["metrics", "--format", "json"] + SMALL) == 0
        parsed = json.loads(capsys.readouterr().out)
        # Every instrumented layer present, in the registry_to_dict shape.
        for family in (
            "repro_lbsn_checkins_total",
            "repro_bus_published_total",
            "repro_crawler_pages_fetched_total",
            "repro_log_records_total",
            "repro_defense_verdicts_total",
            "repro_defense_actions_total",
        ):
            assert family in parsed, family
            assert set(parsed[family]) == {"kind", "labelnames", "samples"}
        histogram = parsed["repro_defense_check_seconds"]
        assert histogram["kind"] == "histogram"
        for sample in histogram["samples"]:
            assert "buckets" in sample and "sum" in sample

    def test_metrics_format_choices_enforced(self):
        args = build_parser().parse_args(["metrics", "--format", "json"])
        assert args.format == "json"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["metrics", "--format", "yaml"])


class TestTopCommand:
    def test_top_defaults(self):
        args = build_parser().parse_args(["top"])
        assert args.interval == 0.5
        assert args.refreshes == 0
        assert args.rows == 12

    def test_top_renders_rate_dashboard(self, capsys):
        argv = ["top", "--interval", "0.2", "--refreshes", "2", "--rows", "6"]
        assert main(argv + SMALL) == 0
        out = capsys.readouterr().out
        assert "repro top: refresh 1" in out
        assert "rate/s" in out and "series" in out
        # At least one real series row made it onto the board.
        assert "repro_" in out


def _fake_chaos_report(state_digest, sequence_digest="seq-1", suspects=(1,)):
    from types import SimpleNamespace

    return SimpleNamespace(
        crawl=None,
        crawl_aborted=False,
        crawler_breaker_opens=0,
        wall_seconds=0.01,
        checkins_attempted=10,
        checkins_returned=10,
        commit_retries=0,
        commit_exhausted=0,
        victim_errors=0,
        ledger_suspects=list(suspects),
        breaker_failures_to_open=3,
        breaker_half_opened=True,
        breaker_reopened_on_probe_failure=True,
        breaker_closed_after_probe=True,
        web_statuses={200: 5},
        metrics_route_ok=True,
        debug_vars_route_ok=True,
        debug_logs_route_ok=True,
        faults_fired={},
        fault_sequence_digest=sequence_digest,
        committed_state_digest=state_digest,
    )


class TestChaosVerifyExitCodes:
    """--verify must turn digest divergence into a non-zero exit."""

    def test_verify_passes_when_replay_agrees(self, monkeypatch, capsys):
        import repro.workload.chaos as chaos_mod

        monkeypatch.setattr(
            chaos_mod,
            "run_chaos",
            lambda config, metrics=None, log=None: _fake_chaos_report("same"),
        )
        assert main(["chaos", "--verify"] + SMALL) == 0
        assert "end state identical=True" in capsys.readouterr().out

    def test_verify_fails_on_state_divergence(self, monkeypatch, capsys):
        import repro.workload.chaos as chaos_mod

        digests = iter(["run-one", "run-two"])
        monkeypatch.setattr(
            chaos_mod,
            "run_chaos",
            lambda config, metrics=None, log=None: _fake_chaos_report(
                next(digests)
            ),
        )
        assert main(["chaos", "--verify"] + SMALL) == 1
        captured = capsys.readouterr()
        assert "VERIFY FAILED" in captured.err

    def test_verify_fails_on_suspect_divergence(self, monkeypatch, capsys):
        import repro.workload.chaos as chaos_mod

        suspect_sets = iter([(1, 2), (1, 3)])
        monkeypatch.setattr(
            chaos_mod,
            "run_chaos",
            lambda config, metrics=None, log=None: _fake_chaos_report(
                "same", suspects=next(suspect_sets)
            ),
        )
        assert main(["chaos", "--verify"] + SMALL) == 1
        assert "VERIFY FAILED" in capsys.readouterr().err


class TestSnapshotAndWalReplay:
    """The durable tree CLI pair: write with one, verify with the other."""

    @pytest.fixture(scope="class")
    def tree(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("cli-tree")
        argv = [
            "snapshot", "--out", str(out),
            "--partitions", "2", "--checkins", "80",
        ] + SMALL
        assert main(argv) == 0
        return out

    def test_snapshot_prints_digests(self, tree, capsys):
        # The fixture already ran; rerun into a fresh dir to see output.
        out = tree.parent / "cli-tree-again"
        argv = [
            "snapshot", "--out", str(out),
            "--partitions", "2", "--checkins", "80",
        ] + SMALL
        assert main(argv) == 0
        text = capsys.readouterr().out
        assert "partition-00 digest:" in text
        assert "partition-01 digest:" in text
        assert "combined digest:" in text

    def test_wal_replay_verify_passes_on_intact_tree(self, tree, capsys):
        assert main(["wal-replay", "--dir", str(tree), "--verify"]) == 0
        assert "digests match the manifest" in capsys.readouterr().out

    def test_wal_replay_missing_dir_exits_nonzero(self, tree, capsys):
        missing = str(tree / "nope")
        assert main(["wal-replay", "--dir", missing]) == 1
        assert "no durable tree" in capsys.readouterr().err

    def test_wal_replay_verify_fails_on_manifest_mismatch(
        self, tree, tmp_path, capsys
    ):
        import json
        import shutil

        clone = tmp_path / "tampered"
        shutil.copytree(tree, clone)
        manifest_path = clone / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["combined_digest"] = "0" * 64
        manifest_path.write_text(json.dumps(manifest))
        assert main(["wal-replay", "--dir", str(clone), "--verify"]) == 1
        assert "VERIFY FAILED" in capsys.readouterr().err

    def test_wal_replay_verify_fails_without_manifest(
        self, tree, tmp_path, capsys
    ):
        import shutil

        clone = tmp_path / "no-manifest"
        shutil.copytree(tree, clone)
        (clone / "manifest.json").unlink()
        # Plain replay still works...
        assert main(["wal-replay", "--dir", str(clone)]) == 0
        capsys.readouterr()
        # ...but --verify has nothing to verify against.
        assert main(["wal-replay", "--dir", str(clone), "--verify"]) == 1
        assert "no manifest" in capsys.readouterr().err

    def test_wal_replay_fails_on_mid_log_corruption(
        self, tree, tmp_path, capsys
    ):
        import shutil

        from repro.durable.wal import SEGMENT_MAGIC

        clone = tmp_path / "corrupt"
        shutil.copytree(tree, clone)
        # Snapshots would mask WAL damage; drop them to force a full scan.
        for snap in (clone / "partition-00" / "snapshots").glob("*.json"):
            snap.unlink()
        segment = sorted((clone / "partition-00" / "wal").glob("*.wal"))[0]
        raw = bytearray(segment.read_bytes())
        raw[len(SEGMENT_MAGIC) + 10] ^= 0xFF
        segment.write_bytes(bytes(raw))
        assert main(["wal-replay", "--dir", str(clone)]) == 1
        assert "REPLAY FAILED" in capsys.readouterr().err


def _fake_adversary_report(catch_digest, fp_digest="fp-1"):
    from repro.adversary import AdversaryConfig, AdversaryReport

    return AdversaryReport(
        config=AdversaryConfig(),
        honeypots_seeded=3,
        target_pool=10,
        honeypot_targets=3,
        ring_accounts=[1, 2, 3, 4],
        flagged_ring_accounts=[1, 2, 3, 4],
        ring_corroboration=1.0,
        honest_accounts=[5, 6],
        flagged_honest_accounts=[],
        honest_checkins=12,
        post_flag_attempts=4,
        post_flag_refusals=4,
        honeypot_checkins=4,
        ledger_suspects=4,
        catch_digest=catch_digest,
        fp_digest=fp_digest,
        wall_seconds=0.01,
    )


class TestAdversaryCommand:
    """The E26 scoreboard verb: rings vs honeypots with a small world."""

    KNOBS = [
        "--rings", "1", "--ring-size", "2",
        "--targets-per-ring", "6", "--honest-accounts", "5",
    ]

    def test_adversary_prints_the_scoreboard(self, capsys):
        assert main(["adversary"] + SMALL + self.KNOBS) == 0
        out = capsys.readouterr().out
        assert "honeypots seeded" in out
        assert "catch rate:" in out
        assert "false positives:" in out
        assert "inline refusals:" in out
        assert "catch digest:" in out

    def test_store_shards_reaches_the_adversary_config(
        self, monkeypatch, capsys
    ):
        import repro.adversary as adversary_mod

        captured = {}

        def fake(config, metrics=None, log=None):
            captured["config"] = config
            return _fake_adversary_report("same")

        monkeypatch.setattr(adversary_mod, "run_adversary", fake)
        assert (
            main(["adversary"] + SMALL + ["--store-shards", "4"]) == 0
        )
        assert captured["config"].store_shards == 4
        assert "shards=4" in capsys.readouterr().out

    def test_store_shards_reaches_the_chaos_config(self, monkeypatch):
        import repro.workload.chaos as chaos_mod

        captured = {}

        def fake(config, metrics=None, log=None):
            captured["config"] = config
            return _fake_chaos_report("same")

        monkeypatch.setattr(chaos_mod, "run_chaos", fake)
        assert main(["chaos"] + SMALL + ["--store-shards", "4"]) == 0
        assert captured["config"].store_shards == 4

    def test_store_shards_defaults_to_one_everywhere(self):
        for command in ("adversary", "chaos", "snapshot"):
            args = build_parser().parse_args([command])
            assert args.store_shards == 1


class TestAdversaryVerifyExitCodes:
    """--verify must turn scoreboard divergence into a non-zero exit."""

    def test_verify_passes_when_replay_agrees(self, monkeypatch, capsys):
        import repro.adversary as adversary_mod

        monkeypatch.setattr(
            adversary_mod,
            "run_adversary",
            lambda config, metrics=None, log=None: _fake_adversary_report(
                "same"
            ),
        )
        assert main(["adversary", "--verify"] + SMALL) == 0
        out = capsys.readouterr().out
        assert "catch digest identical=True" in out
        assert "fp digest identical=True" in out

    def test_verify_fails_on_catch_divergence(self, monkeypatch, capsys):
        import repro.adversary as adversary_mod

        digests = iter(["run-one", "run-two"])
        monkeypatch.setattr(
            adversary_mod,
            "run_adversary",
            lambda config, metrics=None, log=None: _fake_adversary_report(
                next(digests)
            ),
        )
        assert main(["adversary", "--verify"] + SMALL) == 1
        assert "VERIFY FAILED" in capsys.readouterr().err

    def test_verify_fails_on_fp_divergence(self, monkeypatch, capsys):
        import repro.adversary as adversary_mod

        fp_digests = iter(["fp-one", "fp-two"])
        monkeypatch.setattr(
            adversary_mod,
            "run_adversary",
            lambda config, metrics=None, log=None: _fake_adversary_report(
                "same", fp_digest=next(fp_digests)
            ),
        )
        assert main(["adversary", "--verify"] + SMALL) == 1
        assert "VERIFY FAILED" in capsys.readouterr().err
