"""Tests for the distance-bounding verifier."""

import pytest

from repro.defense.distance_bounding import (
    SPEED_OF_LIGHT_MPS,
    DistanceBoundingConfig,
    DistanceBoundingVerifier,
)
from repro.defense.verifier import LocationClaim, VerificationOutcome
from repro.errors import DefenseError
from repro.geo.coordinates import GeoPoint
from repro.geo.distance import destination_point, haversine_m

VENUE = GeoPoint(37.8080, -122.4177)
ATTACKER = GeoPoint(35.0844, -106.6504)


def claim(physical):
    return LocationClaim(
        user_id=1,
        venue_id=1,
        venue_location=VENUE,
        claimed_location=VENUE,
        physical_location=physical,
    )


class TestProtocolPhysics:
    def test_bound_never_below_true_distance(self):
        verifier = DistanceBoundingVerifier(seed=3)
        for meters in (0.0, 50.0, 500.0, 5_000.0, 1_000_000.0):
            device = destination_point(VENUE, 45.0, meters)
            bound = verifier.bound_distance_m(VENUE, device)
            true = haversine_m(VENUE, device)
            assert bound >= true - 1.0  # numeric slack only

    def test_bound_tight_for_nearby_device(self):
        verifier = DistanceBoundingVerifier(seed=3)
        device = destination_point(VENUE, 45.0, 20.0)
        bound = verifier.bound_distance_m(VENUE, device)
        # Jitter inflation stays well under the acceptance radius.
        assert bound < 200.0

    def test_rtt_includes_flight_time(self):
        verifier = DistanceBoundingVerifier(seed=3)
        device = destination_point(VENUE, 0.0, 300_000.0)  # 300 km
        rtt = verifier.measure_rtt_s(VENUE, device)
        assert rtt >= 2.0 * 300_000.0 / SPEED_OF_LIGHT_MPS


class TestVerification:
    def test_attacker_cannot_beat_light(self):
        verifier = DistanceBoundingVerifier(seed=1)
        result = verifier.verify(claim(ATTACKER))
        assert result.outcome is VerificationOutcome.REJECT
        assert result.estimated_distance_m > 1_000_000

    def test_honest_device_accepted(self):
        verifier = DistanceBoundingVerifier(seed=1)
        device = destination_point(VENUE, 120.0, 30.0)
        result = verifier.verify(claim(device))
        assert result.outcome is VerificationOutcome.ACCEPT

    def test_borderline_respects_configured_limit(self):
        config = DistanceBoundingConfig(max_distance_m=1_000.0)
        verifier = DistanceBoundingVerifier(config, seed=1)
        inside = destination_point(VENUE, 0.0, 500.0)
        outside = destination_point(VENUE, 0.0, 5_000.0)
        assert verifier.verify(claim(inside)).accepted
        assert verifier.verify(claim(outside)).rejected

    def test_zero_rounds_rejected(self):
        with pytest.raises(DefenseError):
            DistanceBoundingVerifier(DistanceBoundingConfig(rounds=0))

    def test_more_rounds_tighter_bound(self):
        device = destination_point(VENUE, 0.0, 10.0)
        few = DistanceBoundingVerifier(
            DistanceBoundingConfig(rounds=1), seed=7
        )
        many = DistanceBoundingVerifier(
            DistanceBoundingConfig(rounds=64), seed=7
        )
        few_bounds = [few.bound_distance_m(VENUE, device) for _ in range(30)]
        many_bounds = [many.bound_distance_m(VENUE, device) for _ in range(30)]
        assert sum(many_bounds) / 30 < sum(few_bounds) / 30
