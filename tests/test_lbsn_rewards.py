"""Unit tests for points and the badge engine."""


from repro.geo.coordinates import GeoPoint
from repro.lbsn.models import CheckIn, CheckInStatus, User
from repro.lbsn.rewards import (
    BadgeEngine,
    PointsPolicy,
    default_badges,
    milestone_badges,
)
from repro.simnet.clock import SECONDS_PER_DAY

LOCATION = GeoPoint(40.0, -100.0)
_counter = [0]


def make_user(**kwargs):
    return User(user_id=1, display_name="Test", **kwargs)


def checkin(venue_id, timestamp, status=CheckInStatus.VALID):
    _counter[0] += 1
    return CheckIn(
        checkin_id=_counter[0],
        user_id=1,
        venue_id=venue_id,
        timestamp=timestamp,
        reported_location=LOCATION,
        status=status,
    )


class TestPointsPolicy:
    def test_base_checkin(self):
        assert PointsPolicy().score(False, False, False) == 1

    def test_first_visit_bonus(self):
        assert PointsPolicy().score(True, False, False) == 3

    def test_first_of_day_bonus(self):
        assert PointsPolicy().score(False, True, False) == 4

    def test_mayor_bonus_stacks(self):
        assert PointsPolicy().score(True, True, True) == 11

    def test_custom_policy(self):
        policy = PointsPolicy(base=2, became_mayor_bonus=10)
        assert policy.score(False, False, True) == 12


class TestNamedBadges:
    def _engine_user_history(self):
        return BadgeEngine(), make_user(), []

    def test_newbie_on_first_checkin(self):
        engine, user, history = self._engine_user_history()
        history.append(checkin(1, 0.0))
        user.valid_checkins = 1
        user.venues_visited = {1}
        earned = engine.evaluate(user, history)
        assert "Newbie" in earned

    def test_adventurer_at_10_distinct_venues(self):
        # §3.1: "Adventurer: You've checked into 10 different venues!"
        engine, user, history = self._engine_user_history()
        for index in range(10):
            history.append(checkin(index + 1, index * 7_200.0))
        user.valid_checkins = 10
        user.venues_visited = set(range(1, 11))
        earned = engine.evaluate(user, history)
        assert "Adventurer" in earned

    def test_adventurer_not_at_9(self):
        engine, user, history = self._engine_user_history()
        user.valid_checkins = 9
        user.venues_visited = set(range(1, 10))
        history.append(checkin(9, 0.0))
        assert "Adventurer" not in engine.evaluate(user, history)

    def test_super_user_30_checkins_in_month(self):
        # §2.1's example: "30 check-ins in a month".
        engine, user, history = self._engine_user_history()
        for index in range(30):
            history.append(checkin(index % 3 + 1, index * SECONDS_PER_DAY))
        user.valid_checkins = 30
        user.venues_visited = {1, 2, 3}
        earned = engine.evaluate(user, history)
        assert "Super User" in earned

    def test_super_user_not_for_spread_out_checkins(self):
        engine, user, history = self._engine_user_history()
        for index in range(30):
            history.append(checkin(1, index * 3 * SECONDS_PER_DAY))
        user.valid_checkins = 30
        user.venues_visited = {1}
        assert "Super User" not in engine.evaluate(user, history)

    def test_bender_four_consecutive_days(self):
        engine, user, history = self._engine_user_history()
        for day in range(4):
            history.append(checkin(1, day * SECONDS_PER_DAY + 3_600.0))
        user.valid_checkins = 4
        user.venues_visited = {1}
        assert "Bender" in engine.evaluate(user, history)

    def test_bender_broken_streak(self):
        engine, user, history = self._engine_user_history()
        for day in (0, 1, 3, 4):
            history.append(checkin(1, day * SECONDS_PER_DAY + 3_600.0))
        user.valid_checkins = 4
        user.venues_visited = {1}
        assert "Bender" not in engine.evaluate(user, history)

    def test_local_three_at_same_venue_in_week(self):
        engine, user, history = self._engine_user_history()
        for day in (0, 2, 4):
            history.append(checkin(9, day * SECONDS_PER_DAY))
        user.valid_checkins = 3
        user.venues_visited = {9}
        assert "Local" in engine.evaluate(user, history)

    def test_crunked_four_stops_one_night(self):
        engine, user, history = self._engine_user_history()
        for index in range(4):
            history.append(checkin(index + 1, index * 1_800.0))
        user.valid_checkins = 4
        user.venues_visited = {1, 2, 3, 4}
        assert "Crunked" in engine.evaluate(user, history)

    def test_overshare_ten_in_twelve_hours(self):
        engine, user, history = self._engine_user_history()
        for index in range(10):
            history.append(checkin(index % 2 + 1, index * 1_800.0))
        user.valid_checkins = 10
        user.venues_visited = {1, 2}
        assert "Overshare" in engine.evaluate(user, history)


class TestMilestoneLadders:
    def test_checkin_milestones_unlock_monotonically(self):
        engine = BadgeEngine()
        user = make_user()
        user.valid_checkins = 100
        user.venues_visited = {1}
        history = [checkin(1, 0.0)]
        earned = set(engine.evaluate(user, history))
        assert "Check-ins x100" in earned
        assert "Check-ins x150" not in earned

    def test_mayor_milestones_follow_counter(self):
        engine = BadgeEngine()
        user = make_user()
        user.valid_checkins = 1
        user.mayorship_count = 10
        user.venues_visited = {1}
        earned = set(engine.evaluate(user, [checkin(1, 0.0)]))
        assert "Mayor x10" in earned
        assert "Mayor x20" not in earned

    def test_day_milestones_follow_active_days(self):
        engine = BadgeEngine()
        user = make_user()
        user.valid_checkins = 5
        user.active_days = set(range(20))
        user.venues_visited = {1}
        earned = set(engine.evaluate(user, [checkin(1, 0.0)]))
        assert "Days x20" in earned
        assert "Days x30" not in earned

    def test_catalogue_is_large(self):
        # Fig 4.2's y-axis reaches ~90 badges; the catalogue must allow it.
        assert len(default_badges()) >= 70
        assert len(milestone_badges()) >= 60

    def test_unique_badge_names(self):
        names = [badge.name for badge in default_badges()]
        assert len(names) == len(set(names))


class TestBadgeEngineMechanics:
    def test_badge_awarded_only_once(self):
        engine = BadgeEngine()
        user = make_user()
        user.valid_checkins = 1
        user.venues_visited = {1}
        history = [checkin(1, 0.0)]
        first = engine.evaluate(user, history)
        second = engine.evaluate(user, history)
        assert "Newbie" in first
        assert "Newbie" not in second

    def test_badges_recorded_on_user(self):
        engine = BadgeEngine()
        user = make_user()
        user.valid_checkins = 1
        user.venues_visited = {1}
        engine.evaluate(user, [checkin(1, 0.0)])
        assert "Newbie" in user.badges

    def test_all_earned_short_circuits(self):
        engine = BadgeEngine()
        user = make_user()
        user.badges = {badge.name for badge in engine.catalogue}
        assert engine.evaluate(user, [checkin(1, 0.0)]) == []
