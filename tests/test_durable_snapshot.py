"""Ledger snapshot/restore: state round-trips, versioning, checksums.

The round-trip suite feeds a real event stream through a ledger, persists
it, restores into a fresh ledger, and demands *full* state equality —
including trace ids, which the parity digest deliberately scrubs but a
restore must preserve.  The validation suite covers the refusal matrix:
bad checksum, truncated body, wrong version, wrong format.
"""

import json

import pytest

from repro.analysis.detection import DetectorConfig
from repro.durable.snapshot import (
    SNAPSHOT_VERSION,
    SnapshotError,
    SnapshotStore,
)
from repro.geo.coordinates import GeoPoint
from repro.stream.detectors import StreamDetectorConfig
from repro.stream.events import CheckInAccepted, CheckInFlagged
from repro.stream.ledger import SuspicionLedger

CONFIG = DetectorConfig(min_total_checkins=10)
STREAM_CONFIG = StreamDetectorConfig(max_users=64, max_venues=64)


def make_events(count=120, users=6, venues=7):
    events = []
    for seq in range(count):
        cls = CheckInFlagged if seq % 5 == 0 else CheckInAccepted
        lat = ((seq * 13) % 120) - 60.0
        lon = ((seq * 29) % 300) - 150.0
        kwargs = dict(
            user_id=seq % users,
            venue_id=seq % venues,
            venue_location=GeoPoint(lat, lon),
            reported_location=GeoPoint(lat, lon),
            checkin_id=seq,
            trace_id=f"trace-{seq:04d}",
        )
        if cls is CheckInAccepted:
            kwargs.update(points=3, new_badge_count=seq % 3)
        events.append(cls(seq, float(seq) * 60.0, **kwargs))
    return events


def fed_ledger(events):
    ledger = SuspicionLedger(config=CONFIG, stream_config=STREAM_CONFIG)
    for event in events:
        ledger.on_event(event)
    return ledger


class TestStateDictRoundTrip:
    def test_full_state_equality_including_traces(self):
        events = make_events()
        original = fed_ledger(events)
        restored = SuspicionLedger(
            config=CONFIG, stream_config=STREAM_CONFIG
        )
        restored.load_state_dict(original.state_dict())
        assert restored.state_dict() == original.state_dict()
        assert restored.last_seq == original.last_seq
        assert restored.events_processed == original.events_processed
        assert sorted(restored.suspect_ids()) == sorted(original.suspect_ids())
        # Traces survive the round trip (only digests scrub them).
        for user_id in original.suspect_ids():
            assert restored.flag_trace_id(user_id) == original.flag_trace_id(
                user_id
            )

    def test_restored_ledger_scores_identically_forward(self):
        events = make_events()
        original = fed_ledger(events[:80])
        restored = SuspicionLedger(
            config=CONFIG, stream_config=STREAM_CONFIG
        )
        restored.load_state_dict(original.state_dict())
        for event in events[80:]:
            original.on_event(event)
            restored.on_event(event)
        assert restored.digest() == original.digest()

    def test_lru_recency_survives_restore(self):
        # Tiny bound: evictions depend on recency order, so a restore
        # that scrambled it would diverge on the very next insert.
        tight = StreamDetectorConfig(max_users=4, max_venues=4)
        events = make_events(count=60, users=12, venues=9)
        original = SuspicionLedger(config=CONFIG, stream_config=tight)
        for event in events[:40]:
            original.on_event(event)
        restored = SuspicionLedger(config=CONFIG, stream_config=tight)
        restored.load_state_dict(original.state_dict())
        assert (
            restored.activity.users.keys() == original.activity.users.keys()
        )
        for event in events[40:]:
            original.on_event(event)
            restored.on_event(event)
        assert restored.digest() == original.digest()
        assert (
            restored.activity.users.evictions
            == original.activity.users.evictions
        )

    def test_digest_scrubs_traces(self):
        events = make_events()
        one = fed_ledger(events)
        retraced = [
            type(event)(
                **{
                    **{
                        f: getattr(event, f)
                        for f in event.__dataclass_fields__
                    },
                    "trace_id": f"other-{event.seq}",
                }
            )
            for event in events
        ]
        two = fed_ledger(retraced)
        assert one.state_dict() != two.state_dict()  # traces differ...
        assert one.digest() == two.digest()  # ...but scoring state agrees


class TestSnapshotStore:
    def test_write_load_round_trip(self, tmp_path):
        ledger = fed_ledger(make_events())
        store = SnapshotStore(tmp_path, partition=3)
        path = store.write(ledger, seq=119)
        assert path.name == "snapshot-000000000119.json"
        snapshot = store.load(119)
        assert snapshot.seq == 119
        assert snapshot.partition == 3
        assert snapshot.version == SNAPSHOT_VERSION
        revived = snapshot.make_ledger()
        assert revived.digest() == ledger.digest()
        assert revived.config == CONFIG
        assert revived.stream_config == STREAM_CONFIG

    def test_latest_picks_the_newest(self, tmp_path):
        ledger = fed_ledger(make_events())
        store = SnapshotStore(tmp_path)
        for seq in (10, 500, 77):
            store.write(ledger, seq=seq)
        assert store.list_seqs() == [10, 77, 500]
        assert store.latest().seq == 500

    def test_latest_on_empty_store(self, tmp_path):
        assert SnapshotStore(tmp_path).latest() is None

    def test_no_tmp_files_left_behind(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.write(fed_ledger(make_events(20)), seq=19)
        assert not list(tmp_path.glob("*.tmp"))

    def test_negative_seq_rejected(self, tmp_path):
        with pytest.raises(SnapshotError):
            SnapshotStore(tmp_path).write(fed_ledger([]), seq=-1)


class TestSnapshotValidation:
    @pytest.fixture
    def written(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.write(fed_ledger(make_events(40)), seq=39)
        return store, tmp_path / "snapshot-000000000039.json"

    def test_flipped_body_bit_rejected(self, written):
        store, path = written
        raw = bytearray(path.read_bytes())
        raw[-2] ^= 0x01
        path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotError, match="checksum"):
            store.load(39)

    def test_truncated_body_rejected(self, written):
        store, path = written
        path.write_bytes(path.read_bytes()[:-10])
        with pytest.raises(SnapshotError, match="truncated"):
            store.load(39)

    def test_wrong_version_rejected(self, written):
        store, path = written
        raw = path.read_bytes()
        newline = raw.find(b"\n")
        header = json.loads(raw[:newline])
        header["version"] = SNAPSHOT_VERSION + 1
        path.write_bytes(
            json.dumps(header).encode() + b"\n" + raw[newline + 1:]
        )
        with pytest.raises(SnapshotError, match="version"):
            store.load(39)

    def test_wrong_format_rejected(self, written):
        store, path = written
        path.write_bytes(b'{"format": "something-else"}\n{}')
        with pytest.raises(SnapshotError, match="not a snapshot"):
            store.load(39)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot read"):
            SnapshotStore(tmp_path).load(7)

    def test_garbage_header_rejected(self, written):
        store, path = written
        path.write_bytes(b"not json at all\n{}")
        with pytest.raises(SnapshotError, match="bad header"):
            store.load(39)
