"""Tests for inline defense deployment (DefendedLbsnService)."""

import pytest

from repro.attack.spoofing import build_emulator_attacker
from repro.defense.distance_bounding import DistanceBoundingVerifier
from repro.defense.integration import (
    RULE_LOCATION_VERIFIER,
    DefendedLbsnService,
    DeviceRegistry,
    registry_locator,
)
from repro.defense.wifi_verification import deploy_routers
from repro.geo.coordinates import GeoPoint
from repro.lbsn.models import CheckInStatus
from repro.lbsn.service import LbsnService

ABQ = GeoPoint(35.0844, -106.6504)
SF = GeoPoint(37.8080, -122.4177)


@pytest.fixture
def defended():
    service = LbsnService()
    wharf = service.create_venue("Wharf", SF, city="San Francisco, CA")
    cafe = service.create_venue("Cafe", ABQ, city="Albuquerque, NM")
    registry = DeviceRegistry()
    defended = DefendedLbsnService(
        service,
        DistanceBoundingVerifier(seed=1),
        registry_locator(registry),
    )
    return service, defended, registry, wharf, cafe


class TestDefendedCheckins:
    def test_honest_checkin_passes(self, defended):
        service, wrapped, registry, wharf, cafe = defended
        user = service.register_user("Honest")
        registry.place(user.user_id, ABQ)  # physically at the cafe
        result = wrapped.check_in(user.user_id, cafe.venue_id, ABQ)
        assert result.checkin.status is CheckInStatus.VALID
        assert wrapped.stats.verified == 1

    def test_spoofed_checkin_refused(self, defended):
        service, wrapped, registry, wharf, cafe = defended
        user = service.register_user("Cheater")
        registry.place(user.user_id, ABQ)  # physically in Albuquerque
        result = wrapped.check_in(user.user_id, wharf.venue_id, SF)
        assert result.checkin.status is CheckInStatus.REJECTED
        assert result.checkin.flagged_rule == RULE_LOCATION_VERIFIER
        assert wrapped.stats.refused == 1
        # Refused claims leave no trace in the service.
        assert service.store.checkin_count() == 0
        assert user.total_checkins == 0

    def test_unlocatable_device_default_allows(self, defended):
        service, wrapped, registry, wharf, cafe = defended
        user = service.register_user("Ghost")
        result = wrapped.check_in(user.user_id, wharf.venue_id, SF)
        assert result.checkin.status is CheckInStatus.VALID
        assert wrapped.stats.unlocatable == 1

    def test_unlocatable_device_strict_refuses(self, defended):
        service, wrapped, registry, wharf, cafe = defended
        wrapped.refuse_inconclusive = True
        user = service.register_user("Ghost")
        result = wrapped.check_in(user.user_id, wharf.venue_id, SF)
        assert result.checkin.status is CheckInStatus.REJECTED

    def test_passthrough_attributes(self, defended):
        service, wrapped, registry, wharf, cafe = defended
        # Attack channels call service helpers through the wrapper.
        assert wrapped.nearby_venues(SF)[0].venue_id == wharf.venue_id
        assert wrapped.clock is service.clock


class TestDefenseVsAttackCampaign:
    def test_wifi_defense_zeroes_the_spoofing_attack(self):
        """The E1 attack against a Wi-Fi-verified deployment dies."""
        service = LbsnService()
        wharf = service.create_venue("Wharf", SF)
        wifi = deploy_routers(service, fraction=1.0, fallback_accept=False)
        registry = DeviceRegistry()
        wrapped = DefendedLbsnService(
            service, wifi, registry_locator(registry)
        )
        user, emulator, channel = build_emulator_attacker(service)
        registry.place(user.user_id, ABQ)  # where the attacker really is
        channel.set_location(SF)
        # The channel talks to the raw service; re-point it at the
        # defended wrapper like a deployed server would be.
        channel.app.service = wrapped
        outcome = channel.check_in(wharf.venue_id)
        assert outcome.status is CheckInStatus.REJECTED
        assert wrapped.stats.refused == 1

    def test_honest_user_unharmed_by_deployment(self):
        service = LbsnService()
        cafe = service.create_venue("Cafe", ABQ)
        wifi = deploy_routers(service, fraction=1.0)
        registry = DeviceRegistry()
        wrapped = DefendedLbsnService(
            service, wifi, registry_locator(registry)
        )
        user = service.register_user("Regular")
        registry.place(user.user_id, ABQ)
        result = wrapped.check_in(user.user_id, cafe.venue_id, ABQ)
        assert result.checkin.status is CheckInStatus.VALID
        assert result.became_mayor
