"""Unit tests for devices and the emulator (spoofing channel 4)."""

import pytest

from repro.device.emulator import Device, DeviceEmulator
from repro.device.gps import FakeGpsModule
from repro.errors import DeviceError
from repro.geo.coordinates import GeoPoint
from repro.geo.distance import haversine_m
from repro.simnet.clock import SimClock

ABQ = GeoPoint(35.0844, -106.6504)
GOLDEN_GATE = GeoPoint(37.8199, -122.4783)


class TestDevice:
    def test_gps_reports_physical_location(self):
        device = Device(SimClock(), ABQ, gps_seed=1)
        fix = device.location_api.best_fix()
        assert haversine_m(fix.location, ABQ) < 50.0

    def test_app_installation(self):
        device = Device(SimClock(), ABQ)
        device.install_app("maps", object())
        assert device.installed_apps == ["maps"]
        assert device.get_app("maps") is not None

    def test_duplicate_app_rejected(self):
        device = Device(SimClock(), ABQ)
        device.install_app("maps", object())
        with pytest.raises(DeviceError):
            device.install_app("maps", object())

    def test_missing_app_raises(self):
        with pytest.raises(DeviceError):
            Device(SimClock(), ABQ).get_app("nothing")

    def test_replace_gps_module(self):
        # The hardware-hack channel: swap the module, OS none the wiser.
        device = Device(SimClock(), ABQ)
        fake = FakeGpsModule(GOLDEN_GATE)
        device.replace_gps_module(fake)
        fix = device.location_api.best_fix()
        assert fix.location == GOLDEN_GATE


class TestEmulator:
    def test_market_locked_by_default(self):
        emulator = DeviceEmulator(SimClock())
        with pytest.raises(DeviceError):
            emulator.install_app("simsquare", object())

    def test_recovery_image_unlocks_market(self):
        # §3.1: "We bypassed this limitation by using a full system
        # recovery image from a device manufacturer's website."
        emulator = DeviceEmulator(SimClock())
        emulator.flash_recovery_image("htc-2.2-recovery")
        emulator.install_app("simsquare", object())
        assert "simsquare" in emulator.installed_apps

    def test_empty_image_name_rejected(self):
        with pytest.raises(DeviceError):
            DeviceEmulator(SimClock()).flash_recovery_image("")

    def test_no_fix_before_geo_fix(self):
        emulator = DeviceEmulator(SimClock())
        assert emulator.current_gps_fix() is None

    def test_set_gps_directly(self):
        emulator = DeviceEmulator(SimClock())
        emulator.set_gps(GOLDEN_GATE)
        assert emulator.current_gps_fix().location == GOLDEN_GATE


class TestEmulatorConsole:
    def test_geo_fix_longitude_first(self):
        # The Android console syntax is `geo fix <longitude> <latitude>`.
        emulator = DeviceEmulator(SimClock())
        reply = emulator.console.execute(
            f"geo fix {GOLDEN_GATE.longitude} {GOLDEN_GATE.latitude}"
        )
        assert reply == "OK"
        fix = emulator.location_api.best_fix()
        assert fix.location == GOLDEN_GATE

    def test_bad_coordinates_rejected(self):
        emulator = DeviceEmulator(SimClock())
        assert emulator.console.execute("geo fix x y").startswith("KO")

    def test_unknown_command_rejected(self):
        emulator = DeviceEmulator(SimClock())
        assert emulator.console.execute("network delay 100").startswith("KO")

    def test_wrong_arity_rejected(self):
        emulator = DeviceEmulator(SimClock())
        assert emulator.console.execute("geo fix 1").startswith("KO")
