"""Unit tests for the three-table crawl database (Fig 3.3)."""


from repro.crawler.database import CrawlDatabase, like_to_regex
from repro.crawler.parser import ParsedUser, ParsedVenue


def parsed_user(user_id, username=None, total_checkins=0, total_badges=0):
    return ParsedUser(
        user_id=user_id,
        display_name=f"U{user_id}",
        username=username,
        home_city="",
        total_checkins=total_checkins,
        total_badges=total_badges,
        points=0,
    )


def parsed_venue(
    venue_id,
    name=None,
    mayor_id=None,
    recent_visitor_ids=(),
    latitude=35.0,
    longitude=-106.0,
):
    return ParsedVenue(
        venue_id=venue_id,
        name=name or f"V{venue_id}",
        address="",
        city="",
        latitude=latitude,
        longitude=longitude,
        checkins_here=1,
        unique_visitors=1,
        mayor_id=mayor_id,
        special=None,
        special_mayor_only=False,
        recent_visitor_ids=list(recent_visitor_ids),
    )


class TestLikePatterns:
    def test_contains(self):
        regex = like_to_regex("%Starbucks%")
        assert regex.match("Starbucks #12")
        assert regex.match("Downtown Starbucks")
        assert not regex.match("Dunkin Donuts")

    def test_case_insensitive(self):
        assert like_to_regex("%starbucks%").match("STARBUCKS #1")

    def test_underscore_single_char(self):
        regex = like_to_regex("V_")
        assert regex.match("V1")
        assert not regex.match("V12")

    def test_literal_specials_escaped(self):
        regex = like_to_regex("Taco (Best)%")
        assert regex.match("Taco (Best) Place")
        assert not regex.match("Taco Best Place")


class TestTables:
    def test_upsert_user_and_refresh(self):
        db = CrawlDatabase()
        db.upsert_user(parsed_user(1, total_checkins=5))
        db.upsert_user(parsed_user(1, total_checkins=9))
        assert db.user_count() == 1
        assert db.user(1).total_checkins == 9

    def test_upsert_user_preserves_derived(self):
        db = CrawlDatabase()
        db.upsert_user(parsed_user(1))
        db.upsert_venue(parsed_venue(10, recent_visitor_ids=[1]))
        db.recompute_derived()
        assert db.user(1).recent_checkins == 1
        db.upsert_user(parsed_user(1, total_checkins=3))  # re-crawl
        assert db.user(1).recent_checkins == 1

    def test_upsert_venue_records_recent_checkins(self):
        db = CrawlDatabase()
        db.upsert_venue(parsed_venue(10, recent_visitor_ids=[1, 2]))
        rows = db.recent_checkins()
        assert {(r.user_id, r.venue_id) for r in rows} == {(1, 10), (2, 10)}

    def test_recent_checkins_deduplicated(self):
        db = CrawlDatabase()
        db.upsert_venue(parsed_venue(10, recent_visitor_ids=[1]))
        db.upsert_venue(parsed_venue(10, recent_visitor_ids=[1]))
        assert len(db.recent_checkins()) == 1

    def test_recent_venues_of_user(self):
        db = CrawlDatabase()
        db.upsert_venue(parsed_venue(10, recent_visitor_ids=[1]))
        db.upsert_venue(parsed_venue(11, recent_visitor_ids=[1, 2]))
        assert db.recent_venues_of_user(1) == [10, 11]
        assert db.recent_venues_of_user(2) == [11]


class TestDerivedColumns:
    def test_total_mayors_from_venue_mayor_ids(self):
        db = CrawlDatabase()
        db.upsert_user(parsed_user(42))
        for venue_id in range(1, 6):
            db.upsert_venue(parsed_venue(venue_id, mayor_id=42))
        db.upsert_venue(parsed_venue(6, mayor_id=7))
        db.recompute_derived()
        assert db.user(42).total_mayors == 5

    def test_recent_checkins_counted(self):
        db = CrawlDatabase()
        db.upsert_user(parsed_user(1))
        for venue_id in range(1, 4):
            db.upsert_venue(parsed_venue(venue_id, recent_visitor_ids=[1]))
        db.recompute_derived()
        assert db.user(1).recent_checkins == 3


class TestQueries:
    def test_fig_3_4_starbucks_query(self):
        db = CrawlDatabase()
        db.upsert_venue(
            parsed_venue(1, name="Starbucks #1", latitude=40.0, longitude=-96.0)
        )
        db.upsert_venue(parsed_venue(2, name="Corner Bar"))
        coordinates = db.venue_coordinates_like("%Starbucks%")
        assert coordinates == [(-96.0, 40.0)]  # (longitude, latitude)

    def test_select_users_predicate(self):
        db = CrawlDatabase()
        db.upsert_user(parsed_user(1, total_checkins=10))
        db.upsert_user(parsed_user(2, total_checkins=1_000))
        heavy = db.select_users(lambda u: u.total_checkins >= 500)
        assert [u.user_id for u in heavy] == [2]

    def test_select_venues_predicate(self):
        db = CrawlDatabase()
        db.upsert_venue(parsed_venue(1, mayor_id=None))
        db.upsert_venue(parsed_venue(2, mayor_id=9))
        mayorless = db.select_venues(lambda v: v.mayor_id is None)
        assert [v.venue_id for v in mayorless] == [1]
