"""Unit tests for the page fetcher's retry and error semantics."""

import pytest

from repro.crawler.fetcher import PageFetcher
from repro.errors import CrawlError
from repro.simnet.http import HttpResponse, HttpTransport, Router
from repro.simnet.network import Network


class FlakyServer:
    """Serves a scripted sequence of status codes."""

    def __init__(self, statuses, body="page"):
        self.statuses = list(statuses)
        self.body = body
        self.calls = 0

    def __call__(self, request, match):
        status = self.statuses[min(self.calls, len(self.statuses) - 1)]
        self.calls += 1
        return HttpResponse(status=status, body=self.body)


def make_fetcher(handler, max_retries=2):
    network = Network(seed=1)
    router = Router()
    router.add("GET", r"/page", handler)
    transport = HttpTransport(router, network)
    return PageFetcher(
        transport, network.create_egress(), max_retries=max_retries
    )


class TestFetch:
    def test_success_returns_body(self):
        fetcher = make_fetcher(FlakyServer([200]))
        assert fetcher.fetch("/page") == "page"

    def test_404_returns_none(self):
        fetcher = make_fetcher(FlakyServer([404]))
        assert fetcher.fetch("/page") is None

    def test_5xx_retried_until_success(self):
        server = FlakyServer([500, 500, 200])
        fetcher = make_fetcher(server, max_retries=2)
        assert fetcher.fetch("/page") == "page"
        assert server.calls == 3

    def test_5xx_exhausted_raises(self):
        server = FlakyServer([500, 500, 500, 500])
        fetcher = make_fetcher(server, max_retries=2)
        with pytest.raises(CrawlError):
            fetcher.fetch("/page")
        assert server.calls == 3  # initial + 2 retries

    def test_rate_limit_raises_immediately(self):
        server = FlakyServer([429])
        fetcher = make_fetcher(server)
        with pytest.raises(CrawlError, match="rate limited"):
            fetcher.fetch("/page")
        assert server.calls == 1

    def test_forbidden_raises_without_retry(self):
        server = FlakyServer([403])
        fetcher = make_fetcher(server)
        with pytest.raises(CrawlError):
            fetcher.fetch("/page")
        assert server.calls == 1

    def test_401_raises(self):
        fetcher = make_fetcher(FlakyServer([401]))
        with pytest.raises(CrawlError):
            fetcher.fetch("/page")

    def test_negative_retries_rejected(self):
        network = Network(seed=1)
        transport = HttpTransport(Router(), network)
        with pytest.raises(CrawlError):
            PageFetcher(transport, network.create_egress(), max_retries=-1)

    def test_zero_retries_single_attempt(self):
        server = FlakyServer([500])
        fetcher = make_fetcher(server, max_retries=0)
        with pytest.raises(CrawlError):
            fetcher.fetch("/page")
        assert server.calls == 1
