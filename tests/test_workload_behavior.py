"""Tests for normal-user behaviour synthesis and replay."""

import pytest

from repro.errors import ReproError
from repro.geo.regions import city_by_name
from repro.lbsn.service import LbsnService
from repro.workload.behavior import (
    MIN_EVENT_GAP_S,
    BehaviorGenerator,
    CheckInEvent,
    EventReplayer,
)
from repro.workload.population import Persona, UserSpec
from repro.workload.venues import VenueGenerator


@pytest.fixture(scope="module")
def small_setup():
    service = LbsnService()
    venues = VenueGenerator(service, seed=5).generate(800)
    generator = BehaviorGenerator(venues, horizon_days=200.0, seed=5)
    return service, venues, generator


def spec_for(service, generator_city, target, travel=None, user_id=None):
    return UserSpec(
        user_id=user_id or 1,
        persona=Persona.ACTIVE,
        home_city=generator_city,
        target_checkins=target,
        travel_city=travel,
    )


class TestEventSynthesis:
    def test_zero_target_no_events(self, small_setup):
        service, venues, generator = small_setup
        spec = spec_for(service, city_by_name("Lincoln, NE"), 0)
        assert generator.events_for(spec) == []

    def test_event_count_close_to_target(self, small_setup):
        service, venues, generator = small_setup
        spec = spec_for(service, city_by_name("New York, NY"), 50)
        events = generator.events_for(spec)
        assert 25 <= len(events) <= 50

    def test_minimum_gap_enforced(self, small_setup):
        service, venues, generator = small_setup
        spec = spec_for(service, city_by_name("New York, NY"), 80)
        events = generator.events_for(spec)
        for previous, current in zip(events, events[1:]):
            assert current.timestamp - previous.timestamp >= MIN_EVENT_GAP_S

    def test_no_consecutive_same_venue(self, small_setup):
        # Protects against the frequent-check-in rejection.
        service, venues, generator = small_setup
        spec = spec_for(service, city_by_name("New York, NY"), 100)
        events = generator.events_for(spec)
        repeats = sum(
            1
            for previous, current in zip(events, events[1:])
            if previous.venue_id == current.venue_id
        )
        assert repeats <= len(events) // 10

    def test_registration_weighted_late(self, small_setup):
        service, venues, generator = small_setup
        times = [generator.registration_time() for _ in range(2_000)]
        late = sum(1 for t in times if t > generator.horizon_s / 2.0)
        # cumulative ∝ t² means 75% register in the second half.
        assert late / len(times) == pytest.approx(0.75, abs=0.05)

    def test_invalid_horizon(self, small_setup):
        _, venues, _ = small_setup
        with pytest.raises(ReproError):
            BehaviorGenerator(venues, horizon_days=0.0)


class TestReplay:
    def test_normal_users_replay_clean(self, small_setup):
        """Organic behaviour must virtually never trip the cheater code."""
        service = LbsnService()
        venues = VenueGenerator(service, seed=5).generate(800)
        generator = BehaviorGenerator(venues, horizon_days=200.0, seed=5)
        events = []
        for index in range(30):
            user = service.register_user(f"U{index}")
            spec = spec_for(
                service,
                city_by_name("New York, NY"),
                40,
                user_id=user.user_id,
            )
            events.extend(generator.events_for(spec))
        report = EventReplayer(service).replay(events)
        assert report.attempted == len(events)
        assert report.flagged / report.attempted < 0.02
        assert report.rejected / report.attempted < 0.02

    def test_replay_sorts_events(self):
        service = LbsnService()
        from repro.geo.coordinates import GeoPoint

        venue = service.create_venue("V", GeoPoint(40.0, -100.0))
        user = service.register_user("U")
        events = [
            CheckInEvent(7_200.0, user.user_id, venue.venue_id),
            CheckInEvent(0.0, user.user_id, venue.venue_id),
        ]
        report = EventReplayer(service).replay(events)
        assert report.valid == 2
        assert service.clock.now() == 7_200.0

    def test_unknown_venue_raises(self):
        service = LbsnService()
        user = service.register_user("U")
        with pytest.raises(ReproError):
            EventReplayer(service).replay(
                [CheckInEvent(0.0, user.user_id, 999)]
            )

    def test_travel_user_not_flagged(self, small_setup):
        """Trips must include plausible travel gaps."""
        service = LbsnService()
        venues = VenueGenerator(service, seed=9).generate(1_000)
        generator = BehaviorGenerator(venues, horizon_days=200.0, seed=9)
        flagged = 0
        attempted = 0
        for index in range(20):
            user = service.register_user(f"T{index}")
            spec = spec_for(
                service,
                city_by_name("New York, NY"),
                60,
                travel=city_by_name("Los Angeles, CA"),
                user_id=user.user_id,
            )
            report = EventReplayer(service).replay(
                generator.events_for(spec)
            )
            flagged += report.flagged
            attempted += report.attempted
        assert attempted > 0
        assert flagged / attempted < 0.03
