"""Unit tests for venue catalogs and tour planning (§3.3)."""

import pytest

from repro.attack.tour import PlannedTour, TourPlanner, VenueCatalog
from repro.crawler.database import CrawlDatabase
from repro.crawler.parser import ParsedVenue
from repro.errors import ReproError
from repro.geo.coordinates import GeoPoint
from repro.geo.distance import destination_point, haversine_m
from repro.geo.path import MoveCommand, VirtualPath
from repro.lbsn.service import LbsnService

START = GeoPoint(35.06, -106.62)


def parsed_venue(venue_id, location):
    return ParsedVenue(
        venue_id=venue_id,
        name=f"V{venue_id}",
        address="",
        city="",
        latitude=location.latitude,
        longitude=location.longitude,
        checkins_here=0,
        unique_visitors=0,
        mayor_id=None,
        special=None,
        special_mayor_only=False,
    )


class TestVenueCatalog:
    def test_from_crawl_database(self):
        database = CrawlDatabase()
        database.upsert_venue(parsed_venue(1, START))
        catalog = VenueCatalog.from_crawl_database(database)
        assert len(catalog) == 1
        assert catalog.location_of(1) == START

    def test_from_service(self):
        service = LbsnService()
        venue = service.create_venue("V", START)
        catalog = VenueCatalog.from_service(service)
        assert catalog.nearest_venue(START) == venue.venue_id

    def test_nearest_with_exclusions(self):
        catalog = VenueCatalog()
        catalog.add(1, destination_point(START, 0.0, 100.0))
        catalog.add(2, destination_point(START, 0.0, 500.0))
        assert catalog.nearest_venue(START) == 1
        assert catalog.nearest_venue(START, exclude={1}) == 2

    def test_nearest_respects_max_radius(self):
        catalog = VenueCatalog()
        catalog.add(1, destination_point(START, 0.0, 9_000.0))
        assert catalog.nearest_venue(START, max_radius_m=1_000.0) is None


class TestTourPlanner:
    def _grid_catalog(self, spacing_m=450.0, size=6):
        """Venues on a regular grid centered on START."""
        catalog = VenueCatalog()
        venue_id = 0
        half = size // 2
        for row in range(-half, size - half):
            for col in range(-half, size - half):
                venue_id += 1
                north = destination_point(
                    START, 0.0 if row >= 0 else 180.0, abs(row) * spacing_m
                )
                point = destination_point(
                    north, 90.0 if col >= 0 else 270.0, abs(col) * spacing_m
                )
                catalog.add(venue_id, point)
        return catalog

    def test_plan_snaps_each_waypoint(self):
        catalog = self._grid_catalog()
        planner = TourPlanner(catalog)
        path = VirtualPath(start=START)
        path.add_move(MoveCommand("north", 450.0))
        path.add_move(MoveCommand("east", 450.0))
        tour = planner.plan(path)
        assert len(tour.stops) == 2
        for stop in tour.stops:
            assert haversine_m(stop.intended, stop.venue_location) < 300.0

    def test_no_revisit_by_default(self):
        catalog = VenueCatalog()
        catalog.add(1, START)
        planner = TourPlanner(catalog)
        path = VirtualPath(start=START)
        path.add_move(MoveCommand("north", 100.0))
        path.add_move(MoveCommand("south", 100.0))
        tour = planner.plan(path, max_snap_radius_m=2_000.0)
        # Only one stop: the single venue cannot be visited twice.
        assert tour.venue_ids == [1]

    def test_revisit_allowed_when_enabled(self):
        catalog = VenueCatalog()
        catalog.add(1, START)
        planner = TourPlanner(catalog)
        path = VirtualPath(start=START)
        path.add_move(MoveCommand("north", 100.0))
        path.add_move(MoveCommand("south", 100.0))
        tour = planner.plan(path, revisit=True, max_snap_radius_m=2_000.0)
        assert tour.venue_ids == [1, 1]

    def test_waypoints_without_venues_skipped(self):
        catalog = VenueCatalog()
        catalog.add(1, START)
        planner = TourPlanner(catalog)
        path = VirtualPath(start=START)
        path.add_move(MoveCommand("north", 100.0))
        path.add_move(MoveCommand("north", 40_000.0))  # empty wilderness
        tour = planner.plan(path, max_snap_radius_m=2_000.0)
        assert tour.venue_ids == [1]

    def test_city_spiral_plans_25_stops(self):
        # The Fig 3.5 run: 25 check-ins along the spiral.
        catalog = self._grid_catalog(spacing_m=450.0, size=12)
        planner = TourPlanner(catalog)
        tour = planner.plan_city_spiral(START, steps=30)
        assert len(tour.stops) >= 25
        assert tour.mean_drift_m() < 600.0

    def test_city_spiral_rejects_zero_steps(self):
        planner = TourPlanner(self._grid_catalog())
        with pytest.raises(ReproError):
            planner.plan_city_spiral(START, steps=0)

    def test_mean_drift_empty_tour(self):
        assert PlannedTour().mean_drift_m() == 0.0
