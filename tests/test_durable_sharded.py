"""Durable replay regression: WAL digests are shard-layout-independent.

The seq-allocation contract says a ``ShardedDataStore`` changes lock
layout, never the event stream: the global sequencer hands every commit
the same number it would have drawn from the single-lock store, and the
sequential durable storm publishes in the same order.  So a durable
tree written with ``store_shards=4`` must match one written with
``store_shards=1`` — record for record once per-request trace ids are
scrubbed, and digest for digest in the manifest.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

import pytest

from repro.durable.wal import WalReader
from repro.workload.durable import (
    MANIFEST_NAME,
    DurableConfig,
    run_durable_storm,
    write_durable_tree,
)

TREE_CONFIG = DurableConfig(
    scale=0.0003, partitions=4, checkins=120, detector_min_total_checkins=20
)


def scrubbed_wal_digest(tree_root, partitions: int) -> str:
    """sha256 over every WAL record, canonical JSON, trace ids nulled.

    Trace ids are minted per request (nonce + counter) and differ across
    two runs in one process; everything else in the log must be
    byte-identical, which is exactly what this digest witnesses.
    """
    hasher = hashlib.sha256()
    for partition in range(partitions):
        wal_dir = tree_root / f"partition-{partition:02d}" / "wal"
        reader = WalReader(wal_dir)
        for event in reader.scan(strict=True):
            doc = dataclasses.asdict(event)
            doc["event"] = type(event).__name__
            if "trace_id" in doc:
                doc["trace_id"] = None
            hasher.update(
                json.dumps(doc, sort_keys=True, default=str).encode()
            )
        hasher.update(f"partition={partition};".encode())
    return hasher.hexdigest()


@pytest.fixture(scope="module")
def trees(tmp_path_factory):
    """One durable tree per shard count, same workload otherwise."""
    single_dir = tmp_path_factory.mktemp("tree-n1")
    sharded_dir = tmp_path_factory.mktemp("tree-n4")
    single = write_durable_tree(
        dataclasses.replace(TREE_CONFIG, store_shards=1), single_dir
    )
    sharded = write_durable_tree(
        dataclasses.replace(TREE_CONFIG, store_shards=4), sharded_dir
    )
    return (single_dir, single), (sharded_dir, sharded)


class TestWalShardingParity:
    def test_combined_ledger_digest_identical(self, trees):
        (_, single), (_, sharded) = trees
        assert single.victim_combined == sharded.victim_combined
        assert single.victim_digests == sharded.victim_digests

    def test_manifest_digests_identical(self, trees):
        (single_dir, _), (sharded_dir, _) = trees
        single_manifest = json.loads(
            (single_dir / MANIFEST_NAME).read_text()
        )
        sharded_manifest = json.loads(
            (sharded_dir / MANIFEST_NAME).read_text()
        )
        assert (
            single_manifest["combined_digest"]
            == sharded_manifest["combined_digest"]
        )
        assert single_manifest["watermark"] == sharded_manifest["watermark"]

    def test_scrubbed_wal_records_byte_identical(self, trees):
        (single_dir, _), (sharded_dir, _) = trees
        assert scrubbed_wal_digest(
            single_dir, TREE_CONFIG.partitions
        ) == scrubbed_wal_digest(sharded_dir, TREE_CONFIG.partitions)

    def test_wal_volume_identical(self, trees):
        (_, single), (_, sharded) = trees
        assert single.wal_appended == sharded.wal_appended
        assert single.watermark == sharded.watermark
        assert single.events_published == sharded.events_published

    def test_digest_not_vacuous(self, trees, tmp_path):
        """A different workload produces a different WAL digest."""
        (single_dir, _), _ = trees
        other = tmp_path / "other"
        write_durable_tree(
            dataclasses.replace(TREE_CONFIG, checkins=90, store_shards=1),
            other,
        )
        assert scrubbed_wal_digest(
            single_dir, TREE_CONFIG.partitions
        ) != scrubbed_wal_digest(other, TREE_CONFIG.partitions)


class TestShardedCrashRecovery:
    def test_three_way_parity_with_sharded_store(self, tmp_path):
        """Crash + snapshot/WAL recovery still closes over a sharded
        service: control == recovered victim == cold replay."""
        config = dataclasses.replace(
            TREE_CONFIG, store_shards=4, kill_partition=1
        )
        report = run_durable_storm(config, tmp_path)
        assert report.crashed_partitions == [1]
        assert report.recovered_partitions == [1]
        assert report.parity_ok, (
            f"control={report.control_combined} "
            f"victim={report.victim_combined} "
            f"cold={report.cold_combined}"
        )
