"""Tests for the IP address-mapping verifier."""

import pytest

from repro.defense.address_mapping import (
    AddressMappingConfig,
    AddressMappingVerifier,
)
from repro.defense.verifier import LocationClaim, VerificationOutcome
from repro.geo.coordinates import GeoPoint
from repro.geo.distance import destination_point
from repro.simnet.network import GeoIpRegistry, IpAddress

VENUE = GeoPoint(40.8136, -96.7026)  # Lincoln
ATTACKER = GeoPoint(35.0844, -106.6504)  # Albuquerque


def claim(ip):
    return LocationClaim(
        user_id=1,
        venue_id=1,
        venue_location=VENUE,
        claimed_location=VENUE,
        physical_location=ATTACKER,
        client_ip=ip,
    )


@pytest.fixture
def geoip():
    registry = GeoIpRegistry()
    registry.register(IpAddress("1.1.1.1"), VENUE)  # local gateway
    registry.register(
        IpAddress("2.2.2.2"), destination_point(VENUE, 90.0, 60_000.0)
    )  # carrier gateway one metro over
    registry.register(IpAddress("3.3.3.3"), ATTACKER)  # the attacker's ISP
    return registry


class TestVerification:
    def test_local_ip_accepted(self, geoip):
        verifier = AddressMappingVerifier(geoip)
        assert verifier.verify(claim("1.1.1.1")).accepted

    def test_nonlocal_carrier_gateway_tolerated(self, geoip):
        # The §5.1 caveat: phones egress from nonlocal IPs, so the
        # tolerance must absorb a metro-scale offset.
        verifier = AddressMappingVerifier(geoip)
        assert verifier.verify(claim("2.2.2.2")).accepted

    def test_cross_country_ip_rejected(self, geoip):
        verifier = AddressMappingVerifier(geoip)
        result = verifier.verify(claim("3.3.3.3"))
        assert result.outcome is VerificationOutcome.REJECT
        assert result.estimated_distance_m > 1_000_000

    def test_unmapped_ip_inconclusive_by_default(self, geoip):
        verifier = AddressMappingVerifier(geoip)
        result = verifier.verify(claim("9.9.9.9"))
        assert result.outcome is VerificationOutcome.INCONCLUSIVE

    def test_unmapped_ip_rejected_in_strict_mode(self, geoip):
        verifier = AddressMappingVerifier(
            geoip, AddressMappingConfig(reject_unmapped=True)
        )
        assert verifier.verify(claim("9.9.9.9")).rejected

    def test_missing_ip_inconclusive(self, geoip):
        verifier = AddressMappingVerifier(geoip)
        result = verifier.verify(claim(None))
        assert result.outcome is VerificationOutcome.INCONCLUSIVE

    def test_tolerance_configurable(self, geoip):
        tight = AddressMappingVerifier(
            geoip, AddressMappingConfig(tolerance_m=10_000.0)
        )
        # Even the one-metro-over carrier gateway now fails: the thesis's
        # point about why tight IP mapping is unusable for mobile.
        assert tight.verify(claim("2.2.2.2")).rejected
