"""Tests for venue-side Wi-Fi verification."""

import pytest

from repro.defense.verifier import LocationClaim, VerificationOutcome
from repro.defense.wifi_verification import (
    DEFAULT_RADIO_RANGE_M,
    VenueRouter,
    WifiVerificationService,
    deploy_routers,
)
from repro.errors import DefenseError
from repro.geo.coordinates import GeoPoint
from repro.geo.distance import destination_point
from repro.lbsn.service import LbsnService

WENDYS = GeoPoint(40.8136, -96.7026)
MCDONALDS = destination_point(WENDYS, 90.0, 50.0)  # 50 m next door
ATTACKER = GeoPoint(35.0844, -106.6504)


def claim(venue_id, physical):
    return LocationClaim(
        user_id=1,
        venue_id=venue_id,
        venue_location=WENDYS,
        claimed_location=WENDYS,
        physical_location=physical,
    )


class TestRouterRange:
    def test_in_range(self):
        router = VenueRouter(venue_id=1, location=WENDYS)
        assert router.in_range(destination_point(WENDYS, 0.0, 80.0))
        assert not router.in_range(destination_point(WENDYS, 0.0, 150.0))

    def test_default_range_is_100m(self):
        assert VenueRouter(1, WENDYS).radio_range_m == DEFAULT_RADIO_RANGE_M


class TestVerification:
    def test_remote_attacker_rejected(self):
        service = WifiVerificationService()
        service.register_router(VenueRouter(1, WENDYS))
        result = service.verify(claim(1, ATTACKER))
        assert result.outcome is VerificationOutcome.REJECT

    def test_present_customer_accepted(self):
        service = WifiVerificationService()
        service.register_router(VenueRouter(1, WENDYS))
        inside = destination_point(WENDYS, 200.0, 10.0)
        assert service.verify(claim(1, inside)).accepted

    def test_next_door_cheater_passes_default_range(self):
        # The thesis's documented limitation: "a cheater sitting inside a
        # McDonald's can check-in to the Wendy's next door, which is only
        # 50 meters away."
        service = WifiVerificationService()
        service.register_router(VenueRouter(1, WENDYS))
        assert service.verify(claim(1, MCDONALDS)).accepted

    def test_firmware_tuned_range_stops_next_door(self):
        # "the Wendy's owner can configure the Wi-Fi router to limit the
        # communication within the restaurant" (DD-WRT).
        service = WifiVerificationService()
        service.register_router(
            VenueRouter(1, WENDYS, radio_range_m=30.0)
        )
        assert service.verify(claim(1, MCDONALDS)).rejected

    def test_unregistered_venue_fallback_accept(self):
        service = WifiVerificationService(fallback_accept=True)
        result = service.verify(claim(42, ATTACKER))
        assert result.outcome is VerificationOutcome.ACCEPT

    def test_unregistered_venue_strict_mode(self):
        service = WifiVerificationService(fallback_accept=False)
        result = service.verify(claim(42, ATTACKER))
        assert result.outcome is VerificationOutcome.INCONCLUSIVE

    def test_deregistered_router_not_trusted(self):
        service = WifiVerificationService(fallback_accept=False)
        service.register_router(VenueRouter(1, WENDYS, registered=False))
        result = service.verify(claim(1, ATTACKER))
        assert result.outcome is VerificationOutcome.INCONCLUSIVE

    def test_invalid_range_rejected(self):
        service = WifiVerificationService()
        with pytest.raises(DefenseError):
            service.register_router(VenueRouter(1, WENDYS, radio_range_m=0.0))


class TestDeployment:
    def test_partial_coverage(self):
        lbsn = LbsnService()
        for index in range(10):
            lbsn.create_venue(f"V{index}", WENDYS)
        wifi = deploy_routers(lbsn, fraction=0.5)
        assert wifi.coverage == 5
        assert wifi.router_for(1) is not None
        assert wifi.router_for(10) is None

    def test_full_coverage(self):
        lbsn = LbsnService()
        for index in range(4):
            lbsn.create_venue(f"V{index}", WENDYS)
        assert deploy_routers(lbsn, fraction=1.0).coverage == 4

    def test_invalid_fraction(self):
        with pytest.raises(DefenseError):
            deploy_routers(LbsnService(), fraction=1.5)
