"""Tests for the span tracer: histograms, slow ring, exception safety."""

import pytest

from repro.obs import (
    SPAN_HISTOGRAM_NAME,
    MetricsRegistry,
    SpanRecord,
    Tracer,
)


def make_tracer(threshold=0.05, ring_size=128):
    registry = MetricsRegistry()
    return registry, Tracer(
        registry, slow_threshold_s=threshold, ring_size=ring_size
    )


class TestSpanRecording:
    def test_span_observes_into_the_shared_histogram(self):
        registry, tracer = make_tracer()
        with tracer.span("checkin.commit"):
            pass
        family = registry.get(SPAN_HISTOGRAM_NAME)
        assert family is not None
        assert family.labels("checkin.commit").count == 1
        assert tracer.span_count == 1

    def test_span_names_become_label_values(self):
        registry, tracer = make_tracer()
        with tracer.span("crawler.fetch"):
            pass
        with tracer.span("store.lock"):
            pass
        text = registry.render_text()
        assert 'span="crawler.fetch"' in text
        assert 'span="store.lock"' in text

    def test_exception_transparent_but_still_recorded(self):
        registry, tracer = make_tracer()
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("failing.op"):
                raise ValueError("boom")
        assert tracer.span_count == 1

    def test_time_helper_returns_result(self):
        _, tracer = make_tracer()
        assert tracer.time("math.add", lambda a, b: a + b, 2, 3) == 5
        assert tracer.span_count == 1

    def test_record_primitive_matches_span(self):
        registry, tracer = make_tracer()
        tracer.record("checkin.commit", 0.002)
        child = registry.get(SPAN_HISTOGRAM_NAME).labels("checkin.commit")
        assert child.count == 1
        assert child.sum == pytest.approx(0.002)

    def test_span_count_sums_across_names(self):
        _, tracer = make_tracer()
        tracer.record("a.x", 0.001)
        tracer.record("b.y", 0.001)
        tracer.record("a.x", 0.001)
        assert tracer.span_count == 3


class TestSlowRing:
    def test_fast_spans_stay_out_of_the_ring(self):
        _, tracer = make_tracer(threshold=10.0)
        with tracer.span("quick.op"):
            pass
        assert tracer.recent_slow() == []
        assert tracer.slowest() is None

    def test_slow_spans_are_retained(self):
        _, tracer = make_tracer(threshold=0.0)  # everything is "slow"
        with tracer.span("slow.op"):
            pass
        records = tracer.recent_slow()
        assert len(records) == 1
        assert isinstance(records[0], SpanRecord)
        assert records[0].name == "slow.op"
        assert records[0].duration_s >= 0.0

    def test_ring_is_bounded_and_keeps_newest(self):
        _, tracer = make_tracer(threshold=0.0, ring_size=4)
        for index in range(10):
            tracer.record(f"op.{index}", float(index))
        records = tracer.recent_slow()
        assert len(records) == 4
        assert [record.name for record in records] == [
            "op.6",
            "op.7",
            "op.8",
            "op.9",
        ]

    def test_recent_slow_limit_returns_newest(self):
        _, tracer = make_tracer(threshold=0.0)
        for index in range(5):
            tracer.record(f"op.{index}", float(index))
        limited = tracer.recent_slow(limit=2)
        assert [record.name for record in limited] == ["op.3", "op.4"]

    def test_slowest_picks_the_longest_retained(self):
        _, tracer = make_tracer(threshold=0.0)
        tracer.record("short.op", 0.01)
        tracer.record("long.op", 0.2)
        tracer.record("mid.op", 0.1)
        assert tracer.slowest().name == "long.op"

    def test_threshold_is_inclusive(self):
        _, tracer = make_tracer(threshold=0.5)
        tracer.record("edge.op", 0.5)
        assert [record.name for record in tracer.recent_slow()] == [
            "edge.op"
        ]


class TestSharedRegistry:
    def test_two_tracers_share_the_histogram_family(self):
        registry = MetricsRegistry()
        first = Tracer(registry)
        second = Tracer(registry)
        first.record("x.y", 0.001)
        second.record("x.y", 0.001)
        assert registry.get(SPAN_HISTOGRAM_NAME).labels("x.y").count == 2
