"""Integration tests: the crawler against the live simulated site."""

import pytest

from repro.crawler.crawler import MultiThreadedCrawler
from repro.crawler.database import CrawlDatabase
from repro.crawler.frontier import CrawlMode
from repro.errors import CrawlError
from repro.simnet.http import HTTP_FORBIDDEN, HttpResponse


class TestFullCrawl:
    def test_complete_coverage(self, world, web_stack, crawl):
        database, user_stats, venue_stats = crawl
        assert database.user_count() == world.service.store.user_count()
        assert database.venue_count() == world.service.store.venue_count()
        assert user_stats.hits == database.user_count()
        assert venue_stats.hits == database.venue_count()

    def test_crawled_profiles_match_ground_truth(self, world, crawl_db):
        for user in list(world.service.store.iter_users())[:50]:
            row = crawl_db.user(user.user_id)
            assert row is not None
            assert row.total_checkins == user.total_checkins
            assert row.total_badges == user.badge_count
            assert row.user_name == user.username

    def test_crawled_venue_coordinates(self, world, crawl_db):
        for venue in list(world.service.store.iter_venues())[:50]:
            row = crawl_db.venue(venue.venue_id)
            assert row.latitude == pytest.approx(
                venue.location.latitude, abs=1e-5
            )
            assert row.longitude == pytest.approx(
                venue.location.longitude, abs=1e-5
            )

    def test_mayor_ids_match(self, world, crawl_db):
        matched = 0
        for venue in world.service.store.iter_venues():
            row = crawl_db.venue(venue.venue_id)
            assert row.mayor_id == venue.mayor_id
            if venue.mayor_id is not None:
                matched += 1
        assert matched > 0

    def test_total_mayors_inferred_from_venue_pages(self, world, crawl_db):
        # §3.2: mayorships are hidden on user pages but reconstructible.
        farmer = world.roster.mayor_farmer
        row = crawl_db.user(farmer.user_id)
        assert row.total_mayors == world.service.mayorship_count(
            farmer.user_id
        )

    def test_recent_checkins_match_visitor_lists(self, world, crawl_db):
        sample = list(world.service.store.iter_venues())[:100]
        for venue in sample:
            row_ids = set(
                r.user_id
                for r in crawl_db.recent_checkins()
                if r.venue_id == venue.venue_id
            )
            assert row_ids == set(venue.recent_visitors)


class TestCrawlerMechanics:
    def test_stop_at_partitioning(self, world, web_stack):
        database = CrawlDatabase()
        egress = web_stack.network.create_egress()
        crawler = MultiThreadedCrawler(
            web_stack.transport,
            database,
            CrawlMode.USER,
            [egress],
            threads_per_machine=4,
            stop_at=50,
        )
        stats = crawler.run()
        assert database.user_count() == 50
        assert stats.pages_fetched == 50

    def test_throughput_stats_populated(self, crawl):
        _, user_stats, venue_stats = crawl
        assert user_stats.wall_seconds > 0
        assert user_stats.profiles_per_hour > 0
        assert user_stats.mode is CrawlMode.USER
        assert venue_stats.mode is CrawlMode.VENUE

    def test_crawl_aborts_when_blocked(self, world, web_stack):
        # A hard 403 wall: the crawler gives up instead of spinning.
        from repro.simnet.http import HttpTransport, Router
        from repro.simnet.network import Network

        network = Network(seed=1)
        router = Router()
        transport = HttpTransport(router, network)
        transport.add_middleware(
            lambda request: HttpResponse(status=HTTP_FORBIDDEN, body="no")
        )
        crawler = MultiThreadedCrawler(
            transport,
            CrawlDatabase(),
            CrawlMode.USER,
            [network.create_egress()],
            threads_per_machine=2,
            stop_at=100_000,
            abort_after_failures=50,
        )
        stats = crawler.run()
        assert crawler.aborted
        assert stats.failures >= 50
        assert stats.hits == 0

    def test_invalid_construction(self, world, web_stack):
        with pytest.raises(CrawlError):
            MultiThreadedCrawler(
                web_stack.transport, CrawlDatabase(), CrawlMode.USER, []
            )
        with pytest.raises(CrawlError):
            MultiThreadedCrawler(
                web_stack.transport,
                CrawlDatabase(),
                CrawlMode.USER,
                [web_stack.network.create_egress()],
                threads_per_machine=0,
            )


class TestRepeatedCrawls:
    def test_recrawl_updates_rows(self, world, web_stack):
        # "by repeatedly crawling data and comparing the differences ...
        # we can further investigate the behaviors of its users."
        database = CrawlDatabase()
        egress = web_stack.network.create_egress()
        for _ in range(2):
            crawler = MultiThreadedCrawler(
                web_stack.transport,
                database,
                CrawlMode.USER,
                [egress],
                threads_per_machine=4,
                stop_at=30,
            )
            crawler.run()
        assert database.user_count() == 30
