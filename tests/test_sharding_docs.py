"""docs/SHARDING.md is executable documentation.

Two-way parity between the doc's metric table and the families a fully
exercised ``ShardedDataStore`` actually registers, anchor checks for
the load-bearing claims (routing law, sequencer contract, CLI verb,
cross-links), and a guard that the shard families stay *out* of the
plain single-lock workload — the OBSERVABILITY.md catalogue must not
grow when sharding is off.
"""

import re
from pathlib import Path

import pytest

from repro.geo.coordinates import GeoPoint
from repro.lbsn.models import CheckIn, User, Venue
from repro.lbsn.sharded import DEFAULT_SHARDS, ShardedDataStore
from repro.obs.metrics import MetricsRegistry

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"

SHARD_PREFIX = "repro_store_shard_"
ABQ = GeoPoint(35.0844, -106.6504)


@pytest.fixture(scope="module")
def doc_text():
    return (DOCS / "SHARDING.md").read_text()


@pytest.fixture(scope="module")
def registered_names():
    """Every shard-labelled family a fully exercised facade registers."""
    registry = MetricsRegistry()
    store = ShardedDataStore(shards=4, metrics=registry)
    for index in range(8):
        store.add_user(User(user_id=index + 1, display_name=f"d{index}"))
        store.add_venue(
            Venue(venue_id=index + 1, name=f"v{index}", location=ABQ)
        )
    # Both commit paths: single and group commit.
    store.add_checkin_committed(
        CheckIn(
            checkin_id=1,
            user_id=1,
            venue_id=1,
            timestamp=0.0,
            reported_location=ABQ,
        )
    )
    store.add_checkins_committed(
        [
            CheckIn(
                checkin_id=index + 2,
                user_id=(index % 8) + 1,
                venue_id=(index % 8) + 1,
                timestamp=60.0 * index,
                reported_location=ABQ,
            )
            for index in range(8)
        ]
    )
    return {
        name
        for name in registry.names()
        if name.startswith(SHARD_PREFIX)
    }


def _documented_metrics(doc_text):
    names = set()
    for line in doc_text.splitlines():
        match = re.match(r"\| `(repro_[a-z0-9_]+)`", line)
        if match:
            names.add(match.group(1))
    return names


class TestMetricCatalogueParity:
    def test_every_registered_metric_is_documented(
        self, doc_text, registered_names
    ):
        assert registered_names  # the fixture actually exercised shards
        missing = registered_names - _documented_metrics(doc_text)
        assert not missing, (
            f"shard metrics registered but absent from "
            f"docs/SHARDING.md: {sorted(missing)}"
        )

    def test_every_documented_metric_is_registered(
        self, doc_text, registered_names
    ):
        stale = _documented_metrics(doc_text) - registered_names
        assert not stale, (
            f"metrics documented in docs/SHARDING.md but never "
            f"registered by an exercised ShardedDataStore: {sorted(stale)}"
        )

    def test_doc_table_rows_are_shard_families_only(self, doc_text):
        """Aggregate/batch families belong to OBSERVABILITY.md's table."""
        for name in _documented_metrics(doc_text):
            assert name.startswith(SHARD_PREFIX), name


class TestDocAnchors:
    """The load-bearing claims the doc makes must stay true by name."""

    def test_default_shards_matches_code(self, doc_text):
        assert f"`DEFAULT_SHARDS = {DEFAULT_SHARDS}`" in doc_text

    def test_routing_law_stated(self, doc_text):
        assert "`user_id % N`" in doc_text
        assert "`venue_id % N`" in doc_text

    def test_sequencer_contract_named(self, doc_text):
        from repro.lbsn.store import EventSequencer

        assert EventSequencer.__name__ in doc_text
        assert "allocate_block" in doc_text
        assert "range(watermark())" in doc_text

    def test_group_commit_api_named(self, doc_text):
        assert "add_checkins_committed" in doc_text
        assert "commit_checkin_rows" in doc_text

    def test_cli_and_service_wiring_documented(self, doc_text):
        assert "store_shards=N" in doc_text
        assert "--store-shards" in doc_text

    def test_proof_suites_cross_referenced(self, doc_text):
        for anchor in (
            "tests/conformance/",
            "tests/chaos/test_chaos_sharded.py",
            "tests/test_durable_sharded.py",
            "benchmarks/bench_e25_capacity.py",
        ):
            assert anchor in doc_text, anchor

    def test_sibling_docs_cross_link_back(self, doc_text):
        assert "OBSERVABILITY.md" in doc_text
        architecture = (DOCS / "ARCHITECTURE.md").read_text()
        assert "SHARDING.md" in architecture
        observability = (DOCS / "OBSERVABILITY.md").read_text()
        assert "SHARDING.md" in observability

    def test_experiment_index_carries_e25(self):
        assert "## E25 " in (REPO / "EXPERIMENTS.md").read_text()
        assert "bench_e25_capacity.py" in (REPO / "DESIGN.md").read_text()


class TestNoLeakIntoObservabilityCatalogue:
    def test_plain_metrics_workload_registers_no_shard_metrics(self):
        """The OBSERVABILITY.md parity fixture must stay shard-free.

        A fresh registry keeps the check hermetic: the process-wide
        default registry may already carry shard families from other
        tests that ran the sharded CLI path.
        """
        from repro.cli import run_metrics_workload

        registry, _, _ = run_metrics_workload(
            scale=0.0002, seed=5, registry=MetricsRegistry()
        )
        leaked = {
            name
            for name in registry.names()
            if name.startswith(SHARD_PREFIX)
        }
        assert not leaked, (
            f"shard metric families leaked into the single-lock "
            f"workload: {sorted(leaked)}"
        )
