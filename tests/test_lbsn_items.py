"""Tests for the Gowalla-style item economy and the transfer of the attack."""

import pytest

from repro.attack.scheduler import CheckInScheduler
from repro.attack.spoofing import build_emulator_attacker
from repro.attack.tour import TourPlanner, VenueCatalog
from repro.errors import ServiceError
from repro.geo.coordinates import GeoPoint
from repro.geo.distance import destination_point
from repro.lbsn.items import ItemRarity, ItemSystem, farm_items
from repro.lbsn.models import CheckInStatus
from repro.lbsn.service import LbsnService

ABQ = GeoPoint(35.0844, -106.6504)


@pytest.fixture
def item_world():
    service = LbsnService()
    venues = [
        service.create_venue(
            f"Trail Stop {index}",
            destination_point(ABQ, index * 24.0, 900.0 + 350.0 * index),
        )
        for index in range(15)
    ]
    system = ItemSystem(service, seed=5, seeded_fraction=1.0, items_per_venue=2)
    return service, venues, system


class TestSeeding:
    def test_every_venue_seeded_at_full_fraction(self, item_world):
        service, venues, system = item_world
        for venue in venues:
            assert len(system.items_at(venue.venue_id)) == 2

    def test_rarity_distribution_skews_common(self):
        service = LbsnService()
        for index in range(300):
            service.create_venue(f"V{index}", ABQ)
        system = ItemSystem(service, seed=1, seeded_fraction=1.0)
        rarities = [
            item.rarity
            for venue in service.store.iter_venues()
            for item in system.items_at(venue.venue_id)
        ]
        commons = sum(1 for r in rarities if r is ItemRarity.COMMON)
        epics = sum(1 for r in rarities if r is ItemRarity.EPIC)
        assert commons > 5 * max(1, epics)

    def test_invalid_config(self):
        service = LbsnService()
        with pytest.raises(ServiceError):
            ItemSystem(service, seeded_fraction=1.5)
        with pytest.raises(ServiceError):
            ItemSystem(service, items_per_venue=0)


class TestLootMechanics:
    def test_valid_checkin_picks_up_rarest(self, item_world):
        service, venues, system = item_world
        user = service.register_user("Collector")
        venue = venues[0]
        before = system.items_at(venue.venue_id)
        rarest = max(before, key=lambda item: item.rarity.value)
        result = service.check_in(user.user_id, venue.venue_id, venue.location)
        event = system.on_checkin(
            user.user_id, venue.venue_id, result.checkin.status
        )
        assert event.picked_up == rarest
        assert len(system.items_at(venue.venue_id)) == 1
        assert system.satchel_of(user.user_id) == [rarest]

    def test_flagged_checkin_gets_nothing(self, item_world):
        service, venues, system = item_world
        user = service.register_user("Cheater")
        event = system.on_checkin(
            user.user_id, venues[0].venue_id, CheckInStatus.FLAGGED
        )
        assert event.picked_up is None
        assert system.satchel_of(user.user_id) == []

    def test_drop_leaves_most_common_item(self, item_world):
        service, venues, system = item_world
        user = service.register_user("Swapper")
        # Collect two items first.
        for venue in venues[:2]:
            service.clock.advance(1_800.0)
            result = service.check_in(
                user.user_id, venue.venue_id, venue.location
            )
            system.on_checkin(
                user.user_id, venue.venue_id, result.checkin.status
            )
        satchel_before = system.satchel_of(user.user_id)
        assert len(satchel_before) == 2
        service.clock.advance(1_800.0)
        result = service.check_in(
            user.user_id, venues[2].venue_id, venues[2].location
        )
        event = system.on_checkin(
            user.user_id, venues[2].venue_id, result.checkin.status, drop=True
        )
        assert event.dropped is not None
        assert event.dropped.rarity.value == min(
            item.rarity.value for item in satchel_before + [event.picked_up]
            if item is not None
        )
        assert event.dropped in system.items_at(venues[2].venue_id)

    def test_collection_score_weights_rarity(self, item_world):
        service, venues, system = item_world
        user = service.register_user("Scorer")
        assert system.collection_score(user.user_id) == 0
        result = service.check_in(
            user.user_id, venues[0].venue_id, venues[0].location
        )
        system.on_checkin(user.user_id, venues[0].venue_id, result.checkin.status)
        (item,) = system.satchel_of(user.user_id)
        assert system.collection_score(user.user_id) == item.rarity.score


class TestAttackTransfer:
    def test_same_attack_stack_farms_items_undetected(self, item_world):
        """The §1.1 generality claim: the unchanged spoofing + scheduler
        stack strips a Gowalla-style service of its loot."""
        service, venues, system = item_world
        _, _, channel = build_emulator_attacker(service)
        scheduler = CheckInScheduler(service.clock)
        planner = TourPlanner(VenueCatalog.from_service(service))
        summary = farm_items(
            system, channel, scheduler, planner, max_targets=12
        )
        assert summary["attempts"] == 12
        assert summary["detected"] == 0
        assert len(summary["items"]) == 12
        assert summary["score"] > 0

    def test_farm_requires_seeded_venues(self):
        service = LbsnService()
        service.create_venue("Empty", ABQ)
        system = ItemSystem(service, seeded_fraction=0.0)
        _, _, channel = build_emulator_attacker(service)
        scheduler = CheckInScheduler(service.clock)
        planner = TourPlanner(VenueCatalog.from_service(service))
        with pytest.raises(ServiceError):
            farm_items(system, channel, scheduler, planner)
