"""The E26 adversary workload, end to end.

Three layers of assertion:

* **Scoreboard** — a seeded default run catches every ring account via
  the honeypot tier (catch rate 1.0), flags zero honest accounts (the
  visibility law), and refuses every flagged account inline.
* **Trace chain** — on a hand-built board, the honeypot check-in that
  catches each ring member is the same trace the ledger's flag carries,
  and the defended service then refuses that member with
  ``RULE_STREAM_SUSPECT``.
* **Determinism** — same config ⇒ identical catch/fp digests, across
  reruns and across sharded (N=4) vs unsharded stores.
"""

import pytest

from repro.adversary import (
    AdversaryConfig,
    RingConfig,
    RingCoordinator,
    TrustingVerifier,
    enumerate_targets,
    run_adversary,
)
from repro.analysis.detection import DetectorConfig
from repro.defense.honeypot import RULE_HONEYPOT, HoneypotRegistry
from repro.defense.integration import (
    RULE_STREAM_SUSPECT,
    DefendedLbsnService,
)
from repro.errors import ReproError
from repro.geo.coordinates import GeoPoint
from repro.lbsn.models import CheckInStatus, Special
from repro.lbsn.service import LbsnService
from repro.obs.log import LogHub
from repro.stream.bus import EventBus
from repro.stream.ledger import SuspicionLedger

#: One cheap world for the digest tests (seconds, not minutes).
SMALL = dict(
    scale=0.0002,
    seed=5,
    rings=2,
    ring_size=3,
    targets_per_ring=16,
    honest_accounts=15,
    honest_checkins_each=4,
)


@pytest.fixture(scope="module")
def board():
    """One default-config adversary run shared by the scoreboard tests."""
    return run_adversary(AdversaryConfig())


class TestScoreboard:
    def test_every_ring_account_is_caught(self, board):
        assert board.ring_accounts
        assert len(board.ring_accounts) == 3 * 4
        assert board.flagged_ring_accounts == sorted(board.ring_accounts)
        assert board.catch_rate == 1.0

    def test_honest_control_group_is_structurally_clean(self, board):
        assert len(board.honest_accounts) == 50
        assert board.honest_checkins == 50 * 6
        assert board.flagged_honest_accounts == []
        assert board.false_positive_rate == 0.0

    def test_honeypots_sit_inside_the_target_pool(self, board):
        # The traps match the §3.4 prime-target profile, so exhaustive
        # enumeration MUST surface them alongside the real venues.
        assert board.honeypots_seeded > 0
        assert 0 < board.honeypot_targets <= board.honeypots_seeded
        assert board.honeypot_targets <= board.target_pool

    def test_naive_corroboration_is_fully_defeated(self, board):
        assert board.ring_corroboration == 1.0

    def test_flagged_accounts_are_refused_inline(self, board):
        assert board.post_flag_attempts == len(board.ring_accounts)
        assert board.post_flag_refusals == board.post_flag_attempts

    def test_ledger_holds_at_least_the_ring(self, board):
        assert board.ledger_suspects >= len(board.ring_accounts)

    def test_rings_go_undetected_by_per_user_rules(self, board):
        # The whole point of the subsystem: the thesis cheater code sees
        # nothing wrong with a convoy — only the honeypot tier does.
        for ring_report in board.ring_reports:
            assert ring_report.detected == 0

    def test_config_validation(self):
        with pytest.raises(ReproError):
            run_adversary(AdversaryConfig(rings=0))


class TestTraceChain:
    def test_ring_to_honeypot_to_ledger_to_refusal(self):
        # Hand-built board: 6 real targets + 2 traps, one ring of 4.
        hub = LogHub()
        service = LbsnService(log=hub)
        bus = EventBus(log=hub)
        service.event_bus = bus
        ledger = SuspicionLedger(
            DetectorConfig(min_total_checkins=100), log=hub
        ).attach(bus)
        registry = HoneypotRegistry(service, ledger=ledger, log=hub)
        for index in range(6):
            service.create_venue(
                name=f"Real Target {index}",
                location=GeoPoint(35.0844 + index * 0.01, -106.6504),
                special=Special(
                    description="Mayor drinks free", mayor_only=True
                ),
            )
        registry.attach(bus)
        registry.seed(density=0.01, seed=1, count=2)

        targets = enumerate_targets(service)
        assert {t.venue_id for t in targets} >= set(
            registry.honeypot_ids()
        )

        ring = RingCoordinator(service, RingConfig(accounts=4, seed=2))
        report = ring.execute(ring.plan(targets))
        assert report.detected == 0  # per-user rules: blind

        # Honeypot tier: every member caught, ledger pinned, and the
        # ledger's flag trace IS the trapping check-in's trace.
        assert registry.flagged_accounts() == sorted(ring.user_ids)
        for user_id in ring.user_ids:
            flag = registry.flag_of(user_id)
            assert flag.trace_id is not None
            assert ledger.pinned_rule(user_id) == RULE_HONEYPOT
            assert ledger.flag_trace_id(user_id) == flag.trace_id

        # Inline enforcement: the defended wrapper now refuses every
        # member before any reward logic runs.
        defended = DefendedLbsnService(
            service,
            TrustingVerifier(),
            physical_locator=lambda user_id: None,
            suspicion_ledger=ledger,
            log=hub,
        )
        probe = service.store.require_venue(targets[0].venue_id)
        ts = service.clock.now() + 4_000.0
        for offset, user_id in enumerate(ring.user_ids):
            result = defended.check_in(
                user_id,
                probe.venue_id,
                probe.location,
                timestamp=ts + offset * 120.0,
            )
            assert result.checkin.status is not CheckInStatus.VALID
            assert result.checkin.flagged_rule == RULE_STREAM_SUSPECT

    def test_honest_member_of_nothing_is_untouched(self):
        service = LbsnService()
        bus = EventBus()
        service.event_bus = bus
        ledger = SuspicionLedger(
            DetectorConfig(min_total_checkins=100)
        ).attach(bus)
        registry = HoneypotRegistry(service, ledger=ledger)
        venue = service.create_venue(
            name="Corner Cafe", location=GeoPoint(35.0844, -106.6504)
        )
        registry.attach(bus)
        registry.seed(density=0.01, seed=1, count=1)
        user = service.register_user("Honest Harriet")
        service.check_in(user.user_id, venue.venue_id, venue.location)
        defended = DefendedLbsnService(
            service,
            TrustingVerifier(),
            physical_locator=lambda user_id: None,
            suspicion_ledger=ledger,
        )
        result = defended.check_in(
            user.user_id,
            venue.venue_id,
            venue.location,
            timestamp=service.clock.now() + 4_000.0,
        )
        assert result.checkin.status is CheckInStatus.VALID


class TestDeterminism:
    def test_same_config_same_digests(self):
        one = run_adversary(AdversaryConfig(**SMALL))
        two = run_adversary(AdversaryConfig(**SMALL))
        assert one.catch_digest == two.catch_digest
        assert one.fp_digest == two.fp_digest
        assert one.flagged_ring_accounts == two.flagged_ring_accounts
        assert one.flagged_honest_accounts == two.flagged_honest_accounts

    def test_sharded_store_preserves_the_scoreboard(self):
        # store_shards changes the commit path, not the physics: the
        # sharded board must reach byte-identical digests.
        base = run_adversary(AdversaryConfig(**SMALL))
        sharded = run_adversary(
            AdversaryConfig(**SMALL, store_shards=4)
        )
        assert sharded.config.store_shards == 4
        assert base.catch_digest == sharded.catch_digest
        assert base.fp_digest == sharded.fp_digest

    def test_different_seed_moves_the_board(self):
        base = run_adversary(AdversaryConfig(**SMALL))
        moved_config = dict(SMALL)
        moved_config["seed"] = 6
        moved = run_adversary(AdversaryConfig(**moved_config))
        # Account-id layout is world-size-driven, so the catch digest
        # alone may coincide across seeds; the board as a whole may not.
        assert (base.catch_digest, base.fp_digest) != (
            moved.catch_digest,
            moved.fp_digest,
        )
