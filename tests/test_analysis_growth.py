"""Tests for the ID-clock growth model (§4.3's account-age inference)."""

import pytest

from repro.analysis.growth import (
    GrowthModel,
    activity_rates,
    growth_model_from_crawl,
)
from repro.errors import ReproError


class TestGrowthModel:
    def test_newest_account_has_age_zero(self):
        model = GrowthModel(max_user_id=1_000, service_age_days=500.0)
        assert model.registration_age_days(1_000) == pytest.approx(0.0)

    def test_first_account_is_service_age_old(self):
        model = GrowthModel(max_user_id=1_000_000, service_age_days=500.0)
        age = model.registration_age_days(1)
        assert age == pytest.approx(500.0, rel=0.01)

    def test_quadratic_growth_midpoint(self):
        # With cumulative ∝ t², half the IDs registered by t = T/sqrt(2),
        # so the median-ID account is T*(1 - 1/sqrt(2)) ≈ 0.293T old.
        model = GrowthModel(max_user_id=1_000, service_age_days=500.0)
        age = model.registration_age_days(500)
        assert age == pytest.approx(500.0 * (1.0 - 0.5**0.5), rel=0.01)

    def test_linear_growth_midpoint(self):
        model = GrowthModel(
            max_user_id=1_000, service_age_days=500.0, exponent=1.0
        )
        assert model.registration_age_days(500) == pytest.approx(250.0)

    def test_age_monotone_decreasing_in_id(self):
        model = GrowthModel(max_user_id=10_000, service_age_days=510.0)
        ages = [model.registration_age_days(uid) for uid in (1, 100, 5_000, 10_000)]
        assert ages == sorted(ages, reverse=True)

    def test_younger_than_inference(self):
        # The §4.3 call: a high-ID account is "less than one year" old.
        model = GrowthModel(max_user_id=1_890_000, service_age_days=520.0)
        late_registrant = int(1_890_000 * 0.7)
        assert model.account_younger_than(late_registrant, days=365.0)
        assert not model.account_younger_than(1, days=365.0)

    def test_invalid_parameters(self):
        with pytest.raises(ReproError):
            GrowthModel(max_user_id=0, service_age_days=100.0)
        with pytest.raises(ReproError):
            GrowthModel(max_user_id=10, service_age_days=0.0)
        with pytest.raises(ReproError):
            GrowthModel(max_user_id=10, service_age_days=10.0, exponent=0.0)
        model = GrowthModel(max_user_id=10, service_age_days=10.0)
        with pytest.raises(ReproError):
            model.registration_age_days(0)


class TestFromCrawl:
    def test_fit_from_world_crawl(self, world, crawl_db):
        from repro.simnet.clock import SECONDS_PER_DAY

        service_age = world.horizon_s / SECONDS_PER_DAY
        model = growth_model_from_crawl(crawl_db, service_age_days=service_age)
        assert model.max_user_id == max(u.user_id for u in crawl_db.users())
        # Personas registered last -> youngest estimated accounts.
        mega = world.roster.mega_cheater.user_id
        assert model.registration_age_days(mega) < service_age * 0.1

    def test_empty_crawl_rejected(self):
        from repro.crawler.database import CrawlDatabase

        with pytest.raises(ReproError):
            growth_model_from_crawl(CrawlDatabase(), service_age_days=100.0)


class TestActivityRates:
    def test_caught_cheaters_top_the_rate_table(self, world, crawl_db):
        """§4.2's 16-checkins-per-day evidence, sharpened by the ID clock:
        the brute cheaters dominate the per-day rate ranking."""
        from repro.simnet.clock import SECONDS_PER_DAY

        model = growth_model_from_crawl(
            crawl_db, service_age_days=world.horizon_s / SECONDS_PER_DAY
        )
        rates = activity_rates(crawl_db, model, min_total_checkins=100)
        assert rates
        top_ids = {r.user_id for r in rates[:10]}
        caught = {s.user_id for s in world.roster.caught_cheaters}
        assert caught & top_ids
        assert rates[0].checkins_per_day > 3.0
