"""Tests for tips and the §2.2 badmouthing attack."""

import pytest

from repro.attack.badmouth import BadmouthCampaign
from repro.attack.spoofing import build_emulator_attacker
from repro.attack.targeting import TargetVenue
from repro.crawler.parser import parse_venue_page
from repro.errors import ReproError, ServiceError
from repro.geo.coordinates import GeoPoint
from repro.geo.distance import destination_point
from repro.lbsn.webserver import LbsnWebServer

ABQ = GeoPoint(35.0844, -106.6504)


class TestTips:
    def test_tip_requires_valid_checkin(self, service):
        user = service.register_user("U")
        venue = service.create_venue("V", ABQ)
        with pytest.raises(ServiceError):
            service.post_tip(user.user_id, venue.venue_id, "nice place")
        service.check_in(user.user_id, venue.venue_id, ABQ)
        tip = service.post_tip(user.user_id, venue.venue_id, "nice place")
        assert tip.author_id == user.user_id
        assert venue.tips == [tip]

    def test_empty_tip_rejected(self, service):
        user = service.register_user("U")
        venue = service.create_venue("V", ABQ)
        service.check_in(user.user_id, venue.venue_id, ABQ)
        with pytest.raises(ServiceError):
            service.post_tip(user.user_id, venue.venue_id, "")

    def test_flagged_checkin_does_not_unlock_tips(self, service):
        # A flagged (super-human-speed) check-in earns no tip rights.
        user = service.register_user("U")
        near = service.create_venue("Near", ABQ)
        far = service.create_venue(
            "Far", GeoPoint(37.7749, -122.4194)
        )
        service.check_in(user.user_id, near.venue_id, ABQ, timestamp=0.0)
        result = service.check_in(
            user.user_id, far.venue_id, far.location, timestamp=60.0
        )
        assert not result.rewarded
        with pytest.raises(ServiceError):
            service.post_tip(user.user_id, far.venue_id, "meh")

    def test_tips_rendered_and_crawlable(self, service):
        user = service.register_user("U")
        venue = service.create_venue("V", ABQ)
        service.check_in(user.user_id, venue.venue_id, ABQ)
        service.post_tip(user.user_id, venue.venue_id, "Great <coffee> & cake")
        page = LbsnWebServer(service).render_venue(venue)
        parsed = parse_venue_page(page)
        assert parsed.tips == [(user.user_id, "Great <coffee> & cake")]


class TestBadmouthCampaign:
    def _competitors(self, service, count=5):
        venues = [
            service.create_venue(
                f"Rival {index}",
                destination_point(ABQ, index * 50.0, 900.0 + 400.0 * index),
            )
            for index in range(count)
        ]
        return [
            TargetVenue(
                venue_id=venue.venue_id,
                name=venue.name,
                latitude=venue.location.latitude,
                longitude=venue.location.longitude,
                special=None,
                reason="competitor",
            )
            for venue in venues
        ]

    def test_smear_posts_everywhere_undetected(self, service):
        targets = self._competitors(service)
        user, emulator, channel = build_emulator_attacker(service)
        campaign = BadmouthCampaign(service, channel, user.user_id)
        report = campaign.smear(targets)
        assert report.checkins_attempted == 5
        assert report.detected == 0
        assert report.tips_posted == 5
        assert report.tips_refused == 0
        for target in targets:
            venue = service.store.get_venue(target.venue_id)
            assert venue.tips
            assert venue.tips[0].author_id == user.user_id

    def test_custom_text_picker(self, service):
        targets = self._competitors(service, count=2)
        user, emulator, channel = build_emulator_attacker(service)
        campaign = BadmouthCampaign(service, channel, user.user_id)
        report = campaign.smear(
            targets, text_picker=lambda target, index: f"bad #{index}"
        )
        assert report.posted_texts == ["bad #0", "bad #1"]

    def test_empty_target_list_rejected(self, service):
        user, emulator, channel = build_emulator_attacker(service)
        campaign = BadmouthCampaign(service, channel, user.user_id)
        with pytest.raises(ReproError):
            campaign.smear([])

    def test_remote_smear_across_country(self, service):
        """The attacker badmouths venues in another state entirely."""
        sf = GeoPoint(37.7749, -122.4194)
        venues = [
            service.create_venue(
                f"SF Rival {index}",
                destination_point(sf, index * 60.0, 1_000.0 * (index + 1)),
            )
            for index in range(3)
        ]
        targets = [
            TargetVenue(
                venue_id=venue.venue_id,
                name=venue.name,
                latitude=venue.location.latitude,
                longitude=venue.location.longitude,
                special=None,
                reason="competitor",
            )
            for venue in venues
        ]
        user, emulator, channel = build_emulator_attacker(service)
        campaign = BadmouthCampaign(service, channel, user.user_id)
        report = campaign.smear(targets)
        assert report.tips_posted == 3
        assert report.detected == 0
