"""Tests for the venue generator."""

import pytest

from repro.errors import ReproError
from repro.geo.regions import in_contiguous_us
from repro.lbsn.service import LbsnService
from repro.lbsn.specials import mayor_only_fraction, venues_with_specials
from repro.workload.venues import VenueGenerator, VenueGeneratorConfig


@pytest.fixture(scope="module")
def generated():
    service = LbsnService()
    generator = VenueGenerator(service, seed=11)
    venues = generator.generate(3_000)
    return service, venues


class TestGeneration:
    def test_count_and_grouping(self, generated):
        service, venues = generated
        assert venues.count == 3_000
        assert service.store.venue_count() == 3_000
        grouped = sum(len(v) for v in venues.venue_ids_by_city.values())
        assert grouped + len(venues.small_town_venue_ids) == 3_000

    def test_small_towns_inside_us(self, generated):
        service, venues = generated
        for venue_id in venues.small_town_venue_ids[:200]:
            venue = service.store.get_venue(venue_id)
            assert in_contiguous_us(venue.location)

    def test_chains_present_with_starbucks_most_numerous(self, generated):
        service, _ = generated
        names = [venue.name for venue in service.store.iter_venues()]
        starbucks = [n for n in names if "Starbucks" in n]
        mcdonalds = [n for n in names if "McDonald's" in n]
        assert len(starbucks) > len(mcdonalds) > 0

    def test_starbucks_spread_over_many_cities(self, generated):
        # The Fig 3.4 prerequisite: the chain covers the country.
        service, _ = generated
        cities = {
            venue.city
            for venue in service.store.iter_venues()
            if "Starbucks" in venue.name
        }
        assert len(cities) >= 10

    def test_special_fractions(self, generated):
        service, _ = generated
        venues = service.store.iter_venues()
        offering = venues_with_specials(venues)
        assert len(offering) / len(venues) == pytest.approx(0.03, abs=0.015)
        assert mayor_only_fraction(venues) > 0.85

    def test_branch_numbers_unique_per_chain(self, generated):
        service, _ = generated
        starbucks_names = [
            venue.name
            for venue in service.store.iter_venues()
            if venue.name.startswith("Starbucks #")
        ]
        assert len(starbucks_names) == len(set(starbucks_names))

    def test_city_venues_near_their_center(self, generated):
        service, venues = generated
        from repro.geo.distance import haversine_m
        from repro.geo.regions import city_by_name

        for city_name, ids in venues.venue_ids_by_city.items():
            if city_name in ("Alaska", "Hawaii", "small town"):
                continue
            try:
                city = city_by_name(city_name)
            except Exception:
                from repro.geo.regions import EUROPEAN_CITIES

                city = next(
                    c for c in EUROPEAN_CITIES if c.name == city_name
                )
            for venue_id in ids[:5]:
                venue = service.store.get_venue(venue_id)
                assert haversine_m(venue.location, city.center) < 60_000.0


class TestConfigAndDeterminism:
    def test_negative_count_rejected(self):
        generator = VenueGenerator(LbsnService())
        with pytest.raises(ReproError):
            generator.generate(-5)

    def test_zero_count(self):
        generator = VenueGenerator(LbsnService())
        assert generator.generate(0).count == 0

    def test_deterministic_given_seed(self):
        def build(seed):
            service = LbsnService()
            VenueGenerator(service, seed=seed).generate(100)
            return [
                (v.name, round(v.location.latitude, 6))
                for v in service.store.iter_venues()
            ]

        assert build(3) == build(3)

    def test_all_city_fraction(self):
        service = LbsnService()
        config = VenueGeneratorConfig(
            city_fraction=1.0,
            europe_fraction=0.0,
            alaska_fraction=0.0,
            hawaii_fraction=0.0,
        )
        venues = VenueGenerator(service, config=config, seed=1).generate(200)
        assert venues.small_town_venue_ids == []
