"""Concurrency tests for the observability layer.

Threads hammer the log hub's ring, the metrics registry, and the
time-series recorder's background sampler simultaneously; nothing may be
lost, torn, or reordered within a thread, and every exported JSONL line
must parse on its own.
"""

import json
import threading
import time

from repro.obs import LogHub, MetricsRegistry, TimeSeriesRecorder
from repro.obs.log import DEBUG

THREADS = 8
RECORDS_PER_THREAD = 250


def _hammer(hub, barrier, index):
    logger = hub.logger(f"worker.{index}")
    barrier.wait()
    for n in range(RECORDS_PER_THREAD):
        logger.info("tick", n=n, worker=index)


class TestLogHubUnderThreads:
    def _run(self, hub):
        barrier = threading.Barrier(THREADS)
        threads = [
            threading.Thread(target=_hammer, args=(hub, barrier, i))
            for i in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    def test_no_record_lost_when_the_ring_is_large_enough(self):
        total = THREADS * RECORDS_PER_THREAD
        hub = LogHub(ring_size=total)
        self._run(hub)
        assert hub.emitted == total
        assert hub.dropped == 0
        assert len(hub.records()) == total

    def test_per_thread_order_survives_interleaving(self):
        hub = LogHub(ring_size=THREADS * RECORDS_PER_THREAD)
        self._run(hub)
        for i in range(THREADS):
            own = hub.records(logger=f"worker.{i}")
            assert [r.fields["n"] for r in own] == list(
                range(RECORDS_PER_THREAD)
            )

    def test_every_exported_line_is_valid_json(self):
        hub = LogHub(ring_size=THREADS * RECORDS_PER_THREAD)
        self._run(hub)
        lines = hub.export_jsonl().splitlines()
        assert len(lines) == THREADS * RECORDS_PER_THREAD
        for line in lines:
            obj = json.loads(line)  # no torn/interleaved writes
            assert obj["event"] == "tick"
            assert obj["logger"] == f"worker.{obj['worker']}"

    def test_sinks_see_every_record_exactly_once(self):
        hub = LogHub(ring_size=64)  # ring may drop; sinks must not
        seen = []
        hub.add_sink(seen.append)  # list.append is atomic under the GIL
        self._run(hub)
        assert len(seen) == THREADS * RECORDS_PER_THREAD
        per_worker = {}
        for record in seen:
            per_worker.setdefault(record.fields["worker"], []).append(
                record.fields["n"]
            )
        assert all(
            ns == list(range(RECORDS_PER_THREAD))
            for ns in per_worker.values()
        )

    def test_wraparound_under_threads_keeps_accounting_exact(self):
        hub = LogHub(ring_size=100)
        self._run(hub)
        total = THREADS * RECORDS_PER_THREAD
        assert hub.emitted == total
        assert hub.dropped == total - 100
        assert len(hub.records()) == 100

    def test_metrics_counts_survive_contention(self):
        registry = MetricsRegistry()
        hub = LogHub(ring_size=64, metrics=registry)
        self._run(hub)
        flat = registry.snapshot()["repro_log_records_total"]
        for i in range(THREADS):
            assert flat[(f"worker.{i}", "info")] == float(RECORDS_PER_THREAD)


class TestRecorderUnderThreads:
    def test_background_sampler_races_with_producers(self):
        registry = MetricsRegistry()
        counter = registry.counter("t_ticks_total", "Ticks.", ("worker",))
        children = [counter.labels(str(i)) for i in range(4)]

        def produce(child):
            for _ in range(1000):
                child.inc()

        with TimeSeriesRecorder(registry, max_points=10_000).start(
            interval_s=0.001
        ) as recorder:
            threads = [
                threading.Thread(target=produce, args=(child,))
                for child in children
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            # Let the sampler tick at least once more, then stop.
            time.sleep(0.005)
        recorder.sample()  # final deterministic snapshot
        for i in range(4):
            points = recorder.series("t_ticks_total", (str(i),))
            assert points[-1][1] == 1000.0
            values = [value for _, value in points]
            assert values == sorted(values)  # counters never tear backwards
        assert recorder.samples_taken >= 2

    def test_concurrent_readers_never_crash_the_sampler(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("t_depth", "Depth.")
        recorder = TimeSeriesRecorder(registry, max_points=50)
        stop = threading.Event()
        failures = []

        def read_loop():
            try:
                while not stop.is_set():
                    recorder.to_dict()
                    recorder.delta("t_depth")
                    recorder.rate_per_s("t_depth")
            except Exception as exc:  # pragma: no cover - the assertion
                failures.append(exc)

        readers = [threading.Thread(target=read_loop) for _ in range(2)]
        for reader in readers:
            reader.start()
        for step in range(200):
            gauge.set(step)
            recorder.sample(now=float(step))
        stop.set()
        for reader in readers:
            reader.join()
        assert not failures
        assert len(recorder.series("t_depth")) == 50


class TestLogAndTraceTogether:
    def test_threads_log_under_their_own_traces(self):
        from repro.obs.context import TraceContext, use_trace

        hub = LogHub(ring_size=4096, level=DEBUG)
        logger = hub.logger("svc")
        barrier = threading.Barrier(THREADS)

        def work():
            trace = TraceContext.mint()
            barrier.wait()
            with use_trace(trace):
                for n in range(50):
                    logger.debug("step", trace_id=trace.trace_id, n=n)

        threads = [threading.Thread(target=work) for _ in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        by_trace = {}
        for record in hub.records():
            by_trace.setdefault(record.trace_id, []).append(
                record.fields["n"]
            )
        assert len(by_trace) == THREADS
        assert all(ns == list(range(50)) for ns in by_trace.values())
