"""Documentation is executable: README snippets run, docs stay in sync."""

import re
from pathlib import Path


REPO = Path(__file__).resolve().parent.parent


class TestReadmeQuickstart:
    def test_quickstart_code_block_runs(self):
        """The README's first python block must execute verbatim."""
        readme = (REPO / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", readme, re.S)
        assert blocks, "README lost its quickstart code block"
        namespace = {}
        exec(compile(blocks[0], "<README quickstart>", "exec"), namespace)

    def test_cli_commands_documented_exist(self):
        """Every `python -m repro <cmd>` the README shows is a real command."""
        from repro.cli import _COMMANDS

        readme = (REPO / "README.md").read_text()
        documented = set(re.findall(r"python -m repro ([\w-]+)", readme))
        assert documented
        assert documented <= set(_COMMANDS)


class TestExperimentIndexIntegrity:
    def test_every_designed_bench_file_exists(self):
        """DESIGN.md's experiment index references real bench files."""
        design = (REPO / "DESIGN.md").read_text()
        referenced = set(re.findall(r"benchmarks/(bench_\w+\.py)", design))
        assert len(referenced) >= 15
        for name in referenced:
            assert (REPO / "benchmarks" / name).exists(), name

    def test_every_bench_file_is_designed(self):
        """No orphan bench files missing from the DESIGN index."""
        design = (REPO / "DESIGN.md").read_text()
        for path in (REPO / "benchmarks").glob("bench_*.py"):
            assert path.name in design, path.name

    def test_experiments_covers_all_experiment_ids(self):
        experiments = (REPO / "EXPERIMENTS.md").read_text()
        for exp_id in range(1, 18):
            assert f"## E{exp_id} " in experiments, f"E{exp_id}"


class TestExamplesExist:
    def test_examples_listed_in_readme_exist(self):
        readme = (REPO / "README.md").read_text()
        referenced = set(re.findall(r"examples/(\w+\.py)", readme))
        assert len(referenced) >= 4
        for name in referenced:
            assert (REPO / "examples" / name).exists(), name

    def test_at_least_five_runnable_examples(self):
        examples = list((REPO / "examples").glob("*.py"))
        assert len(examples) >= 5
        for path in examples:
            source = path.read_text()
            assert '__name__ == "__main__"' in source, path.name
            compile(source, str(path), "exec")
