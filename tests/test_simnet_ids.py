"""Unit tests for sequential ID allocation."""

import threading

import pytest

from repro.errors import ReproError
from repro.simnet.ids import IdExhaustedError, SequentialIdAllocator


class TestAllocation:
    def test_starts_at_one(self):
        allocator = SequentialIdAllocator()
        assert allocator.allocate() == 1
        assert allocator.allocate() == 2

    def test_custom_start(self):
        allocator = SequentialIdAllocator(start=100)
        assert allocator.allocate() == 100

    def test_peek_does_not_consume(self):
        allocator = SequentialIdAllocator()
        assert allocator.peek() == 1
        assert allocator.peek() == 1
        assert allocator.allocate() == 1

    def test_allocated_count(self):
        allocator = SequentialIdAllocator()
        for _ in range(5):
            allocator.allocate()
        assert allocator.allocated_count() == 5

    def test_iter_allocated(self):
        allocator = SequentialIdAllocator()
        for _ in range(3):
            allocator.allocate()
        assert list(allocator.iter_allocated()) == [1, 2, 3]

    def test_ceiling_enforced(self):
        allocator = SequentialIdAllocator(start=1, ceiling=2)
        allocator.allocate()
        allocator.allocate()
        with pytest.raises(IdExhaustedError):
            allocator.allocate()

    def test_invalid_construction(self):
        with pytest.raises(ReproError):
            SequentialIdAllocator(start=0)
        with pytest.raises(ReproError):
            SequentialIdAllocator(start=10, ceiling=5)


class TestConcurrency:
    def test_no_duplicate_ids_under_contention(self):
        allocator = SequentialIdAllocator()
        results = []
        lock = threading.Lock()

        def worker():
            local = [allocator.allocate() for _ in range(500)]
            with lock:
                results.extend(local)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(results) == 4_000
        assert len(set(results)) == 4_000
        assert sorted(results) == list(range(1, 4_001))
