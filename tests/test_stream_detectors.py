"""Tests for the incremental detectors: correctness and memory bounds."""

import pytest

from repro.geo.coordinates import GeoPoint
from repro.geo.distance import destination_point
from repro.geo.regions import US_CITIES
from repro.stream import (
    ActivityRateDetector,
    CheckInAccepted,
    CheckInFlagged,
    GeoDispersionDetector,
    LruStateMap,
    RewardRateDetector,
    StreamDetectorConfig,
    UserRegistered,
)

HERE = GeoPoint(35.0844, -106.6504)  # Albuquerque


def accepted(user_id, venue_id, ts, where=HERE, badges=0, points=0):
    return CheckInAccepted(
        seq=-1,
        timestamp=ts,
        user_id=user_id,
        venue_id=venue_id,
        venue_location=where,
        reported_location=where,
        new_badge_count=badges,
        points=points,
    )


def flagged(user_id, venue_id, ts, where=HERE):
    return CheckInFlagged(
        seq=-1,
        timestamp=ts,
        user_id=user_id,
        venue_id=venue_id,
        venue_location=where,
        reported_location=where,
        rule="frequent",
    )


class TestLruStateMap:
    def test_bound_enforced_with_eviction_count(self):
        lru = LruStateMap(max_entries=10)
        for key in range(25):
            lru.touch(key, dict)
        assert len(lru) == 10
        assert lru.evictions == 15

    def test_touch_refreshes_recency(self):
        lru = LruStateMap(max_entries=2)
        lru.touch("a", dict)
        lru.touch("b", dict)
        lru.touch("a", dict)  # 'a' is now hottest
        lru.touch("c", dict)  # evicts 'b'
        assert "a" in lru and "c" in lru and "b" not in lru

    def test_evict_callback_receives_pair(self):
        evicted = []
        lru = LruStateMap(max_entries=1, on_evict=lambda k, v: evicted.append(k))
        lru.touch(1, dict)
        lru.touch(2, dict)
        assert evicted == [1]

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            LruStateMap(max_entries=0)


class TestActivityRateDetector:
    def test_recent_membership_mirrors_venue_lists(self):
        det = ActivityRateDetector()
        # User 1 checks into three distinct venues: on three lists.
        for venue in (10, 11, 12):
            det.on_event(accepted(1, venue, ts=100.0))
        assert det.totals(1) == (3, 3)

    def test_rechecking_same_venue_does_not_double_count(self):
        det = ActivityRateDetector()
        det.on_event(accepted(1, 10, ts=1.0))
        det.on_event(accepted(1, 10, ts=2.0))
        assert det.totals(1) == (1, 2)

    def test_displacement_off_recent_list_decrements(self):
        config = StreamDetectorConfig(recent_visitor_limit=3)
        det = ActivityRateDetector(config)
        det.on_event(accepted(1, 10, ts=0.0))
        for other in range(2, 6):  # four later visitors push user 1 out
            det.on_event(accepted(other, 10, ts=float(other)))
        assert det.totals(1) == (0, 1)

    def test_flagged_counts_total_only(self):
        det = ActivityRateDetector()
        det.on_event(accepted(1, 10, ts=0.0))
        det.on_event(flagged(1, 11, ts=1.0))
        assert det.totals(1) == (1, 2)

    def test_non_checkin_events_ignored(self):
        det = ActivityRateDetector()
        det.on_event(UserRegistered(seq=-1, timestamp=0.0, user_id=1))
        assert det.totals(1) == (0, 0)
        assert det.events_seen == 0

    def test_sliding_window_rate(self):
        config = StreamDetectorConfig(activity_window_s=3_600.0)
        det = ActivityRateDetector(config)
        for i in range(6):
            det.on_event(accepted(1, 100 + i, ts=i * 100.0))
        # All six inside the hour window.
        assert det.rate_per_hour(1, now=500.0) == pytest.approx(6.0)
        # Much later, everything has aged out.
        assert det.rate_per_hour(1, now=50_000.0) == pytest.approx(0.0)

    def test_activity_score_matches_offline_formula(self):
        det = ActivityRateDetector()
        for venue in range(8):
            det.on_event(accepted(1, venue, ts=float(venue)))
        # 8 recent / 8 total = 1.0 ratio; saturates at ratio 0.8.
        assert det.activity_score(1, saturating_ratio=0.8) == 1.0
        assert det.activity_score(99, saturating_ratio=0.8) == 0.0

    def test_user_lru_bound(self):
        config = StreamDetectorConfig(max_users=16)
        det = ActivityRateDetector(config)
        for user in range(64):
            det.on_event(accepted(user, 1, ts=float(user)))
        assert len(det.users) <= 16
        assert det.users.evictions == 48

    def test_venue_eviction_releases_memberships(self):
        config = StreamDetectorConfig(max_venues=2)
        det = ActivityRateDetector(config)
        det.on_event(accepted(1, 10, ts=0.0))
        det.on_event(accepted(1, 11, ts=1.0))
        det.on_event(accepted(1, 12, ts=2.0))  # evicts venue 10's replica
        recent, total = det.totals(1)
        assert recent == 2
        assert total == 3


class TestRewardRateDetector:
    def test_badges_accumulate_from_events(self):
        det = RewardRateDetector()
        det.on_event(accepted(1, 10, ts=0.0, badges=2, points=5))
        det.on_event(accepted(1, 11, ts=1.0, badges=1, points=3))
        assert det.totals(1) == (3, 2)

    def test_shortfall_formula_matches_offline(self):
        det = RewardRateDetector()
        # 200 valid check-ins, zero badges: maximal shortfall.
        for i in range(200):
            det.on_event(accepted(1, i, ts=float(i)))
        score = det.reward_score(
            1, expected_badges_per_100=8.0, badge_ceiling=90.0
        )
        assert score == 1.0

    def test_well_rewarded_user_scores_zero(self):
        det = RewardRateDetector()
        for i in range(10):
            det.on_event(accepted(1, i, ts=float(i), badges=1))
        score = det.reward_score(
            1, expected_badges_per_100=8.0, badge_ceiling=90.0
        )
        assert score == 0.0

    def test_unknown_user_scores_zero(self):
        det = RewardRateDetector()
        assert det.reward_score(7, 8.0, 90.0) == 0.0


class TestGeoDispersionDetector:
    def test_city_count_one_metro(self):
        det = GeoDispersionDetector()
        for i in range(10):
            point = destination_point(HERE, i * 36.0, 2_000.0 + i * 500.0)
            det.on_event(accepted(1, i, ts=float(i), where=point))
        assert det.city_count(1) == 1

    def test_city_count_many_metros(self):
        det = GeoDispersionDetector()
        for i, city in enumerate(US_CITIES[:12]):
            det.on_event(accepted(1, i, ts=float(i), where=city.center))
        assert det.city_count(1) == 12

    def test_running_bbox_covers_all_points(self):
        det = GeoDispersionDetector()
        a, b = US_CITIES[0].center, US_CITIES[1].center
        det.on_event(accepted(1, 1, ts=0.0, where=a))
        det.on_event(accepted(1, 2, ts=3_600.0, where=b))
        south, west, north, east = det.bbox(1)
        for p in (a, b):
            assert south <= p.latitude <= north
            assert west <= p.longitude <= east

    def test_last_position_speed(self):
        det = GeoDispersionDetector()
        start = HERE
        end = destination_point(HERE, 90.0, 10_000.0)  # 10 km hop
        det.on_event(accepted(1, 1, ts=0.0, where=start))
        det.on_event(accepted(1, 2, ts=100.0, where=end))  # 100 m/s
        assert det.max_speed(1) == pytest.approx(100.0, rel=0.01)

    def test_zero_elapsed_hop_is_infinite_speed(self):
        det = GeoDispersionDetector()
        det.on_event(accepted(1, 1, ts=5.0, where=US_CITIES[0].center))
        det.on_event(accepted(1, 2, ts=5.0, where=US_CITIES[1].center))
        assert det.max_speed(1) == float("inf")

    def test_pattern_score_gated_on_min_points(self):
        config = StreamDetectorConfig(min_pattern_points=5)
        det = GeoDispersionDetector(config)
        for i, city in enumerate(US_CITIES[:4]):
            det.on_event(accepted(1, i, ts=float(i), where=city.center))
        assert det.pattern_score(1, saturating_city_count=20) == 0.0
        det.on_event(accepted(1, 99, ts=99.0, where=US_CITIES[4].center))
        assert det.pattern_score(1, saturating_city_count=20) == 0.25

    def test_leader_cap_bounds_memory(self):
        config = StreamDetectorConfig(max_city_leaders=8)
        det = GeoDispersionDetector(config)
        for i, city in enumerate(US_CITIES[:15]):
            det.on_event(accepted(1, i, ts=float(i), where=city.center))
        assert det.city_count(1) == 8

    def test_user_lru_bound(self):
        config = StreamDetectorConfig(max_users=4)
        det = GeoDispersionDetector(config)
        for user in range(20):
            det.on_event(accepted(user, 1, ts=float(user)))
        assert len(det.users) <= 4
        assert det.users.evictions == 16
