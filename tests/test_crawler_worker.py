"""Unit tests for the Appendix-A threading model and the worker pool."""

import threading
import time

import pytest

from repro.crawler.worker import AppendixAController, WorkerPool
from repro.errors import CrawlError


def counting_work(total, fail_every=None):
    """A work source yielding `total` items, then exhaustion."""
    state = {"issued": 0}
    lock = threading.Lock()

    def work():
        with lock:
            if state["issued"] >= total:
                return None
            state["issued"] += 1
            item = state["issued"]
        if fail_every and item % fail_every == 0:
            return False
        return True

    return work, state


class TestAppendixAController:
    def test_processes_everything(self):
        work, state = counting_work(200)
        controller = AppendixAController(work, desired_threads=8)
        controller.start()
        assert controller.join(timeout=10.0)
        assert controller.stats.processed == 200
        assert controller.stats.failed == 0
        assert controller.active_threads == 0

    def test_failures_counted(self):
        work, state = counting_work(100, fail_every=10)
        controller = AppendixAController(work, desired_threads=4)
        controller.start()
        assert controller.join(timeout=10.0)
        assert controller.stats.processed == 100
        assert controller.stats.failed == 10

    def test_exceptions_count_as_failures(self):
        issued = {"n": 0}
        lock = threading.Lock()

        def work():
            with lock:
                if issued["n"] >= 10:
                    return None
                issued["n"] += 1
            raise RuntimeError("boom")

        controller = AppendixAController(work, desired_threads=2)
        controller.start()
        assert controller.join(timeout=10.0)
        assert controller.stats.failed == 10

    def test_thread_count_bounded_by_desired(self):
        peak = {"value": 0}
        lock = threading.Lock()
        work_items = {"n": 0}

        def work():
            with lock:
                if work_items["n"] >= 60:
                    return None
                work_items["n"] += 1
            time.sleep(0.005)
            return True

        controller = AppendixAController(work, desired_threads=5)

        def monitor():
            while not controller.join(timeout=0.001):
                with lock:
                    peak["value"] = max(
                        peak["value"], controller.active_threads
                    )

        watcher = threading.Thread(target=monitor)
        controller.start()
        watcher.start()
        assert controller.join(timeout=10.0)
        watcher.join()
        assert peak["value"] <= 5

    def test_stop_halts_new_launches(self):
        work, state = counting_work(1_000_000)
        controller = AppendixAController(work, desired_threads=2)
        controller.start()
        controller.stop()
        assert controller.join(timeout=10.0)
        assert state["issued"] < 1_000_000

    def test_double_start_rejected(self):
        work, _ = counting_work(1_000_000)
        controller = AppendixAController(work, desired_threads=1)
        controller.start()
        with pytest.raises(CrawlError):
            controller.start()
        controller.stop()
        controller.join(timeout=10.0)

    def test_invalid_thread_count(self):
        with pytest.raises(CrawlError):
            AppendixAController(lambda: None, desired_threads=0)


class TestWorkerPool:
    def test_drains_all_work(self):
        work, state = counting_work(500)
        pool = WorkerPool(work, threads=6)
        stats = pool.run()
        assert stats.processed == 500
        assert state["issued"] == 500

    def test_failures_counted(self):
        work, _ = counting_work(100, fail_every=4)
        stats = WorkerPool(work, threads=3).run()
        assert stats.failed == 25

    def test_exception_counts_as_failure_and_continues(self):
        issued = {"n": 0}
        lock = threading.Lock()

        def work():
            with lock:
                if issued["n"] >= 20:
                    return None
                issued["n"] += 1
                item = issued["n"]
            if item == 5:
                raise ValueError("bad page")
            return True

        stats = WorkerPool(work, threads=2).run()
        assert stats.processed == 20
        assert stats.failed == 1

    def test_invalid_thread_count(self):
        with pytest.raises(CrawlError):
            WorkerPool(lambda: None, threads=0)
