"""End-to-end trace propagation: one ``trace_id`` links a check-in's
whole causal chain.

The acceptance scenario for the obs layer: a cheating tour runs through
:class:`DefendedLbsnService` with streaming detection attached, and the
check-in that tips the suspicion ledger over its threshold is
reconstructable from a single ``trace_id`` — the service's ``checkin``
log record, the store's ``store.commit`` record, the published bus
event, the activity detector's folded-in trace, and the ledger's
``ledger.flag`` record all carry the same ID.  The same ID then drives
the ``/debug/logs?trace_id=`` flight-recorder route over the simulated
HTTP stack, alongside regression checks for the ``/metrics`` scrape
headers and the other debug routes.
"""

import json

import pytest

from repro.analysis.detection import DetectorConfig
from repro.defense.distance_bounding import DistanceBoundingVerifier
from repro.defense.integration import (
    RULE_STREAM_SUSPECT,
    DefendedLbsnService,
    DeviceRegistry,
    registry_locator,
)
from repro.geo.coordinates import GeoPoint
from repro.lbsn.models import CheckInStatus
from repro.lbsn.service import LbsnService
from repro.lbsn.webserver import (
    JSON_CONTENT_TYPE,
    JSONL_CONTENT_TYPE,
    METRICS_CONTENT_TYPE,
    LbsnWebServer,
)
from repro.obs import LogHub, MetricsRegistry
from repro.obs.log import DEBUG
from repro.simnet.http import HttpTransport, Router
from repro.simnet.network import Network
from repro.stream import CheckInAccepted, EventBus, SuspicionLedger

BASE_TS = 1_280_000_000.0  # 2010-07, the thesis's crawl summer
VENUES = 25  # enough distinct venues to saturate the activity factor
FLAG_AT = 20  # min_total_checkins: the stop whose event tips the ledger


@pytest.fixture(scope="module")
def tour():
    """One cheating tour through the fully instrumented stack."""
    registry = MetricsRegistry()
    hub = LogHub(ring_size=8192, level=DEBUG, metrics=registry)
    bus = EventBus(metrics=registry, log=hub)
    ledger = SuspicionLedger(
        DetectorConfig(min_total_checkins=20), metrics=registry, log=hub
    ).attach(bus)
    events = []
    bus.subscribe("capture", events.append)
    service = LbsnService(event_bus=bus, metrics=registry, log=hub)

    devices = DeviceRegistry()
    defended = DefendedLbsnService(
        service,
        DistanceBoundingVerifier(seed=7),
        registry_locator(devices),
        suspicion_ledger=ledger,
        metrics=registry,
        log=hub,
    )

    cheater = service.register_user("tour-cheater")
    venues = [
        service.create_venue(
            f"stop-{i}", GeoPoint(40.0 + i * 0.003, -96.0)
        )
        for i in range(VENUES)
    ]
    results = []
    for i, venue in enumerate(venues):
        # The cheater "really is" at each stop (the GPS spoof is in the
        # *pattern*, not any single claim), so distance bounding passes
        # and the streaming detectors see a clean accepted-event feed.
        devices.place(cheater.user_id, venue.location)
        results.append(
            defended.check_in(
                cheater.user_id,
                venue.venue_id,
                venue.location,
                timestamp=BASE_TS + i * 600.0,
            )
        )
    return {
        "registry": registry,
        "hub": hub,
        "ledger": ledger,
        "events": events,
        "service": service,
        "defended": defended,
        "cheater": cheater,
        "venues": venues,
        "results": results,
    }


class TestTraceChain:
    def test_tour_flags_the_cheater_and_inline_defense_cuts_it_short(
        self, tour
    ):
        ledger, cheater, results = (
            tour["ledger"],
            tour["cheater"],
            tour["results"],
        )
        assert ledger.is_suspect(cheater.user_id)
        report = ledger.score_user(cheater.user_id)
        assert report.activity_score == 1.0
        # The flag lands on stop 20; the inline defense then refuses the
        # rest of the tour, so only 20 check-ins ever reached the service.
        assert report.total_checkins == FLAG_AT
        assert all(r.rewarded for r in results[:FLAG_AT])
        assert all(
            r.checkin.status is CheckInStatus.REJECTED
            for r in results[FLAG_AT:]
        )

    def test_every_checkin_minted_its_own_trace(self, tour):
        records = tour["hub"].records(
            logger="lbsn.service", event="checkin"
        )
        ids = [record.trace_id for record in records]
        assert len(ids) == FLAG_AT
        assert all(ids)
        assert len(set(ids)) == FLAG_AT

    def test_one_trace_id_links_the_whole_flag_chain(self, tour):
        hub, ledger, cheater = tour["hub"], tour["ledger"], tour["cheater"]

        # The ledger flagged exactly once, and remembers which trace did it.
        (flag,) = hub.records(logger="stream.ledger", event="ledger.flag")
        trace_id = flag.trace_id
        assert trace_id is not None
        assert ledger.flag_trace_id(cheater.user_id) == trace_id

        # ... which is the 20th check-in of the tour (min_total_checkins).
        checkins = hub.records(logger="lbsn.service", event="checkin")
        assert checkins[FLAG_AT - 1].trace_id == trace_id

        # The triggering bus event carries the same ID ...  (so does the
        # request's MayorChanged event — the whole publish shares one
        # trace, which is exactly the point.)
        (event,) = [
            e
            for e in tour["events"]
            if isinstance(e, CheckInAccepted) and e.trace_id == trace_id
        ]
        assert event.user_id == cheater.user_id

        # ... as do the service and store records of that request, with
        # matching identities (same check-in, same commit sequence).
        chain = hub.records(trace_id=trace_id)
        by_event = {record.event: record for record in chain}
        assert {"checkin", "store.commit"} <= set(by_event)
        assert by_event["checkin"].fields["seq"] == event.seq
        assert (
            by_event["store.commit"].fields["checkin_id"]
            == by_event["checkin"].fields["checkin_id"]
        )
        assert by_event["ledger.flag"].fields["user_id"] == cheater.user_id

        # One grep of the JSONL export replays the same chain.
        lines = [
            json.loads(line)
            for line in hub.export_jsonl().splitlines()
            if json.loads(line).get("trace_id") == trace_id
        ]
        assert {obj["event"] for obj in lines} >= {
            "checkin",
            "store.commit",
            "ledger.flag",
        }

    def test_detector_folds_traces_from_events(self, tour):
        ledger, cheater, events = (
            tour["ledger"],
            tour["cheater"],
            tour["events"],
        )
        accepted = [e for e in events if isinstance(e, CheckInAccepted)]
        assert (
            ledger.activity.last_trace_id(cheater.user_id)
            == accepted[-1].trace_id
        )

    def test_refusals_run_under_their_own_traces(self, tour):
        hub, results = tour["hub"], tour["results"]
        refused = results[FLAG_AT:]
        assert all(
            r.checkin.flagged_rule == RULE_STREAM_SUSPECT for r in refused
        )
        refusals = hub.records(logger="defense", event="defense.refused")
        assert len(refusals) == VENUES - FLAG_AT
        for refusal in refusals:
            assert refusal.trace_id is not None
            assert refusal.fields["rule"] == RULE_STREAM_SUSPECT
            # The refusal happened before the service, so its trace never
            # reached the check-in log.
            assert not hub.records(
                logger="lbsn.service", trace_id=refusal.trace_id
            )

    def test_defense_metrics_populated(self, tour):
        flat = tour["registry"].snapshot()
        verdicts = flat["repro_defense_verdicts_total"]
        assert verdicts[("distance-bounding", "accept")] == float(FLAG_AT)
        actions = flat["repro_defense_actions_total"]
        assert actions[("verified",)] == float(FLAG_AT)
        assert actions[("ledger_refused",)] == float(VENUES - FLAG_AT)
        latency = flat["repro_defense_check_seconds"]
        assert latency[("distance-bounding",)] == float(FLAG_AT)


class TestOperationalRoutes:
    @pytest.fixture()
    def web(self, tour):
        webserver = LbsnWebServer(tour["service"])
        router = Router()
        webserver.install_routes(router)
        network = Network(seed=0)
        transport = HttpTransport(router, network)
        return transport, network.create_egress()

    def test_metrics_scrape_headers(self, web, tour):
        transport, egress = web
        response = transport.get("/metrics", egress)
        assert response.ok
        assert response.headers["Content-Type"] == METRICS_CONTENT_TYPE
        assert int(response.headers["Content-Length"]) == len(
            response.body.encode("utf-8")
        )
        assert "repro_lbsn_checkins_total" in response.body

    def test_debug_vars_shares_the_json_serializer(self, web, tour):
        transport, egress = web
        response = transport.get("/debug/vars", egress)
        assert response.ok
        assert response.headers["Content-Type"] == JSON_CONTENT_TYPE
        assert int(response.headers["Content-Length"]) == len(
            response.body.encode("utf-8")
        )
        parsed = json.loads(response.body)
        family = parsed["repro_lbsn_checkins_total"]
        assert family["kind"] == "counter"
        values = {
            sample["labels"]["status"]: sample["value"]
            for sample in family["samples"]
        }
        assert values["valid"] == float(FLAG_AT)

    def test_debug_traces_lists_slow_spans(self, web, tour):
        transport, egress = web
        response = transport.get("/debug/traces", egress)
        assert response.ok
        parsed = json.loads(response.body)
        assert "slow_threshold_s" in parsed
        assert isinstance(parsed["spans"], list)

    def test_debug_logs_replays_one_trace(self, web, tour):
        transport, egress = web
        (flag,) = tour["hub"].records(
            logger="stream.ledger", event="ledger.flag"
        )
        response = transport.get(
            "/debug/logs", egress, params={"trace_id": flag.trace_id}
        )
        assert response.ok
        assert response.headers["Content-Type"] == JSONL_CONTENT_TYPE
        lines = [json.loads(line) for line in response.body.splitlines()]
        assert len(lines) >= 3
        assert all(obj["trace_id"] == flag.trace_id for obj in lines)
        assert {obj["event"] for obj in lines} >= {
            "checkin",
            "store.commit",
            "ledger.flag",
        }

    def test_debug_logs_limit_and_event_filters(self, web, tour):
        transport, egress = web
        response = transport.get(
            "/debug/logs",
            egress,
            params={"event": "checkin", "limit": "5"},
        )
        lines = [json.loads(line) for line in response.body.splitlines()]
        assert len(lines) == 5
        assert all(obj["event"] == "checkin" for obj in lines)
