"""Unit tests for virtual paths and the Fig 3.5 spiral."""

import pytest

from repro.errors import GeoError
from repro.geo.coordinates import METERS_PER_YARD, GeoPoint
from repro.geo.distance import (
    haversine_m,
    initial_bearing_deg,
    meters_per_degree_latitude,
)
from repro.geo.path import (
    MoveCommand,
    VirtualPath,
    bearing_for_direction,
    drift_m,
    spiral_path,
)

START = GeoPoint(35.06, -106.62)


class TestBearingForDirection:
    @pytest.mark.parametrize(
        "direction,expected",
        [
            ("north", 0.0),
            ("NE", 45.0),
            ("East", 90.0),
            ("southeast", 135.0),
            ("s", 180.0),
            ("SW", 225.0),
            ("west", 270.0),
            ("nw", 315.0),
        ],
    )
    def test_compass_words(self, direction, expected):
        assert bearing_for_direction(direction) == expected

    def test_unknown_direction_raises(self):
        with pytest.raises(GeoError):
            bearing_for_direction("up")


class TestMoveCommand:
    def test_apply_moves_right_distance_and_direction(self):
        command = MoveCommand(direction="west", distance_m=457.2)
        destination = command.apply(START)
        assert haversine_m(START, destination) == pytest.approx(457.2, rel=1e-6)
        assert initial_bearing_deg(START, destination) == pytest.approx(
            270.0, abs=0.1
        )

    def test_yards_constructor(self):
        # The thesis's example: "move 500 yards to the west".
        command = MoveCommand.yards("west", 500)
        assert command.distance_m == pytest.approx(500 * METERS_PER_YARD)

    def test_zero_distance_rejected(self):
        with pytest.raises(GeoError):
            MoveCommand(direction="north", distance_m=0.0)

    def test_bad_direction_rejected_at_construction(self):
        with pytest.raises(GeoError):
            MoveCommand(direction="sideways", distance_m=10.0)


class TestVirtualPath:
    def test_waypoints_start_with_origin(self):
        path = VirtualPath(start=START)
        assert path.waypoints() == [START]

    def test_add_move_extends_waypoints(self):
        path = VirtualPath(start=START)
        end = path.add_move(MoveCommand("north", 500.0))
        assert len(path.waypoints()) == 2
        assert path.waypoints()[-1] == end

    def test_length_accumulates(self):
        path = VirtualPath(start=START)
        path.add_move(MoveCommand("north", 500.0))
        path.add_move(MoveCommand("east", 300.0))
        assert path.length_m() == pytest.approx(800.0, rel=1e-4)

    def test_len_counts_moves(self):
        path = VirtualPath(start=START)
        path.add_move(MoveCommand("north", 500.0))
        assert len(path) == 1


class TestSpiralPath:
    def test_step_count(self):
        path = spiral_path(START, steps=25)
        assert len(path) == 25
        assert len(path.waypoints()) == 26

    def test_first_move_is_north(self):
        path = spiral_path(START, steps=3)
        first, second = path.waypoints()[0], path.waypoints()[1]
        assert initial_bearing_deg(first, second) == pytest.approx(0.0, abs=0.5)

    def test_right_turning_sequence(self):
        # Square spiral leg pattern: N, E, S, S, W, W, N, N, N ...
        path = spiral_path(START, steps=4)
        points = path.waypoints()
        bearings = [
            initial_bearing_deg(points[i], points[i + 1]) for i in range(4)
        ]
        assert bearings[0] == pytest.approx(0.0, abs=0.5)  # north
        assert bearings[1] == pytest.approx(90.0, abs=0.5)  # right turn: east
        assert bearings[2] == pytest.approx(180.0, abs=0.5)  # south
        assert bearings[3] == pytest.approx(180.0, abs=0.5)  # south again

    def test_left_turning_variant(self):
        path = spiral_path(START, steps=2, turn="left")
        points = path.waypoints()
        assert initial_bearing_deg(points[1], points[2]) == pytest.approx(
            270.0, abs=0.5
        )

    def test_step_size_in_degrees(self):
        # The north step covers 0.005 degrees of latitude ~ 556 m.
        path = spiral_path(START, steps=1, step_deg=0.005)
        step_m = haversine_m(*path.waypoints()[:2])
        assert step_m == pytest.approx(
            0.005 * meters_per_degree_latitude(), rel=0.01
        )

    def test_lat_lon_step_asymmetry(self):
        # §3.3: equal degree steps give ~550 m north/south, ~450 m
        # east/west at Albuquerque's latitude.
        path = spiral_path(START, steps=2, step_deg=0.005)
        points = path.waypoints()
        north_step = haversine_m(points[0], points[1])
        east_step = haversine_m(points[1], points[2])
        assert north_step > east_step
        assert east_step == pytest.approx(455, abs=15)

    def test_spiral_expands_outward(self):
        path = spiral_path(START, steps=30)
        final = path.waypoints()[-1]
        assert haversine_m(START, final) > 500.0

    def test_invalid_inputs(self):
        with pytest.raises(GeoError):
            spiral_path(START, steps=-1)
        with pytest.raises(GeoError):
            spiral_path(START, steps=5, step_deg=0.0)
        with pytest.raises(GeoError):
            spiral_path(START, steps=5, turn="around")
        with pytest.raises(GeoError):
            spiral_path(START, steps=5, initial_direction="up")


class TestDrift:
    def test_zero_for_identical_paths(self):
        points = [START, GeoPoint(35.07, -106.62)]
        assert drift_m(points, points) == 0.0

    def test_mean_of_offsets(self):
        intended = [GeoPoint(0.0, 0.0), GeoPoint(1.0, 0.0)]
        actual = [GeoPoint(0.0, 0.0), GeoPoint(1.001, 0.0)]
        expected = haversine_m(intended[1], actual[1]) / 2.0
        assert drift_m(intended, actual) == pytest.approx(expected)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(GeoError):
            drift_m([START], [])

    def test_empty_paths(self):
        assert drift_m([], []) == 0.0
