"""docs/DURABILITY.md is executable documentation.

Two-way parity between the doc's metric table and the metrics the
durable layer actually registers when fully exercised (WAL write +
replay with a torn tail, snapshot write + load, worker crash +
recovery), plus a guard that the durable families stay *out* of the
plain ``repro metrics`` workload — the OBSERVABILITY.md catalogue must
not grow when this subsystem ships.
"""

import re
from pathlib import Path

import pytest

from repro.analysis.detection import DetectorConfig
from repro.durable.snapshot import SnapshotStore
from repro.durable.wal import WalReader, WalWriter
from repro.durable.worker import DetectorWorker, RecoveryCoordinator
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.points import POINT_DURABLE_WORKER
from repro.geo.coordinates import GeoPoint
from repro.obs.metrics import MetricsRegistry
from repro.stream.detectors import StreamDetectorConfig
from repro.stream.events import CheckInAccepted

DOCS = Path(__file__).resolve().parent.parent / "docs"

DURABLE_PREFIXES = ("repro_wal_", "repro_snapshot_", "repro_durable_")


def _checkins(count):
    return [
        CheckInAccepted(
            seq, float(seq) * 60.0, user_id=seq % 5, venue_id=seq % 3,
            venue_location=GeoPoint(40.0, -74.0),
            reported_location=GeoPoint(40.0, -74.0),
            checkin_id=seq, points=3,
        )
        for seq in range(count)
    ]


@pytest.fixture(scope="module")
def doc_text():
    return (DOCS / "DURABILITY.md").read_text()


@pytest.fixture(scope="module")
def registered_names(tmp_path_factory):
    """Every metric the durable layer registers when exercised."""
    root = tmp_path_factory.mktemp("durable-docs")
    metrics = MetricsRegistry()
    events = _checkins(30)

    # WAL: write, tear the tail, replay tolerantly.
    wal_dir = root / "wal"
    with WalWriter(wal_dir, metrics=metrics) as writer:
        for event in events:
            writer.append(event)
    segment = sorted(wal_dir.glob("*.wal"))[-1]
    segment.write_bytes(segment.read_bytes()[:-3])
    WalReader(wal_dir, metrics=metrics).read_all()

    # Worker: apply, snapshot, injected crash, coordinated recovery.
    config = DetectorConfig(min_total_checkins=10)
    stream_config = StreamDetectorConfig(max_users=64, max_venues=64)
    plan = FaultPlan(seed=3).add(
        FaultSpec(
            point=POINT_DURABLE_WORKER,
            probability=1.0,
            max_fires=1,
            only_labels=("partition-00",),
        )
    )
    worker = DetectorWorker(
        0,
        root / "shards",
        config=config,
        stream_config=stream_config,
        snapshot_every=10,
        metrics=metrics,
        faults=FaultInjector(plan),
    )
    for event in events:
        worker.on_event(event)  # first applied event crashes the worker
    assert worker.crashed
    worker.recover()
    worker.close()

    # Snapshot store: direct write + checksum-verified load.
    store = SnapshotStore(root / "snaps", metrics=metrics)
    store.write(worker.ledger, seq=events[-1].seq)
    store.load(events[-1].seq)

    return {
        name
        for name in metrics.names()
        if name.startswith(DURABLE_PREFIXES)
    }


class TestMetricCatalogueParity:
    def documented_metrics(self, doc_text):
        names = set()
        for line in doc_text.splitlines():
            match = re.match(r"\| `(repro_[a-z0-9_]+)`", line)
            if match:
                names.add(match.group(1))
        return names

    def test_every_registered_metric_is_documented(
        self, doc_text, registered_names
    ):
        missing = registered_names - self.documented_metrics(doc_text)
        assert not missing, (
            f"durable metrics registered but absent from "
            f"docs/DURABILITY.md: {sorted(missing)}"
        )

    def test_every_documented_metric_is_registered(
        self, doc_text, registered_names
    ):
        stale = self.documented_metrics(doc_text) - registered_names
        assert not stale, (
            f"metrics documented in docs/DURABILITY.md but never "
            f"registered by the durable layer: {sorted(stale)}"
        )

    def test_all_three_families_covered(self, registered_names):
        for prefix in DURABLE_PREFIXES:
            assert any(
                name.startswith(prefix) for name in registered_names
            ), prefix


class TestDocAnchors:
    """The load-bearing claims the doc makes must stay true by name."""

    def test_failure_point_is_cross_referenced(self, doc_text):
        assert "`durable.worker`" in doc_text
        assert "RESILIENCE.md" in doc_text

    def test_record_format_constants_match_code(self, doc_text):
        from repro.durable.wal import MAX_RECORD_BYTES, SEGMENT_MAGIC

        assert SEGMENT_MAGIC.decode() in doc_text
        assert MAX_RECORD_BYTES == 1 << 20  # the documented 1 MiB cap

    def test_snapshot_version_matches_code(self, doc_text):
        from repro.durable.snapshot import SNAPSHOT_VERSION

        assert f'"version": {SNAPSHOT_VERSION}' in doc_text

    def test_cli_verbs_documented(self, doc_text):
        assert "repro snapshot" in doc_text
        assert "repro wal-replay --verify" in doc_text

    def test_coordinator_is_part_of_the_story(self, doc_text):
        assert RecoveryCoordinator.__name__ in doc_text


class TestNoLeakIntoObservabilityCatalogue:
    def test_plain_metrics_workload_registers_no_durable_metrics(self):
        """The OBSERVABILITY.md parity fixture must stay durable-free."""
        from repro.cli import run_metrics_workload

        registry, _, _ = run_metrics_workload(scale=0.0002, seed=5)
        leaked = {
            name
            for name in registry.names()
            if name.startswith(DURABLE_PREFIXES)
        }
        assert not leaked, (
            f"durable metrics leaked into the plain metrics workload "
            f"(this breaks the OBSERVABILITY.md catalogue): {sorted(leaked)}"
        )
