"""Tests for the Fig 4.2 analysis (badges vs check-ins, the extreme club)."""

import pytest

from repro.analysis.reward_rate import (
    badges_vs_total_curve,
    extreme_club,
    low_reward_users,
)
from repro.crawler.database import CrawlDatabase
from repro.crawler.parser import ParsedUser, ParsedVenue
from repro.errors import ReproError


def seed_db(entries, mayor_of=None):
    """entries: (user_id, total_checkins, total_badges) triples."""
    db = CrawlDatabase()
    for user_id, total, badges in entries:
        db.upsert_user(
            ParsedUser(
                user_id=user_id,
                display_name=f"U{user_id}",
                username=None,
                home_city="",
                total_checkins=total,
                total_badges=badges,
                points=0,
            )
        )
    venue_id = 0
    for user_id in mayor_of or []:
        venue_id += 1
        db.upsert_venue(
            ParsedVenue(
                venue_id=venue_id,
                name=f"V{venue_id}",
                address="",
                city="",
                latitude=35.0,
                longitude=-106.0,
                checkins_here=1,
                unique_visitors=1,
                mayor_id=user_id,
                special=None,
                special_mayor_only=False,
            )
        )
    db.recompute_derived()
    return db


class TestBadgeCurve:
    def test_bucket_averaging(self):
        db = seed_db([(1, 50, 4), (2, 60, 6), (3, 500, 30)])
        curve = badges_vs_total_curve(db, bucket_width=100)
        assert curve[0].average_badges == pytest.approx(5.0)
        assert curve[0].users == 2

    def test_invalid_bucket(self):
        with pytest.raises(ReproError):
            badges_vs_total_curve(seed_db([]), bucket_width=0)

    def test_fig42_rising_then_cheater_dip(self, world, crawl_db):
        """Honest users' badges rise with check-ins; the caught-cheater
        personas sit at huge totals with almost no badges."""
        curve = badges_vs_total_curve(crawl_db, bucket_width=50)
        low = next(p for p in curve if p.total_checkins < 100)
        mid = [p for p in curve if 100 <= p.total_checkins <= 600]
        assert mid
        assert max(p.average_badges for p in mid) > low.average_badges

        caught_ids = {s.user_id for s in world.roster.caught_cheaters}
        for user_id in caught_ids:
            row = crawl_db.user(user_id)
            assert row.total_checkins > 300
            assert row.total_badges < 20


class TestLowRewardUsers:
    def test_finds_heavy_badgeless_accounts(self):
        db = seed_db([(1, 2_000, 2), (2, 2_000, 60), (3, 100, 0)])
        rows = low_reward_users(db, min_total=1_000, max_badges=10)
        assert [u.user_id for u in rows] == [1]

    def test_sorted_by_total_descending(self):
        db = seed_db([(1, 1_500, 1), (2, 3_000, 1)])
        rows = low_reward_users(db)
        assert [u.user_id for u in rows] == [2, 1]

    def test_world_caught_cheaters_detected(self, world, crawl_db):
        rows = low_reward_users(crawl_db, min_total=300, max_badges=15)
        found = {u.user_id for u in rows}
        for spec in world.roster.caught_cheaters:
            assert spec.user_id in found


class TestExtremeClub:
    def test_two_groups_split_by_mayorships(self):
        db = seed_db(
            [(1, 6_000, 80), (2, 7_000, 3), (3, 100, 5)],
            mayor_of=[1, 1, 1],
        )
        club = extreme_club(db, min_total=5_000)
        assert club.size == 2
        assert [u.user_id for u in club.with_mayorships] == [1]
        assert [u.user_id for u in club.without_mayorships] == [2]

    def test_sorted_by_total(self):
        db = seed_db([(1, 6_000, 1), (2, 9_000, 1)])
        club = extreme_club(db, min_total=5_000)
        assert [u.user_id for u in club.members] == [2, 1]

    def test_world_club_structure(self, world, crawl_db):
        """§4.2: heavy accounts split into mayored power users and
        near-mayorless caught cheaters (persona volumes are scaled down in
        the test world, so the groups are compared directly rather than
        through the absolute 5000-check-in threshold)."""
        power_ids = {s.user_id for s in world.roster.power_users}
        caught_ids = {s.user_id for s in world.roster.caught_cheaters}
        # Power users hold far more mayorships than any caught cheater.
        min_power = min(crawl_db.user(uid).total_mayors for uid in power_ids)
        max_caught = max(crawl_db.user(uid).total_mayors for uid in caught_ids)
        assert min_power > 3 * max_caught
        assert min_power >= 10  # "mayor of tens of venues"
        # ...and far more badges per check-in.
        def badge_rate(uid):
            row = crawl_db.user(uid)
            return row.total_badges / max(1, row.total_checkins)

        assert min(badge_rate(uid) for uid in power_ids) > 2 * max(
            badge_rate(uid) for uid in caught_ids
        )

    def test_full_activity_club_is_persona_only(self):
        """At full persona activity the >=5000 club is exactly the 11
        injected accounts, split 6 / 5 by mayorships as in §4.2."""
        from repro.crawler import crawl_full_site
        from repro.workload import build_world, build_web_stack

        # Tiny organic world, full-volume personas.
        world = build_world(scale=0.0002, seed=99, persona_activity=1.0)
        stack = build_web_stack(world)
        database, _, _ = crawl_full_site(
            stack.transport, [stack.network.create_egress()]
        )
        club = extreme_club(database, min_total=5_000)
        assert club.size == 11
        assert len(club.with_mayorships) == 6
        assert len(club.without_mayorships) == 5
        caught_ids = {s.user_id for s in world.roster.caught_cheaters}
        assert {u.user_id for u in club.without_mayorships} == caught_ids
        # The top account is the 12,500-check-in caught cheater.
        assert club.members[0].user_id in caught_ids
