"""Unit tests for :mod:`repro.faults`: plans, injector, retry, breaker.

The chaos suite (tests/chaos/) proves the *system-level* contracts;
these tests pin the primitives one behavior at a time.
"""

import random

import pytest

from repro.errors import (
    BreakerOpenError,
    FaultInjectedError,
    HttpError,
    PermanentError,
    TimeoutExceededError,
    TransientError,
)
from repro.faults import (
    FAILURE_POINTS,
    BackoffPolicy,
    BreakerState,
    CircuitBreaker,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    RetryPolicyError,
    Timeout,
    default_classify,
    retry_call,
)
from repro.obs.log import LogHub
from repro.obs.metrics import MetricsRegistry
from repro.simnet.clock import SimClock

POINT = "crawler.fetch"


def make_injector(*specs, seed=0, clock=None, metrics=None, log=None):
    plan = FaultPlan(seed=seed)
    for spec in specs:
        plan.add(spec)
    return FaultInjector(plan, clock=clock, metrics=metrics, log=log)


class TestFaultSpecValidation:
    def test_probability_out_of_range(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(point=POINT, probability=1.5)
        with pytest.raises(FaultPlanError):
            FaultSpec(point=POINT, probability=-0.1)

    def test_empty_point_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(point="", probability=0.5)

    def test_bad_burst_and_latency_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(point=POINT, probability=0.5, burst=0)
        with pytest.raises(FaultPlanError):
            FaultSpec(point=POINT, probability=0.5, latency_s=-1.0)

    def test_specs_are_frozen(self):
        spec = FaultSpec(point=POINT, probability=0.5)
        with pytest.raises(AttributeError):
            spec.probability = 0.9


class TestFaultPlan:
    def test_points_in_first_arming_order(self):
        plan = FaultPlan()
        plan.add(FaultSpec(point="b", probability=0.1))
        plan.add(FaultSpec(point="a", probability=0.1))
        plan.add(FaultSpec(point="b", probability=0.2))
        assert plan.points() == ["b", "a"]
        assert len(plan.specs_for("b")) == 2
        assert len(plan) == 3

    def test_spec_seeds_never_alias(self):
        plan = FaultPlan(seed=3)
        plan.add(FaultSpec(point="a", probability=0.1))
        plan.add(FaultSpec(point="a", probability=0.1))
        plan.add(FaultSpec(point="b", probability=0.1))
        seeds = {plan.spec_seed(i) for i in range(3)}
        assert len(seeds) == 3

    def test_standard_storm_covers_the_acceptance_points(self):
        plan = FaultPlan.standard_storm()
        assert set(plan.points()) == {
            "crawler.fetch",
            "stream.subscriber",
            "store.commit",
            "web.request",
            "simnet.request",
        }
        assert set(plan.points()) <= set(FAILURE_POINTS)

    def test_standard_storm_omits_disabled_specs(self):
        plan = FaultPlan.standard_storm(
            fetch_failure=0.0, network_latency_probability=0.0
        )
        assert "crawler.fetch" not in plan.points()
        assert "simnet.request" not in plan.points()


class TestInjectorDeterminism:
    SPEC = FaultSpec(point=POINT, probability=0.3)

    def drive(self, injector, checks=200):
        fired = []
        for index in range(checks):
            if injector.decide(POINT) is not None:
                fired.append(index)
        return fired

    def test_same_seed_same_decisions(self):
        a = self.drive(make_injector(self.SPEC, seed=11))
        b = self.drive(make_injector(self.SPEC, seed=11))
        assert a == b
        assert a  # 0.3 over 200 checks certainly fires

    def test_same_seed_same_digest(self):
        first = make_injector(self.SPEC, seed=11)
        second = make_injector(self.SPEC, seed=11)
        self.drive(first)
        self.drive(second)
        assert first.sequence_digest() == second.sequence_digest()

    def test_different_seed_different_decisions(self):
        a = self.drive(make_injector(self.SPEC, seed=11))
        b = self.drive(make_injector(self.SPEC, seed=12))
        assert a != b

    def test_points_do_not_interfere(self):
        """Checks at one point never advance another point's stream."""
        other = FaultSpec(point="web.request", probability=0.5)
        lone = self.drive(make_injector(self.SPEC, seed=11))
        mixed_injector = make_injector(self.SPEC, other, seed=11)
        fired = []
        for index in range(200):
            mixed_injector.decide("web.request")
            if mixed_injector.decide(POINT) is not None:
                fired.append(index)
        assert fired == lone

    def test_unknown_point_is_clean_and_free(self):
        injector = make_injector(self.SPEC, seed=1)
        assert injector.decide("no.such.point") is None
        assert injector.checks_at(POINT) == 0


class TestInjectorMechanics:
    def test_burst_fires_consecutively(self):
        injector = make_injector(
            FaultSpec(point=POINT, probability=0.05, burst=4), seed=5
        )
        fired = [
            injector.decide(POINT) is not None for _ in range(400)
        ]
        runs = []
        run = 0
        for hit in fired:
            if hit:
                run += 1
            elif run:
                runs.append(run)
                run = 0
        if run:
            runs.append(run)
        assert runs  # the storm fired at least once
        assert all(length % 4 == 0 for length in runs)

    def test_burst_decisions_flagged(self):
        injector = make_injector(
            FaultSpec(point=POINT, probability=0.05, burst=3), seed=5
        )
        decisions = [injector.decide(POINT) for _ in range(400)]
        fresh = [d for d in decisions if d is not None and not d.from_burst]
        follow = [d for d in decisions if d is not None and d.from_burst]
        assert fresh and follow
        assert len(follow) == 2 * len(fresh)

    def test_max_fires_caps_without_shifting_the_stream(self):
        unlimited = make_injector(
            FaultSpec(point=POINT, probability=0.3), seed=9
        )
        capped = make_injector(
            FaultSpec(point=POINT, probability=0.3, max_fires=3), seed=9
        )
        unlimited_fires = []
        capped_fires = []
        for index in range(300):
            if unlimited.decide(POINT) is not None:
                unlimited_fires.append(index)
            if capped.decide(POINT) is not None:
                capped_fires.append(index)
        assert capped_fires == unlimited_fires[:3]

    def test_only_labels_targets_one_caller(self):
        injector = make_injector(
            FaultSpec(
                point=POINT, probability=1.0, only_labels=("victim",)
            ),
            seed=2,
        )
        assert injector.decide(POINT, label="bystander") is None
        assert injector.decide(POINT, label=None) is None
        decision = injector.decide(POINT, label="victim")
        assert decision is not None

    def test_disarm_does_not_advance_streams(self):
        spec = FaultSpec(point=POINT, probability=0.3)
        control = make_injector(spec, seed=7)
        paused = make_injector(spec, seed=7)
        control_fires = [
            i for i in range(100) if control.decide(POINT) is not None
        ]
        paused.disarm()
        for _ in range(1000):  # invisible to the decision stream
            paused.decide(POINT)
        assert paused.checks_at(POINT) == 0
        paused.arm()
        paused_fires = [
            i for i in range(100) if paused.decide(POINT) is not None
        ]
        assert paused_fires == control_fires

    def test_check_raises_typed_error(self):
        injector = make_injector(
            FaultSpec(point=POINT, probability=1.0), seed=0
        )
        with pytest.raises(FaultInjectedError) as excinfo:
            injector.check(POINT)
        assert excinfo.value.point == POINT
        assert isinstance(excinfo.value, TransientError)

    def test_check_http_kind_raises_http_error(self):
        injector = make_injector(
            FaultSpec(
                point=POINT,
                probability=1.0,
                kind=FaultKind.HTTP,
                status=503,
            ),
            seed=0,
        )
        with pytest.raises(HttpError) as excinfo:
            injector.check(POINT)
        assert excinfo.value.status == 503

    def test_latency_kind_advances_the_clock(self):
        clock = SimClock()
        injector = make_injector(
            FaultSpec(
                point=POINT,
                probability=1.0,
                kind=FaultKind.LATENCY,
                latency_s=0.25,
            ),
            seed=0,
            clock=clock,
        )
        charged = injector.check(POINT)
        assert charged == 0.25
        assert clock.now() == pytest.approx(0.25)

    def test_metrics_and_log_account_every_fire(self):
        metrics = MetricsRegistry()
        log = LogHub(metrics=metrics)
        injector = make_injector(
            FaultSpec(point=POINT, probability=1.0, max_fires=4),
            seed=0,
            metrics=metrics,
            log=log,
        )
        for _ in range(10):
            injector.decide(POINT)
        family = metrics.get("repro_faults_injected_total")
        fired = sum(child.value for _, child in family.children())
        assert fired == 4
        checks = metrics.get("repro_faults_checks_total")
        assert sum(child.value for _, child in checks.children()) == 10
        assert len(log.records(event="fault.injected")) == 4


class TestTimeout:
    def test_budget_elapses_in_simulated_time(self):
        clock = SimClock()
        timeout = Timeout(5.0, clock.now, op="probe")
        assert not timeout.expired
        assert timeout.remaining() == pytest.approx(5.0)
        clock.advance(4.0)
        assert timeout.remaining() == pytest.approx(1.0)
        clock.advance(2.0)
        assert timeout.expired
        assert timeout.remaining() == 0.0
        with pytest.raises(TimeoutExceededError) as excinfo:
            timeout.ensure()
        assert excinfo.value.op == "probe"

    def test_negative_budget_rejected(self):
        with pytest.raises(RetryPolicyError):
            Timeout(-1.0, SimClock().now)


class TestRetryCall:
    def test_transient_errors_retry_then_succeed(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise FaultInjectedError("x")
            return "done"

        slept = []
        result = retry_call(
            flaky,
            BackoffPolicy(initial_delay_s=1.0, jitter_fraction=0.0),
            sleep=slept.append,
        )
        assert result == "done"
        assert len(calls) == 3
        assert slept == [1.0, 2.0]

    def test_permanent_errors_raise_immediately(self):
        class Refusal(PermanentError, RuntimeError):
            pass

        calls = []

        def refused():
            calls.append(1)
            raise Refusal("no")

        with pytest.raises(Refusal):
            retry_call(refused, BackoffPolicy(max_attempts=5))
        assert len(calls) == 1

    def test_exhaustion_reraises_the_last_error(self):
        def always():
            raise FaultInjectedError("x")

        with pytest.raises(FaultInjectedError):
            retry_call(
                always, BackoffPolicy(max_attempts=3, jitter_fraction=0.0)
            )

    def test_expired_timeout_raises_timeout_error(self):
        clock = SimClock()
        calls = []

        def slow_and_failing():
            calls.append(1)
            clock.advance(0.3)  # the call itself burns budget
            raise FaultInjectedError("x")

        timeout = Timeout(0.5, clock.now, op="fetch")
        with pytest.raises(TimeoutExceededError) as excinfo:
            retry_call(
                slow_and_failing,
                BackoffPolicy(
                    max_attempts=50,
                    initial_delay_s=0.2,
                    jitter_fraction=0.0,
                ),
                sleep=clock.advance,
                timeout=timeout,
            )
        assert excinfo.value.op == "fetch"
        # The budget, not the 50-attempt cap, ended the loop.
        assert len(calls) < 50

    def test_unexpired_but_insufficient_budget_reraises_last_error(self):
        """When the *next* delay would cross the deadline, the loop stops
        early and re-raises the transient error itself."""
        clock = SimClock()

        def always():
            raise FaultInjectedError("x")

        timeout = Timeout(0.5, clock.now, op="fetch")
        with pytest.raises(FaultInjectedError):
            retry_call(
                always,
                BackoffPolicy(
                    max_attempts=50,
                    initial_delay_s=0.4,
                    jitter_fraction=0.0,
                ),
                sleep=clock.advance,
                timeout=timeout,
            )
        assert clock.now() <= 0.5

    def test_custom_classifier_wins(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 2:
                raise ValueError("weird but retryable here")
            return 7

        assert (
            retry_call(
                flaky,
                BackoffPolicy(jitter_fraction=0.0),
                classify=lambda e: isinstance(e, ValueError),
            )
            == 7
        )
        assert len(calls) == 2

    def test_default_classify_is_the_transient_marker(self):
        assert default_classify(FaultInjectedError("p"))
        assert default_classify(BreakerOpenError("b"))
        assert not default_classify(ValueError("v"))

    def test_metrics_count_attempts_and_recoveries(self):
        metrics = MetricsRegistry()
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise FaultInjectedError("x")
            return True

        retry_call(
            flaky,
            BackoffPolicy(jitter_fraction=0.0),
            metrics=metrics,
            op="unit",
        )
        attempts = metrics.get("repro_retry_attempts_total").labels("unit")
        recoveries = metrics.get(
            "repro_retry_recoveries_total"
        ).labels("unit")
        assert attempts.value == 2
        assert recoveries.value == 1


class TestCircuitBreaker:
    def make(self, **kwargs):
        clock = SimClock()
        defaults = dict(
            name="unit",
            failure_threshold=3,
            reset_timeout_s=10.0,
            now_fn=clock.now,
        )
        defaults.update(kwargs)
        return clock, CircuitBreaker(**defaults)

    def test_opens_at_threshold_not_before(self):
        _, breaker = self.make()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.open_count == 1

    def test_success_resets_the_streak(self):
        _, breaker = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_open_short_circuits_until_the_timer(self):
        clock, breaker = self.make()
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow()
        with pytest.raises(BreakerOpenError):
            breaker.ensure()
        clock.advance(9.999)
        assert not breaker.allow()
        clock.advance(0.002)
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.allow()  # the probe

    def test_half_open_grants_limited_probes(self):
        clock, breaker = self.make(half_open_probes=1)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        assert not breaker.allow()  # second caller refused mid-probe

    def test_probe_failure_reopens_and_rearms_the_timer(self):
        clock, breaker = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.open_count == 2
        clock.advance(9.0)
        assert not breaker.allow()  # timer restarted at the probe failure
        clock.advance(1.0)
        assert breaker.state is BreakerState.HALF_OPEN

    def test_probe_success_closes(self):
        clock, breaker = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_call_wraps_the_protocol(self):
        clock, breaker = self.make(failure_threshold=1)

        def boom():
            raise FaultInjectedError("p")

        with pytest.raises(FaultInjectedError):
            breaker.call(boom)
        with pytest.raises(BreakerOpenError):
            breaker.call(lambda: "never runs")
        clock.advance(10.0)
        assert breaker.call(lambda: "ok") == "ok"
        assert breaker.state is BreakerState.CLOSED

    def test_metrics_track_state_and_transitions(self):
        metrics = MetricsRegistry()
        clock = SimClock()
        breaker = CircuitBreaker(
            name="m",
            failure_threshold=1,
            reset_timeout_s=1.0,
            now_fn=clock.now,
            metrics=metrics,
        )
        breaker.record_failure()
        assert metrics.get("repro_breaker_state").labels("m").value == 1.0
        assert not breaker.allow()
        shorts = metrics.get("repro_breaker_short_circuits_total")
        assert shorts.labels("m").value == 1.0
        clock.advance(1.0)
        _ = breaker.state
        assert metrics.get("repro_breaker_state").labels("m").value == 2.0
        breaker.record_success()
        assert metrics.get("repro_breaker_state").labels("m").value == 0.0
        transitions = metrics.get("repro_breaker_transitions_total")
        entered = {
            labelvalues[1]: child.value
            for labelvalues, child in transitions.children()
        }
        assert entered == {"open": 1.0, "half_open": 1.0, "closed": 1.0}


class TestBackoffPolicyBasics:
    def test_validation(self):
        with pytest.raises(RetryPolicyError):
            BackoffPolicy(max_attempts=0)
        with pytest.raises(RetryPolicyError):
            BackoffPolicy(multiplier=0.5)
        with pytest.raises(RetryPolicyError):
            BackoffPolicy(jitter_fraction=1.0)
        with pytest.raises(RetryPolicyError):
            BackoffPolicy(initial_delay_s=3.0, max_delay_s=1.0)

    def test_base_delays_cap(self):
        policy = BackoffPolicy(
            initial_delay_s=0.1, multiplier=2.0, max_delay_s=0.5
        )
        assert policy.base_delay(1) == pytest.approx(0.1)
        assert policy.base_delay(2) == pytest.approx(0.2)
        assert policy.base_delay(3) == pytest.approx(0.4)
        assert policy.base_delay(4) == pytest.approx(0.5)
        assert policy.base_delay(10) == pytest.approx(0.5)

    def test_schedule_respects_total_budget(self):
        policy = BackoffPolicy(
            max_attempts=10,
            initial_delay_s=1.0,
            max_delay_s=16.0,
            jitter_fraction=0.0,
            max_total_delay_s=5.0,
        )
        schedule = policy.schedule()
        assert schedule == [1.0, 2.0]  # 1 + 2 fits; +4 would cross 5
        assert sum(schedule) <= 5.0

    def test_jitter_is_seeded(self):
        policy = BackoffPolicy(jitter_fraction=0.5)
        a = policy.schedule(random.Random(3))
        b = policy.schedule(random.Random(3))
        assert a == b
