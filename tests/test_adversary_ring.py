"""Ring coordinator: convoy planning, determinism, and cheater-safety.

The ring's whole design goal is to be *invisible to per-user rules*: a
leader schedule already safe under the thesis cheater code, plus
constant per-follower offsets that preserve every inter-venue interval.
These tests assert that structure — deterministic seeded plans, offsets
strictly inside the witness window, perfect naive corroboration, and a
fully undetected execution against the real service.
"""

import pytest

from repro.adversary.ring import (
    MAX_RING_ACCOUNTS,
    MIN_RING_ACCOUNTS,
    RingConfig,
    RingCoordinator,
)
from repro.attack.targeting import TargetVenue
from repro.errors import ReproError
from repro.geo.coordinates import GeoPoint
from repro.lbsn.models import VenueCategory
from repro.lbsn.service import LbsnService


def build_board(venues: int = 6):
    """A small service plus a target list over its venues."""
    service = LbsnService()
    targets = []
    for index in range(venues):
        venue = service.create_venue(
            name=f"Target {index}",
            location=GeoPoint(35.0844 + index * 0.01, -106.6504),
            category=VenueCategory.BAR,
        )
        targets.append(
            TargetVenue(
                venue_id=venue.venue_id,
                name=venue.name,
                latitude=venue.location.latitude,
                longitude=venue.location.longitude,
                special=None,
                reason="test",
            )
        )
    return service, targets


class TestRingShape:
    def test_ring_size_bounds_enforced(self):
        service, _ = build_board()
        for bad in (MIN_RING_ACCOUNTS - 1, MAX_RING_ACCOUNTS + 1):
            with pytest.raises(ReproError):
                RingCoordinator(service, RingConfig(accounts=bad))

    def test_boundary_sizes_allowed(self):
        service, _ = build_board()
        RingCoordinator(service, RingConfig(accounts=MIN_RING_ACCOUNTS))
        RingCoordinator(service, RingConfig(accounts=MAX_RING_ACCOUNTS))

    def test_one_shared_device_many_accounts(self):
        service, _ = build_board()
        ring = RingCoordinator(service, RingConfig(accounts=4, seed=3))
        assert len(ring.users) == 4
        assert len(set(ring.user_ids)) == 4
        # Every client app is installed on the SAME emulator: one
        # device, one console, one egress IP.
        assert len({id(ch.emulator) for ch in ring.channels}) == 1
        assert ring.device_ip == "203.0.113.4"

    def test_device_ip_is_seed_stable(self):
        service, _ = build_board()
        one = RingCoordinator(service, RingConfig(accounts=2, seed=9))
        two = RingCoordinator(service, RingConfig(accounts=2, seed=9))
        assert one.device_ip == two.device_ip


class TestPlanning:
    def test_plan_requires_targets(self):
        service, _ = build_board()
        ring = RingCoordinator(service, RingConfig(accounts=3))
        with pytest.raises(ReproError):
            ring.plan([])

    def test_offsets_lead_then_ascend_inside_window(self):
        service, targets = build_board()
        config = RingConfig(accounts=5, seed=7, witness_window_s=120.0)
        ring = RingCoordinator(service, config)
        schedule = ring.plan(targets)
        assert schedule.offsets[0] == 0.0
        assert schedule.offsets == sorted(schedule.offsets)
        assert len(set(schedule.offsets)) == len(schedule.offsets)
        assert all(o < config.witness_window_s for o in schedule.offsets)

    def test_every_account_fires_at_every_stop(self):
        service, targets = build_board(venues=5)
        ring = RingCoordinator(service, RingConfig(accounts=3, seed=1))
        schedule = ring.plan(targets)
        assert schedule.stops == 5
        assert len(schedule) == 5 * 3
        for venue_id in schedule.venue_ids:
            hitters = {
                e.account_index
                for e in schedule.entries
                if e.venue_id == venue_id
            }
            assert hitters == {0, 1, 2}

    def test_entries_in_global_firing_order(self):
        service, targets = build_board()
        ring = RingCoordinator(service, RingConfig(accounts=4, seed=2))
        schedule = ring.plan(targets)
        fire_ats = [e.fire_at for e in schedule.entries]
        assert fire_ats == sorted(fire_ats)

    def test_constant_offsets_preserve_leader_intervals(self):
        # The cheater-safety argument in one assertion: each follower's
        # consecutive-stop gaps equal the leader's, so a leader schedule
        # inside the cheater-code envelope keeps every account inside it.
        service, targets = build_board()
        ring = RingCoordinator(service, RingConfig(accounts=4, seed=5))
        schedule = ring.plan(targets)

        def gaps(account_index):
            times = sorted(
                e.fire_at
                for e in schedule.entries
                if e.account_index == account_index
            )
            return [
                round(b - a, 6) for a, b in zip(times, times[1:])
            ]

        leader_gaps = gaps(0)
        for follower in range(1, 4):
            assert gaps(follower) == leader_gaps

    def test_schedule_is_a_pure_function_of_targets_and_seed(self):
        service, targets = build_board()
        ring_a = RingCoordinator(service, RingConfig(accounts=4, seed=11))
        ring_b = RingCoordinator(service, RingConfig(accounts=4, seed=11))
        assert (
            ring_a.plan(targets).digest() == ring_b.plan(targets).digest()
        )
        ring_c = RingCoordinator(service, RingConfig(accounts=4, seed=12))
        assert (
            ring_a.plan(targets).digest() != ring_c.plan(targets).digest()
        )


class TestCorroborationAndExecution:
    def test_naive_proximity_check_fully_corroborates_the_convoy(self):
        # The check the ring is built to beat: >= 2 distinct accounts
        # within the witness window and radius at every stop.
        service, targets = build_board()
        ring = RingCoordinator(service, RingConfig(accounts=3, seed=4))
        schedule = ring.plan(targets)
        assert ring.corroboration(schedule) == 1.0

    def test_execute_sweeps_undetected(self):
        # No honeypots on the board: the per-user cheater code alone
        # must catch nothing — that is the gap the honeypot tier closes.
        service, targets = build_board()
        ring = RingCoordinator(service, RingConfig(accounts=3, seed=8))
        report = ring.execute(ring.plan(targets))
        assert report.attempts == len(targets) * 3
        assert report.detected == 0
        assert report.rewarded == report.attempts
        assert report.corroboration == 1.0
        assert report.schedule_digest
        assert report.user_ids == ring.user_ids
        assert report.device_ip == ring.device_ip

    def test_execute_advances_the_shared_clock(self):
        service, targets = build_board()
        ring = RingCoordinator(service, RingConfig(accounts=2, seed=6))
        schedule = ring.plan(targets)
        ring.execute(schedule)
        last = max(e.fire_at for e in schedule.entries)
        assert service.clock.now() == pytest.approx(last)
