"""Unit tests for the four spoofing channels (§3.1) — the E1 experiment.

Every channel must pass GPS verification for a check-in thousands of miles
from the attacker's real position, and the outcomes must be identical in
the service's eyes: the root cause is that the server trusts the reported
coordinates, whatever layer produced them.
"""

import pytest

from repro.attack.spoofing import (
    ApiHookSpoofer,
    BluetoothSpoofer,
    GpsModuleSpoofer,
    ServerApiSpoofer,
    SpoofOutcome,
    build_emulator_attacker,
)
from repro.device.client_app import LbsnClientApp
from repro.device.emulator import Device
from repro.geo.coordinates import GeoPoint
from repro.lbsn.api import LbsnApiServer
from repro.lbsn.models import CheckInStatus
from repro.lbsn.service import LbsnService
from repro.simnet.http import HttpTransport, Router
from repro.simnet.network import Network

ABQ = GeoPoint(35.0844, -106.6504)  # the attacker's real location
SF = GeoPoint(37.8080, -122.4177)  # Fisherman's Wharf


@pytest.fixture
def service_with_wharf():
    service = LbsnService()
    wharf = service.create_venue(
        "Fisherman's Wharf Sign", SF, city="San Francisco, CA"
    )
    return service, wharf


def make_device_channel(service, channel_class):
    user = service.register_user("Attacker")
    device = Device(service.clock, ABQ, gps_seed=2)
    app = LbsnClientApp(service, device.location_api, user.user_id)
    return user, channel_class(device, app)


class TestChannelOneApiHook:
    def test_remote_checkin_rewarded(self, service_with_wharf):
        service, wharf = service_with_wharf
        user, channel = make_device_channel(service, ApiHookSpoofer)
        channel.set_location(SF)
        outcome = channel.check_in(wharf.venue_id)
        assert outcome.status is CheckInStatus.VALID
        assert outcome.rewarded
        assert outcome.became_mayor

    def test_restore_returns_to_truth(self, service_with_wharf):
        service, wharf = service_with_wharf
        user, channel = make_device_channel(service, ApiHookSpoofer)
        channel.set_location(SF)
        channel.restore()
        outcome = channel.check_in(wharf.venue_id)
        assert outcome.status is CheckInStatus.REJECTED


class TestChannelTwoGpsModule:
    def test_hardware_hack_rewarded(self, service_with_wharf):
        service, wharf = service_with_wharf
        user, channel = make_device_channel(service, GpsModuleSpoofer)
        channel.set_location(SF)
        outcome = channel.check_in(wharf.venue_id)
        assert outcome.rewarded

    def test_bluetooth_simulator_rewarded(self, service_with_wharf):
        service, wharf = service_with_wharf
        user, channel = make_device_channel(service, BluetoothSpoofer)
        channel.set_location(SF)
        outcome = channel.check_in(wharf.venue_id)
        assert outcome.rewarded


class TestChannelThreeServerApi:
    def test_api_checkin_rewarded(self, service_with_wharf):
        service, wharf = service_with_wharf
        user = service.register_user("API Attacker")
        api_server = LbsnApiServer(service)
        router = Router()
        api_server.install_routes(router)
        network = Network(seed=1)
        transport = HttpTransport(router, network)
        egress = network.create_egress()
        token = api_server.tokens.issue(user.user_id)
        channel = ServerApiSpoofer(transport, egress, token)
        channel.set_location(SF)
        outcome = channel.check_in(wharf.venue_id)
        assert outcome.status is CheckInStatus.VALID
        assert outcome.became_mayor
        assert outcome.points > 0

    def test_checkin_without_location_raises(self, service_with_wharf):
        service, wharf = service_with_wharf
        user = service.register_user("API Attacker")
        api_server = LbsnApiServer(service)
        router = Router()
        api_server.install_routes(router)
        network = Network(seed=1)
        transport = HttpTransport(router, network)
        channel = ServerApiSpoofer(
            transport, network.create_egress(), api_server.tokens.issue(user.user_id)
        )
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            channel.check_in(wharf.venue_id)


class TestChannelFourEmulator:
    def test_build_emulator_attacker_end_to_end(self, service_with_wharf):
        service, wharf = service_with_wharf
        user, emulator, channel = build_emulator_attacker(service)
        assert emulator.market_enabled  # recovery image flashed
        channel.set_location(SF)
        outcome = channel.check_in(wharf.venue_id)
        assert outcome.rewarded
        assert outcome.became_mayor

    def test_geo_fix_failure_raises(self, service_with_wharf):
        service, wharf = service_with_wharf
        user, emulator, channel = build_emulator_attacker(service)

        class BrokenConsole:
            def execute(self, command):
                return "KO: console locked"

        emulator.console = BrokenConsole()
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            channel.set_location(SF)


class TestE1FullStory:
    def test_badge_and_mayorship_like_the_thesis(self, service_with_wharf):
        """§3.1's experiment: 10 distinct venues -> Adventurer; 4 daily
        check-ins at Fisherman's Wharf -> mayorship maintained."""
        service, wharf = service_with_wharf
        from repro.geo.distance import destination_point

        venues = [wharf] + [
            service.create_venue(
                f"SF Venue {index}",
                destination_point(SF, index * 36.0, 2_000.0 + index * 120.0),
            )
            for index in range(9)
        ]
        user, emulator, channel = build_emulator_attacker(service)
        earned = []
        for index, venue in enumerate(venues):
            service.clock.advance(1_800.0)
            channel.set_location(venue.location)
            outcome = channel.check_in(venue.venue_id)
            assert outcome.rewarded
            earned.extend(outcome.new_badges)
        assert "Adventurer" in earned

        # Keep checking into the Wharf daily; the crown stays ours.
        for _ in range(4):
            service.clock.advance(86_400.0)
            channel.set_location(SF)
            outcome = channel.check_in(wharf.venue_id)
            assert outcome.rewarded
        assert wharf.mayor_id == user.user_id


class TestSpoofOutcome:
    def test_rewarded_property(self):
        assert SpoofOutcome(status=CheckInStatus.VALID).rewarded
        assert not SpoofOutcome(status=CheckInStatus.FLAGGED).rewarded
        assert not SpoofOutcome(status=CheckInStatus.REJECTED).rewarded
