"""Tests for the metrics registry: kinds, labels, exposition, concurrency."""

import math
import threading

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    MetricError,
    MetricsRegistry,
    default_registry,
)
from repro.obs.metrics import render_labels


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total", "Events.")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("events_total", "Events.")
        with pytest.raises(MetricError):
            counter.inc(-1)

    def test_labeled_children_are_independent(self):
        registry = MetricsRegistry()
        family = registry.counter("hits_total", "Hits.", ("mode",))
        family.labels("user").inc(3)
        family.labels("venue").inc()
        assert family.labels("user").value == 3
        assert family.labels("venue").value == 1

    def test_labels_returns_same_child(self):
        family = MetricsRegistry().counter("c_total", "C.", ("k",))
        assert family.labels("x") is family.labels("x")
        assert family.labels(k="x") is family.labels("x")

    def test_family_level_api_requires_no_labels(self):
        family = MetricsRegistry().counter("c_total", "C.", ("k",))
        with pytest.raises(MetricError):
            family.inc()
        with pytest.raises(MetricError):
            family.child()

    def test_wrong_label_count_rejected(self):
        family = MetricsRegistry().counter("c_total", "C.", ("a", "b"))
        with pytest.raises(MetricError):
            family.labels("only-one")
        with pytest.raises(MetricError):
            family.labels(a="x", wrong="y")


class TestGauge:
    def test_up_down_set(self):
        gauge = MetricsRegistry().gauge("depth", "Depth.")
        gauge.inc(10)
        gauge.dec(3)
        assert gauge.value == 7
        gauge.set(2)
        assert gauge.value == 2

    def test_child_binding_shares_state_with_family(self):
        registry = MetricsRegistry()
        family = registry.gauge("rows", "Rows.")
        child = family.child()
        child.inc(5)
        assert family.value == 5


class TestHistogram:
    def test_observations_land_in_correct_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "lat_seconds", "Latency.", buckets=(0.01, 0.1, 1.0)
        )
        hist.observe(0.005)  # <= 0.01
        hist.observe(0.05)  # <= 0.1
        hist.observe(0.5)  # <= 1.0
        hist.observe(5.0)  # +Inf overflow
        buckets = dict(hist.bucket_counts())
        assert buckets[0.01] == 1
        assert buckets[0.1] == 2
        assert buckets[1.0] == 3
        assert buckets[math.inf] == 4
        assert hist.count == 4
        assert hist.sum == pytest.approx(5.555)

    def test_boundary_value_counts_into_its_bucket(self):
        # Prometheus buckets are `le` (<=): an observation exactly on a
        # bound belongs to that bound's bucket.
        hist = MetricsRegistry().histogram(
            "b_seconds", "B.", buckets=(0.1, 1.0)
        )
        hist.observe(0.1)
        assert dict(hist.bucket_counts())[0.1] == 1

    def test_default_buckets_are_the_shared_latency_shape(self):
        hist = MetricsRegistry().histogram("d_seconds", "D.")
        assert hist.buckets == DEFAULT_LATENCY_BUCKETS

    def test_explicit_inf_bound_is_absorbed(self):
        hist = MetricsRegistry().histogram(
            "i_seconds", "I.", buckets=(1.0, math.inf)
        )
        assert hist.buckets == (1.0,)

    def test_empty_or_duplicate_bounds_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError):
            registry.histogram("x_seconds", "X.", buckets=())
        with pytest.raises(MetricError):
            registry.histogram("y_seconds", "Y.", buckets=(1.0, 1.0))

    def test_concurrent_recording_at_bucket_boundaries(self):
        """8 threads hammering boundary values: totals must be exact."""
        hist = MetricsRegistry().histogram(
            "conc_seconds",
            "Concurrent.",
            buckets=(0.001, 0.01, 0.1),
        )
        per_thread = 2_000
        # Every thread observes each boundary value plus one overflow.
        values = (0.001, 0.01, 0.1, 1.0)

        def hammer():
            for _ in range(per_thread):
                for value in values:
                    hist.observe(value)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        total = 8 * per_thread
        buckets = dict(hist.bucket_counts())
        assert buckets[0.001] == total
        assert buckets[0.01] == 2 * total
        assert buckets[0.1] == 3 * total
        assert buckets[math.inf] == 4 * total
        assert hist.count == 4 * total
        assert hist.sum == pytest.approx(total * sum(values))


class TestConcurrentCounters:
    def test_eight_threads_lose_no_increments(self):
        counter = MetricsRegistry().counter("spin_total", "Spin.")
        per_thread = 25_000

        def spin():
            for _ in range(per_thread):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8 * per_thread


class TestRegistry:
    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("a_total", "A.")
        second = registry.counter("a_total", "different help text")
        assert first is second

    def test_kind_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "A.")
        with pytest.raises(MetricError):
            registry.gauge("a_total", "A.")

    def test_label_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "A.", ("x",))
        with pytest.raises(MetricError):
            registry.counter("a_total", "A.", ("y",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError):
            registry.counter("", "empty")
        with pytest.raises(MetricError):
            registry.counter("1starts_with_digit", "bad")
        with pytest.raises(MetricError):
            registry.counter("has space", "bad")
        with pytest.raises(MetricError):
            registry.counter("ok_total", "bad label", ("le ",))

    def test_names_and_get(self):
        registry = MetricsRegistry()
        registry.gauge("z_gauge", "Z.")
        registry.counter("a_total", "A.")
        assert registry.names() == ["a_total", "z_gauge"]
        assert registry.get("a_total").kind == "counter"
        assert registry.get("missing") is None

    def test_snapshot_reports_values_and_histogram_counts(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "C.", ("k",)).labels("v").inc(2)
        registry.gauge("g", "G.").set(7)
        hist = registry.histogram("h_seconds", "H.")
        hist.observe(0.5)
        hist.observe(0.5)
        snap = registry.snapshot()
        assert snap["c_total"][("v",)] == 2
        assert snap["g"][()] == 7
        assert snap["h_seconds"][()] == 2

    def test_default_registry_is_a_stable_singleton(self):
        assert default_registry() is default_registry()
        assert isinstance(default_registry(), MetricsRegistry)


class TestExposition:
    def test_render_text_counter_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter(
            "reqs_total", "Requests seen.", ("mode",)
        ).labels("user").inc(3)
        registry.gauge("depth", "Queue depth.").set(1.5)
        text = registry.render_text()
        assert "# HELP reqs_total Requests seen.\n" in text
        assert "# TYPE reqs_total counter\n" in text
        assert 'reqs_total{mode="user"} 3\n' in text
        assert "# TYPE depth gauge\n" in text
        assert "depth 1.5\n" in text
        assert text.endswith("\n")

    def test_render_text_histogram_has_cumulative_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "lat_seconds", "Latency.", buckets=(0.1, 1.0)
        )
        hist.observe(0.05)
        hist.observe(0.5)
        text = registry.render_text()
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert "lat_seconds_sum 0.55" in text
        assert "lat_seconds_count 2" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("esc_total", "E.", ("path",)).labels(
            'a"b\\c\nd'
        ).inc()
        text = registry.render_text()
        assert r'esc_total{path="a\"b\\c\nd"} 1' in text

    def test_render_labels_empty_for_no_labels(self):
        assert render_labels((), ()) == ""
        assert render_labels(("a",), ("x",)) == '{a="x"}'

    def test_empty_registry_renders_empty_string(self):
        assert MetricsRegistry().render_text() == ""
