"""Unit tests for the developer API (spoofing channel 3's surface)."""

import pytest

from repro.geo.coordinates import GeoPoint
from repro.lbsn.api import LbsnApiServer, TokenRegistry, parse_kv
from repro.lbsn.service import LbsnService
from repro.simnet.http import HTTP_UNAUTHORIZED, HttpTransport, Router
from repro.simnet.network import Network

ABQ = GeoPoint(35.0844, -106.6504)
SF = GeoPoint(37.8080, -122.4177)


@pytest.fixture
def api():
    service = LbsnService()
    user = service.register_user("Dev User")
    venue = service.create_venue("Wharf Sign", SF, city="San Francisco, CA")
    server = LbsnApiServer(service)
    router = Router()
    server.install_routes(router)
    network = Network(seed=0)
    transport = HttpTransport(router, network)
    egress = network.create_egress()
    token = server.tokens.issue(user.user_id)
    return service, user, venue, server, transport, egress, token


class TestTokens:
    def test_issue_and_resolve(self):
        registry = TokenRegistry()
        token = registry.issue(7)
        assert registry.resolve(token) == 7

    def test_revoke(self):
        registry = TokenRegistry()
        token = registry.issue(7)
        assert registry.revoke(token)
        assert registry.resolve(token) is None
        assert not registry.revoke(token)

    def test_tokens_unique(self):
        registry = TokenRegistry()
        assert registry.issue(1) != registry.issue(1)


class TestParseKv:
    def test_round_trip(self):
        parsed = parse_kv("a=1\nb=two\nignored line\nc=")
        assert parsed == {"a": "1", "b": "two", "c": ""}


class TestCheckinEndpoint:
    def test_spoofed_coordinates_accepted(self, api):
        # The whole point of channel 3: the API trusts request params.
        service, user, venue, server, transport, egress, token = api
        response = transport.post(
            "/api/checkin",
            egress,
            headers={"Authorization": f"Bearer {token}"},
            params={
                "venue_id": str(venue.venue_id),
                "ll_lat": f"{SF.latitude}",
                "ll_lng": f"{SF.longitude}",
            },
        )
        payload = parse_kv(response.body)
        assert payload["status"] == "valid"
        assert int(payload["points"]) > 0
        assert payload["mayor"] == "1"

    def test_unauthorized_without_token(self, api):
        service, user, venue, server, transport, egress, token = api
        response = transport.post(
            "/api/checkin",
            egress,
            params={"venue_id": "1", "ll_lat": "0", "ll_lng": "0"},
        )
        assert response.status == HTTP_UNAUTHORIZED

    def test_oauth_token_param_accepted(self, api):
        service, user, venue, server, transport, egress, token = api
        response = transport.post(
            "/api/checkin",
            egress,
            params={
                "oauth_token": token,
                "venue_id": str(venue.venue_id),
                "ll_lat": f"{SF.latitude}",
                "ll_lng": f"{SF.longitude}",
            },
        )
        assert parse_kv(response.body)["status"] == "valid"

    def test_bad_params_rejected(self, api):
        service, user, venue, server, transport, egress, token = api
        response = transport.post(
            "/api/checkin",
            egress,
            headers={"Authorization": f"Bearer {token}"},
            params={"venue_id": "not-a-number"},
        )
        assert parse_kv(response.body)["status"] == "bad_request"

    def test_unknown_venue_error(self, api):
        service, user, venue, server, transport, egress, token = api
        response = transport.post(
            "/api/checkin",
            egress,
            headers={"Authorization": f"Bearer {token}"},
            params={"venue_id": "9999", "ll_lat": "0", "ll_lng": "0"},
        )
        assert parse_kv(response.body)["status"] == "error"

    def test_gps_mismatch_reported(self, api):
        # Claiming the SF venue with ABQ coordinates fails verification.
        service, user, venue, server, transport, egress, token = api
        response = transport.post(
            "/api/checkin",
            egress,
            headers={"Authorization": f"Bearer {token}"},
            params={
                "venue_id": str(venue.venue_id),
                "ll_lat": f"{ABQ.latitude}",
                "ll_lng": f"{ABQ.longitude}",
            },
        )
        payload = parse_kv(response.body)
        assert payload["status"] == "rejected"
        assert "km from" in payload["warnings"]


class TestVenuesNearEndpoint:
    def test_lists_nearby(self, api):
        service, user, venue, server, transport, egress, token = api
        response = transport.get(
            "/api/venues/near",
            egress,
            params={"ll_lat": f"{SF.latitude}", "ll_lng": f"{SF.longitude}"},
        )
        assert response.body.startswith("count=1")
        assert f"venue={venue.venue_id}|Wharf Sign|" in response.body

    def test_empty_when_remote(self, api):
        service, user, venue, server, transport, egress, token = api
        response = transport.get(
            "/api/venues/near",
            egress,
            params={"ll_lat": "0", "ll_lng": "0"},
        )
        assert response.body.startswith("count=0")
