"""docs/ADVERSARY.md is executable documentation.

Two-way parity between the doc's metric table and the families a fully
exercised :class:`HoneypotRegistry` actually registers, anchor checks
for the load-bearing claims (the visibility law, the pinning contract,
the CLI verb, the E26 entry and cross-links), and a guard that the
honeypot families stay *out* of the plain metrics workload — the
OBSERVABILITY.md catalogue must not grow when the adversary tier is
off.
"""

import re
from pathlib import Path

import pytest

from repro.defense.honeypot import RULE_HONEYPOT, HoneypotRegistry
from repro.geo.coordinates import GeoPoint
from repro.lbsn.service import LbsnService
from repro.obs.metrics import MetricsRegistry
from repro.stream.events import CheckInAccepted

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"

HONEYPOT_PREFIX = "repro_honeypot_"
ABQ = GeoPoint(35.0844, -106.6504)


@pytest.fixture(scope="module")
def doc_text():
    return (DOCS / "ADVERSARY.md").read_text()


@pytest.fixture(scope="module")
def registered_names():
    """Every honeypot family a fully exercised registry registers."""
    registry = MetricsRegistry()
    service = LbsnService()
    for index in range(10):
        service.create_venue(
            name=f"anchor-{index}",
            location=GeoPoint(ABQ.latitude + index * 0.01, ABQ.longitude),
        )
    honeypots = HoneypotRegistry(service, metrics=registry)
    trap = honeypots.seed(density=0.01, seed=1, count=2)[0]
    honeypots.on_event(
        CheckInAccepted(
            seq=1,
            timestamp=0.0,
            user_id=7,
            venue_id=trap,
            venue_location=ABQ,
            reported_location=ABQ,
        )
    )
    return {
        name
        for name in registry.names()
        if name.startswith(HONEYPOT_PREFIX)
    }


def _documented_metrics(doc_text):
    names = set()
    for line in doc_text.splitlines():
        match = re.match(r"\| `(repro_[a-z0-9_]+)`", line)
        if match:
            names.add(match.group(1))
    return names


class TestMetricCatalogueParity:
    def test_every_registered_metric_is_documented(
        self, doc_text, registered_names
    ):
        assert registered_names  # the fixture actually tripped a trap
        missing = registered_names - _documented_metrics(doc_text)
        assert not missing, (
            f"honeypot metrics registered but absent from "
            f"docs/ADVERSARY.md: {sorted(missing)}"
        )

    def test_every_documented_metric_is_registered(
        self, doc_text, registered_names
    ):
        stale = _documented_metrics(doc_text) - registered_names
        assert not stale, (
            f"metrics documented in docs/ADVERSARY.md but never "
            f"registered by an exercised HoneypotRegistry: {sorted(stale)}"
        )

    def test_doc_table_rows_are_honeypot_families_only(self, doc_text):
        """Ledger/bus families belong to OBSERVABILITY.md's table."""
        for name in _documented_metrics(doc_text):
            assert name.startswith(HONEYPOT_PREFIX), name


class TestDocAnchors:
    """The load-bearing claims the doc makes must stay true by name."""

    def test_pin_rule_literal_matches_code(self, doc_text):
        assert RULE_HONEYPOT == "honeypot-venue"
        assert "`RULE_HONEYPOT`" in doc_text

    def test_core_classes_named(self, doc_text):
        for anchor in (
            "`RingCoordinator`",
            "`HoneypotRegistry",
            "`SuspicionLedger",
            "`DefendedLbsnService`",
            "`CheckInScheduler`",
        ):
            assert anchor in doc_text, anchor

    def test_pinning_contract_documented(self, doc_text):
        assert ".pin(" in doc_text or "pin(user_id" in doc_text
        assert "pinned_rule()" in doc_text
        assert "flag_trace_id()" in doc_text
        assert "min_total_checkins" in doc_text

    def test_visibility_law_stated(self, doc_text):
        assert "visibility law" in doc_text
        assert "GeneratedVenues" in doc_text

    def test_cli_verbs_documented(self, doc_text):
        assert "repro adversary" in doc_text
        assert "--verify" in doc_text
        assert "--store-shards" in doc_text

    def test_proof_suites_cross_referenced(self, doc_text):
        for anchor in (
            "tests/test_adversary_ring.py",
            "tests/test_adversary_workload.py",
            "tests/test_stream_ledger_pin.py",
            "benchmarks/bench_e26_adversary.py",
        ):
            assert anchor in doc_text, anchor

    def test_knobs_documented(self, doc_text):
        for knob in (
            "REPRO_E26_SCALE",
            "REPRO_E26_RINGS",
            "REPRO_E26_HONEST",
        ):
            assert knob in doc_text, knob


class TestCrossLinks:
    """The doc web: every surface that should point here does."""

    def test_architecture_links_to_adversary_doc(self):
        text = (DOCS / "ARCHITECTURE.md").read_text()
        assert "docs/ADVERSARY.md" in text
        assert "repro.adversary" in text

    def test_experiments_has_an_e26_entry(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        assert "## E26 " in text
        assert "docs/ADVERSARY.md" in text
        assert "E26_adversary.txt" in text

    def test_design_table_names_the_bench(self):
        text = (REPO / "DESIGN.md").read_text()
        assert "benchmarks/bench_e26_adversary.py" in text
        assert "E26" in text

    def test_readme_lists_the_cli_verb(self):
        text = (REPO / "README.md").read_text()
        assert "repro adversary" in text


class TestNoLeakIntoObservabilityCatalogue:
    def test_plain_metrics_workload_registers_no_honeypot_metrics(self):
        """The OBSERVABILITY.md parity fixture must stay honeypot-free."""
        from repro.cli import run_metrics_workload

        registry, _, _ = run_metrics_workload(scale=0.0002, seed=5)
        leaked = {
            name
            for name in registry.names()
            if name.startswith(HONEYPOT_PREFIX)
        }
        assert not leaked, (
            f"honeypot metrics leaked into the plain metrics workload "
            f"(this breaks the OBSERVABILITY.md catalogue): {sorted(leaked)}"
        )
