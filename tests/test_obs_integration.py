"""End-to-end observability wiring: every instrumented layer exports into
one shared registry, the webserver serves it, and the documentation
catalogue stays in lockstep with what the code actually emits."""

import re
import threading
from pathlib import Path

import pytest

from repro.crawler import crawl_full_site
from repro.crawler.worker import WorkerPool
from repro.geo.coordinates import GeoPoint
from repro.lbsn.models import CheckInStatus
from repro.lbsn.service import RULE_GPS_VERIFICATION, LbsnService
from repro.lbsn.webserver import METRICS_CONTENT_TYPE, LbsnWebServer
from repro.obs import MetricsRegistry
from repro.simnet.http import HttpTransport, Router
from repro.simnet.network import Network
from repro.stream import (
    BackpressurePolicy,
    CheckInAccepted,
    EventBus,
    StreamEvent,
    SuspicionLedger,
)

DOCS = Path(__file__).parent.parent / "docs"

ABQ = GeoPoint(35.0844, -106.6504)
FAR_AWAY = GeoPoint(40.7128, -74.0060)  # NYC, ~3000 km from ABQ


class TestServicePipelineMetrics:
    def test_checkin_outcomes_and_denials_are_counted(self):
        registry = MetricsRegistry()
        service = LbsnService(metrics=registry)
        user = service.register_user("Ann")
        venue = service.create_venue("Cafe", ABQ)

        service.check_in(user.user_id, venue.venue_id, ABQ, timestamp=0.0)
        # Same venue within the hour: rejected by the cheater code.
        service.check_in(user.user_id, venue.venue_id, ABQ, timestamp=60.0)
        # Reported GPS fix thousands of km from the venue: rejected.
        service.check_in(
            user.user_id, venue.venue_id, FAR_AWAY, timestamp=7_200.0
        )

        snap = registry.snapshot()
        assert snap["repro_lbsn_checkins_total"][("valid",)] == 1
        assert snap["repro_lbsn_checkins_total"][("rejected",)] == 2
        denials = snap["repro_lbsn_checkin_denials_total"]
        assert denials[("frequent-checkins",)] == 1
        assert denials[(RULE_GPS_VERIFICATION,)] == 1
        assert snap["repro_lbsn_users_registered_total"][()] == 1
        assert snap["repro_lbsn_venues_created_total"][()] == 1

    def test_every_checkin_runs_under_the_commit_span(self):
        registry = MetricsRegistry()
        service = LbsnService(metrics=registry)
        user = service.register_user("Ann")
        venue = service.create_venue("Cafe", ABQ)
        for hour in range(3):
            service.check_in(
                user.user_id,
                venue.venue_id,
                ABQ,
                timestamp=hour * 7_200.0,
            )
        assert service.tracer.span_count == 3
        family = registry.get("repro_span_seconds")
        assert family.labels("checkin.commit").count == 3

    def test_store_gauges_track_entity_counts(self):
        registry = MetricsRegistry()
        service = LbsnService(metrics=registry)
        for index in range(3):
            service.register_user(f"user-{index}")
        service.create_venue("Cafe", ABQ)
        snap = registry.snapshot()
        assert snap["repro_store_users"][()] == 3
        assert snap["repro_store_venues"][()] == 1

    def test_uninstrumented_service_exports_nothing(self):
        service = LbsnService()
        assert service.metrics is None
        assert service.tracer is None
        user = service.register_user("Ann")
        venue = service.create_venue("Cafe", ABQ)
        result = service.check_in(user.user_id, venue.venue_id, ABQ)
        assert result.checkin.status is CheckInStatus.VALID


class TestWebserverMetricsRoute:
    def _stack(self, registry):
        service = LbsnService(metrics=registry)
        user = service.register_user("Ann")
        venue = service.create_venue("Cafe", ABQ)
        service.check_in(user.user_id, venue.venue_id, ABQ)
        webserver = LbsnWebServer(service)
        router = Router()
        webserver.install_routes(router)
        network = Network(seed=0)
        transport = HttpTransport(router, network)
        return transport, network.create_egress()

    def test_metrics_route_serves_the_service_registry(self):
        registry = MetricsRegistry()
        transport, egress = self._stack(registry)
        response = transport.get("/metrics", egress)
        assert response.ok
        assert response.headers["Content-Type"] == METRICS_CONTENT_TYPE
        assert 'repro_lbsn_checkins_total{status="valid"} 1' in response.body
        assert "# TYPE repro_span_seconds histogram" in response.body

    def test_no_registry_means_no_metrics_route(self):
        service = LbsnService()  # no metrics
        webserver = LbsnWebServer(service)
        router = Router()
        webserver.install_routes(router)
        network = Network(seed=0)
        transport = HttpTransport(router, network)
        response = transport.get("/metrics", network.create_egress())
        assert not response.ok


def make_event(ts=0.0):
    return StreamEvent(seq=-1, timestamp=ts)


class TestBusMetrics:
    def test_published_and_delivered_counters(self):
        registry = MetricsRegistry()
        bus = EventBus(metrics=registry)
        bus.subscribe("sink", lambda event: None)
        for _ in range(10):
            bus.publish(make_event())
        bus.close()
        snap = registry.snapshot()
        assert snap["repro_bus_published_total"][()] == 10
        assert snap["repro_bus_delivered_total"][("sink",)] == 10
        assert snap["repro_bus_dropped_total"][("sink",)] == 0

    def test_reject_policy_drop_accounting_is_exact(self):
        """REJECT: a stalled subscriber refuses overflow, and both the
        in-process stats and the exported counters account for every
        single publish (delivered + dropped == published)."""
        registry = MetricsRegistry()
        gate = threading.Event()
        bus = EventBus(metrics=registry)
        stats = bus.subscribe(
            "stalled",
            lambda event: gate.wait(),
            background=True,
            queue_size=8,
            policy=BackpressurePolicy.REJECT,
        )
        total = 200
        for _ in range(total):
            bus.publish(make_event())
        gate.set()
        assert bus.drain(timeout=30.0)
        bus.close()

        assert stats.dropped > 0  # the queue really overflowed
        assert stats.delivered + stats.dropped == total
        snap = registry.snapshot()
        assert snap["repro_bus_published_total"][()] == total
        assert (
            snap["repro_bus_delivered_total"][("stalled",)]
            == stats.delivered
        )
        assert snap["repro_bus_dropped_total"][("stalled",)] == stats.dropped
        # Fully drained: the queue-depth gauge must read zero again.
        assert snap["repro_bus_queue_depth"][("stalled",)] == 0

    def test_subscriber_errors_are_counted(self):
        registry = MetricsRegistry()
        bus = EventBus(metrics=registry)

        def explode(event):
            raise RuntimeError("subscriber bug")

        bus.subscribe("buggy", explode)
        bus.publish(make_event())
        bus.close()
        snap = registry.snapshot()
        assert snap["repro_bus_subscriber_errors_total"][("buggy",)] == 1
        # Errors still count as delivered (the callback was invoked).
        assert snap["repro_bus_delivered_total"][("buggy",)] == 1


def accepted(user_id, venue_id, ts, where=ABQ, badges=0):
    return CheckInAccepted(
        seq=-1,
        timestamp=ts,
        user_id=user_id,
        venue_id=venue_id,
        venue_location=where,
        reported_location=where,
        new_badge_count=badges,
    )


class TestLedgerMetrics:
    def test_scored_events_and_suspects_exported(self):
        from repro.analysis.detection import DetectorConfig

        registry = MetricsRegistry()
        ledger = SuspicionLedger(
            DetectorConfig(min_total_checkins=20), metrics=registry
        )
        for index in range(25):
            ledger.on_event(accepted(1, index, ts=float(index), badges=2))
        snap = registry.snapshot()
        assert snap["repro_ledger_checkins_scored_total"][()] == 25
        scored = snap["repro_stream_events_scored_total"]
        assert scored[("activity",)] == 25
        assert scored[("reward",)] == 25
        assert scored[("geo",)] == 25
        if ledger.is_suspect(1):
            assert snap["repro_ledger_flags_raised_total"][()] >= 1
            assert snap["repro_ledger_suspects"][()] == len(ledger)


class TestCrawlerMetrics:
    def _site_transport(self):
        service = LbsnService()
        user = service.register_user("Ann", username="ann")
        venue = service.create_venue("Cafe", ABQ)
        service.check_in(user.user_id, venue.venue_id, ABQ)
        webserver = LbsnWebServer(service)
        router = Router()
        webserver.install_routes(router)
        network = Network(seed=0)
        return HttpTransport(router, network), network

    def test_crawl_exports_pages_and_throughput(self):
        registry = MetricsRegistry()
        transport, network = self._site_transport()
        database, user_stats, venue_stats = crawl_full_site(
            transport,
            [network.create_egress()],
            user_threads_per_machine=2,
            venue_threads_per_machine=2,
            metrics=registry,
        )
        snap = registry.snapshot()
        pages = snap["repro_crawler_pages_fetched_total"]
        assert pages[("user", "hit")] == user_stats.hits
        assert pages[("venue", "hit")] == venue_stats.hits
        assert pages[("user", "miss")] == user_stats.misses
        # The fetch histogram saw every page attempt.
        fetches = snap["repro_crawler_fetch_seconds"][()]
        assert fetches == user_stats.pages_fetched + venue_stats.pages_fetched
        # Per-thread attempt counters cover all attempts.
        thread_pages = snap["repro_crawler_thread_pages_total"]
        assert sum(thread_pages.values()) == fetches
        # Throughput gauges were published for both passes.
        throughput = snap["repro_crawler_pages_per_second"]
        assert throughput[("user",)] > 0
        assert throughput[("venue",)] > 0

    def test_worker_pool_counts_outcomes(self):
        registry = MetricsRegistry()
        outcomes = [True, True, False, True, False]

        def work():
            if not outcomes:
                return None
            return outcomes.pop()

        pool = WorkerPool(work, threads=2, metrics=registry)
        stats = pool.run()
        assert stats.processed == 5
        assert stats.failed == 2
        snap = registry.snapshot()
        items = snap["repro_crawler_worker_items_total"]
        assert items[("ok",)] == 3
        assert items[("failed",)] == 2


class TestCatalogueParity:
    """docs/OBSERVABILITY.md must name exactly the metrics the code emits."""

    @pytest.fixture(scope="class")
    def emitted_names(self):
        from repro.cli import run_metrics_workload

        registry, _, _ = run_metrics_workload(scale=0.0002, seed=5)
        return set(registry.names())

    @pytest.fixture(scope="class")
    def documented_names(self):
        text = (DOCS / "OBSERVABILITY.md").read_text()
        names = set()
        for line in text.splitlines():
            if line.startswith("| `repro_"):
                match = re.match(r"\| `(repro_[a-z0-9_]+)`", line)
                if match:
                    names.add(match.group(1))
        return names

    def test_every_emitted_metric_is_documented(
        self, emitted_names, documented_names
    ):
        missing = emitted_names - documented_names
        assert not missing, (
            f"metrics emitted but absent from docs/OBSERVABILITY.md "
            f"catalogue: {sorted(missing)}"
        )

    def test_every_documented_metric_is_emitted(
        self, emitted_names, documented_names
    ):
        stale = documented_names - emitted_names
        assert not stale, (
            f"metrics documented in docs/OBSERVABILITY.md but never "
            f"emitted by the full workload: {sorted(stale)}"
        )

    def test_workload_covers_all_three_layers(self, emitted_names):
        assert "repro_lbsn_checkins_total" in emitted_names
        assert "repro_bus_published_total" in emitted_names
        assert "repro_crawler_pages_fetched_total" in emitted_names
