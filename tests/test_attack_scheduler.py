"""Unit tests for the cheater-code-evading scheduler (§3.3)."""

import pytest

from repro.attack.scheduler import (
    BASE_INTERVAL_S,
    CheckInScheduler,
    ExecutionReport,
    interval_for_distance,
)
from repro.attack.spoofing import SpoofOutcome
from repro.attack.tour import PlannedTour, TourStop
from repro.geo.coordinates import METERS_PER_MILE, GeoPoint
from repro.geo.distance import destination_point
from repro.lbsn.models import CheckInStatus
from repro.simnet.clock import SimClock

START = GeoPoint(35.06, -106.62)


def tour_of(points_and_ids):
    tour = PlannedTour()
    for venue_id, location in points_and_ids:
        tour.stops.append(
            TourStop(intended=location, venue_id=venue_id, venue_location=location)
        )
    return tour


class TestIntervalRule:
    def test_under_one_mile_is_five_minutes(self):
        # "for distance D less than 1 mile, we should set T to 5 minutes"
        assert interval_for_distance(0.0) == BASE_INTERVAL_S
        assert interval_for_distance(0.9 * METERS_PER_MILE) == BASE_INTERVAL_S

    def test_exactly_one_mile_is_five_minutes(self):
        assert interval_for_distance(METERS_PER_MILE) == BASE_INTERVAL_S

    def test_beyond_one_mile_scales_linearly(self):
        # "if D > 1 mile, we let T = D * 5 minutes"
        assert interval_for_distance(3.0 * METERS_PER_MILE) == pytest.approx(
            3.0 * BASE_INTERVAL_S
        )
        assert interval_for_distance(100.0 * METERS_PER_MILE) == pytest.approx(
            100.0 * BASE_INTERVAL_S
        )


class TestBuild:
    def test_intervals_follow_distance(self):
        clock = SimClock()
        scheduler = CheckInScheduler(clock)
        near = destination_point(START, 90.0, 0.5 * METERS_PER_MILE)
        far = destination_point(near, 90.0, 2.0 * METERS_PER_MILE)
        schedule = scheduler.build(tour_of([(1, START), (2, near), (3, far)]))
        entries = schedule.entries
        assert entries[1].fire_at - entries[0].fire_at == pytest.approx(
            BASE_INTERVAL_S
        )
        assert entries[2].fire_at - entries[1].fire_at == pytest.approx(
            2.0 * BASE_INTERVAL_S, rel=0.01
        )

    def test_same_venue_pushed_past_holddown(self):
        clock = SimClock()
        scheduler = CheckInScheduler(clock)
        near = destination_point(START, 90.0, 300.0)
        schedule = scheduler.build(
            tour_of([(1, START), (2, near), (1, START)])
        )
        gap = schedule.entries[2].fire_at - schedule.entries[0].fire_at
        assert gap > 3_600.0

    def test_empty_tour(self):
        scheduler = CheckInScheduler(SimClock())
        schedule = scheduler.build(PlannedTour())
        assert len(schedule) == 0
        assert schedule.duration_s == 0.0

    def test_lead_in_from_previous_execution(self):
        # After executing a schedule, the next one must respect the
        # distance from the last check-in (no super-human hand-off).
        clock = SimClock()
        scheduler = CheckInScheduler(clock)

        class Recorder:
            def __init__(self):
                self.calls = []

            def set_location(self, location):
                pass

            def check_in(self, venue_id):
                self.calls.append((venue_id, clock.now()))
                return SpoofOutcome(status=CheckInStatus.VALID)

        recorder = Recorder()
        first = scheduler.build(tour_of([(1, START)]))
        scheduler.execute(first, recorder)
        far = destination_point(START, 90.0, 100.0 * METERS_PER_MILE)
        second = scheduler.build(tour_of([(2, far)]))
        lead = second.entries[0].fire_at - first.entries[0].fire_at
        assert lead >= 0.98 * 100.0 * BASE_INTERVAL_S


class TestExecute:
    def test_clock_advances_to_each_entry(self):
        clock = SimClock()
        scheduler = CheckInScheduler(clock)
        timestamps = []

        class Channel:
            def set_location(self, location):
                pass

            def check_in(self, venue_id):
                timestamps.append(clock.now())
                return SpoofOutcome(status=CheckInStatus.VALID)

        near = destination_point(START, 90.0, 200.0)
        schedule = scheduler.build(tour_of([(1, START), (2, near)]))
        scheduler.execute(schedule, Channel())
        assert timestamps == [entry.fire_at for entry in schedule.entries]

    def test_report_tallies_outcomes(self):
        clock = SimClock()
        scheduler = CheckInScheduler(clock)
        outcomes = iter(
            [
                SpoofOutcome(
                    status=CheckInStatus.VALID,
                    points=5,
                    new_badges=["Newbie"],
                    became_mayor=True,
                    special="Free coffee",
                ),
                SpoofOutcome(status=CheckInStatus.FLAGGED),
                SpoofOutcome(status=CheckInStatus.REJECTED),
            ]
        )

        class Channel:
            def set_location(self, location):
                pass

            def check_in(self, venue_id):
                return next(outcomes)

        points = [
            destination_point(START, 90.0, index * 400.0) for index in range(3)
        ]
        schedule = scheduler.build(
            tour_of([(i + 1, p) for i, p in enumerate(points)])
        )
        report = scheduler.execute(schedule, Channel())
        assert report.attempts == 3
        assert report.rewarded == 1
        assert report.flagged == 1
        assert report.rejected == 1
        assert report.detected == 2
        assert not report.undetected
        assert report.points == 5
        assert report.badges == ["Newbie"]
        assert report.mayorships_won == 1
        assert report.specials == ["Free coffee"]


class TestExecutionReport:
    def test_undetected_requires_attempts(self):
        assert not ExecutionReport().undetected
        report = ExecutionReport(attempts=5)
        assert report.undetected
