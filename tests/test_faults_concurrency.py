"""Concurrency tests for the resilience layer.

Mirrors tests/test_obs_concurrency.py: 8 threads behind a barrier
hammer one shared CircuitBreaker, one shared FaultInjector, and
concurrent :func:`retry_call` loops.  Nothing may tear, no count may be
lost, and the injector's per-point decision streams must stay exact.
"""

import threading

import pytest

from repro.errors import BreakerOpenError, FaultInjectedError
from repro.faults import (
    BackoffPolicy,
    BreakerState,
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    retry_call,
)
from repro.obs.metrics import MetricsRegistry
from repro.simnet.clock import SimClock

THREADS = 8
CHECKS_PER_THREAD = 500


def run_threads(target, count=THREADS):
    barrier = threading.Barrier(count)
    results = [None] * count
    errors = []

    def wrap(index):
        try:
            barrier.wait()
            results[index] = target(index)
        except BaseException as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    threads = [
        threading.Thread(target=wrap, args=(i,)) for i in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors
    return results


class TestInjectorUnderThreads:
    POINT = "crawler.fetch"
    SPEC = FaultSpec(point="crawler.fetch", probability=0.25)

    def _drive(self, injector):
        def worker(_index):
            fired = 0
            for _ in range(CHECKS_PER_THREAD):
                if injector.decide(self.POINT) is not None:
                    fired += 1
            return fired

        return run_threads(worker)

    def test_no_check_lost_or_double_counted(self):
        injector = FaultInjector(FaultPlan(seed=3).add(self.SPEC))
        self._drive(injector)
        assert injector.checks_at(self.POINT) == (
            THREADS * CHECKS_PER_THREAD
        )

    def test_total_fires_match_the_sequential_stream(self):
        """The decision stream is a pure function of the check index, so
        8 threads consuming it must fire exactly as often as 1 thread
        consuming the same number of checks."""
        sequential = FaultInjector(FaultPlan(seed=3).add(self.SPEC))
        expected = sum(
            1
            for _ in range(THREADS * CHECKS_PER_THREAD)
            if sequential.decide(self.POINT) is not None
        )
        threaded = FaultInjector(FaultPlan(seed=3).add(self.SPEC))
        fired = self._drive(threaded)
        assert sum(fired) == expected
        assert threaded.sequence_digest() == sequential.sequence_digest()

    def test_fire_indices_are_gapless(self):
        injector = FaultInjector(FaultPlan(seed=3).add(self.SPEC))
        self._drive(injector)
        history = injector.sequence(self.POINT)
        check_indices = [check_index for check_index, _kind in history]
        assert check_indices == sorted(check_indices)
        assert len(set(check_indices)) == len(check_indices)
        assert injector.fired_at(self.POINT) == len(history)

    def test_max_fires_cap_holds_under_contention(self):
        spec = FaultSpec(
            point=self.POINT, probability=0.9, max_fires=40
        )
        injector = FaultInjector(FaultPlan(seed=3).add(spec))
        fired = self._drive(injector)
        assert sum(fired) == 40

    def test_arm_disarm_races_never_corrupt_counts(self):
        injector = FaultInjector(FaultPlan(seed=3).add(self.SPEC))

        def worker(index):
            fired = 0
            for n in range(CHECKS_PER_THREAD):
                if index == 0 and n % 50 == 0:
                    injector.disarm()
                    injector.arm()
                if injector.decide(self.POINT) is not None:
                    fired += 1
            return fired

        run_threads(worker)
        # Disarmed checks are invisible; armed ones all counted.
        checks = injector.checks_at(self.POINT)
        assert 0 < checks <= THREADS * CHECKS_PER_THREAD
        history = injector.sequence(self.POINT)
        assert injector.fired_at(self.POINT) == len(history)


class TestBreakerUnderThreads:
    def test_exactly_one_open_transition(self):
        """N threads reporting failures produce one OPEN transition."""
        metrics = MetricsRegistry()
        breaker = CircuitBreaker(
            name="conc",
            failure_threshold=THREADS,
            reset_timeout_s=1e9,
            now_fn=SimClock().now,
            metrics=metrics,
        )

        def worker(_index):
            for _ in range(100):
                breaker.record_failure()

        run_threads(worker)
        assert breaker.state is BreakerState.OPEN
        assert breaker.open_count == 1
        transitions = metrics.get("repro_breaker_transitions_total")
        assert transitions.labels("conc", "open").value == 1.0

    def test_short_circuit_count_is_exact(self):
        metrics = MetricsRegistry()
        breaker = CircuitBreaker(
            name="conc",
            failure_threshold=1,
            reset_timeout_s=1e9,
            now_fn=SimClock().now,
            metrics=metrics,
        )
        breaker.record_failure()  # open, and stays open (huge timeout)

        def worker(_index):
            refused = 0
            for _ in range(CHECKS_PER_THREAD):
                if not breaker.allow():
                    refused += 1
            return refused

        refused = run_threads(worker)
        assert sum(refused) == THREADS * CHECKS_PER_THREAD
        shorts = metrics.get("repro_breaker_short_circuits_total")
        assert shorts.labels("conc").value == float(
            THREADS * CHECKS_PER_THREAD
        )

    def test_half_open_admits_exactly_the_probe_quota(self):
        clock = SimClock()
        breaker = CircuitBreaker(
            name="conc",
            failure_threshold=1,
            reset_timeout_s=5.0,
            half_open_probes=3,
            now_fn=clock.now,
        )
        breaker.record_failure()
        clock.advance(5.0)

        def worker(_index):
            return 1 if breaker.allow() else 0

        admitted = run_threads(worker)
        assert sum(admitted) == 3  # the quota, no matter the interleaving

    def test_mixed_success_failure_storm_keeps_invariants(self):
        clock = SimClock()
        breaker = CircuitBreaker(
            name="conc",
            failure_threshold=3,
            reset_timeout_s=0.0,  # reopens promote instantly
            now_fn=clock.now,
        )

        def worker(index):
            for n in range(200):
                if breaker.allow():
                    if (index + n) % 3 == 0:
                        breaker.record_failure()
                    else:
                        breaker.record_success()

        run_threads(worker)
        assert breaker.state in (
            BreakerState.CLOSED,
            BreakerState.OPEN,
            BreakerState.HALF_OPEN,
        )
        assert breaker.consecutive_failures >= 0

    def test_call_protocol_under_threads(self):
        breaker = CircuitBreaker(
            name="conc",
            failure_threshold=10_000_000,  # never opens
            now_fn=SimClock().now,
        )

        def worker(index):
            total = 0
            for n in range(200):
                total += breaker.call(lambda: 1)
            return total

        totals = run_threads(worker)
        assert totals == [200] * THREADS
        assert breaker.state is BreakerState.CLOSED


class TestRetryCallUnderThreads:
    def test_parallel_retry_loops_share_one_registry(self):
        metrics = MetricsRegistry()

        def worker(index):
            state = {"calls": 0}

            def flaky():
                state["calls"] += 1
                if state["calls"] % 3 != 0:
                    raise FaultInjectedError("p")
                return state["calls"]

            results = []
            for _ in range(50):
                results.append(
                    retry_call(
                        flaky,
                        BackoffPolicy(jitter_fraction=0.0),
                        metrics=metrics,
                        op=f"op-{index}",
                    )
                )
            return results

        run_threads(worker)
        attempts = metrics.get("repro_retry_attempts_total")
        recoveries = metrics.get("repro_retry_recoveries_total")
        for index in range(THREADS):
            op = f"op-{index}"
            # Each success needed exactly 2 retries (fail, fail, pass).
            assert attempts.labels(op).value == 100.0
            assert recoveries.labels(op).value == 50.0

    def test_breaker_guarded_retry_loops_settle(self):
        """retry_call + breaker compose: breaker-open is transient, so
        threads retry through an open window and eventually land."""
        clock = SimClock()
        lock = threading.Lock()
        breaker = CircuitBreaker(
            name="conc",
            failure_threshold=1,
            reset_timeout_s=0.5,
            now_fn=clock.now,
        )
        breaker.record_failure()  # start OPEN

        def guarded():
            with lock:
                if not breaker.allow():
                    raise BreakerOpenError(breaker.name)
                breaker.record_success()
            return True

        def worker(_index):
            return retry_call(
                guarded,
                BackoffPolicy(
                    max_attempts=10,
                    initial_delay_s=0.3,
                    jitter_fraction=0.0,
                ),
                sleep=lambda s: clock.advance(s),
            )

        assert run_threads(worker) == [True] * THREADS
        assert breaker.state is BreakerState.CLOSED


class TestInjectorStreamsAcrossThreadCounts:
    @pytest.mark.parametrize("threads", [1, 2, 8])
    def test_digest_invariant_to_thread_count(self, threads):
        spec = FaultSpec(point="store.commit", probability=0.2)
        injector = FaultInjector(FaultPlan(seed=77).add(spec))
        per_thread = 800 // threads

        def worker(_index):
            for _ in range(per_thread):
                injector.decide("store.commit")

        run_threads(worker, count=threads)
        reference = FaultInjector(FaultPlan(seed=77).add(spec))
        for _ in range(per_thread * threads):
            reference.decide("store.commit")
        assert injector.sequence_digest() == reference.sequence_digest()
