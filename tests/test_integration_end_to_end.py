"""The thesis's full narrative, end to end against one world.

Crawl the site -> build the attack catalog -> run the spiral tour (E4)
undetected -> harvest easy mayorships (E9) -> re-crawl and confirm the
attacker now shows up in the crawled data -> run the Chapter-4 analyses and
find the planted cheaters.
"""

import pytest

from repro.analysis.activity import recent_vs_total_curve
from repro.analysis.patterns import PatternVerdict, analyze_pattern
from repro.analysis.stats import compute_population_stats
from repro.attack.campaign import CheatingCampaign
from repro.attack.scheduler import CheckInScheduler
from repro.attack.spoofing import build_emulator_attacker
from repro.attack.targeting import VenueProfileAnalyzer
from repro.attack.tour import TourPlanner, VenueCatalog
from repro.crawler.crawler import crawl_full_site
from repro.geo.regions import city_by_name
from repro.workload import build_web_stack, build_world


@pytest.fixture(scope="module")
def story_world():
    world = build_world(scale=0.0005, seed=77)
    stack = build_web_stack(world, seed=8)
    machines = [stack.network.create_egress() for _ in range(3)]
    database, user_stats, venue_stats = crawl_full_site(
        stack.transport, machines
    )
    return world, stack, database


class TestFullStory:
    def test_act1_crawl_covers_the_site(self, story_world):
        world, stack, database = story_world
        assert database.user_count() == world.service.store.user_count()
        assert database.venue_count() == world.service.store.venue_count()

    def test_act2_tour_and_harvest_undetected(self, story_world):
        world, stack, database = story_world
        service = world.service
        user, emulator, channel = build_emulator_attacker(service)
        catalog = VenueCatalog.from_crawl_database(database)
        planner = TourPlanner(catalog)
        scheduler = CheckInScheduler(service.clock)

        # The Fig 3.5 spiral through the densest crawled city.
        start = city_by_name("New York, NY").center
        tour = planner.plan_city_spiral(start, steps=60)
        assert len(tour.stops) >= 20
        report = scheduler.execute(scheduler.build(tour), channel)
        assert report.undetected
        assert report.points > 0

        # §3.4: harvest venues with unclaimed mayor specials.
        analyzer = VenueProfileAnalyzer(database)
        targets = analyzer.easy_mayor_specials()
        assert targets  # the world plants these
        campaign = CheatingCampaign(
            service.clock, channel, scheduler=scheduler
        )
        harvest = campaign.harvest(targets[:12])
        assert harvest.detected == 0
        assert harvest.mayorships_won >= len(targets[:12]) - 2
        assert harvest.specials

    def test_act3_recrawl_sees_the_attacker(self, story_world):
        world, stack, database = story_world
        machines = [stack.network.create_egress() for _ in range(2)]
        recrawl, _, _ = crawl_full_site(stack.transport, machines)
        attacker_rows = [
            row
            for row in recrawl.users()
            if row.display_name == "Attacker"
        ]
        assert attacker_rows
        attacker = attacker_rows[0]
        assert attacker.total_checkins >= 30
        assert attacker.total_mayors >= 8

    def test_act4_analyses_recover_the_planted_structure(self, story_world):
        world, stack, database = story_world
        stats = compute_population_stats(database)
        assert stats.zero_checkin_fraction == pytest.approx(0.363, abs=0.05)
        curve = recent_vs_total_curve(database, bucket_width=50)
        assert curve

        mega = analyze_pattern(database, world.roster.mega_cheater.user_id)
        assert mega.verdict is PatternVerdict.SUSPICIOUS
        power = analyze_pattern(
            database, world.roster.power_users[0].user_id
        )
        assert power.verdict is PatternVerdict.NORMAL
