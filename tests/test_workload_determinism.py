"""Seed determinism across the workload generators (E26's foundation).

Every generator takes an explicit ``seed`` — or a caller-owned ``rng``
— and must never touch module-level ``random``: the adversary scoreboard
digests, the durable-replay parity checks, and the committed E-series
outputs all assume that the same seed reproduces the same world to the
byte.  Each test here builds the same generator twice and compares full
outputs, plus one cross-check that an injected ``random.Random(seed)``
is indistinguishable from passing ``seed=``.
"""

import random

from repro.lbsn.service import LbsnService
from repro.workload.behavior import BehaviorGenerator
from repro.workload.cheaters import CheaterGenerator
from repro.workload.population import PopulationGenerator
from repro.workload.venues import VenueGenerator

SEED = 23


def venue_fingerprint(service, venues):
    return [
        (
            venue.name,
            round(venue.location.latitude, 9),
            round(venue.location.longitude, 9),
            venue.category,
            venue.special.description if venue.special else None,
        )
        for venue in (
            service.store.require_venue(venue_id)
            for venue_id in venues.venue_ids
        )
    ]


def spec_fingerprint(population):
    return [
        (
            spec.user_id,
            spec.persona,
            spec.home_city.name,
            spec.target_checkins,
            spec.travel_city.name if spec.travel_city else None,
        )
        for spec in population.specs
    ]


class TestVenueGenerator:
    def test_same_seed_same_world(self):
        prints = []
        for _ in range(2):
            service = LbsnService()
            venues = VenueGenerator(service, seed=SEED).generate(400)
            prints.append(venue_fingerprint(service, venues))
        assert prints[0] == prints[1]

    def test_injected_rng_equals_seed_construction(self):
        service_a = LbsnService()
        venues_a = VenueGenerator(service_a, seed=SEED).generate(200)
        service_b = LbsnService()
        venues_b = VenueGenerator(
            service_b, rng=random.Random(SEED)
        ).generate(200)
        assert venue_fingerprint(service_a, venues_a) == (
            venue_fingerprint(service_b, venues_b)
        )


class TestPopulationGenerator:
    def test_same_seed_same_specs(self):
        prints = []
        for _ in range(2):
            service = LbsnService()
            population = PopulationGenerator(
                service, seed=SEED
            ).generate(300)
            prints.append(spec_fingerprint(population))
        assert prints[0] == prints[1]

    def test_injected_rng_equals_seed_construction(self):
        pop_a = PopulationGenerator(LbsnService(), seed=SEED).generate(150)
        pop_b = PopulationGenerator(
            LbsnService(), rng=random.Random(SEED)
        ).generate(150)
        assert spec_fingerprint(pop_a) == spec_fingerprint(pop_b)


class TestBehaviorGenerator:
    def test_same_seed_same_events(self):
        streams = []
        for _ in range(2):
            service = LbsnService()
            venues = VenueGenerator(service, seed=SEED).generate(500)
            population = PopulationGenerator(
                service, seed=SEED + 1
            ).generate(40)
            generator = BehaviorGenerator(
                venues, horizon_days=120.0, seed=SEED + 2
            )
            events = []
            for spec in population.specs:
                events.extend(generator.events_for(spec))
            streams.append(
                [(e.timestamp, e.user_id, e.venue_id) for e in events]
            )
        assert streams[0] and streams[0] == streams[1]

    def test_injected_rng_equals_seed_construction(self):
        service = LbsnService()
        venues = VenueGenerator(service, seed=SEED).generate(500)
        spec = PopulationGenerator(service, seed=SEED + 1).generate(
            30
        ).specs[0]
        by_seed = BehaviorGenerator(
            venues, horizon_days=120.0, seed=SEED + 2
        )
        by_rng = BehaviorGenerator(
            venues, horizon_days=120.0, rng=random.Random(SEED + 2)
        )
        assert by_seed.events_for(spec) == by_rng.events_for(spec)


class TestCheaterGenerator:
    @staticmethod
    def _persona_stream(rng=None, seed=SEED + 3):
        service = LbsnService()
        venues = VenueGenerator(service, seed=SEED).generate(600)
        population = PopulationGenerator(service, seed=SEED + 1)
        population.generate(20)
        kwargs = {"rng": rng} if rng is not None else {"seed": seed}
        generator = CheaterGenerator(
            service,
            population,
            venues,
            horizon_s=120.0 * 86_400.0,
            **kwargs,
        )
        roster, events = generator.generate(scale_activity=0.01)
        return [(e.timestamp, e.user_id, e.venue_id) for e in events]

    def test_same_seed_same_persona_events(self):
        assert self._persona_stream() == self._persona_stream()

    def test_injected_rng_equals_seed_construction(self):
        assert self._persona_stream() == self._persona_stream(
            rng=random.Random(SEED + 3)
        )
