"""Tests for the event bus: fan-out, sequencing, backpressure, lifecycle."""

import threading
import time

import pytest

from repro.stream import (
    BackpressurePolicy,
    BusError,
    EventBus,
    StreamEvent,
)


def make_event(seq=-1, timestamp=0.0):
    return StreamEvent(seq=seq, timestamp=timestamp)


class TestSynchronousFanout:
    def test_all_subscribers_see_every_event_in_order(self):
        bus = EventBus()
        seen = {"a": [], "b": [], "c": []}
        for name in seen:
            bus.subscribe(name, seen[name].append)
        events = [bus.publish(make_event()) for _ in range(25)]
        for log in seen.values():
            assert log == events
        assert bus.published == 25

    def test_publish_stamps_monotonic_seq(self):
        bus = EventBus()
        events = [bus.publish(make_event()) for _ in range(10)]
        assert [e.seq for e in events] == list(range(10))

    def test_presequenced_events_keep_their_seq(self):
        bus = EventBus()
        event = bus.publish(make_event(seq=41))
        assert event.seq == 41
        # The bus counter advances past external sequences.
        assert bus.publish(make_event()).seq == 42

    def test_delivered_counter(self):
        bus = EventBus()
        stats = bus.subscribe("s", lambda e: None)
        for _ in range(7):
            bus.publish(make_event())
        assert stats.delivered == 7
        assert stats.dropped == 0

    def test_subscriber_exception_counted_not_raised(self):
        bus = EventBus()

        def explode(event):
            raise RuntimeError("detector bug")

        stats = bus.subscribe("bad", explode)
        quiet = bus.subscribe("good", lambda e: None)
        bus.publish(make_event())
        assert stats.errors == 1
        assert stats.delivered == 1
        assert quiet.delivered == 1


class TestSubscriptionManagement:
    def test_duplicate_name_rejected(self):
        bus = EventBus()
        bus.subscribe("x", lambda e: None)
        with pytest.raises(BusError):
            bus.subscribe("x", lambda e: None)

    def test_unsubscribe_stops_delivery(self):
        bus = EventBus()
        log = []
        bus.subscribe("x", log.append)
        bus.publish(make_event())
        bus.unsubscribe("x")
        bus.publish(make_event())
        assert len(log) == 1
        assert bus.subscriber_names() == []

    def test_unsubscribe_unknown_raises(self):
        with pytest.raises(BusError):
            EventBus().unsubscribe("ghost")

    def test_queue_size_must_be_positive(self):
        with pytest.raises(BusError):
            EventBus().subscribe("x", lambda e: None, queue_size=0)


class TestBackgroundBlock:
    def test_zero_loss_with_slow_consumer(self):
        bus = EventBus()
        log = []

        def slow(event):
            time.sleep(0.0002)
            log.append(event)

        stats = bus.subscribe(
            "slow",
            slow,
            background=True,
            queue_size=4,
            policy=BackpressurePolicy.BLOCK,
        )
        events = [bus.publish(make_event()) for _ in range(64)]
        assert bus.drain(timeout=10.0)
        bus.close()
        assert stats.dropped == 0
        assert stats.delivered == 64
        assert log == events  # order preserved

    def test_max_queued_bounded_by_queue_size(self):
        bus = EventBus()
        gate = threading.Event()
        stats = bus.subscribe(
            "gated",
            lambda e: gate.wait(5.0),
            background=True,
            queue_size=8,
            policy=BackpressurePolicy.BLOCK,
        )
        for _ in range(8):
            bus.publish(make_event())
        gate.set()
        bus.close()
        assert stats.max_queued <= 8


class TestBackgroundDropOldest:
    def test_drop_counter_accounts_for_every_event(self):
        bus = EventBus()
        gate = threading.Event()
        delivered_log = []

        def consume(event):
            gate.wait(5.0)
            delivered_log.append(event.seq)

        stats = bus.subscribe(
            "lossy",
            consume,
            background=True,
            queue_size=16,
            policy=BackpressurePolicy.DROP_OLDEST,
        )
        total = 500
        for _ in range(total):
            bus.publish(make_event())
        gate.set()
        bus.drain(timeout=10.0)
        bus.close()
        assert stats.dropped > 0  # the bound engaged
        assert stats.delivered + stats.dropped == total
        # What survived is the *newest* tail, still in order.
        assert delivered_log == sorted(delivered_log)
        assert delivered_log[-1] == total - 1

    def test_reject_policy_keeps_oldest(self):
        bus = EventBus()
        gate = threading.Event()
        delivered_log = []

        def consume(event):
            gate.wait(5.0)
            delivered_log.append(event.seq)

        stats = bus.subscribe(
            "reject",
            consume,
            background=True,
            queue_size=4,
            policy=BackpressurePolicy.REJECT,
        )
        for _ in range(100):
            bus.publish(make_event())
        gate.set()
        bus.drain(timeout=10.0)
        bus.close()
        assert stats.delivered + stats.dropped == 100
        # REJECT preserves the head of the stream (stale-preserving).
        assert delivered_log[0] == 0


class TestLifecycle:
    def test_publish_after_close_raises(self):
        bus = EventBus()
        bus.close()
        with pytest.raises(BusError):
            bus.publish(make_event())

    def test_close_drains_by_default(self):
        bus = EventBus()
        log = []
        bus.subscribe("x", log.append, background=True, queue_size=256)
        for _ in range(100):
            bus.publish(make_event())
        bus.close()
        assert len(log) == 100

    def test_close_without_drain_counts_drops(self):
        bus = EventBus()
        gate = threading.Event()
        stats = bus.subscribe(
            "x",
            lambda e: gate.wait(5.0),
            background=True,
            queue_size=256,
            policy=BackpressurePolicy.BLOCK,
        )
        for _ in range(50):
            bus.publish(make_event())
        bus.close(drain=False)
        gate.set()
        assert stats.delivered + stats.dropped == 50

    def test_context_manager_closes(self):
        with EventBus() as bus:
            bus.subscribe("x", lambda e: None, background=True)
            bus.publish(make_event())
        with pytest.raises(BusError):
            bus.publish(make_event())


class TestConcurrentPublish:
    def test_many_threads_unique_monotonic_seqs(self):
        bus = EventBus()
        seen = []
        lock = threading.Lock()

        def collect(event):
            with lock:
                seen.append(event.seq)

        bus.subscribe("collector", collect)
        per_thread = 200

        def hammer():
            for _ in range(per_thread):
                bus.publish(make_event())

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(seen) == 8 * per_thread
        assert sorted(seen) == list(range(8 * per_thread))
