"""Crash/replay recovery: worker death, replay, and three-way parity.

The headline claims of repro.durable, as tests:

* A killed worker loses its in-memory shard but never its WAL; replay
  rebuilds byte-identical scoring state (trace-scrubbed digest).
* The full storm — control pipeline vs. crashed-and-recovered victim
  vs. a cold replay of the victim's on-disk tree — agrees three ways,
  at N=1 and at N=4 partitions (the ISSUE acceptance bar).
* ``write_durable_tree``/``replay_durable_tree`` round-trip through the
  manifest, and damage makes the verify bit go false, not silently pass.
"""

import json

import pytest

from repro.analysis.detection import DetectorConfig
from repro.durable.worker import DetectorWorker, DurableWorkerError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.points import POINT_DURABLE_WORKER
from repro.geo.coordinates import GeoPoint
from repro.stream.detectors import StreamDetectorConfig
from repro.stream.events import CheckInAccepted, CheckInFlagged
from repro.stream.ledger import SuspicionLedger
from repro.workload.durable import (
    MANIFEST_NAME,
    DurableConfig,
    replay_durable_tree,
    run_durable_storm,
    write_durable_tree,
)

CONFIG = DetectorConfig(min_total_checkins=10)
STREAM_CONFIG = StreamDetectorConfig(max_users=128, max_venues=128)


def checkin(seq, user_id, venue_id=0, flagged=False):
    cls = CheckInFlagged if flagged else CheckInAccepted
    kwargs = dict(
        user_id=user_id,
        venue_id=venue_id,
        venue_location=GeoPoint(40.0, -74.0),
        reported_location=GeoPoint(40.0, -74.0),
        checkin_id=seq,
    )
    if not flagged:
        kwargs["points"] = 3
    return cls(seq, float(seq) * 60.0, **kwargs)


def storm_events(count=50):
    return [
        checkin(seq, user_id=seq % 4, venue_id=seq % 3,
                flagged=(seq % 6 == 0))
        for seq in range(count)
    ]


def instant_killer():
    """An injector that kills partition-00 on its first applied event."""
    plan = FaultPlan(seed=7).add(
        FaultSpec(
            point=POINT_DURABLE_WORKER,
            probability=1.0,
            max_fires=1,
            only_labels=("partition-00",),
        )
    )
    return FaultInjector(plan)


def make_worker(tmp_path, **kwargs):
    kwargs.setdefault("config", CONFIG)
    kwargs.setdefault("stream_config", STREAM_CONFIG)
    return DetectorWorker(0, tmp_path, **kwargs)


class TestWorkerCrashSemantics:
    def test_crash_kills_ledger_but_never_the_wal(self, tmp_path):
        worker = make_worker(tmp_path, faults=instant_killer())
        for event in storm_events(50):
            worker.on_event(event)
        # First applied event crashed the worker...
        assert worker.crashed
        assert worker.ledger is None
        assert worker.events_applied == 0
        # ...yet the durable intake kept logging all 50.
        assert worker.wal.appended == 50
        with pytest.raises(DurableWorkerError, match="no digest"):
            worker.digest()
        with pytest.raises(DurableWorkerError, match="crashed"):
            worker.snapshot()
        worker.close()

    def test_recovery_rebuilds_identical_state(self, tmp_path):
        events = storm_events(50)
        worker = make_worker(tmp_path, faults=instant_killer())
        control = SuspicionLedger(config=CONFIG, stream_config=STREAM_CONFIG)
        for event in events:
            worker.on_event(event)
            control.on_event(event)
        assert worker.crashed
        replayed = worker.recover()
        assert replayed == 50
        assert not worker.crashed
        assert worker.digest() == control.digest()
        assert worker.last_applied_seq == events[-1].seq
        worker.close()

    def test_recover_on_live_worker_is_idempotent(self, tmp_path):
        worker = make_worker(tmp_path)
        for event in storm_events(40):
            worker.on_event(event)
        warm = worker.digest()
        replayed = worker.recover()  # cold-start path on a live worker
        assert replayed == 40
        assert worker.digest() == warm
        worker.close()

    def test_snapshot_cadence_bounds_replay(self, tmp_path):
        events = storm_events(35)
        worker = make_worker(tmp_path, snapshot_every=10)
        control = SuspicionLedger(config=CONFIG, stream_config=STREAM_CONFIG)
        for event in events:
            worker.on_event(event)
            control.on_event(event)
        assert worker.snapshots.writes == 3  # at 10, 20, 30 applied
        replayed = worker.recover()
        # Recovery = snapshot@seq29 + only the 5-event WAL suffix.
        assert replayed == 5
        assert worker.digest() == control.digest()
        worker.close()

    def test_bad_snapshot_cadence_rejected(self, tmp_path):
        with pytest.raises(DurableWorkerError):
            make_worker(tmp_path, snapshot_every=-1)


class TestStormParity:
    """The acceptance bar: three-way parity at N=1 AND N=4."""

    def test_three_way_parity_single_partition(self, tmp_path):
        config = DurableConfig(partitions=1, kill_partition=0)
        report = run_durable_storm(config, tmp_path)
        assert report.crashed_partitions == [0]
        assert report.recovered_partitions == [0]
        assert report.faults_fired == {POINT_DURABLE_WORKER: 1}
        assert report.replayed_events > 0
        assert report.parity_ok, (
            f"control={report.control_combined} "
            f"victim={report.victim_combined} "
            f"cold={report.cold_combined}"
        )

    def test_three_way_parity_four_partitions_with_snapshots(self, tmp_path):
        config = DurableConfig(
            partitions=4, kill_partition=2, snapshot_every=50
        )
        report = run_durable_storm(config, tmp_path)
        assert report.crashed_partitions == [2]
        assert report.recovered_partitions == [2]
        assert len(report.control_digests) == 4
        assert report.control_digests == report.victim_digests
        assert report.victim_digests == report.cold_digests
        assert report.snapshots_written > 0
        assert report.parity_ok


class TestTreeRoundTrip:
    @pytest.fixture(scope="class")
    def tree(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("tree")
        config = DurableConfig(partitions=2, checkins=150)
        report = write_durable_tree(config, out)
        return out, report

    def test_replay_matches_manifest(self, tree):
        out, report = tree
        result = replay_durable_tree(out)
        assert result["partitions"] == 2
        assert result["digests"] == report.victim_digests
        assert result["combined_digest"] == report.victim_combined
        assert result["matches_manifest"] is True

    def test_manifest_records_the_run_shape(self, tree):
        out, report = tree
        manifest = json.loads((out / MANIFEST_NAME).read_text())
        assert manifest["partitions"] == 2
        assert manifest["checkins"] == 150
        assert manifest["watermark"] == report.watermark
        assert manifest["combined_digest"] == report.victim_combined

    def test_replay_without_manifest_infers_partitions(self, tree, tmp_path):
        out, report = tree
        clone = tmp_path / "clone"
        clone.mkdir()
        for shard in out.iterdir():
            if shard.name.startswith("partition-"):
                target = clone / shard.name
                target.mkdir()
                for sub in shard.rglob("*"):
                    rel = sub.relative_to(shard)
                    if sub.is_dir():
                        (target / rel).mkdir()
                    else:
                        (target / rel).write_bytes(sub.read_bytes())
        result = replay_durable_tree(clone)
        assert result["partitions"] == 2
        assert result["manifest"] is None
        assert result["matches_manifest"] is None
        assert result["combined_digest"] == report.victim_combined

    def test_damaged_tree_fails_the_manifest_check(self, tree, tmp_path):
        out, _ = tree
        clone = tmp_path / "damaged"
        clone.mkdir()
        (clone / MANIFEST_NAME).write_bytes(
            (out / MANIFEST_NAME).read_bytes()
        )
        for shard in out.iterdir():
            if shard.name.startswith("partition-"):
                target = clone / shard.name
                for sub in shard.rglob("*"):
                    rel = sub.relative_to(shard)
                    if sub.is_dir():
                        (target / rel).mkdir(parents=True, exist_ok=True)
                    else:
                        target.mkdir(parents=True, exist_ok=True)
                        (target / rel).parent.mkdir(
                            parents=True, exist_ok=True
                        )
                        (target / rel).write_bytes(sub.read_bytes())
        # Lose one shard's snapshots AND tear the tail off its final WAL
        # segment.  (Either alone is survivable: a snapshot at the
        # watermark covers torn WAL records.)  The replay tolerates the
        # torn tail but the digest can no longer match the manifest.
        for snap in (clone / "partition-00" / "snapshots").glob("*.json"):
            snap.unlink()
        wal_dir = clone / "partition-00" / "wal"
        last = sorted(wal_dir.glob("*.wal"))[-1]
        last.write_bytes(last.read_bytes()[:-20])
        result = replay_durable_tree(clone)
        assert result["matches_manifest"] is False
