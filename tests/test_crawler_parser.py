"""Unit tests for regex page extraction, round-tripped through the renderer."""

import pytest

from repro.crawler.parser import parse_user_page, parse_venue_page
from repro.errors import CrawlError
from repro.geo.coordinates import GeoPoint
from repro.lbsn.models import Special, User, Venue
from repro.lbsn.service import LbsnService
from repro.lbsn.webserver import LbsnWebServer

ABQ = GeoPoint(35.0844, -106.6504)


@pytest.fixture
def renderer():
    return LbsnWebServer(LbsnService())


class TestUserPage:
    def test_round_trip_all_fields(self, renderer):
        user = User(
            user_id=1852791,
            display_name="Mai R & Co",
            username="mai_r",
            home_city="Lincoln, NE",
            total_checkins=123,
            points=456,
        )
        user.badges = {"Newbie", "Adventurer"}
        user.friends = {2, 7}
        parsed = parse_user_page(renderer.render_user(user))
        assert parsed.user_id == 1852791
        assert parsed.display_name == "Mai R & Co"
        assert parsed.username == "mai_r"
        assert parsed.home_city == "Lincoln, NE"
        assert parsed.total_checkins == 123
        assert parsed.total_badges == 2
        assert parsed.points == 456
        assert parsed.friend_ids == [2, 7]

    def test_user_without_username(self, renderer):
        user = User(user_id=5, display_name="Anon")
        parsed = parse_user_page(renderer.render_user(user))
        assert parsed.username is None

    def test_garbage_page_raises(self):
        with pytest.raises(CrawlError):
            parse_user_page("<html>not a profile</html>")


class TestVenuePage:
    def _venue(self, **kwargs):
        venue = Venue(
            venue_id=1235677,
            name="Starbucks #17 <3",
            location=ABQ,
            address="1 Main St",
            city="Albuquerque, NM",
            **kwargs,
        )
        return venue

    def test_round_trip_core_fields(self, renderer):
        venue = self._venue()
        venue.checkin_count = 9
        venue.unique_visitors = {1, 2, 3}
        parsed = parse_venue_page(renderer.render_venue(venue))
        assert parsed.venue_id == 1235677
        assert parsed.name == "Starbucks #17 <3"
        assert parsed.address == "1 Main St"
        assert parsed.city == "Albuquerque, NM"
        assert parsed.latitude == pytest.approx(ABQ.latitude)
        assert parsed.longitude == pytest.approx(ABQ.longitude)
        assert parsed.checkins_here == 9
        assert parsed.unique_visitors == 3

    def test_mayor_extraction(self, renderer):
        venue = self._venue(mayor_id=77)
        parsed = parse_venue_page(renderer.render_venue(venue))
        assert parsed.mayor_id == 77

    def test_no_mayor(self, renderer):
        parsed = parse_venue_page(renderer.render_venue(self._venue()))
        assert parsed.mayor_id is None

    def test_special_kinds(self, renderer):
        mayor_venue = self._venue(special=Special("Free coffee!"))
        parsed = parse_venue_page(renderer.render_venue(mayor_venue))
        assert parsed.special == "Free coffee!"
        assert parsed.special_mayor_only

        open_venue = self._venue(
            special=Special("2nd visit", mayor_only=False, unlock_checkins=2)
        )
        parsed = parse_venue_page(renderer.render_venue(open_venue))
        assert not parsed.special_mayor_only

    def test_recent_visitors_in_order(self, renderer):
        venue = self._venue()
        for uid in (3, 1, 4):
            venue.record_recent_visitor(uid)
        parsed = parse_venue_page(renderer.render_venue(venue))
        assert parsed.recent_visitor_ids == [4, 1, 3]
        assert parsed.has_whos_been_here

    def test_whos_been_here_removed(self):
        # After Foursquare's patch, the crawler finds no visitor links.
        renderer = LbsnWebServer(LbsnService(), show_whos_been_here=False)
        venue = self._venue()
        venue.record_recent_visitor(5)
        parsed = parse_venue_page(renderer.render_venue(venue))
        assert parsed.recent_visitor_ids == []
        assert not parsed.has_whos_been_here

    def test_obfuscated_visitors_not_extractable(self):
        # §5.2 hashing defense: tokens yield no user ids to the regexes.
        renderer = LbsnWebServer(
            LbsnService(), visitor_obfuscator=lambda uid: f"v_{uid * 7:x}"
        )
        venue = self._venue()
        venue.record_recent_visitor(5)
        parsed = parse_venue_page(renderer.render_venue(venue))
        assert parsed.recent_visitor_ids == []
        assert parsed.has_whos_been_here

    def test_negative_coordinates_parse(self, renderer):
        venue = Venue(
            venue_id=1, name="South", location=GeoPoint(-33.86, 151.21)
        )
        parsed = parse_venue_page(renderer.render_venue(venue))
        assert parsed.latitude == pytest.approx(-33.86)
        assert parsed.longitude == pytest.approx(151.21)

    def test_garbage_page_raises(self):
        with pytest.raises(CrawlError):
            parse_venue_page("<html>nope</html>")
