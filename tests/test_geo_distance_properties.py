"""Property tests (hypothesis) dedicated to :mod:`repro.geo.distance`.

Targets the numerical edges the unit tests cannot sweep: antipodal pairs
(where the haversine ``asin`` argument grazes 1.0 and must be clamped),
exact self-distance, metric symmetry, and longitude wrap-around.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.coordinates import (
    EARTH_RADIUS_M,
    GeoPoint,
    normalize_longitude,
)
from repro.geo.distance import haversine_m, haversine_miles, speed_mps

#: Half the Earth's circumference — the haversine ceiling.
MAX_GREAT_CIRCLE_M = math.pi * EARTH_RADIUS_M

latitudes = st.floats(min_value=-90.0, max_value=90.0)
longitudes = st.floats(min_value=-180.0, max_value=180.0)
full_points = st.builds(
    GeoPoint,
    latitudes,
    st.floats(min_value=-180.0, max_value=179.999999),
)
any_longitudes = st.floats(
    min_value=-1e7, max_value=1e7, allow_nan=False, allow_infinity=False
)


class TestHaversineProperties:
    @given(full_points, full_points)
    def test_symmetry(self, a, b):
        assert haversine_m(a, b) == haversine_m(b, a)

    @given(full_points)
    def test_zero_self_distance(self, p):
        assert haversine_m(p, p) == 0.0

    @given(full_points, full_points)
    def test_bounded_by_half_circumference(self, a, b):
        d = haversine_m(a, b)
        assert 0.0 <= d <= MAX_GREAT_CIRCLE_M * (1.0 + 1e-12)
        assert not math.isnan(d)

    @given(latitudes, st.floats(min_value=-180.0, max_value=179.999999))
    def test_antipodal_asin_clamp(self, lat, lon):
        """The exact antipode pushes the asin argument to 1.0; the clamp
        must keep the result finite and equal to half the circumference."""
        p = GeoPoint(lat, lon)
        antipode = GeoPoint(-lat, normalize_longitude(lon + 180.0))
        d = haversine_m(p, antipode)
        assert not math.isnan(d)
        assert d == haversine_m(antipode, p)
        assert d <= MAX_GREAT_CIRCLE_M * (1.0 + 1e-12)
        # Near-antipodal haversine loses relative precision (the clamp's
        # raison d'être); allow ~1e-6 relative slack (±20 m on 20,015 km).
        assert d >= MAX_GREAT_CIRCLE_M * (1.0 - 1e-6)

    @given(full_points, full_points)
    def test_miles_consistent_with_meters(self, a, b):
        assert haversine_miles(a, b) == haversine_m(a, b) / 1_609.344


class TestSpeedProperties:
    @given(full_points, full_points, st.floats(min_value=0.001, max_value=1e6))
    def test_speed_is_distance_over_time(self, a, b, elapsed):
        assert speed_mps(a, b, elapsed) == haversine_m(a, b) / elapsed

    @given(full_points, full_points)
    def test_zero_elapsed_any_displacement_is_infinite(self, a, b):
        speed = speed_mps(a, b, 0.0)
        if haversine_m(a, b) > 0.0:
            assert speed == math.inf
        else:
            assert speed == 0.0


class TestNormalizeLongitudeProperties:
    @given(any_longitudes)
    def test_result_in_range(self, lon):
        wrapped = normalize_longitude(lon)
        assert -180.0 <= wrapped < 180.0

    @given(any_longitudes)
    def test_idempotent_round_trip(self, lon):
        wrapped = normalize_longitude(lon)
        assert normalize_longitude(wrapped) == wrapped

    @given(
        st.floats(min_value=-180.0, max_value=179.999999),
        st.integers(min_value=-20, max_value=20),
    )
    @settings(max_examples=200)
    def test_full_turns_are_identity(self, lon, turns):
        wrapped = normalize_longitude(lon + 360.0 * turns)
        assert math.isclose(wrapped, lon, abs_tol=1e-6) or math.isclose(
            abs(wrapped - lon), 360.0, abs_tol=1e-6
        )
