"""Property-based tests (hypothesis) for the core invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crawler.database import like_to_regex
from repro.device.bluetooth import build_gpgga, parse_gpgga
from repro.geo.coordinates import GeoPoint, normalize_longitude
from repro.geo.distance import (
    destination_point,
    haversine_m,
    initial_bearing_deg,
)
from repro.geo.grid import SpatialGrid
from repro.lbsn.mayorship import checkin_days_by_user
from repro.lbsn.models import CheckIn, CheckInStatus
from repro.simnet.clock import SECONDS_PER_DAY

latitudes = st.floats(min_value=-85.0, max_value=85.0)
longitudes = st.floats(min_value=-180.0, max_value=179.999999)
points = st.builds(GeoPoint, latitudes, longitudes)
bearings = st.floats(min_value=0.0, max_value=360.0)
distances = st.floats(min_value=0.0, max_value=2_000_000.0)


class TestGeodesy:
    @given(points, points)
    def test_haversine_symmetric_and_nonnegative(self, a, b):
        forward = haversine_m(a, b)
        assert forward >= 0.0
        assert forward == haversine_m(b, a)

    @given(points)
    def test_haversine_identity(self, point):
        assert haversine_m(point, point) == 0.0

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        # Near-antipodal pairs sit where asin'(x) blows up, so a 1e-16
        # error in the haversine term can inflate the distance by ~0.1 m;
        # allow 0.5 m of floating-point slack on a 20,000 km scale.
        assert haversine_m(a, c) <= haversine_m(a, b) + haversine_m(b, c) + 0.5

    @given(points, bearings, distances)
    def test_destination_point_distance_consistent(
        self, origin, bearing, distance
    ):
        destination = destination_point(origin, bearing, distance)
        assert haversine_m(origin, destination) <= distance + 1.0
        # Distances are preserved exactly away from the poles.
        if abs(origin.latitude) < 80.0 and distance < 1_000_000.0:
            assert math.isclose(
                haversine_m(origin, destination), distance, rel_tol=1e-6,
                abs_tol=0.5,
            )

    @given(st.floats(min_value=-10_000.0, max_value=10_000.0))
    def test_normalize_longitude_in_range(self, longitude):
        wrapped = normalize_longitude(longitude)
        assert -180.0 <= wrapped < 180.0

    @given(points, points)
    def test_bearing_in_range(self, a, b):
        bearing = initial_bearing_deg(a, b)
        assert 0.0 <= bearing < 360.0


class TestSpatialGridProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=500),
                st.floats(min_value=30.0, max_value=45.0),
                st.floats(min_value=-120.0, max_value=-70.0),
            ),
            min_size=1,
            max_size=60,
        ),
        st.floats(min_value=100.0, max_value=300_000.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_query_radius_matches_brute_force(self, items, radius):
        grid = SpatialGrid(cell_size_deg=0.05)
        locations = {}
        for item_id, lat, lon in items:
            point = GeoPoint(lat, lon)
            grid.insert(item_id, point)
            locations[item_id] = point  # later duplicates overwrite
        center = GeoPoint(37.5, -95.0)
        hits = {item for item, _, _ in grid.query_radius(center, radius)}
        expected = {
            item
            for item, point in locations.items()
            if haversine_m(center, point) <= radius
        }
        assert hits == expected


class TestNmeaRoundTrip:
    @given(points, st.floats(min_value=0.0, max_value=86_399.0))
    @settings(max_examples=80)
    def test_gpgga_round_trip(self, point, seconds):
        sentence = build_gpgga(point, seconds)
        fix = parse_gpgga(sentence, timestamp=0.0)
        # NMEA's ddmm.mmmm resolution is ~0.2 m; allow 2 m.
        assert haversine_m(fix.location, point) < 2.0


class TestLikePatterns:
    @given(st.text(alphabet=st.characters(blacklist_categories=("Cs",)), max_size=20))
    def test_exact_pattern_matches_itself(self, text):
        regex = like_to_regex(text.replace("%", "").replace("_", ""))
        assert regex.match(text.replace("%", "").replace("_", ""))

    @given(st.text(alphabet="abcXYZ 123", max_size=15))
    def test_contains_pattern(self, needle):
        regex = like_to_regex(f"%{needle}%")
        assert regex.match(f"prefix {needle} suffix")


class TestMayorshipProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=5),  # user
                st.integers(min_value=0, max_value=120),  # day
                st.booleans(),  # valid?
            ),
            max_size=50,
        ),
        st.integers(min_value=60, max_value=130),
    )
    @settings(max_examples=60)
    def test_day_counts_bounded_by_window(self, entries, now_day):
        checkins = [
            CheckIn(
                checkin_id=index + 1,
                user_id=user,
                venue_id=1,
                timestamp=day * SECONDS_PER_DAY + 60.0,
                reported_location=GeoPoint(40.0, -100.0),
                status=CheckInStatus.VALID if valid else CheckInStatus.FLAGGED,
            )
            for index, (user, day, valid) in enumerate(
                sorted(entries, key=lambda e: e[1])
            )
        ]
        now = now_day * SECONDS_PER_DAY
        counts = checkin_days_by_user(checkins, now)
        for user_id, days in counts.items():
            assert 1 <= days <= 61
            valid_days = {
                int(c.timestamp // SECONDS_PER_DAY)
                for c in checkins
                if c.user_id == user_id
                and c.status is CheckInStatus.VALID
                and now - 60 * SECONDS_PER_DAY <= c.timestamp <= now
            }
            assert days == len(valid_days)
