"""Tests for the E8 population statistics."""

import pytest

from repro.analysis.stats import (
    compute_population_stats,
    format_stats_table,
)


class TestWorldStats:
    """All proportions measured against the thesis's anchors (E8)."""

    @pytest.fixture(scope="class")
    def stats(self, crawl_db):
        return compute_population_stats(crawl_db)

    def test_zero_checkin_fraction(self, stats):
        assert stats.zero_checkin_fraction == pytest.approx(0.363, abs=0.04)

    def test_light_checkin_fraction(self, stats):
        assert stats.light_checkin_fraction == pytest.approx(0.204, abs=0.04)

    def test_more_than_half_under_six(self, stats):
        assert stats.under_six_fraction > 0.5

    def test_heavy_user_fraction(self, stats):
        # Paper: 0.2% with >= 1000 check-ins.
        assert 0.0 < stats.heavy_user_fraction < 0.01

    def test_username_fraction(self, stats):
        assert stats.username_fraction == pytest.approx(0.261, abs=0.05)

    def test_one_visitor_exceeds_one_checkin_venues(self, stats):
        # Paper: 2,014,305 one-visitor venues > 1,291,125 one-check-in
        # venues (a single visitor may check in repeatedly).
        assert stats.venues_with_one_visitor > stats.venues_with_one_checkin
        assert stats.venues_with_one_checkin > 0

    def test_mayor_only_specials_dominate(self, stats):
        assert stats.mayor_only_special_fraction > 0.9

    def test_average_mayorships_per_mayor(self, stats):
        # Paper: 5.45 on average; assert the same order of magnitude.
        assert 2.0 < stats.average_mayorships_per_mayor < 12.0

    def test_mayored_venues_exceed_mayor_holders(self, stats):
        assert stats.venues_with_mayors > stats.users_with_mayorships

    def test_recent_records_many_per_user(self, stats):
        # Paper: 20 M records over 1.89 M users (>= 10 per user is a
        # lower bound; ours counts only surviving list entries).
        assert stats.recent_checkin_records > stats.users

    def test_format_table_rows(self, stats):
        rows = format_stats_table(stats)
        assert len(rows) >= 12
        assert any("36.3%" in row for row in rows)
        assert any("Starbucks" not in row for row in rows)


class TestEmptyDatabase:
    def test_zero_safe(self):
        from repro.crawler.database import CrawlDatabase

        stats = compute_population_stats(CrawlDatabase())
        assert stats.users == 0
        assert stats.zero_checkin_fraction == 0.0
        assert stats.average_mayorships_per_mayor == 0.0
