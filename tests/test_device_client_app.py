"""Unit tests for the LBSN client application."""

import pytest

from repro.device.client_app import LbsnClientApp
from repro.device.emulator import Device, DeviceEmulator
from repro.errors import DeviceError
from repro.geo.coordinates import GeoPoint
from repro.lbsn.models import CheckInStatus
from repro.lbsn.service import LbsnService

ABQ = GeoPoint(35.0844, -106.6504)
SF = GeoPoint(37.8080, -122.4177)


@pytest.fixture
def setup():
    service = LbsnService()
    user = service.register_user("Phone Owner")
    cafe = service.create_venue("Cafe Uno", ABQ, city="Albuquerque, NM")
    wharf = service.create_venue(
        "Fisherman's Wharf Sign", SF, city="San Francisco, CA"
    )
    device = Device(service.clock, ABQ, gps_seed=1)
    app = LbsnClientApp(service, device.location_api, user.user_id)
    return service, user, cafe, wharf, device, app


class TestHonestClient:
    def test_current_location_from_api(self, setup):
        service, user, cafe, wharf, device, app = setup
        location = app.current_location()
        from repro.geo.distance import haversine_m

        assert haversine_m(location, ABQ) < 100.0

    def test_nearby_venues_at_physical_location(self, setup):
        service, user, cafe, wharf, device, app = setup
        nearby = app.nearby_venues()
        assert [v.venue_id for v in nearby] == [cafe.venue_id]

    def test_find_nearby_venue_by_name(self, setup):
        service, user, cafe, wharf, device, app = setup
        assert app.find_nearby_venue("uno").venue_id == cafe.venue_id
        assert app.find_nearby_venue("wharf") is None

    def test_honest_checkin_succeeds(self, setup):
        service, user, cafe, wharf, device, app = setup
        result = app.check_in(cafe.venue_id)
        assert result.checkin.status is CheckInStatus.VALID

    def test_remote_checkin_fails_gps_verification(self, setup):
        # The honest device cannot check into San Francisco from ABQ.
        service, user, cafe, wharf, device, app = setup
        result = app.check_in(wharf.venue_id)
        assert result.checkin.status is CheckInStatus.REJECTED

    def test_check_in_by_name(self, setup):
        service, user, cafe, wharf, device, app = setup
        result = app.check_in_by_name("Cafe")
        assert result.checkin.status is CheckInStatus.VALID

    def test_check_in_by_name_missing_raises(self, setup):
        service, user, cafe, wharf, device, app = setup
        with pytest.raises(DeviceError):
            app.check_in_by_name("Nonexistent Palace")

    def test_no_fix_raises(self, setup):
        service, user, cafe, wharf, device, app = setup
        device.gps.has_signal = False
        with pytest.raises(DeviceError):
            app.current_location()


class TestSpoofedClient:
    def test_emulator_checkin_to_remote_venue(self, setup):
        # The E1 flow: emulator set to SF, client sees SF venues, check-in
        # passes — the client app itself is honest throughout.
        service, user, cafe, wharf, device, app = setup
        emulator = DeviceEmulator(service.clock)
        emulator.flash_recovery_image("recovery")
        spoofed_app = LbsnClientApp(
            service, emulator.location_api, user.user_id
        )
        emulator.console.execute(f"geo fix {SF.longitude} {SF.latitude}")
        nearby = spoofed_app.nearby_venues()
        assert [v.venue_id for v in nearby] == [wharf.venue_id]
        result = spoofed_app.check_in(wharf.venue_id)
        assert result.checkin.status is CheckInStatus.VALID
        assert result.became_mayor
