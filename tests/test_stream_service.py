"""Service → bus integration: publication, commit-order sequencing.

Covers the event-ordering regression: sequence numbers must agree with
check-in commit order even with eight threads hammering the pipeline,
because the store allocates them inside the same locked section that
appends the row (:meth:`DataStore.add_checkin_committed`).
"""

import threading

from repro.geo.coordinates import GeoPoint
from repro.geo.distance import destination_point
from repro.lbsn.models import CheckIn, CheckInStatus
from repro.lbsn.service import LbsnService
from repro.lbsn.store import DataStore
from repro.stream import (
    CheckInAccepted,
    CheckInFlagged,
    CheckInRejected,
    EventBus,
    MayorChanged,
    UserRegistered,
    VenueCreated,
)

HERE = GeoPoint(35.0844, -106.6504)
FAR_AWAY = GeoPoint(40.7128, -74.0060)


def bus_service():
    bus = EventBus()
    log = []
    bus.subscribe("log", log.append)
    service = LbsnService(event_bus=bus)
    return bus, log, service


class TestPublication:
    def test_registration_and_venue_events(self):
        bus, log, service = bus_service()
        user = service.register_user("Alice", username="alice")
        venue = service.create_venue("Cafe", HERE)
        assert isinstance(log[0], UserRegistered)
        assert log[0].user_id == user.user_id
        assert log[0].username == "alice"
        assert isinstance(log[1], VenueCreated)
        assert log[1].venue_id == venue.venue_id
        assert log[1].location == venue.location

    def test_valid_checkin_publishes_accepted_and_mayor_change(self):
        bus, log, service = bus_service()
        user = service.register_user("Alice")
        venue = service.create_venue("Cafe", HERE)
        result = service.check_in(user.user_id, venue.venue_id, HERE)
        assert result.rewarded
        accepted = [e for e in log if isinstance(e, CheckInAccepted)]
        assert len(accepted) == 1
        assert accepted[0].user_id == user.user_id
        assert accepted[0].venue_location == venue.location
        assert accepted[0].points == result.points
        assert accepted[0].new_badge_count == len(result.new_badges)
        assert accepted[0].became_mayor == result.became_mayor
        mayor = [e for e in log if isinstance(e, MayorChanged)]
        assert len(mayor) == 1
        assert mayor[0].new_mayor_id == user.user_id

    def test_gps_rejection_publishes_rejected(self):
        bus, log, service = bus_service()
        user = service.register_user("Alice")
        venue = service.create_venue("Cafe", HERE)
        result = service.check_in(user.user_id, venue.venue_id, FAR_AWAY)
        assert result.checkin.status is CheckInStatus.REJECTED
        rejected = [e for e in log if isinstance(e, CheckInRejected)]
        assert len(rejected) == 1
        assert rejected[0].rule == "gps-verification"

    def test_flagged_checkin_publishes_flagged_with_rule(self):
        bus, log, service = bus_service()
        user = service.register_user("Racer")
        a = service.create_venue("A", HERE)
        b = service.create_venue("B", FAR_AWAY)
        service.check_in(user.user_id, a.venue_id, HERE, timestamp=0.0)
        # 2,000 km hop in 10 minutes: super-human speed.
        result = service.check_in(
            user.user_id, b.venue_id, FAR_AWAY, timestamp=600.0
        )
        assert result.checkin.status is CheckInStatus.FLAGGED
        flagged = [e for e in log if isinstance(e, CheckInFlagged)]
        assert len(flagged) == 1
        assert flagged[0].rule == "super-human-speed"

    def test_no_bus_means_no_overhead_events(self):
        service = LbsnService()  # default: no bus at all
        user = service.register_user("Quiet")
        venue = service.create_venue("Cafe", HERE)
        result = service.check_in(user.user_id, venue.venue_id, HERE)
        assert result.rewarded
        assert service.event_bus is None

    def test_event_seqs_strictly_increasing(self):
        bus, log, service = bus_service()
        user = service.register_user("Alice")
        venues = [
            service.create_venue(f"V{i}", destination_point(HERE, 0.0, 300.0 * i))
            for i in range(5)
        ]
        for i, venue in enumerate(venues):
            service.check_in(
                user.user_id, venue.venue_id, venue.location,
                timestamp=4_000.0 * (i + 1),
            )
        seqs = [e.seq for e in log]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)


class TestStoreCommittedAppend:
    def test_seq_matches_append_order_single_thread(self):
        store = DataStore()
        seqs = []
        for i in range(5):
            checkin = CheckIn(
                checkin_id=store.checkin_ids.allocate(),
                user_id=1,
                venue_id=2,
                timestamp=float(i),
                reported_location=HERE,
            )
            _, seq = store.add_checkin_committed(checkin)
            seqs.append(seq)
        assert seqs == sorted(seqs)
        assert store.event_seq_watermark() == seqs[-1] + 1

    def test_eight_threads_commit_order_equals_seq_order(self):
        """The regression: per-user sequence must be monotone in list order."""
        store = DataStore()
        per_thread = 200
        results = {}

        def hammer(user_id):
            mine = []
            for i in range(per_thread):
                checkin = CheckIn(
                    checkin_id=store.checkin_ids.allocate(),
                    user_id=user_id,
                    venue_id=user_id,
                    timestamp=float(i),
                    reported_location=HERE,
                )
                _, seq = store.add_checkin_committed(checkin)
                mine.append((checkin.checkin_id, seq))
            results[user_id] = mine

        threads = [
            threading.Thread(target=hammer, args=(user_id,))
            for user_id in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        all_seqs = []
        for user_id, mine in results.items():
            # Per-user: seqs strictly increasing in the order committed...
            seqs = [seq for _, seq in mine]
            assert seqs == sorted(seqs)
            assert len(set(seqs)) == len(seqs)
            # ...and matching the store's per-user list order exactly.
            stored_ids = [c.checkin_id for c in store.checkins_of_user(user_id)]
            assert stored_ids == [checkin_id for checkin_id, _ in mine]
            all_seqs.extend(seqs)
        # Globally: every allocation distinct, no gaps.
        assert sorted(all_seqs) == list(range(8 * per_thread))


class TestConcurrentServicePublish:
    def test_eight_threads_per_user_event_order_is_commit_order(self):
        bus = EventBus()
        recorded = []
        lock = threading.Lock()

        def collect(event):
            if isinstance(event, (CheckInAccepted, CheckInFlagged)):
                with lock:
                    recorded.append(event)

        bus.subscribe("collector", collect)
        service = LbsnService(event_bus=bus)
        users = [service.register_user(f"U{i}") for i in range(8)]
        venues = [
            service.create_venue(f"V{i}", destination_point(HERE, i * 45.0, 100.0 * i))
            for i in range(8)
        ]
        per_thread = 25

        def hammer(user, venue):
            for i in range(per_thread):
                service.check_in(
                    user.user_id,
                    venue.venue_id,
                    venue.location,
                    timestamp=4_000.0 * (i + 1),
                )

        threads = [
            threading.Thread(target=hammer, args=(users[i], venues[i]))
            for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        by_user = {}
        for event in recorded:
            by_user.setdefault(event.user_id, []).append(event)
        assert len(by_user) == 8
        for user in users:
            events = by_user[user.user_id]
            seqs = [e.seq for e in events]
            # Delivery order == seq order == commit order, per user.
            assert seqs == sorted(seqs)
            assert len(set(seqs)) == len(seqs)
            stored = service.store.checkins_of_user(user.user_id)
            assert [e.checkin_id for e in events] == [
                c.checkin_id for c in stored
            ]
