"""Consistent-hash routing, the durable bus tap, and shard semantics.

The load-bearing property here is the one the recovery layer depends on:
routing is a pure function of (user key, partition count), so a replayed
event lands on the same shard every time.  The N=1 equivalence test pins
that a single-partition pipeline is *exactly* a plain SuspicionLedger —
partitioning only changes scoring when the venue replica is sharded.
"""

import pytest

from repro.analysis.detection import DetectorConfig
from repro.durable.partition import (
    ConsistentHashRouter,
    PartitionError,
    user_key,
)
from repro.durable.worker import PartitionedDetectorPipeline
from repro.geo.coordinates import GeoPoint
from repro.stream.bus import BusError, EventBus
from repro.stream.detectors import StreamDetectorConfig
from repro.stream.events import (
    CheckInAccepted,
    CheckInFlagged,
    CheckInRejected,
    MayorChanged,
    UserRegistered,
    VenueCreated,
)
from repro.stream.ledger import SuspicionLedger

CONFIG = DetectorConfig(min_total_checkins=10)
STREAM_CONFIG = StreamDetectorConfig(max_users=256, max_venues=256)


def checkin(seq, user_id, venue_id=0, flagged=False):
    cls = CheckInFlagged if flagged else CheckInAccepted
    kwargs = dict(
        user_id=user_id,
        venue_id=venue_id,
        venue_location=GeoPoint(40.0, -74.0),
        reported_location=GeoPoint(40.0, -74.0),
        checkin_id=seq,
    )
    if not flagged:
        kwargs["points"] = 3
    return cls(seq, float(seq) * 60.0, **kwargs)


class TestRouter:
    def test_routing_is_deterministic(self):
        one = ConsistentHashRouter(4)
        two = ConsistentHashRouter(4)
        for user_id in range(500):
            assert one.route_key(user_id) == two.route_key(user_id)

    def test_routes_are_in_range(self):
        router = ConsistentHashRouter(5)
        for user_id in range(1000):
            assert 0 <= router.route_key(user_id) < 5

    def test_single_partition_routes_everything_to_zero(self):
        router = ConsistentHashRouter(1)
        assert router.spread(range(200)) == [200]

    def test_spread_is_roughly_balanced(self):
        counts = ConsistentHashRouter(4, virtual_nodes=64).spread(range(4000))
        assert min(counts) > 0
        # Consistent hashing is lumpy but not degenerate: no shard
        # should own more than ~2.5x its fair share at this scale.
        assert max(counts) < 2500

    def test_growing_the_ring_moves_few_keys(self):
        # The defining property vs. modulo hashing: adding a partition
        # relocates ~1/(N+1) of keys, not ~all of them.
        four = ConsistentHashRouter(4)
        five = ConsistentHashRouter(5)
        moved = sum(
            1
            for key in range(2000)
            if four.route_key(key) != five.route_key(key)
        )
        assert moved < 1000  # modulo hashing would move ~1600

    def test_bad_arguments_rejected(self):
        with pytest.raises(PartitionError):
            ConsistentHashRouter(0)
        with pytest.raises(PartitionError):
            ConsistentHashRouter(2, virtual_nodes=0)

    def test_user_key_extraction(self):
        keyed = [
            checkin(1, user_id=7),
            checkin(2, user_id=7, flagged=True),
            CheckInRejected(
                3, 0.0, user_id=7, venue_id=1,
                venue_location=GeoPoint(0.0, 0.0),
                reported_location=GeoPoint(0.0, 0.0),
                checkin_id=3,
            ),
            UserRegistered(4, 0.0, user_id=7),
        ]
        for event in keyed:
            assert user_key(event) == 7
        assert user_key(VenueCreated(5, 0.0, venue_id=1)) is None
        assert user_key(MayorChanged(6, 0.0, venue_id=1)) is None

    def test_route_event_broadcasts_keyless(self):
        router = ConsistentHashRouter(3)
        assert router.route_event(VenueCreated(0, 0.0, venue_id=1)) is None
        assert router.route_event(checkin(1, user_id=9)) == router.route_key(9)


class TestSinglePartitionEquivalence:
    def test_n1_pipeline_is_exactly_a_plain_ledger(self, tmp_path):
        """With one shard nothing is split: digests must match exactly."""
        events = []
        for seq in range(300):
            events.append(
                checkin(
                    seq,
                    user_id=seq % 9,
                    venue_id=seq % 5,
                    flagged=(seq % 7 == 0),
                )
            )
        plain = SuspicionLedger(config=CONFIG, stream_config=STREAM_CONFIG)
        with PartitionedDetectorPipeline(
            1, tmp_path, config=CONFIG, stream_config=STREAM_CONFIG
        ) as pipeline:
            for event in events:
                plain.on_event(event)
                pipeline.on_event(event)
            assert pipeline.workers[0].ledger.digest() == plain.digest()
            assert sorted(pipeline.suspect_ids()) == sorted(
                plain.suspect_ids()
            )

    def test_sharded_run_routes_each_user_to_one_wal(self, tmp_path):
        with PartitionedDetectorPipeline(
            4, tmp_path, config=CONFIG, stream_config=STREAM_CONFIG
        ) as pipeline:
            for seq in range(200):
                pipeline.on_event(checkin(seq, user_id=seq % 20))
            per_shard = [w.wal.appended for w in pipeline.workers]
            assert sum(per_shard) == 200  # keyed events are not duplicated
        # Every user's events live in exactly one shard's WAL.
        router = pipeline.router
        for seq in range(200):
            owner = router.route_key(seq % 20)
            assert owner == router.route_event(checkin(seq, user_id=seq % 20))

    def test_keyless_events_reach_every_shard(self, tmp_path):
        with PartitionedDetectorPipeline(3, tmp_path) as pipeline:
            pipeline.on_event(VenueCreated(0, 0.0, venue_id=1))
            assert [w.wal.appended for w in pipeline.workers] == [1, 1, 1]


class TestDurableBusTap:
    def test_durable_tap_runs_before_plain_subscribers(self):
        order = []
        bus = EventBus()
        bus.subscribe("plain", lambda e: order.append("plain"))
        bus.subscribe("tap", lambda e: order.append("tap"), durable=True)
        bus.publish(UserRegistered(0, 0.0, user_id=1))
        bus.close()
        assert order == ["tap", "plain"]
        # Durable-first even though it subscribed second.

    def test_durable_background_combination_rejected(self):
        bus = EventBus()
        try:
            with pytest.raises(BusError, match="synchronous"):
                bus.subscribe(
                    "tap", lambda e: None, durable=True, background=True
                )
        finally:
            bus.close()

    def test_subscriber_names_list_durable_first(self):
        bus = EventBus()
        bus.subscribe("plain", lambda e: None)
        bus.subscribe("tap", lambda e: None, durable=True)
        assert bus.subscriber_names() == ["tap", "plain"]
        bus.unsubscribe("tap")
        assert bus.subscriber_names() == ["plain"]
        bus.close()

    def test_pipeline_attach_taps_the_bus(self, tmp_path):
        bus = EventBus()
        with PartitionedDetectorPipeline(
            2, tmp_path, config=CONFIG, stream_config=STREAM_CONFIG
        ) as pipeline:
            pipeline.attach(bus)
            for seq in range(50):
                bus.publish(checkin(seq, user_id=seq % 6))
            assert pipeline.events_routed == 50
            total = sum(w.wal.appended for w in pipeline.workers)
            assert total == 50
        bus.close()
