"""Ledger pinning: externally attested suspects survive every rescore.

The honeypot tier (repro.defense.honeypot) holds evidence the
three-factor scoring model cannot express; ``SuspicionLedger.pin``
promotes that evidence into permanent ledger membership.  These tests
pin down the contract: pinned users are reportable at any volume,
survive lazy rescore-on-read, carry rule + trace, round-trip through
snapshots (including pre-pinning snapshots), and land in the digest.
"""

from repro.analysis.detection import DetectorConfig
from repro.defense.honeypot import RULE_HONEYPOT
from repro.geo.coordinates import GeoPoint
from repro.obs.log import LogHub
from repro.obs.metrics import MetricsRegistry
from repro.stream import CheckInAccepted, SuspicionLedger

HERE = GeoPoint(35.0844, -106.6504)


def accepted(user_id, venue_id, ts, where=HERE, badges=0):
    return CheckInAccepted(
        seq=-1,
        timestamp=ts,
        user_id=user_id,
        venue_id=venue_id,
        venue_location=where,
        reported_location=where,
        new_badge_count=badges,
    )


class TestPinBasics:
    def test_pinned_user_is_suspect_with_zero_checkins(self):
        # External evidence needs no volume: the min_total_checkins gate
        # must not launder away a honeypot hit on a fresh account.
        ledger = SuspicionLedger(DetectorConfig(min_total_checkins=100))
        ledger.pin(7, rule=RULE_HONEYPOT, trace_id="tr-1")
        assert ledger.is_suspect(7)
        assert ledger.pinned_rule(7) == RULE_HONEYPOT
        assert ledger.flag_trace_id(7) == "tr-1"

    def test_pin_survives_lazy_rescore_on_read(self):
        ledger = SuspicionLedger(DetectorConfig(min_total_checkins=100))
        ledger.pin(7, rule=RULE_HONEYPOT)
        # Low-volume organic activity would evict an unpinned suspect on
        # the next read; the pin must hold through repeated rescoring.
        for i in range(5):
            ledger.on_event(accepted(7, i, ts=float(i)))
        for _ in range(3):
            assert ledger.is_suspect(7)
        assert 7 in ledger.suspect_ids()

    def test_pin_is_idempotent_one_flag(self):
        metrics = MetricsRegistry()
        ledger = SuspicionLedger(
            DetectorConfig(min_total_checkins=100), metrics=metrics
        )
        ledger.pin(7, rule=RULE_HONEYPOT, trace_id="tr-first")
        ledger.pin(7, rule="manual-review", trace_id="tr-second")
        flags = metrics.get("repro_ledger_flags_raised_total")
        assert flags.value == 1
        # Rule updates; the original flag trace is preserved.
        assert ledger.pinned_rule(7) == "manual-review"
        assert ledger.flag_trace_id(7) == "tr-first"

    def test_pin_emits_ledger_flag_record_with_rule(self):
        hub = LogHub()
        ledger = SuspicionLedger(
            DetectorConfig(min_total_checkins=100), log=hub
        )
        ledger.pin(9, rule=RULE_HONEYPOT, trace_id="tr-9")
        records = [
            record
            for record in hub.records()
            if record.event == "ledger.flag"
        ]
        assert len(records) == 1
        assert records[0].fields["rule"] == RULE_HONEYPOT
        assert records[0].fields["trace_id"] == "tr-9"
        assert records[0].fields["user_id"] == 9

    def test_unpinned_users_keep_normal_threshold_semantics(self):
        ledger = SuspicionLedger(DetectorConfig(min_total_checkins=50))
        ledger.pin(7, rule=RULE_HONEYPOT)
        for i in range(30):
            ledger.on_event(accepted(1, i, ts=float(i)))
        assert not ledger.is_suspect(1)
        assert ledger.is_suspect(7)

    def test_suspects_gauge_counts_pinned(self):
        metrics = MetricsRegistry()
        ledger = SuspicionLedger(
            DetectorConfig(min_total_checkins=100), metrics=metrics
        )
        ledger.pin(3, rule=RULE_HONEYPOT)
        ledger.pin(4, rule=RULE_HONEYPOT)
        assert metrics.get("repro_ledger_suspects").value == 2


class TestPinSnapshotRoundTrip:
    def test_state_dict_round_trips_pins(self):
        ledger = SuspicionLedger(DetectorConfig(min_total_checkins=100))
        ledger.pin(7, rule=RULE_HONEYPOT, trace_id="tr-7")
        restored = SuspicionLedger(
            DetectorConfig(min_total_checkins=100)
        )
        restored.load_state_dict(ledger.state_dict())
        assert restored.is_suspect(7)
        assert restored.pinned_rule(7) == RULE_HONEYPOT
        assert restored.flag_trace_id(7) == "tr-7"
        assert restored.digest() == ledger.digest()

    def test_pre_pinning_snapshots_still_load(self):
        # Snapshots written before the adversary PR carry no "pinned"
        # key; loading one must not raise and must restore everything
        # else (SNAPSHOT_VERSION stays 1).
        ledger = SuspicionLedger(DetectorConfig(min_total_checkins=20))
        for i in range(25):
            ledger.on_event(accepted(1, i, ts=float(i), badges=2))
        assert ledger.is_suspect(1)
        legacy = ledger.state_dict()
        legacy.pop("pinned")
        restored = SuspicionLedger(DetectorConfig(min_total_checkins=20))
        restored.load_state_dict(legacy)
        assert restored.is_suspect(1)
        assert restored.pinned_rule(1) is None

    def test_pins_change_the_digest(self):
        plain = SuspicionLedger(DetectorConfig())
        pinned = SuspicionLedger(DetectorConfig())
        pinned.pin(7, rule=RULE_HONEYPOT)
        assert plain.digest() != pinned.digest()

    def test_digest_ignores_pin_traces(self):
        # Trace ids are uuid-per-request; two otherwise identical runs
        # must compare equal, exactly like ordinary flag traces.
        one = SuspicionLedger(DetectorConfig())
        one.pin(7, rule=RULE_HONEYPOT, trace_id="tr-aaa")
        two = SuspicionLedger(DetectorConfig())
        two.pin(7, rule=RULE_HONEYPOT, trace_id="tr-bbb")
        assert one.digest() == two.digest()
