"""Observability routes stay correct while the web surface burns.

Satellite regression: the fault middleware injects 5xx / timeouts into
public pages, but ``/metrics``, ``/debug/vars``, and ``/debug/logs``
are exempt by prefix and must keep serving accurate telemetry — they
are exactly the routes an operator needs *during* an incident.
"""

from __future__ import annotations

import json


class TestPublicSurfaceUnderStorm:
    def test_injected_5xx_observed(self, storm):
        statuses = storm.report.web_statuses
        assert sum(statuses.values()) == storm.config.web_probes
        injected = sum(
            count for status, count in statuses.items() if status >= 500
        )
        assert injected > 0

    def test_every_5xx_is_an_injected_500(self, storm):
        """The standard storm's web spec is HTTP/500; nothing else may
        produce a server error, and every fired web fault during the
        probe phase shows up in the status histogram."""
        errors = {
            status: count
            for status, count in storm.report.web_statuses.items()
            if status >= 500
        }
        assert set(errors) == {500}
        assert storm.report.faults_fired.get("web.request", 0) >= sum(
            errors.values()
        )

    def test_most_pages_still_served(self, storm):
        statuses = storm.report.web_statuses
        ok = statuses.get(200, 0)
        assert ok > storm.config.web_probes // 2

    def test_clean_run_serves_everything(self, clean):
        statuses = clean.report.web_statuses
        assert set(statuses) == {200}


class TestObservabilityRoutesExempt:
    def test_metrics_route_stays_ok(self, storm):
        assert storm.report.metrics_route_ok is True

    def test_debug_vars_route_stays_ok(self, storm):
        assert storm.report.debug_vars_route_ok is True

    def test_debug_logs_route_stays_ok(self, storm):
        assert storm.report.debug_logs_route_ok is True

    def test_crawl_traffic_shares_the_web_fault_stream(self, storm):
        """Phase A's crawler rides the same middleware, so total
        ``web.request`` fires exceed what the probe histogram alone
        shows — the point is armed for *all* non-exempt traffic."""
        probe_500s = storm.report.web_statuses.get(500, 0)
        assert storm.report.faults_fired.get("web.request", 0) > probe_500s


class TestRegistryReflectsInjectedErrors:
    def test_web_faults_counted_in_metrics(self, storm):
        family = storm.metrics.get("repro_faults_injected_total")
        assert family is not None
        web_fired = sum(
            int(child.value)
            for labelvalues, child in family.children()
            if labelvalues[0] == "web.request"
        )
        assert web_fired == storm.report.faults_fired.get("web.request", 0)
        assert web_fired > 0

    def test_injected_web_faults_logged(self, storm):
        records = [
            record
            for record in storm.records(event="fault.injected")
            if record.fields["point"] == "web.request"
        ]
        assert records
        # Labels carry the faulted path — never an exempt one.
        for record in records:
            label = record.fields.get("label") or ""
            assert not label.startswith("/metrics")
            assert not label.startswith("/debug/")

    def test_flight_recorder_has_web_faults_in_jsonl(self, storm):
        lines = [
            json.loads(line)
            for line in storm.jsonl().splitlines()
            if '"fault.injected"' in line
        ]
        assert any(
            record.get("point") == "web.request" for record in lines
        )
