"""The chaos harness: seeded storms, replays, and a fault-free control.

Every fixture here is built on :func:`repro.workload.chaos.run_chaos`
and shares one contract: **all time is simulated**.  An autouse guard
monkeypatches ``time.sleep`` to fail loudly, so any code path that
tries to wait on the wall clock turns the whole suite red.

The expensive artefacts (a full chaos run replays a world build, a
crawl, a check-in storm, a breaker drill, and a web probe) are
session-scoped; tests treat harnesses as read-only.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Optional

import pytest

from repro.obs.log import LogHub
from repro.obs.metrics import MetricsRegistry
from repro.workload.chaos import ChaosConfig, ChaosReport, run_chaos

#: Small but complete: ~570 users / ~1,680 venues, a few seconds a run.
CHAOS_SCALE = 0.0003
CHAOS_SEED = 42
CHAOS_FAULT_SEED = 1337
CHAOS_CHECKINS = 120
CHAOS_WEB_PROBES = 120


def make_config(**overrides) -> ChaosConfig:
    """The suite's canonical config, with per-test overrides."""
    base = ChaosConfig(
        scale=CHAOS_SCALE,
        seed=CHAOS_SEED,
        fault_seed=CHAOS_FAULT_SEED,
        checkins=CHAOS_CHECKINS,
        web_probes=CHAOS_WEB_PROBES,
    )
    return dataclasses.replace(base, **overrides)


class ChaosHarness:
    """One instrumented chaos run: config + registry + log hub + report.

    Reusable beyond these tests — ``ChaosHarness.run(fault_seed=7)``
    gives any suite a fully-observed storm to assert against, and
    running it twice with identical overrides is the replay contract.
    """

    def __init__(
        self,
        config: ChaosConfig,
        metrics: MetricsRegistry,
        log: LogHub,
        report: ChaosReport,
    ) -> None:
        self.config = config
        self.metrics = metrics
        self.log = log
        self.report = report

    @classmethod
    def run(cls, config: Optional[ChaosConfig] = None, **overrides):
        """Execute one chaos run under fresh instrumentation."""
        config = config or make_config(**overrides)
        metrics = MetricsRegistry()
        log = LogHub(ring_size=65_536, metrics=metrics)
        report = run_chaos(config, metrics=metrics, log=log)
        return cls(config, metrics, log, report)

    # Convenience views ------------------------------------------------

    def records(self, **filters):
        """Structured log records, filtered like ``LogHub.records``."""
        return self.log.records(**filters)

    def jsonl(self) -> str:
        """The whole flight recorder as JSONL."""
        return self.log.export_jsonl()

    def metric_names(self):
        return self.metrics.names()


@pytest.fixture(autouse=True)
def forbid_wall_clock_sleep(monkeypatch):
    """Chaos tests must never wait on the wall clock.

    Applies to the session-scoped runs too: they are built lazily,
    inside the first test that requests them, while this guard is live.
    """

    def _no_sleep(seconds):  # pragma: no cover - failure path
        raise AssertionError(
            f"wall-clock time.sleep({seconds!r}) during a chaos test; "
            "pace simulated work through clock.advance instead"
        )

    monkeypatch.setattr(time, "sleep", _no_sleep)


@pytest.fixture(scope="session")
def storm() -> ChaosHarness:
    """The canonical 20%/5% acceptance storm, fully instrumented."""
    return ChaosHarness.run()


@pytest.fixture(scope="session")
def storm_replay() -> ChaosHarness:
    """The identical storm run a second time — the replay of ``storm``."""
    return ChaosHarness.run()


@pytest.fixture(scope="session")
def clean() -> ChaosHarness:
    """The same workload seeds with no fault injector wired at all."""
    return ChaosHarness.run(faults_enabled=False)
