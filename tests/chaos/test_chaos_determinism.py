"""Same seeds ⇒ same storm: the replay contract, end to end."""

from __future__ import annotations

import pytest

from tests.chaos.conftest import ChaosHarness


@pytest.fixture(scope="module")
def other_seed_storm() -> ChaosHarness:
    """The same workload under a differently-seeded storm."""
    return ChaosHarness.run(fault_seed=2026)


class TestReplayIdentical:
    def test_fault_sequence_digest_identical(self, storm, storm_replay):
        assert storm.report.fault_sequence_digest
        assert (
            storm.report.fault_sequence_digest
            == storm_replay.report.fault_sequence_digest
        )

    def test_committed_state_digest_identical(self, storm, storm_replay):
        assert storm.report.committed_state_digest
        assert (
            storm.report.committed_state_digest
            == storm_replay.report.committed_state_digest
        )

    def test_fired_counts_identical(self, storm, storm_replay):
        assert storm.report.faults_fired == storm_replay.report.faults_fired
        assert sum(storm.report.faults_fired.values()) > 0

    def test_crawl_outcome_identical(self, storm, storm_replay):
        a, b = storm.report.crawl, storm_replay.report.crawl
        assert a is not None and b is not None
        assert (a.hits, a.misses, a.failures, a.transient_failures) == (
            b.hits,
            b.misses,
            b.failures,
            b.transient_failures,
        )

    def test_checkin_outcome_identical(self, storm, storm_replay):
        a, b = storm.report, storm_replay.report
        assert a.checkins_returned == b.checkins_returned
        assert a.commit_retries == b.commit_retries
        assert a.ledger_suspects == b.ledger_suspects
        assert a.victim_errors == b.victim_errors

    def test_web_statuses_identical(self, storm, storm_replay):
        assert storm.report.web_statuses == storm_replay.report.web_statuses


class TestDigestShape:
    def test_digests_are_sha256_hex(self, storm):
        for digest in (
            storm.report.fault_sequence_digest,
            storm.report.committed_state_digest,
        ):
            assert len(digest) == 64
            int(digest, 16)  # raises if not hex

    def test_digests_differ_from_each_other(self, storm):
        assert (
            storm.report.fault_sequence_digest
            != storm.report.committed_state_digest
        )


class TestSeedSensitivity:
    def test_different_fault_seed_different_sequence(
        self, storm, other_seed_storm
    ):
        assert (
            other_seed_storm.report.fault_sequence_digest
            != storm.report.fault_sequence_digest
        )

    def test_different_fault_seed_same_committed_state(
        self, storm, other_seed_storm
    ):
        """The committed end state is invariant to *which* storm blew."""
        assert (
            other_seed_storm.report.committed_state_digest
            == storm.report.committed_state_digest
        )
