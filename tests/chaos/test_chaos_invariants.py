"""The acceptance invariants: what must hold while the storm blows.

Each test pins one clause of the resilience contract:

* no committed check-in is ever lost — retries land every one;
* the faulted run's committed end state equals the fault-free run's
  (ledger parity in one digest);
* the crawl frontier drains despite a 20% fetch-failure storm;
* targeted bus faults stay isolated to the victim subscriber;
* the breaker drill opens, half-opens, and closes on schedule;
* every injected fault and recovery is visible in metrics and in the
  JSONL flight recorder, carrying trace ids.
"""

from __future__ import annotations

import json

from repro.obs.log import WARNING


class TestNoLostCommits:
    def test_every_checkin_returned(self, storm):
        report = storm.report
        assert report.checkins_attempted == storm.config.checkins
        assert report.checkins_returned == report.checkins_attempted
        assert report.commit_success_rate == 1.0

    def test_no_retry_budget_exhausted(self, storm):
        assert storm.report.commit_exhausted == 0

    def test_commit_faults_actually_fired(self, storm):
        """The invariant is vacuous unless the storm really bit."""
        assert storm.report.commit_retries > 0
        assert storm.report.faults_fired.get("store.commit", 0) > 0


class TestFaultFreeParity:
    def test_clean_run_has_no_fault_sequence(self, clean):
        assert clean.report.fault_sequence_digest == ""
        assert clean.report.faults_fired == {}

    def test_committed_state_matches_clean_run(self, storm, clean):
        assert (
            storm.report.committed_state_digest
            == clean.report.committed_state_digest
        )

    def test_ledger_suspects_match_clean_run(self, storm, clean):
        assert storm.report.ledger_suspects == clean.report.ledger_suspects
        assert storm.report.ledger_suspects  # the cheaters are in there

    def test_clean_run_needed_no_retries(self, clean):
        assert clean.report.commit_retries == 0
        assert clean.report.victim_errors == 0


class TestCrawlSurvivesStorm:
    def test_frontier_drained(self, storm):
        assert not storm.report.crawl_aborted
        crawl = storm.report.crawl
        assert crawl is not None
        assert crawl.hits > 0

    def test_storm_actually_hit_the_crawl(self, storm):
        assert storm.report.faults_fired.get("crawler.fetch", 0) > 0

    def test_failures_classified_transient(self, storm):
        """Injected fetch faults are retryable, not permanent refusals."""
        crawl = storm.report.crawl
        assert crawl.transient_failures == crawl.failures

    def test_page_accounting_balances(self, storm):
        crawl = storm.report.crawl
        assert crawl.hits + crawl.misses + crawl.failures == (
            crawl.pages_fetched
        )

    def test_crawl_recovers_almost_everything(self, storm, clean):
        """Retries recover every page short of a full retry-budget bust.

        A page is lost only when *all* ``fetch_max_retries + 1`` attempts
        draw a fault (p = fetch_failure^4 ≈ 0.16%), so the clean run's
        hit count bounds the storm's hits + residual failures.
        """
        assert clean.report.crawl is not None
        assert clean.report.crawl.failures == 0
        crawl = storm.report.crawl
        assert crawl.hits + crawl.failures >= clean.report.crawl.hits
        # And the residue really is the tail of the 0.2^4 geometric.
        assert crawl.failures <= max(5, crawl.pages_fetched // 50)


class TestBusIsolation:
    def test_victim_absorbed_faults(self, storm):
        assert storm.report.victim_errors > 0

    def test_victim_still_saw_the_stream(self, storm):
        assert storm.report.victim_delivered > 0

    def test_ledger_untouched_by_victim_faults(self, storm, clean):
        # Same events reached the detector despite subscriber storms.
        assert storm.report.ledger_suspects == clean.report.ledger_suspects


class TestBreakerDrill:
    def test_opened_at_threshold(self, storm):
        assert (
            storm.report.breaker_failures_to_open
            == storm.config.breaker_failure_threshold
        )

    def test_full_lifecycle(self, storm):
        report = storm.report
        assert report.breaker_short_circuited
        assert report.breaker_half_opened
        assert report.breaker_reopened_on_probe_failure
        assert report.breaker_closed_after_probe


class TestMetricsVisibility:
    def test_fault_metrics_registered(self, storm):
        names = set(storm.metric_names())
        assert "repro_faults_injected_total" in names
        assert "repro_faults_checks_total" in names
        assert "repro_faults_armed" in names

    def test_retry_metrics_registered(self, storm):
        names = set(storm.metric_names())
        assert "repro_retry_attempts_total" in names
        assert "repro_retry_recoveries_total" in names
        assert "repro_retry_exhausted_total" in names

    def test_breaker_metrics_registered(self, storm):
        names = set(storm.metric_names())
        assert "repro_breaker_state" in names
        assert "repro_breaker_transitions_total" in names
        assert "repro_breaker_short_circuits_total" in names

    def test_injected_counts_match_report(self, storm):
        family = storm.metrics.get("repro_faults_injected_total")
        by_point: dict = {}
        for labelvalues, child in family.children():
            point = labelvalues[0]
            by_point[point] = by_point.get(point, 0) + int(child.value)
        assert by_point == storm.report.faults_fired

    def test_retries_recovered(self, storm):
        def total(name: str) -> float:
            family = storm.metrics.get(name)
            assert family is not None
            return sum(child.value for _, child in family.children())

        assert total("repro_retry_recoveries_total") > 0
        assert total("repro_retry_exhausted_total") == 0


class TestLogVisibility:
    def test_fault_injected_records_present(self, storm):
        records = storm.records(event="fault.injected")
        assert records
        assert all(record.level >= WARNING for record in records)
        points = {record.fields["point"] for record in records}
        assert "store.commit" in points

    def test_retry_attempts_logged_with_trace_ids(self, storm):
        records = storm.records(event="retry.attempt")
        assert records
        commit_retries = [
            r for r in records if r.fields.get("op") == "store.commit"
        ]
        assert commit_retries
        assert all(r.trace_id for r in commit_retries)

    def test_commit_faults_carry_trace_ids(self, storm):
        commit_faults = [
            r
            for r in storm.records(event="fault.injected")
            if r.fields["point"] == "store.commit"
        ]
        assert commit_faults
        assert all(r.trace_id for r in commit_faults)

    def test_breaker_transitions_logged(self, storm):
        events = {
            record.event
            for record in storm.records()
            if record.event.startswith("breaker.")
        }
        assert {"breaker.open", "breaker.half_open", "breaker.closed"} <= (
            events
        )

    def test_flight_recorder_exports_jsonl(self, storm):
        lines = [
            line for line in storm.jsonl().splitlines() if line.strip()
        ]
        assert lines
        parsed = [json.loads(line) for line in lines[:50]]
        assert all("event" in record and "ts" in record for record in parsed)

    def test_zero_wall_clock_cost(self, storm, clean):
        """Both runs finish in interactive time — nothing really slept."""
        assert storm.report.wall_seconds < 60.0
        assert clean.report.wall_seconds < 60.0
