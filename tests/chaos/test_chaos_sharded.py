"""Chaos regression: the commit storm against a ``ShardedDataStore``.

PR 4's digest-parity contract must survive sharding untouched:

* faulted vs fault-free runs at N=4 agree on the committed-state digest
  (fired commit faults never leave partial state, shard or no shard);
* the sharded faulted run draws the *same* fault decision stream as the
  single-lock run (the injector streams are keyed by (seed, point, k),
  and the sequential driver performs identical checks);
* the committed-state digest itself is shard-count-independent — the
  digest hashes rows and watermark, not lock layout.
"""

from __future__ import annotations

import pytest

from repro.lbsn.sharded import ShardedDataStore

from tests.chaos.conftest import ChaosHarness


@pytest.fixture(scope="module")
def sharded_storm() -> ChaosHarness:
    """The canonical faulted storm, store split across four shards."""
    return ChaosHarness.run(store_shards=4)


@pytest.fixture(scope="module")
def sharded_control() -> ChaosHarness:
    """Same sharded workload, no injector wired at all."""
    return ChaosHarness.run(store_shards=4, faults_enabled=False)


class TestShardedStorm:
    def test_runs_against_a_sharded_store(self, sharded_storm):
        # The knob actually changed the wiring (not a silent no-op).
        assert sharded_storm.config.store_shards == 4

    def test_checkins_landed(self, sharded_storm):
        assert sharded_storm.report.checkins_returned > 0

    def test_fault_vs_clean_committed_state_parity(
        self, sharded_storm, sharded_control
    ):
        """Fired commit faults stay atomic across shard locks."""
        assert (
            sharded_storm.report.committed_state_digest
            == sharded_control.report.committed_state_digest
        )

    def test_commit_faults_actually_fired(self, sharded_storm):
        fired = sharded_storm.report.faults_fired
        assert fired.get("store.commit", 0) > 0


class TestShardCountIndependence:
    def test_fault_sequence_digest_matches_single_lock_run(
        self, storm, sharded_storm
    ):
        """Same seeds, same decision streams — shard layout is invisible
        to the injector."""
        assert (
            sharded_storm.report.fault_sequence_digest
            == storm.report.fault_sequence_digest
        )

    def test_committed_state_digest_matches_single_lock_run(
        self, storm, sharded_storm
    ):
        """N=1 and N=4 stores commit byte-identical state."""
        assert (
            sharded_storm.report.committed_state_digest
            == storm.report.committed_state_digest
        )

    def test_outcome_counters_match_single_lock_run(
        self, storm, sharded_storm
    ):
        assert (
            sharded_storm.report.checkins_returned
            == storm.report.checkins_returned
        )
        assert (
            sharded_storm.report.commit_retries
            == storm.report.commit_retries
        )

    def test_sharded_replay_is_deterministic(self, sharded_storm):
        replay = ChaosHarness.run(store_shards=4)
        assert (
            replay.report.committed_state_digest
            == sharded_storm.report.committed_state_digest
        )
        assert (
            replay.report.fault_sequence_digest
            == sharded_storm.report.fault_sequence_digest
        )


class TestStoreWiring:
    def test_service_store_is_sharded(self):
        from repro.lbsn.service import LbsnService

        service = LbsnService(store_shards=4)
        assert isinstance(service.store, ShardedDataStore)
        assert service.store.shard_count == 4

    def test_default_service_store_is_single_lock(self):
        from repro.lbsn.service import LbsnService
        from repro.lbsn.store import DataStore

        assert isinstance(LbsnService().store, DataStore)
