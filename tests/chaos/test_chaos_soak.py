"""Soak-tier chaos runs — excluded from tier-1 via ``-m "not soak"``.

These push the standard storm harder than the smoke fixtures in
``conftest.py``: a bigger world, more check-ins, and a harsher fault mix,
repeated back to back to catch state leaking between runs. They stay
fully deterministic (seeded faults, simulated clocks, no wall-clock
sleeps — the autouse guard still applies), they are just *slow*, which
is why they ride the nightly/soak pipeline instead of the per-PR gate:

    PYTHONPATH=src python -m pytest -m soak tests/chaos -q
"""

import pytest

from .conftest import ChaosHarness

pytestmark = pytest.mark.soak

SOAK_SCALE = 0.001
SOAK_CHECKINS = 600
SOAK_FETCH_FAILURE = 0.35
SOAK_SUBSCRIBER_FAILURE = 0.10


def _soak_overrides(**extra):
    base = dict(
        scale=SOAK_SCALE,
        checkins=SOAK_CHECKINS,
        fetch_failure=SOAK_FETCH_FAILURE,
        subscriber_failure=SOAK_SUBSCRIBER_FAILURE,
    )
    base.update(extra)
    return base


class TestHarshStormSoak:
    def test_invariants_hold_under_a_harsher_longer_storm(self):
        storm = ChaosHarness.run(**_soak_overrides())
        replay = ChaosHarness.run(**_soak_overrides())
        clean = ChaosHarness.run(**_soak_overrides(faults_enabled=False))

        # Determinism survives the heavier fault mix.
        report = storm.report
        assert (
            report.fault_sequence_digest
            == replay.report.fault_sequence_digest
        )
        assert (
            report.committed_state_digest
            == replay.report.committed_state_digest
        )

        # No lost committed check-ins, even at 35% fetch / harsher storm.
        assert report.checkins_returned == SOAK_CHECKINS
        assert report.commit_exhausted == 0

        # Fault/no-fault parity at soak scale.
        assert (
            report.committed_state_digest
            == clean.report.committed_state_digest
        )
        assert report.ledger_suspects == clean.report.ledger_suspects

        # The frontier still drains under 35% fetch failure.
        assert not report.crawl_aborted
        assert report.crawl.hits > 0

    def test_back_to_back_storms_do_not_leak_state(self):
        first = ChaosHarness.run(**_soak_overrides())
        second = ChaosHarness.run(**_soak_overrides())
        # A fresh harness must reproduce the first run exactly: nothing
        # (module caches, class attributes, global registries) carries
        # over between storms.
        assert (
            first.report.fault_sequence_digest
            == second.report.fault_sequence_digest
        )
        assert (
            first.report.committed_state_digest
            == second.report.committed_state_digest
        )
        assert first.report.faults_fired == second.report.faults_fired
