#!/usr/bin/env python3
"""Quickstart: spoof one check-in, thousands of miles away.

Reproduces the thesis's core demonstration (§3.1, Fig 3.2) in under a
minute: boot a simulated LBSN world, set up the Android-emulator spoofing
channel from "Albuquerque", and check into Fisherman's Wharf Sign in San
Francisco — collecting points and the mayorship on the way.

Run:  python examples/quickstart.py
"""

from repro import build_world, build_emulator_attacker
from repro.geo import GeoPoint, haversine_miles

ALBUQUERQUE = GeoPoint(35.0844, -106.6504)
WHARF = GeoPoint(37.8080, -122.4177)


def main() -> None:
    print("building a small simulated LBSN world ...")
    world = build_world(scale=0.0005, seed=1)
    service = world.service
    print(
        f"  {service.store.user_count()} users, "
        f"{service.store.venue_count()} venues, "
        f"{service.store.checkin_count()} historical check-ins"
    )

    # The thesis's target venue.
    wharf = service.create_venue(
        "Fisherman's Wharf Sign", WHARF, city="San Francisco, CA"
    )

    # The attacker: a fresh account + a device emulator with a hacked
    # recovery image and the client app installed (§3.1, method 4).
    user, emulator, channel = build_emulator_attacker(service)
    print(f"\nattacker account: user {user.user_id} ({user.display_name})")
    print(f"emulator market unlocked: {emulator.market_enabled}")

    distance = haversine_miles(ALBUQUERQUE, WHARF)
    print(
        f"\nphysically in Albuquerque; claiming San Francisco "
        f"({distance:.0f} miles away)"
    )
    # One console command points the simulated GPS anywhere on Earth.
    reply = emulator.console.execute(
        f"geo fix {WHARF.longitude} {WHARF.latitude}"
    )
    print(f"emulator console 'geo fix': {reply}")

    outcome = channel.check_in(wharf.venue_id)
    print("\ncheck-in result:")
    print(f"  status: {outcome.status.value}")
    print(f"  points: {outcome.points}")
    print(f"  new badges: {outcome.new_badges}")
    print(f"  became mayor: {outcome.became_mayor}")
    assert outcome.rewarded, "the spoofed check-in should pass verification"

    # Keep the crown with daily check-ins (the §2.1 incumbent lock).
    for day in range(4):
        service.clock.advance(86_400.0)
        channel.check_in(wharf.venue_id)
    print(
        f"\nafter 4 more daily check-ins, mayor of '{wharf.name}': "
        f"{'us!' if wharf.mayor_id == user.user_id else 'someone else'}"
    )
    print(
        "\nThe server never had a way to tell: it trusts whatever "
        "coordinates the client reports — the paper's root cause."
    )


if __name__ == "__main__":
    main()
