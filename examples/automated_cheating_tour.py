#!/usr/bin/env python3
"""The full §3.3-§3.4 attack pipeline, end to end.

1. Crawl the site's numeric-ID profile pages into the attacker's database.
2. Plan a Fig 3.5 spiral tour through a city and execute it without
   tripping the cheater code.
3. Mine the crawl for venues offering mayor-only specials with no mayor,
   and harvest their mayorships (plus the real-world rewards).
4. Deny a victim user their mayorships by out-daying them.

Run:  python examples/automated_cheating_tour.py
"""

from repro import build_world
from repro.attack import (
    CheatingCampaign,
    CheckInScheduler,
    TourPlanner,
    VenueCatalog,
    VenueProfileAnalyzer,
    build_emulator_attacker,
)
from repro.crawler import crawl_full_site
from repro.geo import city_by_name
from repro.workload import build_web_stack


def main() -> None:
    print("=== act 0: the world ===")
    world = build_world(scale=0.001, seed=23)
    service = world.service
    print(
        f"{service.store.user_count()} users / "
        f"{service.store.venue_count()} venues"
    )

    print("\n=== act 1: crawl the site (§3.2) ===")
    stack = build_web_stack(world, seed=4)
    machines = [stack.network.create_egress() for _ in range(3)]
    database, user_stats, venue_stats = crawl_full_site(
        stack.transport, machines
    )
    print(
        f"crawled {database.user_count()} user and "
        f"{database.venue_count()} venue profiles "
        f"({user_stats.threads}+{venue_stats.threads} threads)"
    )

    print("\n=== act 2: the spiral tour (§3.3, Fig 3.5) ===")
    user, emulator, channel = build_emulator_attacker(service)
    catalog = VenueCatalog.from_crawl_database(database)
    planner = TourPlanner(catalog)
    scheduler = CheckInScheduler(service.clock)
    start = city_by_name("New York, NY").center
    tour = planner.plan_city_spiral(start, steps=50)
    schedule = scheduler.build(tour)
    report = scheduler.execute(schedule, channel)
    print(f"planned {len(tour.stops)} stops, drift {tour.mean_drift_m():.0f} m")
    print(
        f"executed: {report.rewarded}/{report.attempts} rewarded, "
        f"{report.detected} detected, {report.points} points, "
        f"{len(report.badges)} badges"
    )

    print("\n=== act 3: harvest mayor-only specials (§3.4) ===")
    analyzer = VenueProfileAnalyzer(database)
    targets = analyzer.easy_mayor_specials()
    print(f"crawl shows {len(targets)} mayor-less venues offering specials")
    campaign = CheatingCampaign(service.clock, channel, scheduler=scheduler)
    harvest = campaign.harvest(targets[:15])
    print(
        f"harvested {harvest.mayorships_won} mayorships and "
        f"{len(harvest.specials)} real-world rewards, "
        f"{harvest.detected} detections"
    )
    for special in harvest.specials[:5]:
        print(f"  unlocked: {special}")

    print("\n=== act 4: mayorship denial (§3.4) ===")
    victim_id = world.roster.mayor_farmer.user_id
    before = service.mayorship_count(victim_id)
    victim_venues = analyzer.mayorships_of_victim(victim_id)[:8]
    denial = campaign.mayorship_denial(victim_venues, days=3)
    after = service.mayorship_count(victim_id)
    print(
        f"victim user {victim_id}: {before} -> {after} mayorships "
        f"({denial.mayorships_won} crowns captured, "
        f"{denial.detected} detections)"
    )

    print(
        f"\nattacker final state: {service.store.get_user(user.user_id).points}"
        f" points, {service.mayorship_count(user.user_id)} mayorships, "
        f"never flagged"
    )


if __name__ == "__main__":
    main()
