#!/usr/bin/env python3
"""Chapter 5 as a script: how well do the proposed defenses work?

Pits the three location-verification techniques against honest users, a
naive spoofer, and a proxy-equipped spoofer; then measures what login
gating and rate limiting do to the §3.2 crawler.

Run:  python examples/defense_evaluation.py
"""

from repro import build_world
from repro.crawler import CrawlDatabase, CrawlMode, MultiThreadedCrawler
from repro.defense import (
    AddressMappingVerifier,
    ClaimWorkload,
    DistanceBoundingVerifier,
    IpRateLimiter,
    LoginGate,
    RateLimiterConfig,
    SessionRegistry,
    deploy_routers,
    evaluate_verifiers,
    format_evaluation_table,
)
from repro.geo import city_by_name
from repro.workload import build_web_stack


def location_verification(world, stack) -> None:
    print("--- §5.1: location verification techniques ---")
    workload = ClaimWorkload(world.service, network=stack.network, seed=3)
    honest = workload.honest_claims(300)
    attacker_at = city_by_name("Albuquerque, NM").center
    naive = workload.spoofed_claims(300, attacker_at=attacker_at)
    proxied = workload.spoofed_claims(
        300, attacker_at=attacker_at, proxy_near_target=True
    )
    verifiers = [
        DistanceBoundingVerifier(seed=1),
        AddressMappingVerifier(stack.network.geoip),
        deploy_routers(world.service, fraction=1.0),
    ]
    print("\nnaive spoofer (device + IP both at home):")
    for row in format_evaluation_table(
        evaluate_verifiers(verifiers, honest, naive)
    ):
        print(" ", row)
    print("\nsmarter spoofer (traffic proxied near each claimed venue):")
    for row in format_evaluation_table(
        evaluate_verifiers(verifiers, honest, proxied)
    ):
        print(" ", row)
    print(
        "\n-> address mapping falls to a proxy; physics-based checks "
        "(distance bounding, venue Wi-Fi) do not."
    )


def crawl_control(world) -> None:
    print("\n--- §5.2: limiting profile crawling ---")

    def run_crawl(stack, label):
        egress = stack.network.create_egress()
        egress.base_latency_s = 0.003
        crawler = MultiThreadedCrawler(
            stack.transport,
            CrawlDatabase(),
            CrawlMode.USER,
            [egress],
            threads_per_machine=8,
            stop_at=250,
            abort_after_failures=80,
        )
        stats = crawler.run()
        print(
            f"  {label:<28} {stats.hits:>4} profiles crawled"
            f"{'  (crawler gave up)' if crawler.aborted else ''}"
        )
        return stats

    baseline = build_web_stack(world, seed=31, blocking=True)
    run_crawl(baseline, "undefended site")

    gated = build_web_stack(world, seed=32, blocking=True)
    gated.transport.add_middleware(LoginGate(SessionRegistry()))
    run_crawl(gated, "login required")

    limited = build_web_stack(world, seed=33, blocking=True)
    limited.transport.add_middleware(
        IpRateLimiter(
            RateLimiterConfig(
                window_s=1.0,
                max_requests_per_window=100,
                enumeration_run_length=60,
            )
        )
    )
    run_crawl(limited, "rate limit + enum detection")


def main() -> None:
    world = build_world(scale=0.001, seed=83)
    stack = build_web_stack(world, seed=30)
    location_verification(world, stack)
    crawl_control(world)


if __name__ == "__main__":
    main()
