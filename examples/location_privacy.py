#!/usr/bin/env python3
"""§6.2.1 as a script: what daily crawling learns about everyone.

Crawls the site once a day for a week while the population keeps checking
in, then reconstructs location timelines, infers home cities, and finds
repeatedly co-located pairs — all from public pages.  Finishes by turning
on the §5.2 hashing defense and showing the leak collapse to zero.

Run:  python examples/location_privacy.py
"""

from repro import build_world
from repro.analysis import (
    build_timelines,
    infer_home,
    privacy_exposure_report,
)
from repro.crawler import SnapshotStore
from repro.defense import hashed_visitor_obfuscator
from repro.simnet.clock import SECONDS_PER_DAY
from repro.workload import BehaviorGenerator, EventReplayer, build_web_stack

DAYS = 7


def live_one_week(world, stack):
    """Daily crawls while ~100 active users go about their routines."""
    service = world.service
    store = SnapshotStore(
        stack.transport,
        [stack.network.create_egress() for _ in range(2)],
        service.clock,
    )
    behavior = BehaviorGenerator(world.venues, horizon_days=1.0, seed=7)
    replayer = EventReplayer(service)
    actives = [
        spec for spec in world.population.specs if spec.target_checkins >= 20
    ][:100]
    store.take_snapshot()
    for day in range(DAYS):
        day_start = service.clock.now()
        events = []
        for spec in actives:
            for event in behavior.events_for(spec)[:3]:
                events.append(
                    type(event)(
                        timestamp=day_start
                        + (event.timestamp % SECONDS_PER_DAY),
                        user_id=event.user_id,
                        venue_id=event.venue_id,
                    )
                )
        replayer.replay(events)
        if service.clock.now() < day_start + SECONDS_PER_DAY:
            service.clock.advance_to(day_start + SECONDS_PER_DAY)
        store.take_snapshot()
    return store


def main() -> None:
    world = build_world(scale=0.001, seed=17)
    print("--- surveillance on the undefended site ---")
    stack = build_web_stack(world, seed=18)
    store = live_one_week(world, stack)
    diffs = store.diffs()
    database = store.latest().database
    report = privacy_exposure_report(diffs, database)
    print(f"crawled daily for {DAYS} days; from public pages alone:")
    print(f"  location timelines reconstructed: {report.users_with_timelines}")
    print(f"  time-bounded sightings: {report.total_sightings}")
    print(
        f"  median sighting precision: "
        f"{report.median_time_bound_s / 3600.0:.0f} hours"
    )
    print(
        f"  homes inferred: {report.homes_inferred} "
        f"({report.high_confidence_homes} high-confidence)"
    )
    print(f"  repeatedly co-located pairs: {report.co_located_pairs}")

    # Show one reconstructed life.
    timelines = build_timelines(diffs, database)
    victim = max(timelines.values(), key=lambda t: t.sightings)
    inference = infer_home(victim)
    print(
        f"\nmost-exposed user (id {victim.user_id}): "
        f"{victim.sightings} sightings; inferred home at "
        f"({inference.home_center.latitude:.3f}, "
        f"{inference.home_center.longitude:.3f}) "
        f"with {inference.confidence:.0%} confidence"
    )
    for entry in victim.entries[:5]:
        print(
            f"  day {entry.window_start / SECONDS_PER_DAY:.0f}: "
            f"venue {entry.venue_id} at "
            f"({entry.location.latitude:.3f}, {entry.location.longitude:.3f})"
        )

    print("\n--- same week with §5.2 keyed visitor hashing deployed ---")
    fresh_world = build_world(scale=0.001, seed=17)
    hashed_stack = build_web_stack(
        fresh_world,
        seed=19,
        visitor_obfuscator=hashed_visitor_obfuscator(b"server-secret"),
    )
    hashed_store = live_one_week(fresh_world, hashed_stack)
    hashed_report = privacy_exposure_report(
        hashed_store.diffs(), hashed_store.latest().database
    )
    print(f"  timelines reconstructed: {hashed_report.users_with_timelines}")
    print(f"  sightings: {hashed_report.total_sightings}")
    print(f"  co-located pairs: {hashed_report.co_located_pairs}")
    print("\nthe entire leak rides on the recent-visitor join; hash it and")
    print("the surveillance pipeline starves while the page stays useful.")


if __name__ == "__main__":
    main()
