#!/usr/bin/env python3
"""Chapter 4 as a script: crawl the site, then find the cheaters.

Reproduces the three identifying factors on a synthetic world with planted
cheater personas: (1) abnormally high recent-check-in ratios (Fig 4.1),
(2) heavy accounts with almost no badges (Fig 4.2), and (3) geographically
impossible check-in patterns (Figs 4.3/4.4) — all from public data alone.

Run:  python examples/crawl_and_detect.py
"""

from repro import build_world
from repro.analysis import (
    CheaterDetector,
    DetectorConfig,
    analyze_pattern,
    badges_vs_total_curve,
    compute_population_stats,
    format_stats_table,
    recent_vs_total_curve,
)
from repro.crawler import crawl_full_site
from repro.workload import build_web_stack


def main() -> None:
    world = build_world(scale=0.001, seed=61)
    stack = build_web_stack(world, seed=9)
    database, _, _ = crawl_full_site(
        stack.transport, [stack.network.create_egress() for _ in range(3)]
    )
    print(
        f"crawled {database.user_count()} users / "
        f"{database.venue_count()} venues\n"
    )

    print("--- population statistics (paper's §4 anchors) ---")
    for row in format_stats_table(compute_population_stats(database)):
        print(row)

    print("\n--- Fig 4.1: recent vs total check-ins ---")
    for point in recent_vs_total_curve(database, bucket_width=100)[:12]:
        bar = "#" * min(50, int(point.average_recent))
        print(f"{point.total_checkins:>6} {point.average_recent:7.1f} {bar}")

    print("\n--- Fig 4.2: badges vs total check-ins ---")
    for point in badges_vs_total_curve(database, bucket_width=150)[:12]:
        bar = "#" * min(50, int(point.average_badges))
        print(f"{point.total_checkins:>6} {point.average_badges:7.1f} {bar}")

    print("\n--- three-factor suspicion scan ---")
    detector = CheaterDetector(
        database, DetectorConfig(min_total_checkins=150)
    )
    suspects = detector.find_suspects()
    planted = {
        spec.user_id: spec.persona.value
        for spec in world.roster.all_specs()
    }
    print(f"{len(suspects)} suspects reported:")
    for report in suspects[:10]:
        tag = planted.get(report.user_id, "organic")
        print(
            f"  user {report.user_id:>6}  score={report.combined_score:.2f} "
            f"(activity={report.activity_score:.2f} "
            f"reward={report.reward_score:.2f} "
            f"pattern={report.pattern_score:.2f}, "
            f"{report.city_count} cities)  [{tag}]"
        )

    mega = world.roster.mega_cheater.user_id
    pattern = analyze_pattern(database, mega)
    print(
        f"\nthe planted Fig 4.3 cheater (user {mega}): "
        f"{pattern.city_count} cities, "
        f"{pattern.diameter_m / 1000.0:.0f} km diameter -> "
        f"{pattern.verdict.value}"
    )
    found = {report.user_id for report in suspects}
    print(f"planted mega cheater detected: {mega in found}")


if __name__ == "__main__":
    main()
