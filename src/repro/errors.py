"""Exception hierarchy shared across the reproduction library.

Every package-specific error derives from :class:`ReproError`, so callers can
catch one base class at API boundaries while tests can assert on the precise
subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class TransientError(ReproError):
    """An error that is expected to clear on its own — retrying may help.

    The resilience toolkit (:mod:`repro.faults`) keys its default retry
    policy off this class: :func:`repro.faults.retry_call` retries
    transient errors and immediately re-raises everything else.  Layers
    that can distinguish "try again" from "give up" raise a subclass
    carrying both their domain base (``CrawlError``, ``ServiceError``)
    and this marker, so one ``isinstance`` check answers the retry
    question anywhere in the stack.
    """


class PermanentError(ReproError):
    """An error that will not clear by retrying (refusal, bad input)."""


class FaultInjectedError(TransientError):
    """A failure deliberately injected by a :mod:`repro.faults` plan."""

    def __init__(self, point: str, message: str = "") -> None:
        super().__init__(message or f"injected fault at {point!r}")
        self.point = point


class TimeoutExceededError(TransientError):
    """An operation ran past its :class:`repro.faults.Timeout` budget."""

    def __init__(self, op: str, budget_s: float, message: str = "") -> None:
        super().__init__(
            message or f"{op!r} exceeded its {budget_s:g}s timeout budget"
        )
        self.op = op
        self.budget_s = budget_s


class BreakerOpenError(TransientError):
    """A call was short-circuited by an open circuit breaker."""

    def __init__(self, name: str, message: str = "") -> None:
        super().__init__(message or f"circuit breaker {name!r} is open")
        self.name = name


class GeoError(ReproError):
    """Invalid geographic input (out-of-range coordinate, empty path, ...)."""


class NetworkError(ReproError):
    """Simulated network failure (unreachable host, blocked client, ...)."""


class HttpError(NetworkError):
    """An HTTP-level failure from the simulated web transport."""

    def __init__(self, status: int, message: str = "") -> None:
        super().__init__(message or f"HTTP {status}")
        self.status = status


class ServiceError(ReproError):
    """The LBSN service rejected a request (bad venue, bad user, ...)."""


class CheatDetectedError(ServiceError):
    """A check-in was refused outright by the cheater code."""

    def __init__(self, rule: str, message: str = "") -> None:
        super().__init__(message or f"check-in refused by rule: {rule}")
        self.rule = rule


class CommitContentionError(ServiceError, TransientError):
    """The datastore could not commit right now (contention, injected).

    Surfaced from :meth:`repro.lbsn.store.DataStore.add_checkin_committed`
    when a fault plan fires at the ``store.commit`` point.  The commit is
    atomic: when this raises, *nothing* was persisted — retrying the
    check-in is always safe and never double-commits.
    """


class DeviceError(ReproError):
    """Device/emulator misuse (no GPS fix, locked emulator, ...)."""


class CrawlError(ReproError):
    """The crawler could not fetch or parse a profile page."""


class CrawlTransientError(CrawlError, TransientError):
    """A fetch failure expected to clear: 5xx, rate limit, network loss."""


class CrawlPermanentError(CrawlError, PermanentError):
    """A fetch refusal that will not clear: auth wall, block, bad page."""


class DefenseError(ReproError):
    """A defense component rejected or failed to verify a claim."""
