"""Exception hierarchy shared across the reproduction library.

Every package-specific error derives from :class:`ReproError`, so callers can
catch one base class at API boundaries while tests can assert on the precise
subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GeoError(ReproError):
    """Invalid geographic input (out-of-range coordinate, empty path, ...)."""


class NetworkError(ReproError):
    """Simulated network failure (unreachable host, blocked client, ...)."""


class HttpError(NetworkError):
    """An HTTP-level failure from the simulated web transport."""

    def __init__(self, status: int, message: str = "") -> None:
        super().__init__(message or f"HTTP {status}")
        self.status = status


class ServiceError(ReproError):
    """The LBSN service rejected a request (bad venue, bad user, ...)."""


class CheatDetectedError(ServiceError):
    """A check-in was refused outright by the cheater code."""

    def __init__(self, rule: str, message: str = "") -> None:
        super().__init__(message or f"check-in refused by rule: {rule}")
        self.rule = rule


class DeviceError(ReproError):
    """Device/emulator misuse (no GPS fix, locked emulator, ...)."""


class CrawlError(ReproError):
    """The crawler could not fetch or parse a profile page."""


class DefenseError(ReproError):
    """A defense component rejected or failed to verify a claim."""
