"""Geographic coordinate primitives.

The whole reproduction works in plain WGS-84 latitude/longitude degrees, the
same coordinate system the thesis reads off Google Earth and stores in its
MySQL ``VenueInfo`` table.  :class:`GeoPoint` is the single value type passed
between the device stack, the LBSN service, and the analysis pipeline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple

from repro.errors import GeoError

#: Mean Earth radius in meters (IUGG value), used by all geodesic math.
EARTH_RADIUS_M = 6_371_008.8

#: Meters in one statute mile; the cheater-code distance rules in the thesis
#: are phrased in miles ("check into venues less than 1 mile apart ...").
METERS_PER_MILE = 1_609.344

#: Meters in one yard, for the "move 500 yards to the west" tour commands.
METERS_PER_YARD = 0.9144


def validate_latitude(latitude: float) -> float:
    """Return ``latitude`` unchanged, raising :class:`GeoError` if invalid."""
    if not isinstance(latitude, (int, float)) or isinstance(latitude, bool):
        raise GeoError(f"latitude must be a number, got {latitude!r}")
    if math.isnan(latitude) or not -90.0 <= latitude <= 90.0:
        raise GeoError(f"latitude out of range [-90, 90]: {latitude!r}")
    return float(latitude)


def validate_longitude(longitude: float) -> float:
    """Return ``longitude`` unchanged, raising :class:`GeoError` if invalid."""
    if not isinstance(longitude, (int, float)) or isinstance(longitude, bool):
        raise GeoError(f"longitude must be a number, got {longitude!r}")
    if math.isnan(longitude) or not -180.0 <= longitude <= 180.0:
        raise GeoError(f"longitude out of range [-180, 180]: {longitude!r}")
    return float(longitude)


def normalize_longitude(longitude: float) -> float:
    """Wrap an arbitrary longitude into ``[-180, 180)``."""
    wrapped = math.fmod(longitude + 180.0, 360.0)
    if wrapped < 0:
        wrapped += 360.0
    return wrapped - 180.0


@dataclass(frozen=True, order=True)
class GeoPoint:
    """An immutable (latitude, longitude) pair in decimal degrees."""

    latitude: float
    longitude: float

    def __post_init__(self) -> None:
        validate_latitude(self.latitude)
        validate_longitude(self.longitude)

    @classmethod
    def of(cls, latitude: float, longitude: float) -> "GeoPoint":
        """Build a point, wrapping out-of-range longitudes first."""
        return cls(validate_latitude(latitude), normalize_longitude(longitude))

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(latitude, longitude)``."""
        return (self.latitude, self.longitude)

    def as_radians(self) -> Tuple[float, float]:
        """Return ``(latitude, longitude)`` in radians."""
        return (math.radians(self.latitude), math.radians(self.longitude))

    def __iter__(self) -> Iterator[float]:
        yield self.latitude
        yield self.longitude

    def __str__(self) -> str:
        return f"({self.latitude:.6f}, {self.longitude:.6f})"


def centroid(points: Iterable[GeoPoint]) -> GeoPoint:
    """Return the arithmetic centroid of a non-empty set of points.

    Good enough for the city-clustering analysis, which operates on venues
    within a single metropolitan area where spherical effects are negligible.
    """
    total_lat = 0.0
    total_lon = 0.0
    count = 0
    for point in points:
        total_lat += point.latitude
        total_lon += point.longitude
        count += 1
    if count == 0:
        raise GeoError("centroid of an empty point set is undefined")
    return GeoPoint(total_lat / count, total_lon / count)


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned lat/lon rectangle (no antimeridian crossing)."""

    south: float
    west: float
    north: float
    east: float

    def __post_init__(self) -> None:
        validate_latitude(self.south)
        validate_latitude(self.north)
        validate_longitude(self.west)
        validate_longitude(self.east)
        if self.south > self.north:
            raise GeoError(f"south {self.south} > north {self.north}")
        if self.west > self.east:
            raise GeoError(f"west {self.west} > east {self.east}")

    @classmethod
    def around(cls, points: Iterable[GeoPoint]) -> "BoundingBox":
        """Return the tightest box containing ``points`` (non-empty)."""
        pts = list(points)
        if not pts:
            raise GeoError("bounding box of an empty point set is undefined")
        return cls(
            south=min(p.latitude for p in pts),
            west=min(p.longitude for p in pts),
            north=max(p.latitude for p in pts),
            east=max(p.longitude for p in pts),
        )

    def contains(self, point: GeoPoint) -> bool:
        """Return True when ``point`` lies inside or on the boundary."""
        return (
            self.south <= point.latitude <= self.north
            and self.west <= point.longitude <= self.east
        )

    @property
    def center(self) -> GeoPoint:
        """The geometric center of the box."""
        return GeoPoint(
            (self.south + self.north) / 2.0, (self.west + self.east) / 2.0
        )
