"""A spatial hash grid over latitude/longitude space.

The LBSN service needs "nearby venues" for the client's suggestion list, the
rapid-fire rule needs "venues within a 180 m square", and the tour planner
needs "nearest venue to a target point".  All three are served by this grid,
which buckets points into fixed-size lat/lon cells and searches an expanding
ring of cells around the query.
"""

from __future__ import annotations

import math
import threading
from collections import defaultdict
from typing import Dict, Generic, Iterable, Iterator, List, Optional, Set, Tuple, TypeVar

from repro.errors import GeoError
from repro.geo.coordinates import GeoPoint
from repro.geo.distance import haversine_m, meters_per_degree_latitude

T = TypeVar("T")

Cell = Tuple[int, int]


class SpatialGrid(Generic[T]):
    """Thread-safe point index mapping items to lat/lon grid cells.

    Parameters
    ----------
    cell_size_deg:
        Edge length of a grid cell in degrees. The default (0.01° ≈ 1.1 km
        of latitude) keeps city-scale queries to a handful of cells.
    """

    def __init__(self, cell_size_deg: float = 0.01) -> None:
        if cell_size_deg <= 0:
            raise GeoError(f"cell size must be positive, got {cell_size_deg}")
        self._cell_size = float(cell_size_deg)
        self._cells: Dict[Cell, Set[T]] = defaultdict(set)
        self._locations: Dict[T, GeoPoint] = {}
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._locations)

    def __contains__(self, item: T) -> bool:
        with self._lock:
            return item in self._locations

    def _cell_of(self, point: GeoPoint) -> Cell:
        return (
            int(math.floor(point.latitude / self._cell_size)),
            int(math.floor(point.longitude / self._cell_size)),
        )

    def insert(self, item: T, point: GeoPoint) -> None:
        """Add ``item`` at ``point``, replacing any previous location."""
        with self._lock:
            self.remove(item)
            self._locations[item] = point
            self._cells[self._cell_of(point)].add(item)

    def remove(self, item: T) -> bool:
        """Remove ``item`` if present; return whether it was present."""
        with self._lock:
            point = self._locations.pop(item, None)
            if point is None:
                return False
            cell = self._cell_of(point)
            bucket = self._cells.get(cell)
            if bucket is not None:
                bucket.discard(item)
                if not bucket:
                    del self._cells[cell]
            return True

    def location_of(self, item: T) -> Optional[GeoPoint]:
        """Return the stored location of ``item``, or None."""
        with self._lock:
            return self._locations.get(item)

    def items(self) -> Iterator[Tuple[T, GeoPoint]]:
        """Snapshot iterator over all (item, location) pairs."""
        with self._lock:
            snapshot = list(self._locations.items())
        return iter(snapshot)

    def _cells_within(self, center: GeoPoint, radius_m: float) -> Iterable[Cell]:
        lat_cells = int(
            math.ceil(radius_m / (meters_per_degree_latitude() * self._cell_size))
        )
        # Longitude degrees shrink with latitude; widen the column span
        # accordingly, capping so polar queries stay bounded.
        cos_lat = max(0.05, math.cos(math.radians(center.latitude)))
        lon_cells = int(math.ceil(lat_cells / cos_lat))
        center_cell = self._cell_of(center)
        for dlat in range(-lat_cells, lat_cells + 1):
            for dlon in range(-lon_cells, lon_cells + 1):
                yield (center_cell[0] + dlat, center_cell[1] + dlon)

    def query_radius(
        self, center: GeoPoint, radius_m: float
    ) -> List[Tuple[T, GeoPoint, float]]:
        """All items within ``radius_m`` of ``center``, nearest first.

        Returns ``(item, location, distance_m)`` triples.
        """
        if radius_m < 0:
            raise GeoError(f"radius must be non-negative, got {radius_m}")
        results: List[Tuple[T, GeoPoint, float]] = []
        with self._lock:
            for cell in self._cells_within(center, radius_m):
                for item in self._cells.get(cell, ()):
                    location = self._locations[item]
                    distance = haversine_m(center, location)
                    if distance <= radius_m:
                        results.append((item, location, distance))
        results.sort(key=lambda entry: entry[2])
        return results

    def nearest(
        self,
        center: GeoPoint,
        max_radius_m: float = 50_000.0,
        exclude: Optional[Set[T]] = None,
    ) -> Optional[Tuple[T, GeoPoint, float]]:
        """The single nearest item to ``center`` within ``max_radius_m``.

        Searches expanding radius rings (1x, 2x, 4x, ...) so dense areas
        resolve after one small query. Returns None when nothing is in range.
        """
        excluded = exclude or set()
        radius = min(500.0, max_radius_m)
        while True:
            for item, location, distance in self.query_radius(center, radius):
                if item not in excluded:
                    return (item, location, distance)
            if radius >= max_radius_m:
                return None
            radius = min(radius * 4.0, max_radius_m)

    def k_nearest(
        self, center: GeoPoint, k: int, max_radius_m: float = 50_000.0
    ) -> List[Tuple[T, GeoPoint, float]]:
        """Up to ``k`` nearest items within ``max_radius_m``, nearest first."""
        if k <= 0:
            return []
        radius = min(500.0, max_radius_m)
        while True:
            hits = self.query_radius(center, radius)
            if len(hits) >= k or radius >= max_radius_m:
                return hits[:k]
            radius = min(radius * 4.0, max_radius_m)
