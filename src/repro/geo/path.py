"""Virtual path construction for the automated cheating tour (§3.3).

The thesis drives its semiautomatic cheating tool with relative movement
commands — "move 500 yards to the west" — then snaps each intended point to
the nearest real venue.  :class:`VirtualPath` models the intended polyline;
the snapping lives in ``repro.attack.tour`` where venue data is available.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence

from repro.errors import GeoError
from repro.geo.coordinates import METERS_PER_YARD, GeoPoint
from repro.geo.distance import destination_point, haversine_m, path_length_m

#: Compass names accepted by :func:`bearing_for_direction`.
_COMPASS_BEARINGS = {
    "north": 0.0,
    "northeast": 45.0,
    "east": 90.0,
    "southeast": 135.0,
    "south": 180.0,
    "southwest": 225.0,
    "west": 270.0,
    "northwest": 315.0,
    "n": 0.0,
    "ne": 45.0,
    "e": 90.0,
    "se": 135.0,
    "s": 180.0,
    "sw": 225.0,
    "w": 270.0,
    "nw": 315.0,
}


def bearing_for_direction(direction: str) -> float:
    """Translate a compass word ("west", "NE", ...) into degrees."""
    try:
        return _COMPASS_BEARINGS[direction.strip().lower()]
    except KeyError:
        raise GeoError(f"unknown compass direction: {direction!r}") from None


@dataclass(frozen=True)
class MoveCommand:
    """One relative movement instruction, e.g. 500 yards to the west."""

    direction: str
    distance_m: float

    def __post_init__(self) -> None:
        bearing_for_direction(self.direction)  # validate early
        if self.distance_m <= 0:
            raise GeoError(
                f"move distance must be positive, got {self.distance_m}"
            )

    @classmethod
    def yards(cls, direction: str, yards: float) -> "MoveCommand":
        """Build a command from a distance in yards, as the thesis phrases it."""
        return cls(direction=direction, distance_m=yards * METERS_PER_YARD)

    @property
    def bearing_deg(self) -> float:
        """The compass bearing this command moves along."""
        return bearing_for_direction(self.direction)

    def apply(self, origin: GeoPoint) -> GeoPoint:
        """The intended destination when executed from ``origin``."""
        return destination_point(origin, self.bearing_deg, self.distance_m)


@dataclass
class VirtualPath:
    """An intended tour polyline built from a start point plus moves."""

    start: GeoPoint
    moves: List[MoveCommand] = field(default_factory=list)

    def add_move(self, command: MoveCommand) -> GeoPoint:
        """Append a move and return the new intended endpoint."""
        self.moves.append(command)
        return self.waypoints()[-1]

    def waypoints(self) -> List[GeoPoint]:
        """All intended points, starting with :attr:`start`."""
        points = [self.start]
        for command in self.moves:
            points.append(command.apply(points[-1]))
        return points

    def length_m(self) -> float:
        """Total intended travel distance in meters."""
        return path_length_m(self.waypoints())

    def __len__(self) -> int:
        return len(self.moves)

    def __iter__(self) -> Iterator[GeoPoint]:
        return iter(self.waypoints())


def spiral_path(
    start: GeoPoint,
    steps: int,
    step_deg: float = 0.005,
    initial_direction: str = "north",
    turn: str = "right",
) -> VirtualPath:
    """Build the right-turning square spiral the thesis walks in Fig. 3.5.

    The thesis starts at the lower-left point, moves north, and "keeps
    turning right" with a desired step of 0.005 degrees per move.  The step
    is expressed in *degrees of latitude or longitude*, so east/west steps
    cover less ground than north/south ones — reproducing the ~550 m vs
    ~450 m asymmetry noted in §3.3.

    A square spiral grows its edge every two turns: 1, 1, 2, 2, 3, 3, ...
    steps per leg, which traces an outward spiral rather than retracing a
    fixed square.
    """
    if steps < 0:
        raise GeoError(f"steps must be non-negative, got {steps}")
    if step_deg <= 0:
        raise GeoError(f"step_deg must be positive, got {step_deg}")
    order = ["north", "east", "south", "west"]
    if turn == "left":
        order = ["north", "west", "south", "east"]
    elif turn != "right":
        raise GeoError(f"turn must be 'right' or 'left', got {turn!r}")
    try:
        direction_index = order.index(initial_direction.lower())
    except ValueError:
        raise GeoError(
            f"initial_direction must be one of {order}, got {initial_direction!r}"
        ) from None

    path = VirtualPath(start=start)
    current = start
    leg_length = 1
    placed = 0
    legs_at_length = 0
    while placed < steps:
        direction = order[direction_index]
        for _ in range(leg_length):
            if placed >= steps:
                break
            # Convert the degree step into meters at the current latitude so
            # destination_point() lands on the intended grid vertex.
            if direction in ("north", "south"):
                step_m = step_deg * _meters_per_deg_lat()
            else:
                step_m = step_deg * _meters_per_deg_lon(current.latitude)
            command = MoveCommand(direction=direction, distance_m=step_m)
            current = path.add_move(command)
            placed += 1
        direction_index = (direction_index + 1) % 4
        legs_at_length += 1
        if legs_at_length == 2:
            legs_at_length = 0
            leg_length += 1
    return path


def _meters_per_deg_lat() -> float:
    from repro.geo.distance import meters_per_degree_latitude

    return meters_per_degree_latitude()


def _meters_per_deg_lon(latitude: float) -> float:
    from repro.geo.distance import meters_per_degree_longitude

    return meters_per_degree_longitude(latitude)


def drift_m(intended: Sequence[GeoPoint], actual: Sequence[GeoPoint]) -> float:
    """Mean snap distance between intended waypoints and visited venues.

    Quantifies the thesis's observation that in a dense city "the actual
    venues we checked into are not very far from the desired location".
    """
    if len(intended) != len(actual):
        raise GeoError(
            f"waypoint count mismatch: {len(intended)} intended vs "
            f"{len(actual)} actual"
        )
    if not intended:
        return 0.0
    total = sum(haversine_m(i, a) for i, a in zip(intended, actual))
    return total / len(intended)
