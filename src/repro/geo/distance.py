"""Geodesic math: distances, bearings, destination points, speeds.

The cheater-code rules and the automated tour all reduce to questions about
great-circle distance and travel speed, so this module is the numerical core
shared by the service, the attack, and the analysis pipeline.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.errors import GeoError
from repro.geo.coordinates import (
    EARTH_RADIUS_M,
    METERS_PER_MILE,
    GeoPoint,
    normalize_longitude,
)


def haversine_m(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two points, in meters.

    This is the classic haversine formula, numerically stable for the short
    (city-block) and long (coast-to-coast) distances the reproduction uses.
    """
    lat1, lon1 = a.as_radians()
    lat2, lon2 = b.as_radians()
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = (
        math.sin(dlat / 2.0) ** 2
        + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(h)))


def haversine_miles(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance in statute miles."""
    return haversine_m(a, b) / METERS_PER_MILE


def equirectangular_m(a: GeoPoint, b: GeoPoint) -> float:
    """Fast flat-earth approximation of distance in meters.

    Used by the spatial grid for candidate ranking where a few meters of
    error over city-scale distances is irrelevant and speed matters.
    """
    lat1, lon1 = a.as_radians()
    lat2, lon2 = b.as_radians()
    x = (lon2 - lon1) * math.cos((lat1 + lat2) / 2.0)
    y = lat2 - lat1
    return math.sqrt(x * x + y * y) * EARTH_RADIUS_M


def initial_bearing_deg(a: GeoPoint, b: GeoPoint) -> float:
    """Initial great-circle bearing from ``a`` to ``b`` in degrees [0, 360)."""
    lat1, lon1 = a.as_radians()
    lat2, lon2 = b.as_radians()
    dlon = lon2 - lon1
    x = math.sin(dlon) * math.cos(lat2)
    y = math.cos(lat1) * math.sin(lat2) - math.sin(lat1) * math.cos(
        lat2
    ) * math.cos(dlon)
    return (math.degrees(math.atan2(x, y)) + 360.0) % 360.0


def destination_point(
    origin: GeoPoint, bearing_deg: float, distance_m: float
) -> GeoPoint:
    """Point reached by travelling ``distance_m`` along ``bearing_deg``.

    This is the inverse the tour planner needs to turn "move 500 yards to
    the west" into coordinates.
    """
    if distance_m < 0:
        raise GeoError(f"distance must be non-negative, got {distance_m}")
    lat1, lon1 = origin.as_radians()
    theta = math.radians(bearing_deg)
    delta = distance_m / EARTH_RADIUS_M
    lat2 = math.asin(
        math.sin(lat1) * math.cos(delta)
        + math.cos(lat1) * math.sin(delta) * math.cos(theta)
    )
    lon2 = lon1 + math.atan2(
        math.sin(theta) * math.sin(delta) * math.cos(lat1),
        math.cos(delta) - math.sin(lat1) * math.sin(lat2),
    )
    return GeoPoint(math.degrees(lat2), normalize_longitude(math.degrees(lon2)))


def speed_mps(a: GeoPoint, b: GeoPoint, elapsed_s: float) -> float:
    """Implied travel speed in meters/second between two timed sightings.

    A zero or negative elapsed time with any displacement is "infinitely
    fast" — exactly the situation the super-human-speed rule punishes.
    """
    distance = haversine_m(a, b)
    if elapsed_s <= 0.0:
        return math.inf if distance > 0 else 0.0
    return distance / elapsed_s


def path_length_m(points: Sequence[GeoPoint]) -> float:
    """Total haversine length of a polyline (0.0 for fewer than 2 points)."""
    return sum(
        haversine_m(points[i], points[i + 1]) for i in range(len(points) - 1)
    )


def pairwise_max_distance_m(points: Iterable[GeoPoint]) -> float:
    """Diameter (maximum pairwise distance) of a point set, in meters.

    Quadratic, but the pattern analysis only applies it to a single user's
    recent check-ins (hundreds of points at most).
    """
    pts = list(points)
    best = 0.0
    for i in range(len(pts)):
        for j in range(i + 1, len(pts)):
            best = max(best, haversine_m(pts[i], pts[j]))
    return best


def meters_per_degree_latitude() -> float:
    """Meters spanned by one degree of latitude (constant on the sphere)."""
    return math.pi * EARTH_RADIUS_M / 180.0


def meters_per_degree_longitude(latitude: float) -> float:
    """Meters spanned by one degree of longitude at a given latitude.

    The thesis notes 0.005 degrees is ~550 m in latitude but only ~450 m in
    longitude at Albuquerque's latitude; this function is how the tour math
    reproduces that asymmetry.
    """
    return meters_per_degree_latitude() * math.cos(math.radians(latitude))
