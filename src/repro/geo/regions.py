"""Geographic regions used to place the synthetic venue population.

Figure 3.4 of the thesis plots every crawled Starbucks branch and the points
"form the shape of the United States territory".  To reproduce that shape we
carry a coarse polygon of the continental US plus Alaska/Hawaii clusters, and
a weighted list of real metropolitan areas where venue density concentrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import GeoError
from repro.geo.coordinates import BoundingBox, GeoPoint

# A coarse clockwise outline of the contiguous United States.  Fidelity only
# needs to be good enough that a scatter of points inside it reads as "the
# shape of the United States" (Fig 3.4), not for legal border questions.
CONTIGUOUS_US_OUTLINE: Tuple[Tuple[float, float], ...] = (
    (48.9, -124.7),  # NW Washington coast
    (48.9, -95.1),   # Northwest Angle
    (46.5, -84.5),   # Sault Ste. Marie
    (45.0, -82.5),   # Lake Huron
    (42.5, -82.9),   # Detroit
    (43.6, -79.0),   # Niagara
    (45.0, -74.7),   # St. Lawrence
    (47.3, -69.0),   # Maine tip
    (44.8, -66.9),   # Maine coast
    (41.5, -70.0),   # Cape Cod
    (35.2, -75.5),   # Cape Hatteras
    (30.7, -81.4),   # Georgia coast
    (25.1, -80.4),   # Florida tip
    (26.0, -82.0),   # Florida gulf side
    (30.1, -84.4),   # Florida panhandle
    (29.2, -90.1),   # Louisiana
    (28.9, -95.4),   # Texas coast
    (25.9, -97.1),   # Brownsville
    (29.8, -101.4),  # Rio Grande
    (31.8, -106.5),  # El Paso
    (31.3, -111.1),  # Arizona border
    (32.5, -117.1),  # San Diego
    (34.5, -120.5),  # Point Conception
    (38.0, -123.0),  # Point Reyes
    (42.0, -124.4),  # Oregon coast
)

#: Representative Alaska anchor points (Fig 4.3 notes a cheater's check-ins
#: "including Alaska").
ALASKA_ANCHORS: Tuple[Tuple[float, float], ...] = (
    (61.2, -149.9),  # Anchorage
    (64.8, -147.7),  # Fairbanks
    (58.3, -134.4),  # Juneau
)

#: Hawaii anchor points.
HAWAII_ANCHORS: Tuple[Tuple[float, float], ...] = (
    (21.3, -157.9),  # Honolulu
    (19.7, -155.1),  # Hilo
)


@dataclass(frozen=True)
class City:
    """A metropolitan area where users live and venues cluster."""

    name: str
    center: GeoPoint
    #: Relative venue/user density weight (roughly metro population, millions).
    weight: float
    #: Radius in meters that contains most of the metro's venues.
    radius_m: float = 15_000.0


# Real US metros, weighted roughly by 2010 metro population.  The two
# experiment cities from the thesis (Albuquerque, Lincoln) and the two
# remote-check-in cities (San Francisco for Fisherman's Wharf) are included
# explicitly so the E1/E4 experiments run in named, paper-faithful places.
US_CITIES: Tuple[City, ...] = (
    City("New York, NY", GeoPoint(40.7128, -74.0060), 19.6),
    City("Los Angeles, CA", GeoPoint(34.0522, -118.2437), 12.8),
    City("Chicago, IL", GeoPoint(41.8781, -87.6298), 9.5),
    City("Dallas, TX", GeoPoint(32.7767, -96.7970), 6.4),
    City("Houston, TX", GeoPoint(29.7604, -95.3698), 5.9),
    City("Philadelphia, PA", GeoPoint(39.9526, -75.1652), 6.0),
    City("Washington, DC", GeoPoint(38.9072, -77.0369), 5.6),
    City("Miami, FL", GeoPoint(25.7617, -80.1918), 5.5),
    City("Atlanta, GA", GeoPoint(33.7490, -84.3880), 5.3),
    City("Boston, MA", GeoPoint(42.3601, -71.0589), 4.6),
    City("San Francisco, CA", GeoPoint(37.7749, -122.4194), 4.3),
    City("Phoenix, AZ", GeoPoint(33.4484, -112.0740), 4.2),
    City("Seattle, WA", GeoPoint(47.6062, -122.3321), 3.4),
    City("Minneapolis, MN", GeoPoint(44.9778, -93.2650), 3.3),
    City("San Diego, CA", GeoPoint(32.7157, -117.1611), 3.1),
    City("Denver, CO", GeoPoint(39.7392, -104.9903), 2.5),
    City("Portland, OR", GeoPoint(45.5152, -122.6784), 2.2),
    City("St. Louis, MO", GeoPoint(38.6270, -90.1994), 2.8),
    City("Tampa, FL", GeoPoint(27.9506, -82.4572), 2.8),
    City("Detroit, MI", GeoPoint(42.3314, -83.0458), 4.3),
    City("Austin, TX", GeoPoint(30.2672, -97.7431), 1.7),
    City("Nashville, TN", GeoPoint(36.1627, -86.7816), 1.6),
    City("Kansas City, MO", GeoPoint(39.0997, -94.5786), 2.0),
    City("Salt Lake City, UT", GeoPoint(40.7608, -111.8910), 1.1),
    City("Las Vegas, NV", GeoPoint(36.1699, -115.1398), 1.9),
    City("New Orleans, LA", GeoPoint(29.9511, -90.0715), 1.2),
    City("Charlotte, NC", GeoPoint(35.2271, -80.8431), 1.8),
    City("Pittsburgh, PA", GeoPoint(40.4406, -79.9959), 2.4),
    City("Albuquerque, NM", GeoPoint(35.0844, -106.6504), 0.9),
    City("Lincoln, NE", GeoPoint(40.8136, -96.7026), 0.3),
    City("Omaha, NE", GeoPoint(41.2565, -95.9345), 0.9),
    City("Anchorage, AK", GeoPoint(61.2181, -149.9003), 0.4),
    City("Honolulu, HI", GeoPoint(21.3069, -157.8583), 1.0),
)

#: European cities — Fig 4.3's suspected cheater also "visited" Europe.
EUROPEAN_CITIES: Tuple[City, ...] = (
    City("London, UK", GeoPoint(51.5074, -0.1278), 9.0),
    City("Paris, France", GeoPoint(48.8566, 2.3522), 10.5),
    City("Berlin, Germany", GeoPoint(52.5200, 13.4050), 3.4),
    City("Amsterdam, Netherlands", GeoPoint(52.3676, 4.9041), 1.1),
    City("Madrid, Spain", GeoPoint(40.4168, -3.7038), 6.0),
)


def city_by_name(name: str, cities: Sequence[City] = US_CITIES) -> City:
    """Look up a city by exact name, raising :class:`GeoError` if unknown."""
    for city in cities:
        if city.name == name:
            return city
    raise GeoError(f"unknown city: {name!r}")


def point_in_polygon(
    point: GeoPoint, outline: Sequence[Tuple[float, float]]
) -> bool:
    """Ray-casting point-in-polygon test over (lat, lon) vertex tuples."""
    if len(outline) < 3:
        raise GeoError("polygon needs at least 3 vertices")
    inside = False
    x, y = point.longitude, point.latitude
    n = len(outline)
    for i in range(n):
        y1, x1 = outline[i]
        y2, x2 = outline[(i + 1) % n]
        if (y1 > y) != (y2 > y):
            x_cross = x1 + (y - y1) / (y2 - y1) * (x2 - x1)
            if x < x_cross:
                inside = not inside
    return inside


def in_contiguous_us(point: GeoPoint) -> bool:
    """Is the point inside the coarse contiguous-US outline?"""
    return point_in_polygon(point, CONTIGUOUS_US_OUTLINE)


def contiguous_us_bbox() -> BoundingBox:
    """Bounding box of the contiguous-US outline."""
    return BoundingBox.around(
        [GeoPoint(lat, lon) for lat, lon in CONTIGUOUS_US_OUTLINE]
    )


def all_cities() -> List[City]:
    """US plus European cities, for world generation."""
    return list(US_CITIES) + list(EUROPEAN_CITIES)
