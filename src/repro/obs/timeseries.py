"""Time-series recording over the metrics registry: rates, not just totals.

A :class:`~repro.obs.metrics.MetricsRegistry` is point-in-time — it can
say *how many* check-ins have ever committed, but not whether the rate
just collapsed.  :class:`TimeSeriesRecorder` closes that gap without any
external TSDB: on a configurable cadence (or on demand) it snapshots
every family into bounded per-series rings of ``(timestamp, value)``
points, from which delta and per-second-rate queries — and the
``repro top`` live dashboard — fall out.

Series identity is ``(family name, labelvalues)``, exactly the registry's
child identity.  Histograms contribute their observation *count* (the
same convention as :meth:`MetricsRegistry.snapshot`), so rate queries
over a histogram series read "observations per second".

The JSON shapes here (:func:`registry_to_dict`,
:meth:`TimeSeriesRecorder.to_dict`) are the machine-readable metrics
serializer for the whole repo: ``repro metrics --format json`` and the
``GET /debug/vars`` route both emit them, so one parser handles every
surface.

Thread-safety: sampling walks the registry under each child's own lock
and appends under the recorder lock; a background sampler thread
(:meth:`start`) can run concurrently with hammering producers and
readers.  Standard library only.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "TimeSeriesError",
    "TimeSeriesRecorder",
    "registry_to_dict",
    "registry_to_json",
]


class TimeSeriesError(ReproError):
    """Misuse of the time-series recorder (bad cadence, bad bounds)."""


def registry_to_dict(registry: MetricsRegistry) -> Dict[str, Any]:
    """The whole registry as one JSON-ready mapping.

    Shape::

        {family: {"kind": "counter", "labelnames": ["status"],
                  "samples": [{"labels": {"status": "valid"},
                               "value": 4000.0}, ...]}}

    Histogram samples additionally carry ``"sum"`` and ``"buckets"``
    (cumulative ``{le: count}``); their ``"value"`` is the observation
    count, matching :meth:`MetricsRegistry.snapshot`.
    """
    out: Dict[str, Any] = {}
    for family in registry.collect():
        samples: List[Dict[str, Any]] = []
        for labelvalues, child in family.children():
            labels = dict(zip(family.labelnames, labelvalues))
            if family.kind == "histogram":
                buckets = {
                    ("+Inf" if bound == float("inf") else repr(bound)): count
                    for bound, count in child.bucket_counts()
                }
                samples.append(
                    {
                        "labels": labels,
                        "value": float(child.count),
                        "sum": child.sum,
                        "buckets": buckets,
                    }
                )
            else:
                samples.append({"labels": labels, "value": child.value})
        out[family.name] = {
            "kind": family.kind,
            "labelnames": list(family.labelnames),
            "samples": samples,
        }
    return out


def registry_to_json(registry: MetricsRegistry, indent: Optional[int] = None) -> str:
    """:func:`registry_to_dict`, rendered to a JSON string."""
    return json.dumps(registry_to_dict(registry), indent=indent, sort_keys=True)


#: One stored sample point.
Point = Tuple[float, float]

#: One series key: (family name, labelvalues).
SeriesKey = Tuple[str, Tuple[str, ...]]


class TimeSeriesRecorder:
    """Bounded per-metric history rings over a live registry.

    Parameters
    ----------
    registry:
        The registry to snapshot.  Families/children appearing after
        construction are picked up automatically on the next sample.
    max_points:
        Ring bound per series; the oldest point falls off beyond it.
        At the default one-second cadence, 600 points ≈ ten minutes of
        history per series.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        max_points: int = 600,
    ) -> None:
        if max_points < 2:
            raise TimeSeriesError(f"max_points must be >= 2: {max_points}")
        self.registry = registry
        self.max_points = max_points
        self._lock = threading.Lock()
        self._series: Dict[SeriesKey, Deque[Point]] = {}
        self._samples_taken = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # Sampling ----------------------------------------------------------

    def sample(self, now: Optional[float] = None) -> int:
        """Snapshot every family once; returns how many series updated."""
        stamp = time.time() if now is None else now
        flat = self.registry.snapshot()
        updated = 0
        with self._lock:
            for name, table in flat.items():
                for labelvalues, value in table.items():
                    key = (name, labelvalues)
                    ring = self._series.get(key)
                    if ring is None:
                        ring = deque(maxlen=self.max_points)
                        self._series[key] = ring
                    ring.append((stamp, float(value)))
                    updated += 1
            self._samples_taken += 1
        return updated

    def start(self, interval_s: float = 1.0) -> "TimeSeriesRecorder":
        """Run :meth:`sample` on a daemon thread every ``interval_s``."""
        if interval_s <= 0:
            raise TimeSeriesError(f"interval_s must be > 0: {interval_s}")
        if self._thread is not None and self._thread.is_alive():
            raise TimeSeriesError("recorder already started")
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(interval_s):
                self.sample()

        self._thread = threading.Thread(
            target=loop, name="timeseries-recorder", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the background sampler (idempotent)."""
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "TimeSeriesRecorder":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # Queries -----------------------------------------------------------

    @property
    def samples_taken(self) -> int:
        """How many sampling passes have run."""
        with self._lock:
            return self._samples_taken

    def series_keys(self) -> List[SeriesKey]:
        """Every recorded ``(name, labelvalues)``, sorted."""
        with self._lock:
            return sorted(self._series)

    def series(
        self, name: str, labels: Sequence[str] = ()
    ) -> List[Point]:
        """The stored ``(timestamp, value)`` points for one series."""
        key = (name, tuple(labels))
        with self._lock:
            ring = self._series.get(key)
            return list(ring) if ring is not None else []

    def latest(
        self, name: str, labels: Sequence[str] = ()
    ) -> Optional[Point]:
        """The newest stored point for one series, or None."""
        key = (name, tuple(labels))
        with self._lock:
            ring = self._series.get(key)
            return ring[-1] if ring else None

    def delta(
        self,
        name: str,
        labels: Sequence[str] = (),
        window_s: Optional[float] = None,
    ) -> float:
        """Value change across the stored window (or the last ``window_s``).

        For counters this is "how many since"; for gauges it is the net
        movement.  Returns 0.0 with fewer than two points.
        """
        points = self._window(name, labels, window_s)
        if len(points) < 2:
            return 0.0
        return points[-1][1] - points[0][1]

    def rate_per_s(
        self,
        name: str,
        labels: Sequence[str] = (),
        window_s: Optional[float] = None,
    ) -> float:
        """Average per-second change across the window (0.0 if undefined)."""
        points = self._window(name, labels, window_s)
        if len(points) < 2:
            return 0.0
        elapsed = points[-1][0] - points[0][0]
        if elapsed <= 0:
            return 0.0
        return (points[-1][1] - points[0][1]) / elapsed

    def _window(
        self,
        name: str,
        labels: Sequence[str],
        window_s: Optional[float],
    ) -> List[Point]:
        points = self.series(name, labels)
        if window_s is None or not points:
            return points
        horizon = points[-1][0] - window_s
        return [p for p in points if p[0] >= horizon]

    # Export ------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Every series as JSON-ready history (shares the /debug shape).

        Shape::

            {family: [{"labels": [...], "points": [[ts, v], ...]}, ...]}
        """
        with self._lock:
            items = [
                (key, list(ring)) for key, ring in sorted(self._series.items())
            ]
        out: Dict[str, Any] = {}
        for (name, labelvalues), points in items:
            out.setdefault(name, []).append(
                {
                    "labels": list(labelvalues),
                    "points": [[ts, value] for ts, value in points],
                }
            )
        return out

    def to_json(self, indent: Optional[int] = None) -> str:
        """:meth:`to_dict`, rendered to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)
