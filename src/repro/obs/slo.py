"""Service-level objectives, error budgets, and burn-rate alerting.

PRs 2–3 gave the reproduction metrics, traces, and logs; this module adds
the *judgement* layer: declarative objectives evaluated straight off the
:class:`~repro.obs.metrics.MetricsRegistry`, error budgets derived from
them, and the multi-window multi-burn-rate alerting rule the SRE workbook
prescribes — a fast page when a short **and** a medium window both burn
budget quickly, a slow ticket when a medium and a long window both burn it
steadily.  A weighted health score rolls every objective into one number
(the ``/debug/health`` route and the ``repro top`` panel).

Objective kinds:

* :class:`LatencyObjective` — evaluated from a histogram's cumulative
  buckets: the fraction of observations at or under ``threshold_s`` must
  stay at or above ``target`` (e.g. 99% of ``checkin.commit`` spans
  inside 25 ms).
* :class:`AvailabilityObjective` — evaluated from an outcome counter
  family: the labeled *good* children over all children.
* :class:`RatioObjective` — the general form: a good family/label-set
  over a total family/label-set (e.g. durable events applied over WAL
  events appended — worker replay currency).

The engine is read-only toward the observed registry (it never registers
families it merely evaluates — the DURABILITY.md catalogue guard depends
on that) and keeps its own bounded ``(timestamp, good, total)`` ring per
objective, so window math needs no external TSDB and runs equally well on
wall time or a :class:`~repro.simnet.clock.SimClock`.  Alert transitions
are a three-state machine (``ok`` / ``slow`` / ``fast``) emitting
trace-stamped structured log events (``slo.alert`` / ``slo.resolved``)
and counting into ``repro_slo_alerts_total``.

Thread-safety: sampling/evaluation run under one engine lock; the
registry reads use each child's own lock.  Standard library only.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ReproError
from repro.obs.context import TraceContext, current_trace
from repro.obs.log import LogHub
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "AvailabilityObjective",
    "BurnRatePolicy",
    "LatencyObjective",
    "Objective",
    "ObjectiveStatus",
    "RatioObjective",
    "SloEngine",
    "SloError",
    "SloReport",
    "budget_remaining",
    "burn_rate",
    "default_slos",
    "window_label",
]


class SloError(ReproError):
    """Misuse of the SLO API (bad targets, bad windows, bad weights)."""


#: One sampled compliance point: (timestamp, cumulative good, cumulative total).
SloPoint = Tuple[float, float, float]

STATE_OK = "ok"
STATE_SLOW = "slow"
STATE_FAST = "fast"

#: Alert severity → log level name used for the ``slo.alert`` record.
_SEVERITY_LEVELS = {STATE_FAST: "error", STATE_SLOW: "warning"}


def window_label(seconds: float) -> str:
    """Human window name: ``300 → "5m"``, ``21600 → "6h"``."""
    if seconds % 3600 == 0:
        return f"{int(seconds // 3600)}h"
    if seconds % 60 == 0:
        return f"{int(seconds // 60)}m"
    return f"{seconds:g}s"


# ---------------------------------------------------------------------------
# Pure window math (the hypothesis property suite brute-forces these)
# ---------------------------------------------------------------------------


def burn_rate(
    points: Sequence[SloPoint],
    now: float,
    window_s: float,
    target: float,
) -> float:
    """Budget burn rate over the trailing window ending at ``now``.

    The window holds every point with ``timestamp >= now - window_s``;
    with fewer than two points (or no traffic across them) the rate is
    0.0.  A rate of 1.0 means the error budget is being consumed exactly
    at the sustainable pace; 14.4 means a 30-day budget would be gone in
    ~2 days.
    """
    horizon = now - window_s
    window = [p for p in points if p[0] >= horizon]
    if len(window) < 2:
        return 0.0
    d_total = window[-1][2] - window[0][2]
    d_good = window[-1][1] - window[0][1]
    if d_total <= 0:
        return 0.0
    bad_fraction = min(1.0, max(0.0, (d_total - d_good) / d_total))
    return bad_fraction / (1.0 - target)


def budget_remaining(good: float, total: float, target: float) -> float:
    """Fraction of the error budget still unspent, clamped to [0, 1].

    The budget is ``total * (1 - target)`` bad events; with no traffic
    the budget is untouched (1.0).  Never negative — a blown budget
    floors at 0.0 (a property test pins this).
    """
    if total <= 0:
        return 1.0
    bad = max(0.0, total - good)
    allowed = total * (1.0 - target)
    if allowed <= 0:
        return 0.0 if bad > 0 else 1.0
    return max(0.0, min(1.0, 1.0 - bad / allowed))


# ---------------------------------------------------------------------------
# Objectives
# ---------------------------------------------------------------------------


class Objective:
    """One declared objective: a target over a good/total ratio.

    Subclasses implement :meth:`good_total`, reading *cumulative* good
    and total event counts off a registry.  Objectives never register
    metric families — a family the code does not emit simply reads as
    no traffic (``(0, 0)``), which keeps the engine deployable against
    partially-instrumented stacks.
    """

    kind = "objective"

    def __init__(
        self,
        name: str,
        target: float,
        weight: float = 1.0,
        description: str = "",
    ) -> None:
        if not name:
            raise SloError("objective name must be non-empty")
        if not (0.0 < target < 1.0):
            raise SloError(f"{name}: target must be in (0, 1): {target}")
        if weight <= 0:
            raise SloError(f"{name}: weight must be > 0: {weight}")
        self.name = name
        self.target = target
        self.weight = weight
        self.description = description

    def good_total(
        self, registry: MetricsRegistry
    ) -> Tuple[float, float]:  # pragma: no cover - abstract
        raise NotImplementedError


def _sum_children(
    registry: MetricsRegistry,
    family_name: str,
    labelsets: Optional[Sequence[Tuple[str, ...]]],
) -> float:
    """Sum a family's children (all, or the listed label-value tuples).

    Counters and gauges contribute their value, histograms their
    observation count — the same convention as
    :meth:`MetricsRegistry.snapshot`.  A missing family sums to 0.
    """
    family = registry.get(family_name)
    if family is None:
        return 0.0
    wanted = None if labelsets is None else {
        tuple(labels) for labels in labelsets
    }
    total = 0.0
    for labelvalues, child in family.children():
        if wanted is not None and labelvalues not in wanted:
            continue
        if family.kind == "histogram":
            total += child.count
        else:
            total += child.value
    return total


class LatencyObjective(Objective):
    """``target`` of observations must land at or under ``threshold_s``.

    Evaluated from the histogram's cumulative buckets: *good* is the
    cumulative count at the first bucket bound >= ``threshold_s`` (so a
    threshold between bounds rounds up to the next bound), *total* is
    the +Inf count.  One consistent read — both come from the same
    locked bucket snapshot.
    """

    kind = "latency"

    def __init__(
        self,
        name: str,
        family: str,
        threshold_s: float,
        labels: Sequence[str] = (),
        target: float = 0.99,
        weight: float = 1.0,
        description: str = "",
    ) -> None:
        if threshold_s <= 0:
            raise SloError(f"{name}: threshold_s must be > 0: {threshold_s}")
        super().__init__(name, target, weight, description)
        self.family = family
        self.labels = tuple(str(value) for value in labels)
        self.threshold_s = threshold_s

    def good_total(self, registry: MetricsRegistry) -> Tuple[float, float]:
        family = registry.get(self.family)
        if family is None or family.kind != "histogram":
            return (0.0, 0.0)
        for labelvalues, child in family.children():
            if labelvalues == self.labels:
                buckets = child.bucket_counts()
                total = float(buckets[-1][1])  # the +Inf cumulative count
                good = total  # threshold beyond the last finite bound
                for bound, cumulative in buckets:
                    if bound >= self.threshold_s:
                        good = float(cumulative)
                        break
                return (good, total)
        return (0.0, 0.0)


class RatioObjective(Objective):
    """``target`` of ``total_family`` events must show up in ``good_family``.

    The general good-over-total form: both sides are (possibly distinct)
    families, each summed over all children or a listed subset of
    label-value tuples.  ``good`` is clamped to ``total`` so slightly
    racy reads of two families can never report negative bad counts.
    """

    kind = "ratio"

    def __init__(
        self,
        name: str,
        good_family: str,
        total_family: str,
        good_labels: Optional[Sequence[Sequence[str]]] = None,
        total_labels: Optional[Sequence[Sequence[str]]] = None,
        target: float = 0.99,
        weight: float = 1.0,
        description: str = "",
    ) -> None:
        super().__init__(name, target, weight, description)
        self.good_family = good_family
        self.total_family = total_family
        self.good_labels = (
            None
            if good_labels is None
            else tuple(tuple(str(v) for v in ls) for ls in good_labels)
        )
        self.total_labels = (
            None
            if total_labels is None
            else tuple(tuple(str(v) for v in ls) for ls in total_labels)
        )

    def good_total(self, registry: MetricsRegistry) -> Tuple[float, float]:
        good = _sum_children(registry, self.good_family, self.good_labels)
        total = _sum_children(registry, self.total_family, self.total_labels)
        return (min(good, total), total)


class AvailabilityObjective(RatioObjective):
    """``target`` of one counter family's events must carry a good label."""

    kind = "availability"

    def __init__(
        self,
        name: str,
        family: str,
        good_labels: Sequence[Sequence[str]],
        target: float = 0.99,
        weight: float = 1.0,
        description: str = "",
    ) -> None:
        super().__init__(
            name,
            good_family=family,
            total_family=family,
            good_labels=good_labels,
            total_labels=None,
            target=target,
            weight=weight,
            description=description,
        )


# ---------------------------------------------------------------------------
# Alerting policy and report shapes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BurnRatePolicy:
    """Multi-window multi-burn-rate thresholds (SRE-workbook shaped).

    A **fast** alert (page) fires when both the short and the long fast
    window burn above ``fast_threshold``; a **slow** alert (ticket) when
    both slow windows burn above ``slow_threshold``.  Requiring the pair
    keeps a single spiky sample from paging, and the long window keeps
    the alert from resolving the instant the spike ends.
    """

    fast_short_s: float = 300.0
    fast_long_s: float = 3600.0
    fast_threshold: float = 14.4
    slow_short_s: float = 3600.0
    slow_long_s: float = 21600.0
    slow_threshold: float = 6.0

    def __post_init__(self) -> None:
        for name in (
            "fast_short_s",
            "fast_long_s",
            "slow_short_s",
            "slow_long_s",
        ):
            if getattr(self, name) <= 0:
                raise SloError(f"{name} must be > 0")
        if self.fast_short_s >= self.fast_long_s:
            raise SloError("fast_short_s must be < fast_long_s")
        if self.slow_short_s >= self.slow_long_s:
            raise SloError("slow_short_s must be < slow_long_s")
        if self.fast_threshold <= 0 or self.slow_threshold <= 0:
            raise SloError("burn thresholds must be > 0")

    def windows(self) -> List[float]:
        """Every distinct window, ascending."""
        return sorted(
            {
                self.fast_short_s,
                self.fast_long_s,
                self.slow_short_s,
                self.slow_long_s,
            }
        )


@dataclass
class ObjectiveStatus:
    """One objective's evaluated state at a point in time."""

    name: str
    kind: str
    target: float
    weight: float
    description: str
    good: float
    total: float
    compliance: float
    budget_remaining: float
    burn_rates: Dict[str, float]
    state: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "target": self.target,
            "weight": self.weight,
            "description": self.description,
            "good": self.good,
            "total": self.total,
            "compliance": self.compliance,
            "budget_remaining": self.budget_remaining,
            "burn_rates": dict(self.burn_rates),
            "state": self.state,
        }


@dataclass
class SloReport:
    """One evaluation pass: every objective plus the health roll-up."""

    now: float
    health_score: float
    worst: Optional[str]
    statuses: List[ObjectiveStatus]

    def status(self, name: str) -> ObjectiveStatus:
        for status in self.statuses:
            if status.name == name:
                return status
        raise SloError(f"no objective named {name!r} in this report")

    def to_dict(self) -> Dict[str, Any]:
        """The ``/debug/slo`` body."""
        return {
            "now": self.now,
            "health_score": self.health_score,
            "worst_objective": self.worst,
            "objectives": [status.to_dict() for status in self.statuses],
        }

    def health_dict(self) -> Dict[str, Any]:
        """The ``/debug/health`` body (and ``repro slo``'s roll-up)."""
        return {
            "health_score": self.health_score,
            "worst_objective": self.worst,
            "objectives": {
                status.name: {
                    "budget_remaining": status.budget_remaining,
                    "state": status.state,
                    "weight": status.weight,
                }
                for status in self.statuses
            },
        }


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class SloEngine:
    """Evaluates declared objectives against a live registry.

    Parameters
    ----------
    registry:
        The observed registry (read-only: the engine never registers
        families there on the objectives' behalf).
    objectives:
        The declared objective catalogue (see :func:`default_slos`).
    metrics:
        Optional registry for the engine's own telemetry — usually the
        *same* registry, so health and burn gauges ride the ordinary
        scrape.  Families: ``repro_slo_evaluations_total``,
        ``repro_slo_budget_remaining``, ``repro_slo_burn_rate``,
        ``repro_slo_alerts_total``, ``repro_slo_health_score``.
    log:
        Optional hub for ``slo.alert`` / ``slo.resolved`` records
        (logger ``obs.slo``), each stamped with a ``trace_id``.
    clock:
        Time source for samples: a callable returning seconds, or any
        object with a ``now()`` method (a ``SimClock``).  Defaults to
        wall time.
    max_points:
        Ring bound per objective; must retain at least two points.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        objectives: Sequence[Objective],
        metrics: Optional[MetricsRegistry] = None,
        log: Optional[LogHub] = None,
        policy: Optional[BurnRatePolicy] = None,
        clock: Optional[Any] = None,
        max_points: int = 512,
    ) -> None:
        if not objectives:
            raise SloError("at least one objective is required")
        names = [objective.name for objective in objectives]
        if len(set(names)) != len(names):
            raise SloError(f"duplicate objective names: {names}")
        if max_points < 2:
            raise SloError(f"max_points must be >= 2: {max_points}")
        self.registry = registry
        self.objectives: Tuple[Objective, ...] = tuple(objectives)
        self.policy = policy or BurnRatePolicy()
        self.max_points = max_points
        self._now: Callable[[], float] = (
            time.time
            if clock is None
            else (clock.now if hasattr(clock, "now") else clock)
        )
        self._lock = threading.Lock()
        self._rings: Dict[str, Deque[SloPoint]] = {
            name: deque(maxlen=max_points) for name in names
        }
        self._states: Dict[str, str] = {name: STATE_OK for name in names}
        self._logger = log.logger("obs.slo") if log is not None else None
        if metrics is not None:
            self._evaluations = metrics.counter(
                "repro_slo_evaluations_total",
                "SLO evaluation passes run by the engine.",
            ).child()
            self._budget_gauge = metrics.gauge(
                "repro_slo_budget_remaining",
                "Fraction of the error budget unspent, per objective.",
                ("objective",),
            )
            self._burn_gauge = metrics.gauge(
                "repro_slo_burn_rate",
                "Error-budget burn rate, per objective and window.",
                ("objective", "window"),
            )
            self._alerts = metrics.counter(
                "repro_slo_alerts_total",
                "Burn-rate alert firings, per objective and severity.",
                ("objective", "severity"),
            )
            self._health_gauge = metrics.gauge(
                "repro_slo_health_score",
                "Weighted budget-remaining roll-up across objectives "
                "(0-100).",
            ).child()
        else:
            self._evaluations = None
            self._budget_gauge = None
            self._burn_gauge = None
            self._alerts = None
            self._health_gauge = None

    # Sampling ----------------------------------------------------------

    def sample(self, now: Optional[float] = None) -> float:
        """Append one cumulative (good, total) point per objective."""
        stamp = self._now() if now is None else float(now)
        with self._lock:
            for objective in self.objectives:
                good, total = objective.good_total(self.registry)
                self._rings[objective.name].append((stamp, good, total))
        return stamp

    def points(self, name: str) -> List[SloPoint]:
        """The retained ring for one objective (oldest first)."""
        with self._lock:
            try:
                return list(self._rings[name])
            except KeyError:
                raise SloError(f"unknown objective: {name!r}") from None

    # Evaluation --------------------------------------------------------

    def evaluate(
        self, now: Optional[float] = None, sample: bool = True
    ) -> SloReport:
        """Sample (by default) and judge every objective.

        Returns the full :class:`SloReport`; alert-state transitions
        fire their log records and counters as a side effect.
        """
        if sample:
            stamp = self.sample(now)
        else:
            stamp = self._now() if now is None else float(now)
        policy = self.policy
        statuses: List[ObjectiveStatus] = []
        transitions: List[Tuple[Objective, str, str, ObjectiveStatus]] = []
        with self._lock:
            for objective in self.objectives:
                points = list(self._rings[objective.name])
                if points:
                    _, good, total = points[-1]
                else:
                    good, total = objective.good_total(self.registry)
                compliance = (good / total) if total > 0 else 1.0
                remaining = budget_remaining(good, total, objective.target)
                burns = {
                    window_label(window): burn_rate(
                        points, stamp, window, objective.target
                    )
                    for window in policy.windows()
                }
                fast = (
                    burns[window_label(policy.fast_short_s)]
                    > policy.fast_threshold
                    and burns[window_label(policy.fast_long_s)]
                    > policy.fast_threshold
                )
                slow = (
                    burns[window_label(policy.slow_short_s)]
                    > policy.slow_threshold
                    and burns[window_label(policy.slow_long_s)]
                    > policy.slow_threshold
                )
                state = STATE_FAST if fast else (
                    STATE_SLOW if slow else STATE_OK
                )
                status = ObjectiveStatus(
                    name=objective.name,
                    kind=objective.kind,
                    target=objective.target,
                    weight=objective.weight,
                    description=objective.description,
                    good=good,
                    total=total,
                    compliance=compliance,
                    budget_remaining=remaining,
                    burn_rates=burns,
                    state=state,
                )
                previous = self._states[objective.name]
                if state != previous:
                    self._states[objective.name] = state
                    transitions.append((objective, previous, state, status))
                statuses.append(status)
        report = self._roll_up(stamp, statuses)
        self._export(report)
        for objective, previous, state, status in transitions:
            self._announce(objective, previous, state, status)
        return report

    def _roll_up(
        self, stamp: float, statuses: List[ObjectiveStatus]
    ) -> SloReport:
        total_weight = sum(status.weight for status in statuses)
        score = 100.0 * sum(
            status.weight * status.budget_remaining for status in statuses
        ) / total_weight
        short_label = window_label(self.policy.fast_short_s)
        worst = max(
            statuses,
            key=lambda status: (
                status.burn_rates.get(short_label, 0.0),
                -status.budget_remaining,
                status.name,
            ),
        )
        return SloReport(
            now=stamp,
            health_score=score,
            worst=worst.name,
            statuses=statuses,
        )

    def _export(self, report: SloReport) -> None:
        if self._evaluations is None:
            return
        self._evaluations.inc()
        self._health_gauge.set(report.health_score)
        for status in report.statuses:
            self._budget_gauge.labels(status.name).set(
                status.budget_remaining
            )
            for window, rate in status.burn_rates.items():
                self._burn_gauge.labels(status.name, window).set(rate)

    def _announce(
        self,
        objective: Objective,
        previous: str,
        state: str,
        status: ObjectiveStatus,
    ) -> None:
        if state != STATE_OK and self._alerts is not None:
            self._alerts.labels(objective.name, state).inc()
        if self._logger is None:
            return
        ambient = current_trace()
        trace_id = (
            ambient.trace_id if ambient is not None
            else TraceContext.mint().trace_id
        )
        if state == STATE_OK:
            self._logger.info(
                "slo.resolved",
                trace_id=trace_id,
                objective=objective.name,
                previous=previous,
                budget_remaining=status.budget_remaining,
            )
        else:
            level = _SEVERITY_LEVELS[state]
            getattr(self._logger, level)(
                "slo.alert",
                trace_id=trace_id,
                objective=objective.name,
                severity=state,
                previous=previous,
                budget_remaining=status.budget_remaining,
                burn_rates=dict(status.burn_rates),
            )

    # Introspection -----------------------------------------------------

    def states(self) -> Dict[str, str]:
        """Current alert state per objective."""
        with self._lock:
            return dict(self._states)


# ---------------------------------------------------------------------------
# The repo's default objective catalogue
# ---------------------------------------------------------------------------


def default_slos() -> List[Objective]:
    """The reproduction's stock objectives, over metrics it already emits.

    Objectives over families a given deployment never registers (the
    durable pair, for a process that runs no WAL) read as no-traffic:
    full budget, zero burn — declaring them is free.
    """
    return [
        LatencyObjective(
            "checkin-commit-p99",
            family="repro_span_seconds",
            labels=("checkin.commit",),
            threshold_s=0.025,
            target=0.99,
            weight=3.0,
            description="99% of check-in commits inside 25 ms.",
        ),
        AvailabilityObjective(
            "checkin-availability",
            family="repro_lbsn_checkins_total",
            good_labels=(("valid",), ("flagged",)),
            target=0.75,
            weight=2.0,
            description=(
                "Check-ins answered with a reward decision (valid or "
                "flagged) rather than rejected outright."
            ),
        ),
        LatencyObjective(
            "defense-verdict-p99",
            family="repro_defense_check_seconds",
            labels=("distance-bounding",),
            threshold_s=0.025,
            target=0.99,
            weight=1.0,
            description="99% of distance-bounding verdicts inside 25 ms.",
        ),
        LatencyObjective(
            "wal-fsync-p99",
            family="repro_wal_fsync_seconds",
            threshold_s=0.1,
            target=0.99,
            weight=1.0,
            description="99% of WAL fsync batches inside 100 ms.",
        ),
        RatioObjective(
            "detector-replay-currency",
            good_family="repro_durable_events_applied_total",
            total_family="repro_wal_appends_total",
            target=0.95,
            weight=1.0,
            description=(
                "Share of WAL-appended events already applied to live "
                "detector shards (the inverse of replay lag)."
            ),
        ),
    ]
