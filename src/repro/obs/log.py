"""Dependency-free, thread-safe structured JSONL logging.

Metrics (PR 2) answer "how many / how fast"; the log answers "what
happened to *this* request".  Every instrumented layer emits structured
records — an event name plus typed fields, one JSON object per line —
into a shared :class:`LogHub` that keeps a bounded in-memory ring and
fans lines out to any registered sinks.  Because every record carries the
request's ``trace_id`` (see :mod:`repro.obs.context`), one grep of the
exported JSONL reconstructs a check-in's whole life: verify → commit →
publish → detect → flag.

Design constraints, matching the rest of :mod:`repro.obs`:

1. **Zero cost when absent.**  Components take ``log: Optional[LogHub]``
   and skip everything when ``None``.
2. **Cheap when present.**  The hot path builds one small dict and
   packs one tuple into a preallocated ring slot — :class:`LogRecord`
   construction and JSON serialisation are both *lazy* (materialised at
   read/sink time, not at record time), which is what keeps the E21
   bench under its 5% bar.  Suppressed records (level/sampling) cost one
   integer compare.
3. **Thread-safe.**  The ring append and sink fan-out run under one hub
   lock; per-logger state (the sampling counter) is GIL-atomic.
4. **No dependencies.**  ``json`` + ``threading`` + ``time`` only.

Levels are integers mirroring :mod:`logging` (DEBUG=10 … ERROR=40).
Sampling is *deterministic stride* sampling per logger: ``sample=0.1``
keeps every 10th DEBUG/INFO record (warnings and errors are never
sampled away), so tests and replays see the same kept set every run.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.errors import ReproError

__all__ = [
    "DEBUG",
    "INFO",
    "WARNING",
    "ERROR",
    "LEVEL_NAMES",
    "LogError",
    "LogRecord",
    "LogHub",
    "StructuredLogger",
    "level_name",
]


class LogError(ReproError):
    """Misuse of the logging API (bad levels, bad sample rates)."""


DEBUG = 10
INFO = 20
WARNING = 30
ERROR = 40

LEVEL_NAMES: Dict[int, str] = {
    DEBUG: "debug",
    INFO: "info",
    WARNING: "warning",
    ERROR: "error",
}

_NAME_TO_LEVEL = {name: lvl for lvl, name in LEVEL_NAMES.items()}


def level_name(level: int) -> str:
    """Canonical lowercase name for a level (``"info"``), or the number."""
    return LEVEL_NAMES.get(level, str(level))


def _coerce_level(level) -> int:
    if isinstance(level, str):
        try:
            return _NAME_TO_LEVEL[level.lower()]
        except KeyError:
            raise LogError(f"unknown log level: {level!r}") from None
    return int(level)


def _jsonable(value: Any) -> Any:
    """Fallback serializer: never let one odd field kill an export line."""
    return repr(value)


class LogRecord:
    """One structured log record.

    Serialisation is deferred: the record holds its parts, and
    :meth:`to_json` renders the line on demand.  Key order in the output
    is fixed (``ts``, ``level``, ``logger``, ``event``, then fields in
    insertion order) so lines diff and grep predictably.
    """

    __slots__ = ("ts", "level", "logger", "event", "fields")

    def __init__(
        self,
        ts: float,
        level: int,
        logger: str,
        event: str,
        fields: Dict[str, Any],
    ) -> None:
        self.ts = ts
        self.level = level
        self.logger = logger
        self.event = event
        self.fields = fields

    @property
    def trace_id(self) -> Optional[str]:
        """The record's trace correlation key, if any."""
        return self.fields.get("trace_id")

    def to_dict(self) -> Dict[str, Any]:
        """The record as one flat JSON-ready mapping."""
        out: Dict[str, Any] = {
            "ts": self.ts,
            "level": level_name(self.level),
            "logger": self.logger,
            "event": self.event,
        }
        out.update(self.fields)
        return out

    def to_json(self) -> str:
        """The record as one JSONL line (no trailing newline)."""
        return json.dumps(
            self.to_dict(), separators=(",", ":"), default=_jsonable
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LogRecord({level_name(self.level)} {self.logger} "
            f"{self.event} {self.fields!r})"
        )


#: A sink receives every *kept* record.  Sinks run under the hub lock in
#: registration order; a raising sink is counted, never propagated.
LogSink = Callable[[LogRecord], None]


class StructuredLogger:
    """A named logger bound to a hub, with its own level and sampling.

    Obtained via :meth:`LogHub.logger`; loggers are cached per name so
    every component naming ``"lbsn.service"`` shares one instance (and
    one level/sampling configuration).

    ``sample`` is the kept fraction for records *below* WARNING:
    deterministic stride sampling keeps record ``i`` when the integer
    part of ``i * sample`` advances, so ``sample=0.25`` keeps exactly one
    in four.  WARNING and ERROR records always pass.
    """

    __slots__ = ("name", "hub", "level", "sample", "_seen", "_bound")

    def __init__(
        self,
        name: str,
        hub: "LogHub",
        level: Optional[int] = None,
        sample: float = 1.0,
        bound: Optional[Dict[str, Any]] = None,
    ) -> None:
        if not (0.0 < sample <= 1.0):
            raise LogError(f"sample must be in (0, 1]: {sample}")
        self.name = name
        self.hub = hub
        self.level = level  # None → inherit the hub level.
        self.sample = sample
        self._seen = 0
        self._bound = bound or {}

    # Configuration -----------------------------------------------------

    def set_level(self, level) -> "StructuredLogger":
        """Override this logger's threshold (None reverts to the hub's)."""
        self.level = None if level is None else _coerce_level(level)
        return self

    def set_sample(self, sample: float) -> "StructuredLogger":
        """Set the kept fraction for sub-WARNING records."""
        if not (0.0 < sample <= 1.0):
            raise LogError(f"sample must be in (0, 1]: {sample}")
        self.sample = sample
        return self

    def bind(self, **fields: Any) -> "StructuredLogger":
        """A child logger that stamps ``fields`` onto every record.

        The child shares this logger's hub and configuration by value;
        it is *not* registered in the hub's cache (binding is a local
        convenience, not a new configuration scope).
        """
        merged = dict(self._bound)
        merged.update(fields)
        return StructuredLogger(
            self.name, self.hub, self.level, self.sample, merged
        )

    # Emission ----------------------------------------------------------

    def enabled_for(self, level: int) -> bool:
        """Would a record at ``level`` pass this logger's threshold?"""
        threshold = self.level if self.level is not None else self.hub.level
        return level >= threshold

    def log(self, level: int, event: str, **fields: Any) -> bool:
        """Emit one record; returns True when it was kept.

        The fast-rejection path (level below threshold) is one attribute
        read and one compare — cheap enough to leave DEBUG calls on hot
        paths unconditionally.
        """
        return self._log(level, event, fields)

    def _log(self, level: int, event: str, fields: Dict[str, Any]) -> bool:
        # Takes ownership of ``fields`` (a fresh kwargs dict at every call
        # site) — avoiding a second ``**``-repack is a measurable slice of
        # the E21 budget.
        hub = self.hub
        threshold = self.level if self.level is not None else hub.level
        if level < threshold:
            return False
        if level < WARNING and self.sample < 1.0:
            # Deterministic stride sampling (GIL-atomic increment; an
            # occasional racy double-count only shifts the stride phase).
            seen = self._seen = self._seen + 1
            if int(seen * self.sample) == int((seen - 1) * self.sample):
                hub._count_suppressed()
                return False
        if self._bound:
            merged = dict(self._bound)
            merged.update(fields)
            fields = merged
        hub._emit(time.time(), level, self.name, event, fields)
        return True

    def debug(self, event: str, **fields: Any) -> bool:
        """Emit at DEBUG."""
        return self._log(DEBUG, event, fields)

    def info(self, event: str, **fields: Any) -> bool:
        """Emit at INFO."""
        return self._log(INFO, event, fields)

    def warning(self, event: str, **fields: Any) -> bool:
        """Emit at WARNING (never sampled away)."""
        return self._log(WARNING, event, fields)

    def error(self, event: str, **fields: Any) -> bool:
        """Emit at ERROR (never sampled away)."""
        return self._log(ERROR, event, fields)


class LogHub:
    """Bounded ring + sink fan-out shared by every logger in a process.

    Parameters
    ----------
    ring_size:
        How many most-recent records the in-memory ring retains.  The
        ring is the ``/debug/logs`` data source and the integration
        test's flight recorder; older records fall off silently (the
        ``dropped`` counter says how many).
    level:
        Default threshold for loggers without their own override.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; when set,
        kept records are counted in
        ``repro_log_records_total{logger,level}``.
    """

    def __init__(
        self,
        ring_size: int = 4096,
        level: int = INFO,
        metrics=None,
    ) -> None:
        if ring_size < 1:
            raise LogError(f"ring_size must be >= 1: {ring_size}")
        self.ring_size = ring_size
        self.level = _coerce_level(level)
        self._lock = threading.Lock()
        #: Ring of (ts, level, logger, event, fields) tuples; LogRecord
        #: objects are materialised on read (see :meth:`_emit`).
        self._ring: List[Optional[tuple]] = [None] * ring_size
        self._next = 0  # total records ever kept (ring head = _next - 1)
        self._suppressed = 0
        self._sink_errors = 0
        self._sinks: List[LogSink] = []
        self._loggers: Dict[str, StructuredLogger] = {}
        self._records_metric = None
        #: Pre-bound counter children keyed by (logger, level): the
        #: ``labels()`` resolution costs a tuple build plus a family-lock
        #: acquisition, which is too much to pay on every kept record.
        self._metric_children: Dict[tuple, Any] = {}
        if metrics is not None:
            self._records_metric = metrics.counter(
                "repro_log_records_total",
                "Structured log records kept, by logger and level.",
                ("logger", "level"),
            )

    # Logger management -------------------------------------------------

    def logger(
        self,
        name: str,
        level=None,
        sample: Optional[float] = None,
    ) -> StructuredLogger:
        """The (cached) logger registered under ``name``.

        ``level``/``sample`` apply on first creation *or* re-configure an
        existing logger when passed explicitly — so tests can turn one
        subsystem to DEBUG without touching the rest.
        """
        with self._lock:
            logger = self._loggers.get(name)
            if logger is None:
                logger = StructuredLogger(name, self)
                self._loggers[name] = logger
        if level is not None:
            logger.set_level(level)
        if sample is not None:
            logger.set_sample(sample)
        return logger

    def set_level(self, level) -> None:
        """Change the hub-wide default threshold."""
        self.level = _coerce_level(level)

    def logger_names(self) -> List[str]:
        """Names of every logger created so far, sorted."""
        with self._lock:
            return sorted(self._loggers)

    # Sinks ---------------------------------------------------------------

    def add_sink(self, sink: LogSink) -> None:
        """Register a sink receiving every kept record."""
        with self._lock:
            self._sinks.append(sink)

    def add_jsonl_sink(self, write: Callable[[str], Any]) -> None:
        """Register a line-oriented sink (e.g. ``file.write``).

        Each kept record is rendered to one JSONL line (with trailing
        newline) and handed to ``write``.
        """
        self.add_sink(lambda record: write(record.to_json() + "\n"))

    @property
    def sink_errors(self) -> int:
        """Sink invocations that raised (swallowed and counted)."""
        return self._sink_errors

    # Emission ------------------------------------------------------------

    def _emit(
        self,
        ts: float,
        level: int,
        logger: str,
        event: str,
        fields: Dict[str, Any],
    ) -> None:
        # The ring stores bare 5-tuples, not LogRecord objects: record
        # construction is deferred to the (cold) read side, so the hot
        # path pays one tuple pack — unless a sink needs the record now.
        with self._lock:
            self._ring[self._next % self.ring_size] = (
                ts, level, logger, event, fields,
            )
            self._next += 1
            if self._sinks:
                record = LogRecord(ts, level, logger, event, fields)
                for sink in self._sinks:
                    try:
                        sink(record)
                    except Exception:  # noqa: BLE001 - a broken sink must
                        self._sink_errors += 1  # never break the hot path.
        if self._records_metric is not None:
            # Dict get on a tuple key is GIL-atomic; a racy first miss
            # just resolves the same child twice (labels() caches).
            key = (logger, level)
            child = self._metric_children.get(key)
            if child is None:
                child = self._records_metric.labels(
                    logger, level_name(level)
                )
                self._metric_children[key] = child
            child.inc()

    def _count_suppressed(self) -> None:
        self._suppressed += 1

    # Read side -----------------------------------------------------------

    @property
    def emitted(self) -> int:
        """Total records kept since construction (ring + fallen-off)."""
        with self._lock:
            return self._next

    @property
    def suppressed(self) -> int:
        """Records discarded by sampling."""
        return self._suppressed

    @property
    def dropped(self) -> int:
        """Kept records that have since fallen off the ring."""
        with self._lock:
            return max(0, self._next - self.ring_size)

    def __len__(self) -> int:
        with self._lock:
            return min(self._next, self.ring_size)

    def records(
        self,
        trace_id: Optional[str] = None,
        logger: Optional[str] = None,
        event: Optional[str] = None,
        min_level: int = 0,
        limit: Optional[int] = None,
    ) -> List[LogRecord]:
        """Ring contents, oldest first, optionally filtered.

        ``limit`` keeps the *newest* matches.  This is the query behind
        ``GET /debug/logs?trace_id=`` — the one-grep trace reconstruction
        the module docstring promises.
        """
        with self._lock:
            if self._next <= self.ring_size:
                snapshot = [
                    r for r in self._ring[: self._next] if r is not None
                ]
            else:
                head = self._next % self.ring_size
                snapshot = [
                    r
                    for r in self._ring[head:] + self._ring[:head]
                    if r is not None
                ]
        out = [
            record
            for record in (LogRecord(*entry) for entry in snapshot)
            if (trace_id is None or record.trace_id == trace_id)
            and (logger is None or record.logger == logger)
            and (event is None or record.event == event)
            and record.level >= min_level
        ]
        if limit is not None:
            out = out[-limit:]
        return out

    def export_jsonl(self, records: Optional[Iterable[LogRecord]] = None) -> str:
        """Render records (default: the whole ring) as JSONL text."""
        if records is None:
            records = self.records()
        return "".join(record.to_json() + "\n" for record in records)
