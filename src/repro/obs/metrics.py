"""A dependency-free, thread-safe metrics registry.

The paper's method is *measurement*: reverse-engineering the cheater code
by watching how the service reacts (§4).  Running that method against our
own reproduction — and optimizing the ROADMAP's "fast as the hardware
allows" hot paths — needs the same discipline turned inward, so every
layer of the system (service, store, event bus, detectors, crawler)
accepts an optional :class:`MetricsRegistry` and reports what it is doing.

Three metric kinds, deliberately mirroring the Prometheus data model so
the text exposition (:meth:`MetricsRegistry.render_text`) is scrapeable by
standard tooling:

* :class:`Counter` — a monotonically increasing total (events published,
  pages fetched, check-ins denied per rule).
* :class:`Gauge` — a value that goes up and down (entity counts, queue
  depths, current suspects).
* :class:`Histogram` — an observation distribution over fixed buckets
  (latencies: commit time, lock hold time, fetch time, span durations).

Every metric is a *family* that may carry label names; ``labels(...)``
returns (creating on first use) the child holding the actual value, so
``bus_dropped.labels(subscriber="ledger").inc()`` is the idiom throughout.
Families without label names expose the child API directly
(``published.inc()``).

Design constraints:

1. **Zero cost when absent.**  Instrumented components take
   ``metrics: Optional[MetricsRegistry] = None`` (mirroring the
   ``event_bus`` injection pattern) and skip all accounting when ``None``.
2. **Cheap when present.**  A child increment is one lock acquisition and
   one float add; the E20 bench holds the instrumented check-in pipeline
   to <5% throughput overhead.
3. **Thread-safe everywhere.**  The service, bus workers, and 40+ crawler
   threads all record concurrently; every child guards its state with its
   own lock, and family/registry dictionaries are guarded separately.
4. **No dependencies.**  Standard library only.
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "default_registry",
    "render_labels",
]


class MetricError(ReproError):
    """Misuse of the metrics API (bad names, kind clashes, label clashes)."""


#: Fixed latency buckets (seconds) shared by every duration histogram:
#: 100 µs to 5 s in a 1-2.5-5 progression, +Inf implied.  One shared shape
#: keeps cross-layer latency comparisons (commit vs. lock vs. fetch)
#: directly readable off the same bucket boundaries.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.000_1,
    0.000_25,
    0.000_5,
    0.001,
    0.002_5,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)


def _valid_name(name: str) -> bool:
    if not name:
        return False
    head = name[0]
    if not (head.isascii() and (head.isalpha() or head == "_")):
        return False
    return all(c.isascii() and (c.isalnum() or c in "_:") for c in name)


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus text format expects."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def render_labels(labelnames: Sequence[str], labelvalues: Sequence[str]) -> str:
    """``{a="x",b="y"}`` for a label set; empty string for no labels."""
    if not labelnames:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(labelnames, labelvalues)
    )
    return "{" + inner + "}"


# ---------------------------------------------------------------------------
# Children — the objects that actually hold values
# ---------------------------------------------------------------------------


class _CounterChild:
    """One labeled (or label-less) monotonic counter."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise MetricError(f"counters only go up: {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current total."""
        with self._lock:
            return self._value


class _GaugeChild:
    """One labeled (or label-less) up/down value."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative)."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount``."""
        with self._lock:
            self._value -= amount

    def set(self, value: float) -> None:
        """Replace the value outright."""
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        """Current value."""
        with self._lock:
            return self._value


class _HistogramChild:
    """One labeled (or label-less) fixed-bucket histogram."""

    __slots__ = ("_lock", "_bounds", "_counts", "_sum", "_count")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self._lock = threading.Lock()
        self._bounds = bounds
        # One slot per finite bound plus the +Inf overflow slot.
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = bisect.bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        """Total observations."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        with self._lock:
            return self._sum

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, ending at +Inf."""
        with self._lock:
            counts = list(self._counts)
        cumulative = 0
        out: List[Tuple[float, int]] = []
        for bound, count in zip(self._bounds + (math.inf,), counts):
            cumulative += count
            out.append((bound, cumulative))
        return out


# ---------------------------------------------------------------------------
# Families — named metrics with (optional) label dimensions
# ---------------------------------------------------------------------------


class _MetricFamily:
    """Shared family machinery: name, help, label names, child table."""

    kind = "untyped"
    _child_type: type = _CounterChild

    def __init__(
        self,
        name: str,
        documentation: str,
        labelnames: Sequence[str] = (),
    ) -> None:
        if not _valid_name(name):
            raise MetricError(f"invalid metric name: {name!r}")
        for label in labelnames:
            if not _valid_name(label):
                raise MetricError(f"invalid label name: {label!r}")
        self.name = name
        self.documentation = documentation
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], object] = {}
        if not self.labelnames:
            # Label-less families expose the child API on the family itself
            # through a single anonymous child created eagerly.
            self._children[()] = self._make_child()

    def _make_child(self):
        return self._child_type()

    def labels(self, *labelvalues: str, **labelkwargs: str):
        """The child for one label-value combination (created on first use)."""
        if labelkwargs:
            if labelvalues:
                raise MetricError("pass label values or kwargs, not both")
            try:
                labelvalues = tuple(
                    str(labelkwargs[name]) for name in self.labelnames
                )
            except KeyError as missing:
                raise MetricError(
                    f"{self.name}: missing label {missing}"
                ) from None
            if len(labelkwargs) != len(self.labelnames):
                extra = set(labelkwargs) - set(self.labelnames)
                raise MetricError(f"{self.name}: unknown labels {extra}")
        else:
            labelvalues = tuple(str(value) for value in labelvalues)
        if len(labelvalues) != len(self.labelnames):
            raise MetricError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {labelvalues}"
            )
        with self._lock:
            child = self._children.get(labelvalues)
            if child is None:
                child = self._make_child()
                self._children[labelvalues] = child
            return child

    def _solo(self):
        if self.labelnames:
            raise MetricError(
                f"{self.name} is labeled {self.labelnames}; use .labels(...)"
            )
        return self._children[()]

    def child(self):
        """The anonymous child of a label-less family.

        Hot paths that record on every operation (the store's entity
        gauges, the fetcher's latency histogram) bind this once at
        construction and call ``inc``/``observe`` on it directly, skipping
        the family-level indirection on each event.
        """
        return self._solo()

    def children(self) -> List[Tuple[Tuple[str, ...], object]]:
        """Snapshot of ``(labelvalues, child)`` pairs, insertion-ordered."""
        with self._lock:
            return list(self._children.items())

    # Rendering ---------------------------------------------------------

    def render(self) -> List[str]:
        """This family's lines of Prometheus text exposition."""
        lines = [
            f"# HELP {self.name} {self.documentation}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for labelvalues, child in self.children():
            lines.extend(self._render_child(labelvalues, child))
        return lines

    def _render_child(self, labelvalues, child) -> List[str]:
        label_str = render_labels(self.labelnames, labelvalues)
        return [f"{self.name}{label_str} {_format_value(child.value)}"]


class Counter(_MetricFamily):
    """A monotonically increasing total."""

    kind = "counter"
    _child_type = _CounterChild

    def inc(self, amount: float = 1.0) -> None:
        """Increment (label-less families only)."""
        self._solo().inc(amount)

    @property
    def value(self) -> float:
        """Current total (label-less families only)."""
        return self._solo().value


class Gauge(_MetricFamily):
    """A value that can go up and down."""

    kind = "gauge"
    _child_type = _GaugeChild

    def inc(self, amount: float = 1.0) -> None:
        """Increment (label-less families only)."""
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        """Decrement (label-less families only)."""
        self._solo().dec(amount)

    def set(self, value: float) -> None:
        """Set (label-less families only)."""
        self._solo().set(value)

    @property
    def value(self) -> float:
        """Current value (label-less families only)."""
        return self._solo().value


class Histogram(_MetricFamily):
    """An observation distribution over fixed cumulative buckets."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        documentation: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise MetricError("histogram needs at least one bucket bound")
        if bounds[-1] == math.inf:
            bounds = bounds[:-1]  # +Inf is implicit
        if len(set(bounds)) != len(bounds):
            raise MetricError(f"duplicate bucket bounds: {bounds}")
        self.buckets = bounds
        super().__init__(name, documentation, labelnames)

    def _make_child(self):
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        """Record one observation (label-less families only)."""
        self._solo().observe(value)

    @property
    def count(self) -> int:
        """Total observations (label-less families only)."""
        return self._solo().count

    @property
    def sum(self) -> float:
        """Sum of observations (label-less families only)."""
        return self._solo().sum

    def bucket_counts(self):
        """Cumulative buckets (label-less families only)."""
        return self._solo().bucket_counts()

    def _render_child(self, labelvalues, child) -> List[str]:
        lines: List[str] = []
        names = self.labelnames + ("le",)
        for bound, cumulative in child.bucket_counts():
            values = labelvalues + (_format_value(bound),)
            lines.append(
                f"{self.name}_bucket{render_labels(names, values)} "
                f"{cumulative}"
            )
        label_str = render_labels(self.labelnames, labelvalues)
        lines.append(f"{self.name}_sum{label_str} {_format_value(child.sum)}")
        lines.append(f"{self.name}_count{label_str} {child.count}")
        return lines


# ---------------------------------------------------------------------------
# The registry
# ---------------------------------------------------------------------------


class MetricsRegistry:
    """Named home for metric families, with get-or-create semantics.

    Components do not coordinate over who declares a metric first: every
    constructor calls ``registry.counter(name, help, labels)`` and gets the
    existing family when a sibling already registered it (two
    :class:`~repro.lbsn.store.DataStore` instances sharing the process
    registry accumulate into the same gauges).  Re-registration with a
    *different* kind or label set is a bug and raises :class:`MetricError`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _MetricFamily] = {}

    # Registration ------------------------------------------------------

    def _get_or_create(
        self, cls, name: str, documentation: str, labelnames, **kwargs
    ):
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = cls(name, documentation, labelnames, **kwargs)
                self._families[name] = family
                return family
        if not isinstance(family, cls):
            raise MetricError(
                f"{name} already registered as {family.kind}, "
                f"wanted {cls.kind}"
            )
        if family.labelnames != tuple(labelnames):
            raise MetricError(
                f"{name} already registered with labels "
                f"{family.labelnames}, wanted {tuple(labelnames)}"
            )
        return family

    def counter(
        self, name: str, documentation: str, labelnames: Sequence[str] = ()
    ) -> Counter:
        """Get or create a :class:`Counter` family."""
        return self._get_or_create(Counter, name, documentation, labelnames)

    def gauge(
        self, name: str, documentation: str, labelnames: Sequence[str] = ()
    ) -> Gauge:
        """Get or create a :class:`Gauge` family."""
        return self._get_or_create(Gauge, name, documentation, labelnames)

    def histogram(
        self,
        name: str,
        documentation: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        """Get or create a :class:`Histogram` family."""
        return self._get_or_create(
            Histogram, name, documentation, labelnames, buckets=buckets
        )

    # Introspection -----------------------------------------------------

    def get(self, name: str) -> Optional[_MetricFamily]:
        """The family registered under ``name``, or None."""
        with self._lock:
            return self._families.get(name)

    def names(self) -> List[str]:
        """All registered family names, sorted."""
        with self._lock:
            return sorted(self._families)

    def collect(self) -> List[_MetricFamily]:
        """All families, sorted by name."""
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def snapshot(self) -> Dict[str, Dict[Tuple[str, ...], float]]:
        """``{family name: {labelvalues: value}}`` for counters and gauges.

        Histograms report their observation *count* per child — handy for
        parity assertions without parsing exposition text.
        """
        out: Dict[str, Dict[Tuple[str, ...], float]] = {}
        for family in self.collect():
            table: Dict[Tuple[str, ...], float] = {}
            for labelvalues, child in family.children():
                if isinstance(child, _HistogramChild):
                    table[labelvalues] = float(child.count)
                else:
                    table[labelvalues] = child.value
            out[family.name] = table
        return out

    # Exposition --------------------------------------------------------

    def render_text(self) -> str:
        """The full registry in Prometheus text exposition format."""
        lines: List[str] = []
        for family in self.collect():
            lines.extend(family.render())
        return "\n".join(lines) + ("\n" if lines else "")


#: The process-default registry the CLI (and anything else that wants a
#: shared, ambient one) uses.  Library code never reaches for this
#: implicitly — injection stays explicit — but ``repro metrics`` and the
#: webserver's ``/metrics`` route need one registry per process.
_DEFAULT_REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return _DEFAULT_REGISTRY
