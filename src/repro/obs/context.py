"""Trace propagation: one ``trace_id`` per check-in, carried end to end.

The paper's central measurement — 25 consecutive cheating check-ins
slipping past the cheater code (§3.3) — is only *falsifiable* if every
request's full causal story can be reconstructed after the fact: which
check-in, through which rules, onto which bus events, into which detector
scores, producing which ledger flag or defense verdict.  PR 2's metrics
and spans are aggregates; they cannot answer "which check-in caused this
flag".  A :class:`TraceContext` can: it is minted exactly once per request
(at :meth:`LbsnService.check_in <repro.lbsn.service.LbsnService.check_in>`
or at web-server request entry), attached to every structured log record
and every :class:`~repro.stream.events.StreamEvent` the request produces,
and handed down through the defense layer — so one grep of the JSONL log
by ``trace_id`` replays a check-in's whole life.

Design constraints (shared with the rest of :mod:`repro.obs`):

1. **Zero cost when absent.**  Uninstrumented services never mint.
2. **Cheap when present.**  Minting is one atomic counter increment and
   one string format — no ``uuid.uuid4()`` on the hot path.  The E21
   bench holds minting + logging + propagation under 5% of check-in
   throughput.
3. **Thread-safe.**  IDs are unique across threads (``itertools.count``
   under the GIL); the ambient context rides a :class:`contextvars.
   ContextVar`, so concurrent requests never see each other's trace.
4. **Dependency-free.**  Standard library only.

ID format: ``<8 hex process nonce>-<8 hex sequence>`` (e.g.
``a1b2c3d4-0000002a``).  The nonce distinguishes processes/runs, the
sequence orders traces within one; both are fixed-width so logs sort and
grep cleanly.  Span IDs within a trace are small decimal strings
allocated per-context.
"""

from __future__ import annotations

import contextvars
import itertools
import os
from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = [
    "TraceContext",
    "current_trace",
    "set_current_trace",
    "use_trace",
]

#: Per-process nonce distinguishing two runs' trace IDs in merged logs.
_PROCESS_NONCE = os.urandom(4).hex()

#: Monotonic trace counter.  ``itertools.count`` advances atomically under
#: the GIL, so minting needs no lock.
_TRACE_COUNTER = itertools.count(1)

_CURRENT: contextvars.ContextVar[Optional["TraceContext"]] = (
    contextvars.ContextVar("repro_trace_context", default=None)
)


class TraceContext:
    """Identity of one request's causal chain.

    ``trace_id`` names the whole chain; ``parent_span_id`` names the hop
    that spawned the current work (``None`` at the root).  Contexts are
    cheap value objects — handing one to a child layer via :meth:`child`
    shares the ``trace_id`` and records the spawning span.
    """

    __slots__ = ("trace_id", "parent_span_id", "_span_counter")

    def __init__(
        self,
        trace_id: str,
        parent_span_id: Optional[str] = None,
    ) -> None:
        self.trace_id = trace_id
        self.parent_span_id = parent_span_id
        # Allocated lazily: most contexts are minted once per check-in and
        # never hand out span IDs, so the counter allocation would be pure
        # hot-path waste (E21 measures this).
        self._span_counter = None

    @classmethod
    def mint(cls) -> "TraceContext":
        """A fresh root context with a process-unique ``trace_id``."""
        return cls(_PROCESS_NONCE + "-" + format(next(_TRACE_COUNTER), "08x"))

    def next_span_id(self) -> str:
        """Allocate the next span ID within this trace."""
        if self._span_counter is None:
            self._span_counter = itertools.count(1)
        return str(next(self._span_counter))

    def child(self, span_id: Optional[str] = None) -> "TraceContext":
        """A context for work spawned under ``span_id`` of this trace."""
        return TraceContext(
            self.trace_id,
            parent_span_id=(
                span_id if span_id is not None else self.next_span_id()
            ),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TraceContext(trace_id={self.trace_id!r}, "
            f"parent_span_id={self.parent_span_id!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceContext):
            return NotImplemented
        return (
            self.trace_id == other.trace_id
            and self.parent_span_id == other.parent_span_id
        )

    def __hash__(self) -> int:
        return hash((self.trace_id, self.parent_span_id))


def current_trace() -> Optional[TraceContext]:
    """The ambient trace context of the calling execution context."""
    return _CURRENT.get()


def set_current_trace(
    trace: Optional[TraceContext],
) -> "contextvars.Token":
    """Install ``trace`` as the ambient context; returns the reset token."""
    return _CURRENT.set(trace)


@contextmanager
def use_trace(trace: Optional[TraceContext]) -> Iterator[Optional[TraceContext]]:
    """Run a block under ``trace`` as the ambient context.

    The web server wraps request handling in this so everything a handler
    touches — service calls, log records — inherits the request's trace
    without parameter plumbing through rendering code.
    """
    token = _CURRENT.set(trace)
    try:
        yield trace
    finally:
        _CURRENT.reset(token)
