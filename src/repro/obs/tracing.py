"""Lightweight span tracing: durations into histograms, slow spans kept.

A *span* is one timed region of code with a dotted name
(``"checkin.commit"``, ``"crawler.fetch"``, ``"store.lock"``).  The tracer
records every span's duration into one shared histogram family —
``repro_span_seconds{span="..."}`` — so latency distributions for every
instrumented hot path land in the same registry the counters live in, and
keeps an in-memory ring of the most recent *slow* spans (duration over a
configurable threshold) for post-hoc "what was the service doing when it
stalled" inspection without any log pipeline.

Usage::

    registry = MetricsRegistry()
    trace = Tracer(registry)
    with trace.span("checkin.commit"):
        ...  # the timed region

The context manager is exception-transparent: the duration is recorded
whether the region raised or not, and the exception propagates.

Span naming convention (documented in ``docs/OBSERVABILITY.md``):
``<layer>.<operation>``, lowercase, dot-separated, no per-entity values in
the name (those belong in metric labels, and span names feed a label).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from collections import deque

from repro.obs.metrics import MetricsRegistry

__all__ = ["SPAN_HISTOGRAM_NAME", "SpanRecord", "Tracer"]

#: The one histogram family every tracer records into.
SPAN_HISTOGRAM_NAME = "repro_span_seconds"

#: Spans at or above this duration enter the slow ring by default (50 ms —
#: two orders of magnitude above a healthy check-in commit).
DEFAULT_SLOW_THRESHOLD_S = 0.05

#: How many slow spans the ring retains.
DEFAULT_RING_SIZE = 128


@dataclass(frozen=True)
class SpanRecord:
    """One completed slow span."""

    #: Dotted span name (``checkin.commit``).
    name: str
    #: Measured duration, seconds.
    duration_s: float
    #: Wall-clock completion time (``time.time()``), for correlation.
    ended_at: float
    #: Trace this span belonged to (see :mod:`repro.obs.context`), when
    #: the instrumented layer propagated one — lets ``/debug/traces``
    #: link a stall back to the exact request that suffered it.
    trace_id: Optional[str] = None

    def to_dict(self) -> dict:
        """JSON-ready shape for the ``/debug/traces`` route."""
        return {
            "span": self.name,
            "duration_s": self.duration_s,
            "ended_at": self.ended_at,
            "trace_id": self.trace_id,
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}: {self.duration_s * 1000.0:.1f} ms"


class _SpanContext:
    """One active span: a hand-rolled context manager.

    A class-based ``__enter__``/``__exit__`` pair costs roughly a third of
    a ``@contextmanager`` generator per use — and spans wrap the service's
    hottest path (every check-in commit), where the E20 bench holds total
    observability overhead under 5%.
    """

    __slots__ = ("_tracer", "_child", "_name", "_start")

    def __init__(self, tracer: "Tracer", child, name: str) -> None:
        self._tracer = tracer
        self._child = child
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_SpanContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._start
        self._child.observe(duration)
        tracer = self._tracer
        if duration >= tracer.slow_threshold_s:
            tracer._note_slow(self._name, duration)
        return False  # exception-transparent


class Tracer:
    """Records span durations into a registry and retains slow outliers."""

    def __init__(
        self,
        registry: MetricsRegistry,
        slow_threshold_s: float = DEFAULT_SLOW_THRESHOLD_S,
        ring_size: int = DEFAULT_RING_SIZE,
    ) -> None:
        self.registry = registry
        self.slow_threshold_s = slow_threshold_s
        self._histogram = registry.histogram(
            SPAN_HISTOGRAM_NAME,
            "Duration of traced spans, by span name.",
            ("span",),
        )
        #: Per-name child cache.  Plain-dict reads are GIL-atomic, so the
        #: hot path skips the family lock ``labels()`` would take; misses
        #: fall through to ``labels()`` and publish the child back.
        self._children: Dict[str, object] = {}
        self._ring: Deque[SpanRecord] = deque(maxlen=ring_size)
        self._lock = threading.Lock()

    def span(self, name: str) -> _SpanContext:
        """Time one region of code under ``name`` (a context manager)."""
        child = self._children.get(name)
        if child is None:
            child = self._histogram.labels(name)
            self._children[name] = child
        return _SpanContext(self, child, name)

    def record(
        self, name: str, duration: float, trace_id: Optional[str] = None
    ) -> None:
        """Record one already-measured span duration.

        The zero-allocation primitive behind :meth:`span`: hot paths that
        time themselves with two ``perf_counter()`` calls in a
        ``try/finally`` (the check-in commit) use this directly, skipping
        the per-call context-manager object.  ``trace_id`` (optional, and
        only *read* on the slow path) correlates a retained slow span
        with the request's structured-log story.
        """
        child = self._children.get(name)
        if child is None:
            child = self._histogram.labels(name)
            self._children[name] = child
        child.observe(duration)
        if duration >= self.slow_threshold_s:
            self._note_slow(name, duration, trace_id)

    def _note_slow(
        self, name: str, duration: float, trace_id: Optional[str] = None
    ) -> None:
        """Retain one slow span; only the slow path ever takes this lock."""
        record = SpanRecord(
            name=name,
            duration_s=duration,
            ended_at=time.time(),
            trace_id=trace_id,
        )
        with self._lock:
            self._ring.append(record)

    def time(self, name: str, fn, *args, **kwargs):
        """Run ``fn(*args, **kwargs)`` inside a span; returns its result."""
        with self.span(name):
            return fn(*args, **kwargs)

    # Read side ----------------------------------------------------------

    @property
    def span_count(self) -> int:
        """Total spans recorded into this tracer's registry.

        Derived from the span histogram's children (each ``observe`` is
        already counted under the child's lock), so the fast path carries
        no extra tracer-level lock.  Tracers sharing one registry share
        the histogram — and therefore this total.
        """
        return sum(
            child.count for _, child in self._histogram.children()
        )

    def recent_slow(self, limit: Optional[int] = None) -> List[SpanRecord]:
        """The most recent slow spans, oldest first."""
        with self._lock:
            records = list(self._ring)
        return records if limit is None else records[-limit:]

    def slowest(self) -> Optional[SpanRecord]:
        """The slowest span currently retained in the ring."""
        records = self.recent_slow()
        if not records:
            return None
        return max(records, key=lambda record: record.duration_s)
