"""Observability substrate: metrics registry + span tracer.

``repro.obs`` sits at the bottom of the layer stack next to ``repro.geo``
and ``repro.simnet`` — standard library only, no upward imports — and
every higher layer takes an optional :class:`MetricsRegistry` the way the
service takes an optional ``event_bus``:

* :mod:`repro.lbsn` — check-in outcomes per status/rule, commit latency,
  entity-count gauges, store lock hold time.
* :mod:`repro.stream` — bus publish/deliver/drop accounting, queue depth,
  detector scoring volume, live suspect counts.
* :mod:`repro.crawler` — pages fetched per outcome, fetch latency,
  retries, parse failures, per-thread throughput.

Expose a snapshot with :meth:`MetricsRegistry.render_text` (Prometheus
text format), the ``/metrics`` route on the simulated web server, or the
``repro metrics`` CLI subcommand.  ``docs/OBSERVABILITY.md`` catalogues
every metric name; a test holds that catalogue and the code in parity.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    default_registry,
)
from repro.obs.tracing import SPAN_HISTOGRAM_NAME, SpanRecord, Tracer

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "default_registry",
    "SPAN_HISTOGRAM_NAME",
    "SpanRecord",
    "Tracer",
]
