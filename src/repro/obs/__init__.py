"""Observability substrate: metrics, tracing, structured logs, history.

``repro.obs`` sits at the bottom of the layer stack next to ``repro.geo``
and ``repro.simnet`` — standard library only, no upward imports — and
every higher layer takes optional observability handles the way the
service takes an optional ``event_bus``:

* :mod:`repro.obs.metrics` — Counter/Gauge/Histogram families in a
  thread-safe :class:`MetricsRegistry`, Prometheus text exposition.
* :mod:`repro.obs.tracing` — span durations into the registry plus a
  bounded ring of recent slow spans.
* :mod:`repro.obs.log` — structured JSONL logging: bounded ring, sink
  fan-out, per-logger level/sampling (:class:`LogHub`).
* :mod:`repro.obs.context` — :class:`TraceContext` propagation, so one
  ``trace_id`` links a check-in's log records, bus events, detector
  scores, and defense verdicts end to end.
* :mod:`repro.obs.timeseries` — :class:`TimeSeriesRecorder` snapshots
  the registry into bounded per-series history rings with delta/rate
  queries; also home of the shared JSON serializer
  (:func:`registry_to_dict`) behind ``repro metrics --format json`` and
  ``GET /debug/vars``.
* :mod:`repro.obs.profiler` — wall-clock sampling profiler walking
  ``sys._current_frames()``: folded stacks per thread, collapsed-format
  export, top-N hotspot tables, :class:`ProfiledSection` phase tags.
* :mod:`repro.obs.slo` — declarative service-level objectives over the
  registry: error budgets, multi-window multi-burn-rate alerting, and a
  weighted health-score roll-up (``/debug/slo``, ``/debug/health``).

Instrumented layers: :mod:`repro.lbsn` (pipeline outcomes, commit spans,
store gauges/locks, per-check-in log records), :mod:`repro.stream` (bus
accounting, detector volume, ledger flags), :mod:`repro.defense`
(verdict counters, check latency), :mod:`repro.crawler` (fetch outcomes
and latency).  ``docs/OBSERVABILITY.md`` catalogues every metric name; a
test holds that catalogue and the code in parity.
"""

from repro.obs.context import (
    TraceContext,
    current_trace,
    set_current_trace,
    use_trace,
)
from repro.obs.log import (
    DEBUG,
    ERROR,
    INFO,
    WARNING,
    LogError,
    LogHub,
    LogRecord,
    StructuredLogger,
    level_name,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    default_registry,
)
from repro.obs.profiler import (
    ProfiledSection,
    ProfileSnapshot,
    ProfilerError,
    SamplingProfiler,
    fold_stack,
)
from repro.obs.slo import (
    AvailabilityObjective,
    BurnRatePolicy,
    LatencyObjective,
    Objective,
    ObjectiveStatus,
    RatioObjective,
    SloEngine,
    SloError,
    SloReport,
    budget_remaining,
    burn_rate,
    default_slos,
    window_label,
)
from repro.obs.timeseries import (
    TimeSeriesError,
    TimeSeriesRecorder,
    registry_to_dict,
    registry_to_json,
)
from repro.obs.tracing import SPAN_HISTOGRAM_NAME, SpanRecord, Tracer

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "default_registry",
    "SPAN_HISTOGRAM_NAME",
    "SpanRecord",
    "Tracer",
    "TraceContext",
    "current_trace",
    "set_current_trace",
    "use_trace",
    "DEBUG",
    "INFO",
    "WARNING",
    "ERROR",
    "LogError",
    "LogHub",
    "LogRecord",
    "StructuredLogger",
    "level_name",
    "TimeSeriesError",
    "TimeSeriesRecorder",
    "registry_to_dict",
    "registry_to_json",
    "ProfiledSection",
    "ProfileSnapshot",
    "ProfilerError",
    "SamplingProfiler",
    "fold_stack",
    "AvailabilityObjective",
    "BurnRatePolicy",
    "LatencyObjective",
    "Objective",
    "ObjectiveStatus",
    "RatioObjective",
    "SloEngine",
    "SloError",
    "SloReport",
    "budget_remaining",
    "burn_rate",
    "default_slos",
    "window_label",
]
