"""A dependency-free, continuous wall-clock sampling profiler.

The paper's detection side lives or dies on sustained throughput: the
crawler harvested 5.6 M venues under rate limits and the cheater code
must score every check-in inline.  Metrics (PR 2) say *how many* and
traces say *how long*, but neither answers "where do the cycles go" —
that needs stack attribution.  :class:`SamplingProfiler` provides it the
way production profilers do: a background daemon thread walks
``sys._current_frames()`` at a configurable rate, folds each thread's
stack into one ``root;child;leaf`` string, and aggregates counts into a
bounded table.  Exports are the Brendan-Gregg collapsed format (one
``stack count`` line per distinct stack — flamegraph.pl ready) and a
top-N hotspot table (self/total samples per function).

Design constraints, matching the rest of :mod:`repro.obs`:

1. **Zero cost when absent.**  Nothing references the profiler unless a
   caller constructs one; nothing in the hot path checks for it.
2. **Cheap when present.**  The profiled program pays nothing per
   operation — sampling cost lands on the profiler's own thread, and the
   E24 bench holds the default-rate tax on check-in throughput under the
   repo's 5% bar.  The sampler's own walk cost is exported
   (``repro_profiler_sample_seconds``) so its overhead is visible.
3. **Bounded memory.**  At most ``max_stacks`` distinct
   ``(thread, section, stack)`` keys are retained; further *new* stacks
   are dropped and counted (``repro_profiler_stacks_dropped_total``),
   never silently lost.
4. **Thread-safe, standard library only.**  The aggregation table lives
   under one lock shared by the sampler thread and snapshot readers.

Phase attribution: a :class:`ProfiledSection` (``with
profiler.section("chaos.commit-storm"):``) labels every sample taken of
the *entering thread* while the block runs, so bench/chaos/durable-storm
phases separate cleanly in one profile without restarting the sampler.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "DEFAULT_HZ",
    "DEFAULT_MAX_STACKS",
    "ProfiledSection",
    "ProfileSnapshot",
    "ProfilerError",
    "SamplingProfiler",
    "TopRow",
]


class ProfilerError(ReproError):
    """Misuse of the profiler API (bad rate, bad bounds, double start)."""


#: Default sampling rate.  97 Hz, not 100: a prime-ish rate avoids
#: phase-locking with periodic work (timers, 10 ms schedulers) that would
#: systematically over- or under-sample it — the same reason Linux
#: ``perf`` defaults to 99 Hz.
DEFAULT_HZ = 97.0

#: Default bound on distinct (thread, section, stack) keys retained.
DEFAULT_MAX_STACKS = 2048

#: Section label for samples taken outside any :class:`ProfiledSection`.
DEFAULT_SECTION = "-"

#: Aggregation key: (thread name, section label, folded stack).
StackKey = Tuple[str, str, str]

#: One hotspot-table row: (function, self samples, total samples).
TopRow = Tuple[str, int, int]


def _frame_name(frame) -> str:
    """``module.function`` for one frame (the collapsed-format atom)."""
    module = frame.f_globals.get("__name__", "?")
    return f"{module}.{frame.f_code.co_name}"


def fold_stack(frame, max_depth: int) -> str:
    """One thread's stack as a root-first ``;``-joined frame string.

    Deeper-than-``max_depth`` stacks keep their *leaf* end (the hot code)
    and mark the elided root with ``…``.
    """
    names: List[str] = []
    while frame is not None and len(names) < max_depth:
        names.append(_frame_name(frame))
        frame = frame.f_back
    if frame is not None:
        names.append("…")
    names.reverse()
    return ";".join(names)


class ProfileSnapshot:
    """An immutable copy of the profiler's aggregation state.

    ``stacks`` maps ``(thread, section, folded stack)`` to sample counts;
    ``samples`` counts sampling passes, ``dropped`` counts stacks the
    bounded table refused.
    """

    __slots__ = ("hz", "samples", "dropped", "elapsed_s", "stacks")

    def __init__(
        self,
        hz: float,
        samples: int,
        dropped: int,
        elapsed_s: float,
        stacks: Dict[StackKey, int],
    ) -> None:
        self.hz = hz
        self.samples = samples
        self.dropped = dropped
        self.elapsed_s = elapsed_s
        self.stacks = stacks

    @property
    def stack_samples(self) -> int:
        """Total per-thread stack observations across all passes."""
        return sum(self.stacks.values())

    def collapsed(self) -> str:
        """The profile in Brendan-Gregg collapsed format.

        One line per distinct stack: ``frame;frame;frame count``.  The
        thread name is the root frame and a non-default section rides
        second as ``[section]``, so per-thread and per-phase flamegraphs
        fall out of the standard tooling unchanged.
        """
        lines = []
        for (thread, section, stack), count in sorted(self.stacks.items()):
            parts = [thread]
            if section != DEFAULT_SECTION:
                parts.append(f"[{section}]")
            if stack:
                parts.append(stack)
            lines.append(f"{';'.join(parts)} {count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def top(self, n: int = 10) -> List[TopRow]:
        """The hottest functions: ``(name, self samples, total samples)``.

        *Self* counts samples where the function was the executing leaf;
        *total* counts samples with the function anywhere on the stack
        (once per sample, recursion notwithstanding).  Sorted by self,
        then total, then name — the leaf view is what names the code
        actually burning cycles.
        """
        self_counts: Dict[str, int] = {}
        total_counts: Dict[str, int] = {}
        for (_, _, stack), count in self.stacks.items():
            if not stack:
                continue
            frames = stack.split(";")
            leaf = frames[-1]
            self_counts[leaf] = self_counts.get(leaf, 0) + count
            for name in set(frames):
                total_counts[name] = total_counts.get(name, 0) + count
        rows = [
            (name, self_counts.get(name, 0), total)
            for name, total in total_counts.items()
        ]
        rows.sort(key=lambda row: (-row[1], -row[2], row[0]))
        return rows[:n]

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready shape (the ``/debug/profile`` body)."""
        total = self.stack_samples
        return {
            "hz": self.hz,
            "samples": self.samples,
            "stack_samples": total,
            "dropped": self.dropped,
            "elapsed_s": self.elapsed_s,
            "unique_stacks": len(self.stacks),
            "top": [
                {
                    "function": name,
                    "self": self_count,
                    "total": total_count,
                    "self_pct": (100.0 * self_count / total) if total else 0.0,
                }
                for name, self_count, total_count in self.top(20)
            ],
            "collapsed": self.collapsed(),
        }


class ProfiledSection:
    """Labels the entering thread's samples while the block runs.

    Re-entrant and nestable: the innermost section wins, and exiting
    restores whatever label was active before.  Sections are per-thread —
    two threads in different phases profile under different labels
    concurrently.
    """

    __slots__ = ("profiler", "label", "_ident", "_previous")

    def __init__(self, profiler: "SamplingProfiler", label: str) -> None:
        if not label:
            raise ProfilerError("section label must be non-empty")
        self.profiler = profiler
        self.label = label
        self._ident: Optional[int] = None
        self._previous: Optional[str] = None

    def __enter__(self) -> "ProfiledSection":
        self._ident = threading.get_ident()
        self._previous = self.profiler._set_section(self._ident, self.label)
        return self

    def __exit__(self, *exc) -> None:
        self.profiler._restore_section(self._ident, self._previous)
        return None


class SamplingProfiler:
    """Continuous wall-clock sampling profiler over all live threads.

    Parameters
    ----------
    hz:
        Sampling passes per second for the background thread
        (:meth:`start`).  Synchronous :meth:`sample_once` ignores it.
    max_stacks:
        Bound on distinct ``(thread, section, stack)`` keys retained;
        new keys beyond it are counted as dropped.
    max_depth:
        Frames kept per stack (leaf end wins; the elided root shows as
        ``…``).
    metrics:
        Optional registry for the profiler's self-telemetry:
        ``repro_profiler_samples_total``,
        ``repro_profiler_stacks_dropped_total``, and
        ``repro_profiler_sample_seconds``.
    """

    def __init__(
        self,
        hz: float = DEFAULT_HZ,
        max_stacks: int = DEFAULT_MAX_STACKS,
        max_depth: int = 64,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if hz <= 0:
            raise ProfilerError(f"hz must be > 0: {hz}")
        if max_stacks < 1:
            raise ProfilerError(f"max_stacks must be >= 1: {max_stacks}")
        if max_depth < 1:
            raise ProfilerError(f"max_depth must be >= 1: {max_depth}")
        self.hz = float(hz)
        self.max_stacks = max_stacks
        self.max_depth = max_depth
        self._lock = threading.Lock()
        self._table: Dict[StackKey, int] = {}
        self._sections: Dict[int, str] = {}
        self._samples = 0
        self._dropped = 0
        self._elapsed = 0.0
        self._started_at: Optional[float] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        if metrics is not None:
            self._samples_counter = metrics.counter(
                "repro_profiler_samples_total",
                "Sampling passes taken by the profiler.",
            ).child()
            self._dropped_counter = metrics.counter(
                "repro_profiler_stacks_dropped_total",
                "Stacks not recorded because the bounded table was full.",
            ).child()
            self._sample_seconds = metrics.histogram(
                "repro_profiler_sample_seconds",
                "Wall time of one sampling pass (the profiler's own cost).",
            ).child()
        else:
            self._samples_counter = None
            self._dropped_counter = None
            self._sample_seconds = None

    # Sections ----------------------------------------------------------

    def section(self, label: str) -> ProfiledSection:
        """A context manager labeling this thread's samples ``label``."""
        return ProfiledSection(self, label)

    def _set_section(self, ident: int, label: str) -> Optional[str]:
        with self._lock:
            previous = self._sections.get(ident)
            self._sections[ident] = label
        return previous

    def _restore_section(self, ident: int, previous: Optional[str]) -> None:
        with self._lock:
            if previous is None:
                self._sections.pop(ident, None)
            else:
                self._sections[ident] = previous

    # Sampling ----------------------------------------------------------

    def sample_once(self) -> int:
        """One synchronous pass over every live thread's current stack.

        The calling thread is skipped — its stack would just be this
        method.  Returns the number of stacks recorded (dropped stacks
        excluded).  Deterministic-friendly: tests drive this directly
        instead of racing the background thread.
        """
        started = time.perf_counter()
        caller = threading.get_ident()
        frames = sys._current_frames()
        names = {t.ident: t.name for t in threading.enumerate()}
        recorded = 0
        with self._lock:
            for ident, frame in frames.items():
                if ident == caller:
                    continue
                key = (
                    names.get(ident, f"thread-{ident}"),
                    self._sections.get(ident, DEFAULT_SECTION),
                    fold_stack(frame, self.max_depth),
                )
                count = self._table.get(key)
                if count is not None:
                    self._table[key] = count + 1
                    recorded += 1
                elif len(self._table) < self.max_stacks:
                    self._table[key] = 1
                    recorded += 1
                else:
                    self._dropped += 1
                    if self._dropped_counter is not None:
                        self._dropped_counter.inc()
            self._samples += 1
        if self._samples_counter is not None:
            self._samples_counter.inc()
        if self._sample_seconds is not None:
            self._sample_seconds.observe(time.perf_counter() - started)
        return recorded

    def start(self) -> "SamplingProfiler":
        """Run :meth:`sample_once` on a daemon thread every ``1/hz`` s."""
        if self._thread is not None and self._thread.is_alive():
            raise ProfilerError("profiler already started")
        self._stop.clear()
        self._started_at = time.perf_counter()
        interval = 1.0 / self.hz

        def loop() -> None:
            while not self._stop.wait(interval):
                self.sample_once()

        self._thread = threading.Thread(
            target=loop, name="sampling-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the background sampler (idempotent); keeps the table."""
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5.0)
        if self._started_at is not None:
            self._elapsed += time.perf_counter() - self._started_at
            self._started_at = None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # State -------------------------------------------------------------

    @property
    def running(self) -> bool:
        """Whether the background sampler thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    @property
    def samples(self) -> int:
        """Sampling passes taken so far."""
        with self._lock:
            return self._samples

    @property
    def dropped(self) -> int:
        """Stacks refused by the bounded table so far."""
        with self._lock:
            return self._dropped

    def reset(self) -> None:
        """Clear the table and counters (sections survive)."""
        with self._lock:
            self._table.clear()
            self._samples = 0
            self._dropped = 0
            self._elapsed = 0.0
            if self._started_at is not None:
                self._started_at = time.perf_counter()

    def snapshot(self) -> ProfileSnapshot:
        """An immutable copy of the current aggregation state."""
        with self._lock:
            elapsed = self._elapsed
            if self._started_at is not None:
                elapsed += time.perf_counter() - self._started_at
            return ProfileSnapshot(
                hz=self.hz,
                samples=self._samples,
                dropped=self._dropped,
                elapsed_s=elapsed,
                stacks=dict(self._table),
            )
