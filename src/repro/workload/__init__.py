"""Synthetic world generation calibrated to the thesis's measurements."""

from repro.workload.behavior import (
    DEFAULT_HORIZON_DAYS,
    MIN_EVENT_GAP_S,
    BehaviorGenerator,
    CheckInEvent,
    EventReplayer,
    ReplayReport,
)
from repro.workload.chaos import (
    VICTIM_SUBSCRIBER,
    ChaosConfig,
    ChaosReport,
    committed_state_digest,
    run_chaos,
)
from repro.workload.cheaters import (
    CAUGHT_CHEATER_COUNT,
    FARMER_TARGET_MAYORSHIPS,
    FARMER_TOTAL_CHECKINS,
    POWER_USER_COUNT,
    TOP_CHEATER_CHECKINS,
    CheaterGenerator,
    PersonaRoster,
)
from repro.workload.population import (
    FULL_SCALE_USERS,
    LIGHT_CHECKIN_FRACTION,
    USERNAME_FRACTION,
    ZERO_CHECKIN_FRACTION,
    GeneratedPopulation,
    Persona,
    PopulationConfig,
    PopulationGenerator,
    UserSpec,
)
from repro.workload.scenario import (
    FULL_SCALE_VENUES,
    WebStack,
    World,
    build_web_stack,
    build_world,
)
from repro.workload.venues import (
    CHAINS,
    GeneratedVenues,
    VenueGenerator,
    VenueGeneratorConfig,
)

__all__ = [
    "DEFAULT_HORIZON_DAYS",
    "MIN_EVENT_GAP_S",
    "BehaviorGenerator",
    "CheckInEvent",
    "EventReplayer",
    "ReplayReport",
    "CAUGHT_CHEATER_COUNT",
    "FARMER_TARGET_MAYORSHIPS",
    "FARMER_TOTAL_CHECKINS",
    "POWER_USER_COUNT",
    "TOP_CHEATER_CHECKINS",
    "CheaterGenerator",
    "PersonaRoster",
    "FULL_SCALE_USERS",
    "LIGHT_CHECKIN_FRACTION",
    "USERNAME_FRACTION",
    "ZERO_CHECKIN_FRACTION",
    "GeneratedPopulation",
    "Persona",
    "PopulationConfig",
    "PopulationGenerator",
    "UserSpec",
    "FULL_SCALE_VENUES",
    "WebStack",
    "World",
    "build_web_stack",
    "build_world",
    "CHAINS",
    "GeneratedVenues",
    "VenueGenerator",
    "VenueGeneratorConfig",
]

from repro.workload.social import (
    SocialGraph,
    SocialGraphConfig,
    generate_friend_graph,
)

__all__ += ["SocialGraph", "SocialGraphConfig", "generate_friend_graph"]
__all__ += [
    "VICTIM_SUBSCRIBER",
    "ChaosConfig",
    "ChaosReport",
    "committed_state_digest",
    "run_chaos",
]

from repro.workload.capacity import (
    CapacityConfig,
    CapacityResult,
    run_capacity,
    run_capacity_suite,
    speedup,
)

__all__ += [
    "CapacityConfig",
    "CapacityResult",
    "run_capacity",
    "run_capacity_suite",
    "speedup",
]
