"""Synthetic venue population calibrated to the thesis's crawl (§3.2-§3.3).

The generator reproduces the *geographic* and *commercial* structure the
analysis depends on:

* Venues cluster in weighted metropolitan areas but a configurable fraction
  sits in small towns sampled uniformly inside the contiguous-US outline, so
  a scatter of any national chain "forms the shape of the United States
  territory" (Fig 3.4).
* National chains (Starbucks first among them, for the Fig 3.4 query
  ``LIKE "%Starbucks%"``) get branches in proportion to city weight.
* A fraction of venues carry specials, >90% of them mayor-only (§2.1).

Calibration, and where each number comes from:

* :data:`CHAINS` — national chains with Starbucks first (weight 0.30):
  Fig 3.4 is a map of Starbucks branches recovered from the crawl, so
  the coffee chain must be the most numerous and continentally spread.
* ``VenueGeneratorConfig.city_fraction`` = 0.70 vs the uniform
  small-town remainder — enough metro clustering for mayorship
  contention (§2.1) while the 30% tail fills out the US silhouette
  that makes the Fig 3.4 scatter legible.
* ``special_fraction`` = 0.03 with ``mayor_only_share`` = 0.92 —
  §2.1/§3.4: specials are rare and "more than 90%" are mayor-only,
  which is precisely why mayorship farming pays (E9 counts ~1000
  specials whose venue has no mayor yet).
* ``alaska_fraction`` / ``hawaii_fraction`` = 0.004 each and
  ``europe_fraction`` = 0.02 — remote venues exist so the Fig 4.3 mega
  cheater has Alaska and Europe to "visit"; they are kept tiny so they
  do not distort the contiguous-US geography the E7 city-count
  classifier depends on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.geo.coordinates import GeoPoint
from repro.geo.distance import destination_point
from repro.geo.regions import (
    ALASKA_ANCHORS,
    EUROPEAN_CITIES,
    HAWAII_ANCHORS,
    US_CITIES,
    City,
    contiguous_us_bbox,
    in_contiguous_us,
)
from repro.lbsn.models import Special, VenueCategory
from repro.lbsn.service import LbsnService
from repro.lbsn.specials import MAYOR_SPECIAL_TEXTS, UNLOCKED_SPECIAL_TEXTS

#: National chains and the venue category they belong to.  Starbucks is
#: first and most numerous: Fig 3.4 is a map of its branches.
CHAINS: Tuple[Tuple[str, VenueCategory, float], ...] = (
    ("Starbucks", VenueCategory.COFFEE, 0.30),
    ("McDonald's", VenueCategory.RESTAURANT, 0.20),
    ("Wendy's", VenueCategory.RESTAURANT, 0.12),
    ("Subway", VenueCategory.RESTAURANT, 0.14),
    ("Target", VenueCategory.SHOP, 0.08),
    ("Walgreens", VenueCategory.SHOP, 0.10),
    ("Hilton", VenueCategory.HOTEL, 0.06),
)

_INDEPENDENT_NAMES = (
    "Blue Door Cafe",
    "Corner Bar",
    "City Diner",
    "Main Street Books",
    "The Daily Grind",
    "Harbor Grill",
    "Sunset Lounge",
    "Green Market",
    "Old Town Pizza",
    "Union Gym",
    "Midtown Deli",
    "Riverside Tavern",
)

_CATEGORY_POOL = (
    VenueCategory.COFFEE,
    VenueCategory.RESTAURANT,
    VenueCategory.BAR,
    VenueCategory.SHOP,
    VenueCategory.GROCERY,
    VenueCategory.HOTEL,
    VenueCategory.LANDMARK,
    VenueCategory.OFFICE,
    VenueCategory.GYM,
    VenueCategory.OTHER,
)


@dataclass
class VenueGeneratorConfig:
    """Shape parameters of the venue population."""

    #: Fraction of venues placed in the weighted major cities; the rest go
    #: to uniform small-town locations that fill out the US silhouette.
    city_fraction: float = 0.70
    #: Fraction of venues that belong to a national chain.
    chain_fraction: float = 0.18
    #: Fraction of venues carrying a special.
    special_fraction: float = 0.03
    #: Of specials, the mayor-only share (thesis: "more than 90%").
    mayor_only_share: float = 0.92
    #: Small fractions in Alaska / Hawaii / Europe so the Fig 4.3 cheater
    #: has somewhere remote to "visit".
    alaska_fraction: float = 0.004
    hawaii_fraction: float = 0.004
    europe_fraction: float = 0.02


@dataclass
class GeneratedVenues:
    """Output of :func:`generate_venues`: ids grouped for later stages."""

    venue_ids: List[int] = field(default_factory=list)
    venue_ids_by_city: Dict[str, List[int]] = field(default_factory=dict)
    small_town_venue_ids: List[int] = field(default_factory=list)

    @property
    def count(self) -> int:
        """Total venues created."""
        return len(self.venue_ids)


class VenueGenerator:
    """Creates the venue population inside a service."""

    def __init__(
        self,
        service: LbsnService,
        config: Optional[VenueGeneratorConfig] = None,
        seed: int = 0,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.service = service
        self.config = config or VenueGeneratorConfig()
        #: All randomness flows through this instance (same-seed replay).
        self._rng = rng if rng is not None else random.Random(seed)
        self._bbox = contiguous_us_bbox()
        self._branch_counters: Dict[str, int] = {}

    def generate(self, count: int) -> GeneratedVenues:
        """Create ``count`` venues and return the grouping record."""
        if count < 0:
            raise ReproError(f"venue count must be non-negative: {count}")
        result = GeneratedVenues()
        for _ in range(count):
            region_roll = self._rng.random()
            config = self.config
            if region_roll < config.europe_fraction:
                city = self._weighted_city(EUROPEAN_CITIES)
                location = self._city_point(city)
                venue_id = self._create(location, city.name)
                result.venue_ids_by_city.setdefault(city.name, []).append(
                    venue_id
                )
            elif region_roll < config.europe_fraction + config.alaska_fraction:
                location = self._anchor_point(ALASKA_ANCHORS)
                venue_id = self._create(location, "Alaska")
                result.venue_ids_by_city.setdefault("Alaska", []).append(
                    venue_id
                )
            elif region_roll < (
                config.europe_fraction
                + config.alaska_fraction
                + config.hawaii_fraction
            ):
                location = self._anchor_point(HAWAII_ANCHORS)
                venue_id = self._create(location, "Hawaii")
                result.venue_ids_by_city.setdefault("Hawaii", []).append(
                    venue_id
                )
            elif self._rng.random() < config.city_fraction:
                city = self._weighted_city(US_CITIES)
                location = self._city_point(city)
                venue_id = self._create(location, city.name)
                result.venue_ids_by_city.setdefault(city.name, []).append(
                    venue_id
                )
            else:
                location = self._small_town_point()
                venue_id = self._create(location, "small town")
                result.small_town_venue_ids.append(venue_id)
            result.venue_ids.append(venue_id)
        return result

    # Placement ---------------------------------------------------------

    def _weighted_city(self, cities: Sequence[City]) -> City:
        total = sum(city.weight for city in cities)
        roll = self._rng.uniform(0.0, total)
        cumulative = 0.0
        for city in cities:
            cumulative += city.weight
            if roll <= cumulative:
                return city
        return cities[-1]

    def _city_point(self, city: City) -> GeoPoint:
        """A point near the city center, denser toward downtown."""
        # Exponential radial falloff concentrates venues downtown.
        radius = min(
            city.radius_m * 3.0,
            self._rng.expovariate(1.0 / (city.radius_m / 2.0)),
        )
        bearing = self._rng.uniform(0.0, 360.0)
        return destination_point(city.center, bearing, radius)

    def _anchor_point(self, anchors: Sequence[Tuple[float, float]]) -> GeoPoint:
        lat, lon = anchors[self._rng.randrange(len(anchors))]
        return destination_point(
            GeoPoint(lat, lon),
            self._rng.uniform(0.0, 360.0),
            self._rng.uniform(0.0, 8_000.0),
        )

    def _small_town_point(self) -> GeoPoint:
        """Uniform rejection sampling inside the contiguous-US outline."""
        for _ in range(1_000):
            point = GeoPoint(
                self._rng.uniform(self._bbox.south, self._bbox.north),
                self._rng.uniform(self._bbox.west, self._bbox.east),
            )
            if in_contiguous_us(point):
                return point
        raise ReproError("rejection sampling failed to hit the US outline")

    # Venue records -------------------------------------------------------

    def _create(self, location: GeoPoint, city_label: str) -> int:
        name, category = self._pick_name(city_label)
        special = self._pick_special()
        venue = self.service.create_venue(
            name=name,
            location=location,
            address=f"{self._rng.randint(1, 9999)} "
            f"{self._rng.choice(('Main St', '1st Ave', 'Oak St', 'Broadway'))}",
            city=city_label,
            category=category,
            special=special,
        )
        return venue.venue_id

    def _pick_name(self, city_label: str) -> Tuple[str, VenueCategory]:
        if self._rng.random() < self.config.chain_fraction:
            total = sum(share for _, _, share in CHAINS)
            roll = self._rng.uniform(0.0, total)
            cumulative = 0.0
            for chain_name, category, share in CHAINS:
                cumulative += share
                if roll <= cumulative:
                    branch = self._branch_counters.get(chain_name, 0) + 1
                    self._branch_counters[chain_name] = branch
                    return f"{chain_name} #{branch}", category
        base = self._rng.choice(_INDEPENDENT_NAMES)
        suffix = self._rng.randint(1, 99_999)
        category = self._rng.choice(_CATEGORY_POOL)
        return f"{base} {suffix}", category

    def _pick_special(self) -> Optional[Special]:
        if self._rng.random() >= self.config.special_fraction:
            return None
        if self._rng.random() < self.config.mayor_only_share:
            return Special(
                description=self._rng.choice(MAYOR_SPECIAL_TEXTS),
                mayor_only=True,
            )
        return Special(
            description=self._rng.choice(UNLOCKED_SPECIAL_TEXTS),
            mayor_only=False,
            unlock_checkins=self._rng.randint(2, 5),
        )
