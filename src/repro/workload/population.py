"""Synthetic user population calibrated to the thesis's measurements (§4).

Anchors taken from the text, reproduced as *proportions* at any scale:

* 36.3% of users never checked in; 20.4% have one to five check-ins, so
  "more than half of the users have only checked in less than six times".
* ~0.2% of users have at least 1,000 check-ins; the ≥5,000 extreme club is
  populated by injected personas (see :mod:`repro.workload.cheaters`), not
  by the base distribution, mirroring how the thesis treats those 11 users
  as individually identifiable cases.
* Only 26.1% of users have usernames (and hence username-based profile
  URLs).
* Active users' check-in counts follow a truncated power law.  The thesis's
  "20 million check-ins" is an explicit lower bound ("the actual number
  should be higher since only recent check-ins were ... crawled"), so the
  generator targets the tail proportions rather than the raw mean.

The anchors live in module constants so the calibration is auditable in
one place and E8 can assert against the same numbers the generator uses:

* :data:`FULL_SCALE_USERS` = 1,890,000 — the crawled corpus size;
  ``scale`` multiplies it (the default bench world is 1:500).
* :data:`ZERO_CHECKIN_FRACTION` = 0.363 and
  :data:`LIGHT_CHECKIN_FRACTION` = 0.204 — §4.2's "36.3% of the users
  have never checked in" and "20.4% ... one to five"; together they
  make the >50%-under-six-check-ins claim arithmetic, not tuning.
* :data:`USERNAME_FRACTION` = 0.261 — §3.2's 26.1% of profiles carry a
  username; the remainder are reachable only through numeric-ID URLs,
  which is why the crawler enumerates IDs rather than names.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

from repro.errors import ReproError
from repro.geo.regions import US_CITIES, City
from repro.lbsn.service import LbsnService

#: Number of users on real Foursquare at crawl time; ``scale`` multiplies it.
FULL_SCALE_USERS = 1_890_000

#: Fraction of users with zero check-ins (§4.2).
ZERO_CHECKIN_FRACTION = 0.363
#: Fraction with one to five check-ins (§4.2).
LIGHT_CHECKIN_FRACTION = 0.204
#: Fraction of users with usernames (§3.2).
USERNAME_FRACTION = 0.261

_FIRST_NAMES = (
    "Alex", "Sam", "Jordan", "Taylor", "Casey", "Morgan", "Riley",
    "Jamie", "Drew", "Quinn", "Avery", "Cameron", "Dana", "Elliot",
    "Frankie", "Harper", "Jesse", "Kai", "Logan", "Micah",
)
_LAST_NAMES = (
    "Smith", "Johnson", "Lee", "Brown", "Garcia", "Miller", "Davis",
    "Wilson", "Moore", "Clark", "Hall", "Young", "King", "Wright",
    "Scott", "Green", "Baker", "Adams", "Nelson", "Carter",
)


class Persona(Enum):
    """Behavioural classes the event generator dispatches on."""

    INACTIVE = "inactive"
    CASUAL = "casual"       # 1-5 lifetime check-ins
    ACTIVE = "active"       # power-law lifetime activity
    POWER_USER = "power"    # ≥5000 check-ins, concentrated, many mayorships
    CAUGHT_CHEATER = "caught"   # ≥5000 attempts, mostly flagged
    MEGA_CHEATER = "mega"   # the Fig 4.3 profile: 30+ cities in a year
    MAYOR_FARMER = "farmer"  # §3.4: hundreds of mayorships, few check-ins


@dataclass
class UserSpec:
    """One generated account plus its behavioural targets."""

    user_id: int
    persona: Persona
    home_city: City
    target_checkins: int
    #: Optional second city for vacation trips.
    travel_city: Optional[City] = None


@dataclass
class PopulationConfig:
    """Distribution parameters (defaults match the thesis anchors)."""

    zero_fraction: float = ZERO_CHECKIN_FRACTION
    light_fraction: float = LIGHT_CHECKIN_FRACTION
    username_fraction: float = USERNAME_FRACTION
    #: Pareto exponent of the active-user tail; 1.05 puts ~0.2% of all
    #: users at >= 1000 check-ins, the thesis's figure.
    pareto_alpha: float = 1.05
    #: Minimum check-ins for an "active" user.
    active_minimum: int = 6
    #: Cap for organically generated users.  The thesis counts exactly 11
    #: users at >= 5000 check-ins and treats them as individually
    #: identifiable personas; capping organic activity well below that
    #: keeps the extreme club persona-only at full persona activity.
    active_cap: int = 2_499
    #: Probability an active user has a vacation city.
    travel_fraction: float = 0.30


@dataclass
class GeneratedPopulation:
    """All specs, indexed a few useful ways."""

    specs: List[UserSpec] = field(default_factory=list)

    @property
    def count(self) -> int:
        """Total users."""
        return len(self.specs)

    def by_persona(self, persona: Persona) -> List[UserSpec]:
        """All specs with the given persona."""
        return [spec for spec in self.specs if spec.persona is persona]


class PopulationGenerator:
    """Registers users in a service and emits their behavioural specs."""

    def __init__(
        self,
        service: LbsnService,
        config: Optional[PopulationConfig] = None,
        seed: int = 0,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.service = service
        self.config = config or PopulationConfig()
        #: All randomness flows through this instance (same-seed replay).
        self._rng = rng if rng is not None else random.Random(seed)
        self._username_counter = 0

    def generate(self, count: int) -> GeneratedPopulation:
        """Create ``count`` ordinary users (personas injected separately)."""
        if count < 0:
            raise ReproError(f"user count must be non-negative: {count}")
        population = GeneratedPopulation()
        for _ in range(count):
            population.specs.append(self._one_user())
        return population

    def _one_user(self) -> UserSpec:
        config = self.config
        roll = self._rng.random()
        if roll < config.zero_fraction:
            persona, target = Persona.INACTIVE, 0
        elif roll < config.zero_fraction + config.light_fraction:
            persona, target = Persona.CASUAL, self._rng.randint(1, 5)
        else:
            persona = Persona.ACTIVE
            target = self._pareto_count()
        home = self._weighted_city()
        travel = None
        if persona is Persona.ACTIVE and self._rng.random() < config.travel_fraction:
            travel = self._weighted_city(exclude=home)
        user = self.service.register_user(
            display_name=self._display_name(),
            username=self._maybe_username(),
            home_city=home.name,
        )
        return UserSpec(
            user_id=user.user_id,
            persona=persona,
            home_city=home,
            target_checkins=target,
            travel_city=travel,
        )

    def register_persona(
        self,
        persona: Persona,
        home_city: City,
        target_checkins: int,
        travel_city: Optional[City] = None,
        display_name: Optional[str] = None,
    ) -> UserSpec:
        """Register one hand-crafted persona account (cheaters module)."""
        user = self.service.register_user(
            display_name=display_name or self._display_name(),
            username=self._maybe_username(),
            home_city=home_city.name,
        )
        return UserSpec(
            user_id=user.user_id,
            persona=persona,
            home_city=home_city,
            target_checkins=target_checkins,
            travel_city=travel_city,
        )

    # Sampling helpers ---------------------------------------------------

    def _pareto_count(self) -> int:
        """Truncated Pareto sample for active-user lifetime check-ins."""
        config = self.config
        alpha = config.pareto_alpha
        xmin = float(config.active_minimum)
        u = self._rng.random()
        value = xmin / (1.0 - u) ** (1.0 / alpha)
        return int(min(value, config.active_cap))

    def _weighted_city(self, exclude: Optional[City] = None) -> City:
        cities = [c for c in US_CITIES if c is not exclude]
        total = sum(city.weight for city in cities)
        roll = self._rng.uniform(0.0, total)
        cumulative = 0.0
        for city in cities:
            cumulative += city.weight
            if roll <= cumulative:
                return city
        return cities[-1]

    def _display_name(self) -> str:
        return (
            f"{self._rng.choice(_FIRST_NAMES)} "
            f"{self._rng.choice(_LAST_NAMES)}"
        )

    def _maybe_username(self) -> Optional[str]:
        if self._rng.random() >= self.config.username_fraction:
            return None
        self._username_counter += 1
        return f"user{self._username_counter:07d}"
