"""The seeded chaos workload: one storm, every resilience claim exercised.

``run_chaos`` builds a small world, arms a
:class:`~repro.faults.FaultPlan` (by default the 20% fetch-failure / 5%
bus-subscriber-failure acceptance storm of :meth:`~repro.faults.plan.
FaultPlan.standard_storm`), and drives four phases through it:

A. **Crawl under fire** — the §3.2 user crawl runs against the injected
   fetch storm with per-machine circuit breakers and simulated-time
   backoff pacing; the frontier must still drain.
B. **Check-in storm** — a fixed schedule of check-ins (explicit
   timestamps, so retry pacing never shifts committed rows) commits
   through :func:`~repro.faults.retry_call`; injected commit contention
   aborts atomically and retries until it lands.  The live
   :class:`~repro.stream.ledger.SuspicionLedger` consumes the stream
   while a sacrificial ``chaos-victim`` subscriber absorbs the targeted
   subscriber faults — proving bus isolation.
C. **Breaker drill** — a dedicated breaker is failed to its threshold,
   observed OPEN, promoted HALF_OPEN by advancing the simulated clock,
   re-opened by a failing probe, and finally closed by a succeeding one.
D. **Web probe** — public pages are requested under the injected-5xx
   storm while ``/metrics``, ``/debug/vars``, and ``/debug/logs`` are
   asserted to stay exempt and correct.

Everything runs on :class:`~repro.simnet.clock.SimClock` — zero
wall-clock sleeps.  The report carries two digests:

* :attr:`ChaosReport.fault_sequence_digest` — the injector's decision
  history; byte-identical across replays of the same seeds.
* :attr:`ChaosReport.committed_state_digest` — committed check-in rows,
  pipeline counters, and ledger suspects; *also* identical between a
  faulted run and a fault-free run of the same seeds, which is the
  "no lost committed check-ins / ledger parity" invariant in one hash.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.detection import DetectorConfig
from repro.crawler.crawler import CrawlStats, MultiThreadedCrawler
from repro.crawler.database import CrawlDatabase
from repro.crawler.frontier import CrawlMode
from repro.faults.breaker import BreakerState, CircuitBreaker
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.retry import BackoffPolicy, retry_call
from repro.lbsn.service import LbsnService
from repro.obs.context import TraceContext, use_trace
from repro.obs.log import LogHub
from repro.obs.metrics import MetricsRegistry
from repro.simnet.clock import SECONDS_PER_DAY
from repro.stream.bus import EventBus
from repro.stream.ledger import SuspicionLedger
from repro.workload.scenario import WebStack, World, build_web_stack, build_world

#: Name of the sacrificial bus subscriber the standard storm targets.
VICTIM_SUBSCRIBER = "chaos-victim"


@dataclass
class ChaosConfig:
    """Everything that shapes one chaos run.  All time is simulated."""

    #: World size (fraction of the thesis corpus) and world seed.
    scale: float = 0.0005
    seed: int = 42
    #: Seed of the fault plan's decision streams.
    fault_seed: int = 1337
    #: False builds the identical workload with no injector wired at
    #: all — the fault-free control run for parity checks.
    faults_enabled: bool = True

    # Storm shape (forwarded to FaultPlan.standard_storm).
    fetch_failure: float = 0.20
    subscriber_failure: float = 0.05
    commit_failure: float = 0.05
    web_failure: float = 0.10
    network_latency_s: float = 0.04
    network_latency_probability: float = 0.10

    # Phase A: crawl.
    #: 1 machine × 1 thread by default: a fully sequential crawl makes
    #: the *entire* run deterministic — same seeds ⇒ identical fault
    #: sequence digest AND end-state digest.  With more threads the
    #: per-point decision *streams* stay deterministic (that is the
    #: injector's contract) but how many checks each phase consumes
    #: depends on interleaving, so run-level digests may drift.
    crawl_machines: int = 1
    crawl_threads: int = 1
    fetch_max_retries: int = 3
    breaker_failure_threshold: int = 5
    breaker_reset_timeout_s: float = 30.0

    # Phase B: check-in storm.
    checkins: int = 300
    checkin_gap_s: float = 60.0
    commit_retry_attempts: int = 8

    #: Ledger reporting bar (the streamed-world parity suite uses 100).
    detector_min_total_checkins: int = 100

    # Phase D: web probe.
    web_probes: int = 200

    #: >1 runs the storm against a
    #: :class:`~repro.lbsn.sharded.ShardedDataStore` (same API, N locks,
    #: one global sequencer — see docs/SHARDING.md).  The sequential
    #: driver makes every digest shard-count-independent, which the
    #: sharded chaos regression suite pins down.
    store_shards: int = 1


@dataclass
class ChaosReport:
    """Everything a chaos run observed, plus the two digests."""

    config: ChaosConfig

    # Phase A.
    crawl: Optional[CrawlStats] = None
    crawl_aborted: bool = False
    crawler_breaker_opens: int = 0

    # Phase B.
    checkins_attempted: int = 0
    checkins_returned: int = 0
    commit_retries: int = 0
    commit_exhausted: int = 0

    # Ledger + victim subscriber.
    ledger_suspects: List[int] = field(default_factory=list)
    victim_delivered: int = 0
    victim_errors: int = 0

    # Phase C breaker drill.
    breaker_failures_to_open: int = 0
    breaker_short_circuited: bool = False
    breaker_half_opened: bool = False
    breaker_reopened_on_probe_failure: bool = False
    breaker_closed_after_probe: bool = False

    # Phase D web probe.  The route checks are None when the stack was
    # built without the corresponding observability surface.
    web_statuses: Dict[int, int] = field(default_factory=dict)
    metrics_route_ok: Optional[bool] = None
    debug_vars_route_ok: Optional[bool] = None
    debug_logs_route_ok: Optional[bool] = None

    # Fault accounting.
    faults_fired: Dict[str, int] = field(default_factory=dict)
    fault_sequence_digest: str = ""
    committed_state_digest: str = ""
    wall_seconds: float = 0.0

    @property
    def commit_success_rate(self) -> float:
        """Fraction of attempted check-ins that came back with a result."""
        if self.checkins_attempted <= 0:
            return 1.0
        return self.checkins_returned / self.checkins_attempted


def committed_state_digest(
    service: LbsnService, ledger: Optional[SuspicionLedger] = None
) -> str:
    """Hash the fault-invariant end state of a service (and ledger).

    Deliberately excludes ``checkin_id`` (aborted commits burn IDs, so
    they differ between faulted and clean runs) and the clock (retry
    pacing advances it).  What remains — the committed row multiset,
    the pipeline counters, the event watermark, and the ledger's suspect
    set — must be identical whether or not the storm blew.
    """
    store = service.store
    hasher = hashlib.sha256()
    hasher.update(
        f"users={store.user_count()};venues={store.venue_count()};"
        f"checkins={store.checkin_count()};"
        f"watermark={store.event_seq_watermark()};".encode()
    )
    counters = service.counters
    hasher.update(
        f"valid={counters.valid};flagged={counters.flagged};"
        f"rejected={counters.rejected};".encode()
    )
    rows = []
    for user in store.iter_users():
        for checkin in store.checkins_of_user(user.user_id):
            rows.append(
                f"{checkin.user_id}:{checkin.venue_id}:"
                f"{checkin.timestamp:.6f}:{checkin.status.value}:"
                f"{checkin.flagged_rule}"
            )
    for row in sorted(rows):
        hasher.update(row.encode())
    if ledger is not None:
        for user_id in sorted(ledger.suspect_ids()):
            hasher.update(f"suspect={user_id};".encode())
    return hasher.hexdigest()


def run_chaos(
    config: Optional[ChaosConfig] = None,
    metrics: Optional[MetricsRegistry] = None,
    log: Optional[LogHub] = None,
) -> ChaosReport:
    """Run the four-phase chaos workload; returns the full report."""
    config = config or ChaosConfig()
    report = ChaosReport(config=config)
    started = time.perf_counter()

    # -- World + wiring ------------------------------------------------
    injector: Optional[FaultInjector] = None
    service = LbsnService(
        metrics=metrics, log=log, store_shards=config.store_shards
    )
    if config.faults_enabled:
        plan = FaultPlan.standard_storm(
            seed=config.fault_seed,
            fetch_failure=config.fetch_failure,
            subscriber_failure=config.subscriber_failure,
            commit_failure=config.commit_failure,
            web_failure=config.web_failure,
            network_latency_s=config.network_latency_s,
            network_latency_probability=config.network_latency_probability,
            victim_subscriber=VICTIM_SUBSCRIBER,
        )
        injector = FaultInjector(
            plan, clock=service.clock, metrics=metrics, log=log
        )
        injector.disarm()  # world generation runs clean.
        service.faults = injector
        service.store.faults = injector

    bus = EventBus(metrics=metrics, log=log, faults=injector)
    service.event_bus = bus
    ledger = SuspicionLedger(
        config=DetectorConfig(
            min_total_checkins=config.detector_min_total_checkins
        ),
        metrics=metrics,
        log=log,
    ).attach(bus)
    victim_seen = {"events": 0}

    def victim_callback(event) -> None:
        victim_seen["events"] += 1

    victim_stats = bus.subscribe(VICTIM_SUBSCRIBER, victim_callback)

    world = build_world(
        scale=config.scale, seed=config.seed, service=service
    )
    stack = build_web_stack(world, seed=config.seed + 7, faults=injector)
    if injector is not None:
        injector.arm()

    clock = service.clock

    # -- Phase A: crawl under the fetch storm --------------------------
    _run_crawl_phase(config, report, stack, clock, metrics, log, injector)

    # -- Phase B: check-in storm with retried commits ------------------
    _run_checkin_phase(config, report, world, clock, metrics, log)

    # -- Phase C: breaker drill ----------------------------------------
    _run_breaker_drill(config, report, clock, metrics, log)

    # -- Phase D: web probe + observability routes ---------------------
    _run_web_probe(config, report, stack)

    # -- Accounting ----------------------------------------------------
    report.ledger_suspects = sorted(ledger.suspect_ids())
    report.victim_delivered = victim_seen["events"]
    report.victim_errors = victim_stats.errors
    if injector is not None:
        report.faults_fired = injector.fired_counts()
        report.fault_sequence_digest = injector.sequence_digest()
    report.committed_state_digest = committed_state_digest(service, ledger)
    report.wall_seconds = time.perf_counter() - started
    return report


def _run_crawl_phase(
    config: ChaosConfig,
    report: ChaosReport,
    stack: WebStack,
    clock,
    metrics: Optional[MetricsRegistry],
    log: Optional[LogHub],
    injector: Optional[FaultInjector],
) -> None:
    egresses = [
        stack.network.create_egress() for _ in range(config.crawl_machines)
    ]

    def breaker_factory(name: str) -> CircuitBreaker:
        return CircuitBreaker(
            name=name,
            failure_threshold=config.breaker_failure_threshold,
            reset_timeout_s=config.breaker_reset_timeout_s,
            now_fn=clock.now,
            metrics=metrics,
            log=log,
        )

    crawler = MultiThreadedCrawler(
        stack.transport,
        CrawlDatabase(),
        CrawlMode.USER,
        egresses,
        threads_per_machine=config.crawl_threads,
        metrics=metrics,
        log=log,
        faults=injector,
        breaker_factory=breaker_factory,
        backoff=BackoffPolicy(
            initial_delay_s=0.05, jitter_fraction=0.0, max_delay_s=1.0
        ),
        sleep=clock.advance,
        fetch_max_retries=config.fetch_max_retries,
    )
    report.crawl = crawler.run()
    report.crawl_aborted = crawler.aborted
    report.crawler_breaker_opens = sum(
        breaker.open_count for breaker in crawler.breakers
    )


def _run_checkin_phase(
    config: ChaosConfig,
    report: ChaosReport,
    world: World,
    clock,
    metrics: Optional[MetricsRegistry],
    log: Optional[LogHub],
) -> None:
    service = world.service
    store = service.store
    users = sorted(user.user_id for user in store.iter_users())
    venues = sorted(venue.venue_id for venue in store.iter_venues())
    if not users or not venues:
        return
    policy = BackoffPolicy(
        max_attempts=config.commit_retry_attempts,
        initial_delay_s=0.01,
        jitter_fraction=0.0,
        max_delay_s=0.5,
    )
    # Pinned absolutely (NOT clock.now()): crawl-phase backoff pacing
    # advances the clock by a fault-dependent amount, and committed-row
    # parity between faulted and clean runs requires identical
    # timestamps.  One full day past the horizon clears any pacing.
    base_ts = world.horizon_s + SECONDS_PER_DAY
    for index in range(config.checkins):
        user_id = users[index % len(users)]
        # Stride venues so consecutive attempts by the same user land at
        # different venues (the rapid-fire rule would refuse repeats).
        venue_id = venues[(index * 7) % len(venues)]
        venue = store.require_venue(venue_id)
        timestamp = base_ts + index * config.checkin_gap_s
        report.checkins_attempted += 1
        trace = TraceContext.mint()

        def attempt(uid=user_id, vid=venue_id, loc=venue.location,
                    ts=timestamp, tr=trace):
            return service.check_in(
                uid, vid, loc, timestamp=ts, trace=tr
            )

        def on_retry(attempt_number, error, delay) -> None:
            report.commit_retries += 1

        try:
            with use_trace(trace):
                retry_call(
                    attempt,
                    policy,
                    sleep=clock.advance,
                    on_retry=on_retry,
                    metrics=metrics,
                    log=log,
                    op="store.commit",
                )
            report.checkins_returned += 1
        except Exception:  # noqa: BLE001 - exhaustion is reportable data
            report.commit_exhausted += 1


def _run_breaker_drill(
    config: ChaosConfig,
    report: ChaosReport,
    clock,
    metrics: Optional[MetricsRegistry],
    log: Optional[LogHub],
) -> None:
    breaker = CircuitBreaker(
        name="chaos-drill",
        failure_threshold=config.breaker_failure_threshold,
        reset_timeout_s=config.breaker_reset_timeout_s,
        half_open_probes=1,
        now_fn=clock.now,
        metrics=metrics,
        log=log,
    )
    while breaker.state is BreakerState.CLOSED:
        breaker.record_failure()
        report.breaker_failures_to_open += 1
        if report.breaker_failures_to_open > 10 * (
            config.breaker_failure_threshold
        ):  # pragma: no cover - defensive
            break
    report.breaker_short_circuited = not breaker.allow()
    clock.advance(config.breaker_reset_timeout_s)
    report.breaker_half_opened = breaker.state is BreakerState.HALF_OPEN
    if breaker.allow():
        breaker.record_failure()  # the probe fails: straight back OPEN.
    report.breaker_reopened_on_probe_failure = (
        breaker.state is BreakerState.OPEN
    )
    clock.advance(config.breaker_reset_timeout_s)
    if breaker.allow():
        breaker.record_success()
    report.breaker_closed_after_probe = (
        breaker.state is BreakerState.CLOSED
    )


def _run_web_probe(
    config: ChaosConfig, report: ChaosReport, stack: WebStack
) -> None:
    egress = stack.network.create_egress()
    venue_ids = sorted(
        venue.venue_id
        for venue in stack.webserver.service.store.iter_venues()
    )
    for index in range(config.web_probes):
        venue_id = venue_ids[index % len(venue_ids)] if venue_ids else 1
        response = stack.transport.get(f"/venue/{venue_id}", egress)
        report.web_statuses[response.status] = (
            report.web_statuses.get(response.status, 0) + 1
        )
    if stack.webserver.metrics is not None:
        response = stack.transport.get("/metrics", egress)
        report.metrics_route_ok = (
            response.ok and "repro_" in response.body
        )
        response = stack.transport.get("/debug/vars", egress)
        report.debug_vars_route_ok = (
            response.ok and response.body.startswith("{")
        )
    if stack.webserver.log is not None:
        response = stack.transport.get("/debug/logs", egress)
        report.debug_logs_route_ok = response.ok


__all__ = [
    "VICTIM_SUBSCRIBER",
    "ChaosConfig",
    "ChaosReport",
    "committed_state_digest",
    "run_chaos",
]
