"""World builder: one call that assembles the full simulated ecosystem.

``build_world`` wires every substrate together the way the thesis found it
live in August 2010: a service with venues across the US, a user population
with the measured activity distribution, the injected cheater personas, and
the whole corpus replayed through the real check-in pipeline.

``build_web_stack`` then exposes that world over the simulated HTTP
transport — the crawler's target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ReproError
from repro.lbsn.api import LbsnApiServer
from repro.lbsn.service import LbsnService
from repro.lbsn.webserver import LbsnWebServer
from repro.simnet.clock import SECONDS_PER_DAY
from repro.simnet.http import HttpTransport, Router
from repro.simnet.network import Network
from repro.workload.behavior import (
    DEFAULT_HORIZON_DAYS,
    BehaviorGenerator,
    EventReplayer,
    ReplayReport,
)
from repro.workload.cheaters import CheaterGenerator, PersonaRoster
from repro.workload.population import (
    FULL_SCALE_USERS,
    GeneratedPopulation,
    PopulationConfig,
    PopulationGenerator,
)
from repro.workload.social import SocialGraph, generate_friend_graph
from repro.workload.venues import (
    GeneratedVenues,
    VenueGenerator,
    VenueGeneratorConfig,
)

#: Venues on real Foursquare at crawl time; ``scale`` multiplies it.
FULL_SCALE_VENUES = 5_600_000


@dataclass
class World:
    """Everything the experiments need, in one bundle."""

    service: LbsnService
    venues: GeneratedVenues
    population: GeneratedPopulation
    roster: PersonaRoster
    replay: ReplayReport
    horizon_s: float
    scale: float
    social: Optional[SocialGraph] = None


@dataclass
class WebStack:
    """The world's public web surface: site + API over simulated HTTP."""

    network: Network
    router: Router
    transport: HttpTransport
    webserver: LbsnWebServer
    apiserver: LbsnApiServer


def build_world(
    scale: float = 0.001,
    seed: int = 42,
    horizon_days: float = DEFAULT_HORIZON_DAYS,
    include_personas: bool = True,
    persona_activity: Optional[float] = None,
    population_config: Optional[PopulationConfig] = None,
    venue_config: Optional[VenueGeneratorConfig] = None,
    service: Optional[LbsnService] = None,
) -> World:
    """Build and populate a complete simulated world.

    Parameters
    ----------
    scale:
        Fraction of the thesis's corpus (1.89 M users / 5.6 M venues).
        The default 0.001 gives ~1,890 users and ~5,600 venues — a few
        seconds of generation.  Benches use 0.005-0.01.
    persona_activity:
        Scale of per-persona check-in volume.  Defaults to ``100 * scale``
        clamped to [0.02, 1.0], so at scale 0.01 personas run at the
        thesis's literal volumes (5,000-12,500 attempts each).
    """
    if scale <= 0:
        raise ReproError(f"scale must be positive: {scale}")
    service = service or LbsnService()
    user_count = max(10, int(FULL_SCALE_USERS * scale))
    venue_count = max(30, int(FULL_SCALE_VENUES * scale))
    horizon_s = horizon_days * SECONDS_PER_DAY

    venue_generator = VenueGenerator(service, config=venue_config, seed=seed)
    venues = venue_generator.generate(venue_count)

    population_generator = PopulationGenerator(
        service, config=population_config, seed=seed + 1
    )
    population = PopulationGenerator.generate(population_generator, user_count)

    behavior = BehaviorGenerator(venues, horizon_days=horizon_days, seed=seed + 2)
    events: list = []
    for spec in population.specs:
        events.extend(behavior.events_for(spec))

    roster = PersonaRoster()
    if include_personas:
        activity = persona_activity
        if activity is None:
            activity = min(1.0, max(0.02, 100.0 * scale))
        cheaters = CheaterGenerator(
            service, population_generator, venues, horizon_s, seed=seed + 3
        )
        roster, persona_events = cheaters.generate(scale_activity=activity)
        events.extend(persona_events)

    social = generate_friend_graph(
        service, population.specs + roster.all_specs(), seed=seed + 4
    )

    replay = EventReplayer(service).replay(events)
    if service.clock.now() < horizon_s:
        service.clock.advance_to(horizon_s)
    # Mayors age out of the 60-day window; settle the final state the
    # crawler and analyses will see.
    service.refresh_all_mayorships()
    return World(
        service=service,
        venues=venues,
        population=population,
        roster=roster,
        replay=replay,
        horizon_s=horizon_s,
        scale=scale,
        social=social,
    )


def build_web_stack(
    world: World,
    seed: int = 7,
    show_whos_been_here: bool = True,
    visitor_obfuscator=None,
    blocking: bool = False,
    faults=None,
) -> WebStack:
    """Expose a world's website and API over the simulated network.

    Pass ``blocking=True`` for experiments that measure crawler throughput:
    requests then really sleep their sampled round-trip times, so thread
    counts matter the way they did against the live site.

    Pass a :class:`~repro.faults.FaultInjector` as ``faults`` to arm the
    HTTP surface: the transport checks ``simnet.request`` (loss/latency)
    and the web server's fault middleware checks ``web.request``
    (injected 5xx/timeouts, observability routes exempt).
    """
    network = Network(seed=seed)
    router = Router()
    webserver = LbsnWebServer(
        world.service,
        show_whos_been_here=show_whos_been_here,
        visitor_obfuscator=visitor_obfuscator,
        faults=faults,
    )
    webserver.install_routes(router)
    apiserver = LbsnApiServer(world.service)
    apiserver.install_routes(router)
    transport = HttpTransport(
        router,
        network,
        clock=world.service.clock,
        blocking=blocking,
        faults=faults,
    )
    if faults is not None:
        transport.add_middleware(webserver.fault_middleware())
    return WebStack(
        network=network,
        router=router,
        transport=transport,
        webserver=webserver,
        apiserver=apiserver,
    )
