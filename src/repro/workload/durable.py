"""The durability workload: crash a partitioned detector worker, replay it.

The three entry points layer on one storm driver:

* :func:`run_durable_storm` — the parity exercise behind the E23 bench,
  the recovery tests, and the CI smoke job.  One world, one bus, *two*
  partitioned pipelines side by side: a fault-free **control** and a
  **victim** whose injector kills one worker mid-storm
  (:data:`~repro.faults.points.POINT_DURABLE_WORKER`, seeded, one fire).
  After the storm the victim is recovered (snapshot + WAL replay) and
  the report carries three digests per run — control, recovered victim,
  and a cold replay of the victim's on-disk tree — which must be equal.
* :func:`write_durable_tree` — ``repro snapshot``'s engine: a clean
  (fault-free) run that persists the WAL tree, final snapshots, and a
  ``manifest.json`` recording the expected combined digest.
* :func:`replay_durable_tree` — ``repro wal-replay``'s engine: rebuild
  every shard of an existing tree from disk alone and (optionally)
  verify the digests against the manifest.

Why the control is a *pipeline* and not a plain ledger: partitioning by
user key shards the activity detector's venue recent-visitor replica, so
an N-way pipeline's scores are a documented superset of the single-ledger
scores for N > 1 (docs/DURABILITY.md, "Partitioning bias").  Crash/replay
parity is therefore proven at equal N — and a separate test pins
N=1 ≡ plain ledger exactly.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.detection import DetectorConfig
from repro.durable.worker import (
    PartitionedDetectorPipeline,
    RecoveryCoordinator,
    cold_replay_digests,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.points import POINT_DURABLE_WORKER
from repro.obs.context import TraceContext, use_trace
from repro.obs.log import LogHub
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.simnet.clock import SECONDS_PER_DAY
from repro.stream.bus import EventBus
from repro.workload.scenario import World, build_world

MANIFEST_NAME = "manifest.json"


@dataclass
class DurableConfig:
    """Everything that shapes one durability run.  All time simulated."""

    #: World size (fraction of the thesis corpus) and world seed.
    scale: float = 0.0005
    seed: int = 42
    #: Detector worker count (the N the parity claim quantifies over).
    partitions: int = 4
    #: Check-in storm length and spacing.
    checkins: int = 300
    checkin_gap_s: float = 60.0
    #: Ledger reporting bar (streamed-parity suites use 100).
    detector_min_total_checkins: int = 100

    # Durability knobs.
    snapshot_every: int = 0
    segment_max_bytes: int = 1_048_576
    fsync_every: int = 64

    # Victim kill plan (storm runs only).
    fault_seed: int = 1337
    kill_partition: int = 0
    #: Per-applied-event kill probability; with one allowed fire the
    #: seed picks *which* event mid-storm becomes the crash.
    kill_probability: float = 0.02

    #: >1 backs the service with a
    #: :class:`~repro.lbsn.sharded.ShardedDataStore`.  The shared
    #: sequencer keeps the event stream identical, so WAL records and
    #: every replay digest must match the single-lock run byte for byte
    #: (trace ids aside) — the sharded replay regression proves it.
    store_shards: int = 1


@dataclass
class DurableReport:
    """What one durability run observed."""

    config: DurableConfig
    checkins_attempted: int = 0
    checkins_returned: int = 0
    events_published: int = 0
    watermark: int = -1

    # Victim life cycle (storm runs).
    crashed_partitions: List[int] = field(default_factory=list)
    recovered_partitions: List[int] = field(default_factory=list)
    replayed_events: int = 0
    faults_fired: Dict[str, int] = field(default_factory=dict)
    fault_sequence_digest: str = ""

    # Parity witnesses.
    control_digests: List[str] = field(default_factory=list)
    victim_digests: List[str] = field(default_factory=list)
    cold_digests: List[str] = field(default_factory=list)
    control_combined: str = ""
    victim_combined: str = ""
    cold_combined: str = ""

    # WAL accounting (victim side).
    wal_appended: int = 0
    wal_bytes: int = 0
    wal_segments: int = 0
    wal_fsyncs: int = 0
    snapshots_written: int = 0
    wall_seconds: float = 0.0

    @property
    def parity_ok(self) -> bool:
        """control == recovered victim == cold replay, shard for shard."""
        return (
            bool(self.control_combined)
            and self.control_combined == self.victim_combined
            and self.victim_combined == self.cold_combined
        )


def kill_plan(
    seed: int, partition: int, probability: float = 0.02
) -> FaultPlan:
    """A seeded plan that kills one named worker exactly once.

    ``max_fires=1`` + per-spec seeded RNG means the *seed* decides which
    applied event becomes the crash — deterministically mid-stream, not
    at a hand-picked index.
    """
    return FaultPlan(seed=seed).add(
        FaultSpec(
            point=POINT_DURABLE_WORKER,
            probability=probability,
            max_fires=1,
            only_labels=(f"partition-{partition:02d}",),
        )
    )


def _drive_checkins(
    world: World, config: DurableConfig, report: DurableReport
) -> None:
    """The deterministic check-in storm (chaos phase B, without retries)."""
    service = world.service
    store = service.store
    users = sorted(user.user_id for user in store.iter_users())
    venues = sorted(venue.venue_id for venue in store.iter_venues())
    if not users or not venues:
        return
    # Pinned absolutely so committed timestamps are identical run to run.
    base_ts = world.horizon_s + SECONDS_PER_DAY
    for index in range(config.checkins):
        user_id = users[index % len(users)]
        # Stride venues so the rapid-fire rule never refuses a repeat.
        venue_id = venues[(index * 7) % len(venues)]
        venue = store.require_venue(venue_id)
        timestamp = base_ts + index * config.checkin_gap_s
        report.checkins_attempted += 1
        trace = TraceContext.mint()
        with use_trace(trace):
            service.check_in(
                user_id,
                venue_id,
                venue.location,
                timestamp=timestamp,
                trace=trace,
            )
        report.checkins_returned += 1


def _build_pipeline(
    config: DurableConfig,
    base_dir,
    metrics: Optional[MetricsRegistry] = None,
    log: Optional[LogHub] = None,
    faults: Optional[FaultInjector] = None,
    tracer: Optional[Tracer] = None,
) -> PartitionedDetectorPipeline:
    return PartitionedDetectorPipeline(
        config.partitions,
        base_dir,
        config=DetectorConfig(
            min_total_checkins=config.detector_min_total_checkins
        ),
        snapshot_every=config.snapshot_every,
        segment_max_bytes=config.segment_max_bytes,
        fsync_every=config.fsync_every,
        metrics=metrics,
        log=log,
        faults=faults,
        tracer=tracer,
    )


def run_durable_storm(
    config: DurableConfig,
    base_dir,
    metrics: Optional[MetricsRegistry] = None,
    log: Optional[LogHub] = None,
    tracer: Optional[Tracer] = None,
) -> DurableReport:
    """Storm, crash, recover, cold-replay; returns the three-way report."""
    report = DurableReport(config=config)
    started = time.perf_counter()
    base = Path(base_dir)

    from repro.lbsn.service import LbsnService

    service = LbsnService(
        metrics=metrics, log=log, store_shards=config.store_shards
    )
    injector = FaultInjector(
        kill_plan(
            config.fault_seed,
            config.kill_partition,
            config.kill_probability,
        ),
        clock=service.clock,
        metrics=metrics,
        log=log,
    )
    injector.disarm()  # world generation runs clean

    bus = EventBus(metrics=metrics, log=log)
    service.event_bus = bus
    control = _build_pipeline(
        config, base / "control", metrics=metrics, log=log, tracer=tracer
    ).attach(bus, name="durable-control")
    victim = _build_pipeline(
        config,
        base / "victim",
        metrics=metrics,
        log=log,
        faults=injector,
        tracer=tracer,
    ).attach(bus, name="durable-victim")

    world = build_world(scale=config.scale, seed=config.seed, service=service)
    injector.arm()

    _drive_checkins(world, config, report)

    report.events_published = bus.published
    report.watermark = service.event_watermark()
    report.crashed_partitions = victim.crashed_partitions()
    report.faults_fired = injector.fired_counts()
    report.fault_sequence_digest = injector.sequence_digest()

    # Recover the dead worker(s), then disarm so the replayed events are
    # not re-killed (a real restart would run with the fault gone).
    injector.disarm()
    coordinator = RecoveryCoordinator(victim, log=log)
    report.recovered_partitions = coordinator.recover_crashed()
    report.replayed_events = sum(
        victim.workers[p].replayed_events for p in report.recovered_partitions
    )

    report.control_digests = control.digests()
    report.victim_digests = victim.digests()
    report.control_combined = control.combined_digest()
    report.victim_combined = victim.combined_digest()

    report.wal_appended = sum(w.wal.appended for w in victim.workers)
    report.wal_bytes = sum(w.wal.bytes_written for w in victim.workers)
    report.wal_segments = sum(w.wal.segments_opened for w in victim.workers)
    report.wal_fsyncs = sum(w.wal.fsyncs for w in victim.workers)
    report.snapshots_written = sum(
        w.snapshots.writes for w in victim.workers
    )
    control.close()
    victim.close()
    bus.close()

    # Third witness: a cold process rebuilding the victim tree from disk.
    # Shards that never snapshotted replay into a fresh ledger, so the
    # cold run must carry the same detector config the storm used.
    report.cold_digests = cold_replay_digests(
        base / "victim",
        config.partitions,
        config=DetectorConfig(
            min_total_checkins=config.detector_min_total_checkins
        ),
        metrics=metrics,
        tracer=tracer,
    )
    report.cold_combined = PartitionedDetectorPipeline.combine(
        report.cold_digests
    )
    report.wall_seconds = time.perf_counter() - started
    return report


def write_durable_tree(
    config: DurableConfig,
    out_dir,
    metrics: Optional[MetricsRegistry] = None,
    log: Optional[LogHub] = None,
    tracer: Optional[Tracer] = None,
) -> DurableReport:
    """Clean run persisting WAL + snapshots + manifest under ``out_dir``."""
    report = DurableReport(config=config)
    started = time.perf_counter()
    out = Path(out_dir)

    from repro.lbsn.service import LbsnService

    service = LbsnService(
        metrics=metrics, log=log, store_shards=config.store_shards
    )
    bus = EventBus(metrics=metrics, log=log)
    service.event_bus = bus
    pipeline = _build_pipeline(
        config, out, metrics=metrics, log=log, tracer=tracer
    ).attach(bus)
    world = build_world(scale=config.scale, seed=config.seed, service=service)
    _drive_checkins(world, config, report)

    report.events_published = bus.published
    report.watermark = service.event_watermark()
    pipeline.snapshot_all()
    report.snapshots_written = sum(
        w.snapshots.writes for w in pipeline.workers
    )
    report.victim_digests = pipeline.digests()
    report.victim_combined = pipeline.combined_digest()
    report.wal_appended = sum(w.wal.appended for w in pipeline.workers)
    report.wal_bytes = sum(w.wal.bytes_written for w in pipeline.workers)
    report.wal_segments = sum(
        w.wal.segments_opened for w in pipeline.workers
    )
    report.wal_fsyncs = sum(w.wal.fsyncs for w in pipeline.workers)
    pipeline.close()
    bus.close()

    manifest = {
        "scale": config.scale,
        "seed": config.seed,
        "partitions": config.partitions,
        "checkins": config.checkins,
        "detector_min_total_checkins": config.detector_min_total_checkins,
        "watermark": report.watermark,
        "digests": report.victim_digests,
        "combined_digest": report.victim_combined,
    }
    (out / MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    )
    report.wall_seconds = time.perf_counter() - started
    return report


def replay_durable_tree(
    tree_dir,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
) -> dict:
    """Cold-replay an existing tree; returns replay + manifest findings.

    The result dict carries ``digests``/``combined_digest`` from the
    replay and, when a manifest is present, ``manifest`` plus
    ``matches_manifest`` — the bit ``repro wal-replay --verify`` turns
    into an exit code.
    """
    tree = Path(tree_dir)
    manifest = None
    manifest_path = tree / MANIFEST_NAME
    if manifest_path.is_file():
        manifest = json.loads(manifest_path.read_text())
    config = None
    if manifest is not None:
        partitions = manifest["partitions"]
        bar = manifest.get("detector_min_total_checkins")
        if bar is not None:
            config = DetectorConfig(min_total_checkins=bar)
    else:
        partitions = len(
            [p for p in tree.iterdir() if p.name.startswith("partition-")]
        )
    digests = cold_replay_digests(
        tree, partitions, config=config, metrics=metrics, tracer=tracer
    )
    combined = PartitionedDetectorPipeline.combine(digests)
    result = {
        "partitions": partitions,
        "digests": digests,
        "combined_digest": combined,
        "manifest": manifest,
        "matches_manifest": None,
    }
    if manifest is not None:
        result["matches_manifest"] = (
            manifest.get("combined_digest") == combined
        )
    return result


__all__ = [
    "MANIFEST_NAME",
    "DurableConfig",
    "DurableReport",
    "kill_plan",
    "replay_durable_tree",
    "run_durable_storm",
    "write_durable_tree",
]
