"""Injected cheater and power-user personas (§3.4, §4.2, §4.3).

The thesis treats its extreme accounts as individually identifiable cases,
so these personas are injected at fixed counts regardless of world scale:

* **6 power users** — ≥5000 valid check-ins concentrated in one city, each
  mayor of tens of venues (§4.2's first group of the ≥5000 club).
* **5 caught cheaters** — up to 12,500 check-in attempts teleporting across
  the country; almost all trip the super-human-speed rule, so they have
  huge totals, few badges, no mayorships, and barely any recent-visitor
  appearances (§4.2's second group; one of them is the global check-in
  leader).
* **1 mega cheater** — the Fig 4.3 profile: a spoofing user who works the
  rules correctly and "visits" 30+ cities including Alaska and Europe
  within a year, landing in the recent-visitor lists of many venues.
* **1 mayor farmer** — §3.4's user with 865 mayorships from only 1265
  check-ins, harvested from small-town venues nobody else visits.

The paper's literal figures are pinned as constants rather than derived,
because they are *individually reported* numbers, not distributions:
:data:`POWER_USER_COUNT` (6) + :data:`CAUGHT_CHEATER_COUNT` (5) make up
§4.2's "11 users have checked in at least 5,000 times" split by whether
their mayorship lists survived; :data:`TOP_CHEATER_CHECKINS` (12,500)
is the global check-in leader's total; and
:data:`FARMER_TARGET_MAYORSHIPS` / :data:`FARMER_TOTAL_CHECKINS`
(865 / 1,265) reproduce §3.4's mayor farmer exactly — E8 and E9 assert
these same constants back out of the finished world.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.geo.regions import EUROPEAN_CITIES, US_CITIES, City, city_by_name
from repro.lbsn.service import LbsnService
from repro.simnet.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.workload.behavior import CheckInEvent
from repro.workload.population import Persona, PopulationGenerator, UserSpec
from repro.workload.venues import GeneratedVenues

#: §4.2: "11 users have checked in at least 5,000 times", split 6 / 5.
POWER_USER_COUNT = 6
CAUGHT_CHEATER_COUNT = 5
#: §4.2: the highest total among all users.
TOP_CHEATER_CHECKINS = 12_500
#: §3.4: "a user on Foursquare is the mayor of 865 venues but with a total
#: number of check-ins of only 1265".
FARMER_TARGET_MAYORSHIPS = 865
FARMER_TOTAL_CHECKINS = 1_265


@dataclass
class PersonaRoster:
    """The injected accounts, grouped by role."""

    power_users: List[UserSpec] = field(default_factory=list)
    caught_cheaters: List[UserSpec] = field(default_factory=list)
    mega_cheater: Optional[UserSpec] = None
    mayor_farmer: Optional[UserSpec] = None

    def all_specs(self) -> List[UserSpec]:
        """Every persona spec."""
        specs = list(self.power_users) + list(self.caught_cheaters)
        if self.mega_cheater is not None:
            specs.append(self.mega_cheater)
        if self.mayor_farmer is not None:
            specs.append(self.mayor_farmer)
        return specs


class CheaterGenerator:
    """Registers persona accounts and synthesizes their event streams."""

    def __init__(
        self,
        service: LbsnService,
        population: PopulationGenerator,
        venues: GeneratedVenues,
        horizon_s: float,
        seed: int = 0,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.service = service
        self.population = population
        self.venues = venues
        self.horizon_s = horizon_s
        #: Every draw comes from this instance — never the module-level
        #: ``random`` functions — so two generators built with the same
        #: seed (or handed the same ``rng``) emit byte-identical event
        #: streams; ring replay and the E26 digests depend on it.
        self._rng = rng if rng is not None else random.Random(seed)

    def generate(
        self, scale_activity: float = 1.0
    ) -> Tuple[PersonaRoster, List[CheckInEvent]]:
        """Create all personas and their events.

        ``scale_activity`` scales per-persona check-in volumes for small
        test worlds (persona *counts* stay fixed; see the module docstring).
        """
        if scale_activity <= 0:
            raise ReproError(f"scale_activity must be positive: {scale_activity}")
        roster = PersonaRoster()
        events: List[CheckInEvent] = []
        for index in range(POWER_USER_COUNT):
            spec, user_events = self._power_user(index, scale_activity)
            roster.power_users.append(spec)
            events.extend(user_events)
        for index in range(CAUGHT_CHEATER_COUNT):
            spec, user_events = self._caught_cheater(index, scale_activity)
            roster.caught_cheaters.append(spec)
            events.extend(user_events)
        roster.mega_cheater, mega_events = self._mega_cheater(scale_activity)
        events.extend(mega_events)
        roster.mayor_farmer, farmer_events = self._mayor_farmer(scale_activity)
        events.extend(farmer_events)
        return roster, events

    # Power users ----------------------------------------------------------

    def _power_user(
        self, index: int, scale_activity: float
    ) -> Tuple[UserSpec, List[CheckInEvent]]:
        """A hyperactive but honest-looking account in one city.

        Checks into a rotating roster of neighbourhood venues many times a
        day, spaced far beyond every cheater-code trigger; ends up mayor of
        tens of venues because nobody else matches the daily cadence.
        """
        home = US_CITIES[index % len(US_CITIES)]
        target = int(max(100, (5_200 + 350 * index) * scale_activity))
        spec = self.population.register_persona(
            Persona.POWER_USER, home, target, display_name=f"Power User {index + 1}"
        )
        pool = self._city_pool(home.name)
        roster_size = min(len(pool), max(10, 40 + 8 * index))
        roster = self._rng.sample(pool, roster_size)

        events: List[CheckInEvent] = []
        per_day = 14.0
        start = max(0.0, self.horizon_s - (target / per_day) * SECONDS_PER_DAY)
        timestamp = start
        venue_cursor = self._rng.randrange(roster_size)
        while len(events) < target and timestamp < self.horizon_s:
            venue_cursor = (venue_cursor + 1) % roster_size
            events.append(
                CheckInEvent(timestamp, spec.user_id, roster[venue_cursor])
            )
            # ~14/day: 45-140 minute spacing through the waking day.
            timestamp += self._rng.uniform(45.0, 140.0) * 60.0
        return spec, events

    # Caught cheaters ----------------------------------------------------------

    def _caught_cheater(
        self, index: int, scale_activity: float
    ) -> Tuple[UserSpec, List[CheckInEvent]]:
        """A brute-force teleporter the cheater code catches.

        Checks into venues in random cities nationwide at sub-hour
        intervals; nearly every attempt trips the super-human-speed rule,
        so the total climbs while rewards stay flat (§4.2).
        """
        home = US_CITIES[(index * 3 + 1) % len(US_CITIES)]
        if index == 0:
            target = int(max(120, TOP_CHEATER_CHECKINS * scale_activity))
        else:
            target = int(max(100, (5_600 + 900 * index) * scale_activity))
        spec = self.population.register_persona(
            Persona.CAUGHT_CHEATER,
            home,
            target,
            display_name=f"Brute Cheater {index + 1}",
        )
        city_pools = [
            (name, pool)
            for name, pool in self.venues.venue_ids_by_city.items()
            if pool
        ]
        if not city_pools:
            city_pools = [("anywhere", self.venues.venue_ids)]

        events: List[CheckInEvent] = []
        # Pace the campaign to finish just inside the horizon (the top
        # cheater needs ~25 attempts/day to reach 12,500).
        horizon_days = self.horizon_s / SECONDS_PER_DAY
        per_day = max(18.0, target / max(1.0, horizon_days * 0.9))
        mean_gap_s = SECONDS_PER_DAY / per_day
        start = max(0.0, self.horizon_s - (target / per_day) * SECONDS_PER_DAY)
        timestamp = start
        while len(events) < target and timestamp < self.horizon_s:
            _, pool = city_pools[self._rng.randrange(len(city_pools))]
            events.append(
                CheckInEvent(timestamp, spec.user_id, self._rng.choice(pool))
            )
            timestamp += self._rng.uniform(0.7, 1.3) * mean_gap_s
        return spec, events

    # The Fig 4.3 mega cheater ------------------------------------------------

    def _mega_cheater(
        self, scale_activity: float
    ) -> Tuple[UserSpec, List[CheckInEvent]]:
        """A careful spoofing cheater touring 30+ cities in under a year.

        Stays days per "visited" city and keeps check-ins spaced, so the
        cheater code passes them; the geographic scatter (US coast to
        coast, Alaska, Europe) is the Fig 4.3 signature.
        """
        home = city_by_name("New York, NY")
        tour: List[str] = []
        for city in US_CITIES:
            tour.append(city.name)
        tour.extend(["Alaska", "Hawaii"])
        for city in EUROPEAN_CITIES:
            tour.append(city.name)
        self._rng.shuffle(tour)

        target = int(max(150, 2_200 * scale_activity))
        spec = self.population.register_persona(
            Persona.MEGA_CHEATER, home, target, display_name="Globe Trotter"
        )
        start = max(0.0, self.horizon_s - 350.0 * SECONDS_PER_DAY)
        events: List[CheckInEvent] = []
        timestamp = start
        cursor = 0
        # City coverage is the persona's defining trait (Fig 4.3: "over 30
        # different cities"), so the per-city stay shrinks with the target
        # rather than the tour shrinking: even a low-activity variant still
        # touches the whole tour list.
        per_city = max(2, target // len(tour))
        while len(events) < target and timestamp < self.horizon_s:
            city_name = tour[cursor % len(tour)]
            cursor += 1
            pool = self.venues.venue_ids_by_city.get(city_name) or self._city_pool(
                city_name
            )
            for _ in range(per_city):
                if len(events) >= target or timestamp >= self.horizon_s:
                    break
                events.append(
                    CheckInEvent(timestamp, spec.user_id, self._rng.choice(pool))
                )
                timestamp += self._rng.uniform(2.0, 6.0) * SECONDS_PER_HOUR
            # Inter-city travel gap long enough for any distance on Earth
            # at the speed threshold.
            timestamp += self._rng.uniform(2.0, 4.0) * SECONDS_PER_DAY
        return spec, events

    # The §3.4 mayor farmer -----------------------------------------------------

    def _mayor_farmer(
        self, scale_activity: float
    ) -> Tuple[UserSpec, List[CheckInEvent]]:
        """One check-in per deserted venue, harvested along a country snake.

        Visits small-town venues (which organic users almost never touch)
        once each over the final weeks before the crawl, so a single
        check-in wins each mayorship and all of them are still inside the
        60-day window at analysis time.
        """
        home = city_by_name("Lincoln, NE")
        distinct_target = int(max(30, FARMER_TARGET_MAYORSHIPS * scale_activity))
        total_target = int(max(40, FARMER_TOTAL_CHECKINS * scale_activity))
        spec = self.population.register_persona(
            Persona.MAYOR_FARMER, home, total_target, display_name="Mayor Farmer"
        )
        pool = list(self.venues.small_town_venue_ids)
        if not pool:
            pool = list(self.venues.venue_ids)
        # Farm the deserted venues NEAREST home: the campaign must fit
        # inside the 60-day mayorship window, so total travel distance —
        # not venue count — is the binding constraint.
        from repro.geo.distance import haversine_m

        def distance_from_home(venue_id: int) -> float:
            venue = self.service.store.get_venue(venue_id)
            if venue is None:
                return float("inf")
            return haversine_m(home.center, venue.location)

        pool.sort(key=distance_from_home)
        targets = pool[: min(distinct_target, len(pool))]
        targets = self._snake_order(targets)

        # Repeats (total - distinct) are a SECOND geographic sweep over a
        # prefix of the same snake: revisits land many hours after the
        # first pass (no frequent-rule rejections) and hops stay short, so
        # the whole campaign fits inside the 60-day mayorship window.
        plan: List[int] = list(targets)
        repeats = max(0, total_target - len(targets))
        plan.extend(targets[: min(repeats, len(targets))])

        # Hop gaps are distance-aware: at a simulated 45 m/s (~100 mph,
        # comfortably under the speed-rule threshold) plus a minimum dwell,
        # so no hop along the snake trips the super-human-speed rule.
        gaps: List[float] = []
        total_span = 0.0
        previous_location = None
        for venue_id in plan:
            venue = self.service.store.get_venue(venue_id)
            gap = 20.0 * 60.0
            if previous_location is not None and venue is not None:
                from repro.geo.distance import haversine_m

                gap += haversine_m(previous_location, venue.location) / 45.0
            if venue is not None:
                previous_location = venue.location
            gaps.append(gap)
            total_span += gap
        start = max(0.0, self.horizon_s - total_span - 2.0 * SECONDS_PER_DAY)
        events: List[CheckInEvent] = []
        timestamp = start
        for venue_id, gap in zip(plan, gaps):
            timestamp += gap
            if timestamp >= self.horizon_s:
                break
            events.append(CheckInEvent(timestamp, spec.user_id, venue_id))
        return spec, events

    # Helpers ---------------------------------------------------------------

    def _city_pool(self, city_name: str) -> List[int]:
        pool = self.venues.venue_ids_by_city.get(city_name)
        if pool:
            return pool
        if self.venues.small_town_venue_ids:
            return self.venues.small_town_venue_ids
        if not self.venues.venue_ids:
            raise ReproError("world has no venues")
        return self.venues.venue_ids

    def _snake_order(self, venue_ids: Sequence[int]) -> List[int]:
        """Order venues in 2-degree latitude bands, alternating east/west.

        Keeps consecutive visits geographically adjacent so the farmer's
        implied travel speed stays plausible.
        """
        located = []
        for venue_id in venue_ids:
            venue = self.service.store.get_venue(venue_id)
            if venue is not None:
                located.append((venue.location, venue_id))
        bands: Dict[int, List[Tuple[float, int]]] = {}
        for location, venue_id in located:
            band = int(location.latitude // 2)
            bands.setdefault(band, []).append((location.longitude, venue_id))
        ordered: List[int] = []
        for rank, band in enumerate(sorted(bands)):
            row = sorted(bands[band], reverse=(rank % 2 == 1))
            ordered.extend(venue_id for _, venue_id in row)
        return ordered
