"""Friend-graph generation.

User profiles expose "a list of friends" (§3.2), and the thesis's §5.2
cites Heatherly et al. and Zheleva & Getoor on inferring private
information from public social data.  The generator builds a
homophily-biased friendship graph — most edges inside a home city, a few
across — which the privacy analysis then tries to *recover* from
co-location observations alone.

The thesis publishes no friend-graph statistics (profiles only *show*
the list), so :class:`SocialGraphConfig` is calibrated for plausibility
rather than to printed numbers — and that difference is deliberately
visible in the defaults: ``mean_degree`` = 4.0 friends per active user,
``same_city_bias`` = 0.85 (the homophily that makes co-location a
usable friendship signal in E13), and ``inactive_degree_factor`` = 0.15
(§4.2's 36.3% never-checked-in accounts are mostly abandoned sign-ups,
so they carry proportionally few edges).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ReproError
from repro.lbsn.service import LbsnService
from repro.workload.population import UserSpec


@dataclass
class SocialGraphConfig:
    """Shape of the friendship graph."""

    #: Average friends per user with any activity.
    mean_degree: float = 4.0
    #: Probability an edge stays within the home city (homophily).
    same_city_bias: float = 0.85
    #: Inactive (zero-check-in) accounts rarely have friends.
    inactive_degree_factor: float = 0.15


@dataclass
class SocialGraph:
    """The generated friendship edges (symmetric)."""

    edges: Set[Tuple[int, int]]

    @property
    def edge_count(self) -> int:
        """Number of friendship edges."""
        return len(self.edges)

    def are_friends(self, user_a: int, user_b: int) -> bool:
        """Symmetric membership test."""
        key = (min(user_a, user_b), max(user_a, user_b))
        return key in self.edges

    def degree(self, user_id: int) -> int:
        """Number of friends of one user."""
        return sum(1 for a, b in self.edges if user_id in (a, b))


def generate_friend_graph(
    service: LbsnService,
    specs: Sequence[UserSpec],
    config: Optional[SocialGraphConfig] = None,
    seed: int = 0,
) -> SocialGraph:
    """Create friendships and write them onto the user records.

    Edges are sampled per user: mostly to users in the same home city,
    occasionally across cities, scaled down hard for inactive accounts.
    """
    config = config or SocialGraphConfig()
    if config.mean_degree < 0:
        raise ReproError(f"mean degree must be non-negative: {config.mean_degree}")
    rng = random.Random(seed)
    by_city: Dict[str, List[UserSpec]] = {}
    for spec in specs:
        by_city.setdefault(spec.home_city.name, []).append(spec)
    all_specs = list(specs)
    edges: Set[Tuple[int, int]] = set()

    for spec in specs:
        expected = config.mean_degree / 2.0  # each edge adds to two users
        if spec.target_checkins == 0:
            expected *= config.inactive_degree_factor
        count = _poisson(rng, expected)
        local = by_city.get(spec.home_city.name, [])
        for _ in range(count):
            if local and rng.random() < config.same_city_bias and len(local) > 1:
                other = rng.choice(local)
            else:
                other = rng.choice(all_specs)
            if other.user_id == spec.user_id:
                continue
            edges.add(
                (
                    min(spec.user_id, other.user_id),
                    max(spec.user_id, other.user_id),
                )
            )

    for user_a, user_b in edges:
        first = service.store.get_user(user_a)
        second = service.store.get_user(user_b)
        if first is not None and second is not None:
            first.friends.add(user_b)
            second.friends.add(user_a)
    return SocialGraph(edges=edges)


def _poisson(rng: random.Random, lam: float) -> int:
    """Knuth's Poisson sampler (small lambda)."""
    if lam <= 0:
        return 0
    import math

    threshold = math.exp(-lam)
    count = 0
    product = rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count
