"""The capacity workload: sustained check-in throughput vs store design.

E25's engine.  One corpus (users + venues, up to the paper's full
1.89 M / 5.6 M), one deterministic commit schedule, four store/commit
configurations driven by the same 8-thread writer pool:

* ``single``          — the single-lock :class:`DataStore`, one
  ``add_checkin_committed`` call per check-in (today's baseline).
* ``single-batch``    — same store, ``add_checkins_committed`` batches
  (isolates what group-commit alone buys).
* ``sharded``         — :class:`ShardedDataStore`, per-check-in commits
  (isolates what N locks alone buy).
* ``sharded-batch``   — sharded + group-commit: one lock acquisition
  and one contiguous seq block per shard flush (the headline mode).

On the single-core CI class of machine the win comes from amortisation,
not parallelism: the single path pays a contended lock acquisition, a
sequencer hit, two ``perf_counter`` reads, and a histogram observation
*per check-in*; the batched path pays each once per batch.  Every mode
runs instrumented (a live :class:`MetricsRegistry`), because that is
the deployed configuration the bench claims to speed up.

Latency accounting: per *commit call* durations (p50/p99), plus the
per-check-in quotient for batched modes.  Determinism: user, venue,
timestamp, and check-in id all derive from the config seed; only thread
interleaving varies, and the conformance harness owns proving that
interleaving cannot change semantics.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.geo.coordinates import GeoPoint
from repro.lbsn.models import CheckIn, CheckInStatus, User, Venue, VenueCategory
from repro.lbsn.sharded import ShardedDataStore
from repro.lbsn.store import DataStore
from repro.obs.metrics import MetricsRegistry

#: The paper's measured corpus (§3: 1.89 M users, 5.6 M venues).
FULL_SCALE_USERS = 1_890_000
FULL_SCALE_VENUES = 5_600_000

#: All run_capacity modes, in reporting order.
MODES = ("single", "single-batch", "sharded", "sharded-batch")

#: Venue grid footprint: one synthetic "city block" per 0.002°, wrapped
#: every 2,000 venues — keeps the spatial index realistically dense.
_GRID_WRAP = 2_000


@dataclass
class CapacityConfig:
    """Shape of one capacity run."""

    users: int = 18_900
    venues: int = 56_000
    writers: int = 8
    checkins_per_writer: int = 4_000
    batch_size: int = 256
    store_shards: int = 4
    seed: int = 20_100_801


@dataclass
class CapacityResult:
    """Throughput + latency for one (mode, config) pair."""

    mode: str
    store_kind: str
    shards: int
    writers: int
    batch_size: int
    total_checkins: int
    wall_seconds: float
    checkins_per_s: float
    p50_call_s: float
    p99_call_s: float
    max_call_s: float
    per_checkin_p99_s: float
    watermark: int
    populate_seconds: float = 0.0


def _venue_location(index: int) -> GeoPoint:
    return GeoPoint(
        35.0 + 0.002 * (index % _GRID_WRAP),
        -106.0 + 0.002 * (index // _GRID_WRAP),
    )


def build_corpus(config: CapacityConfig):
    """The shared User/Venue rows (built once, loaded into every store)."""
    users = [
        User(user_id=index + 1, display_name=f"cap-u{index + 1}")
        for index in range(config.users)
    ]
    venues = [
        Venue(
            venue_id=index + 1,
            name=f"cap-v{index + 1}",
            location=_venue_location(index),
            category=VenueCategory.OTHER,
        )
        for index in range(config.venues)
    ]
    return users, venues


def build_store(config: CapacityConfig, mode: str, users, venues):
    """A fresh, instrumented, fully-populated store for one mode."""
    registry = MetricsRegistry()
    if mode.startswith("sharded"):
        store = ShardedDataStore(
            shards=config.store_shards, metrics=registry
        )
    else:
        store = DataStore(metrics=registry)
    started = time.perf_counter()
    for user in users:
        store.add_user(user)
    for venue in venues:
        store.add_venue(venue)
    return store, time.perf_counter() - started


def build_schedules(config: CapacityConfig) -> List[List[CheckIn]]:
    """Per-writer check-in lists: disjoint ids, shared venue pool.

    Users round-robin through a per-writer slice so every shard sees
    traffic; venues stride by a writer-specific odd step so writers
    collide on venue shards (the cross-shard pressure worth measuring).
    """
    schedules: List[List[CheckIn]] = []
    users_per_writer = max(1, config.users // max(1, config.writers))
    for writer in range(config.writers):
        rows: List[CheckIn] = []
        base_id = writer * (config.checkins_per_writer + 1) + 1
        user_base = (writer * users_per_writer) % config.users
        stride = 2 * writer + 7
        for index in range(config.checkins_per_writer):
            user_id = (user_base + index) % config.users + 1
            venue_index = (writer + index * stride) % config.venues
            rows.append(
                CheckIn(
                    checkin_id=base_id + index,
                    user_id=user_id,
                    venue_id=venue_index + 1,
                    timestamp=3_600.0 * writer + 60.0 * index,
                    reported_location=_venue_location(venue_index),
                    status=CheckInStatus.VALID,
                )
            )
        schedules.append(rows)
    return schedules


def _chunk(rows: Sequence[CheckIn], size: int) -> List[List[CheckIn]]:
    return [
        list(rows[start:start + size])
        for start in range(0, len(rows), size)
    ]


@dataclass
class _WriterStats:
    durations: List[float] = field(default_factory=list)


def _percentile(sorted_values: List[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(fraction * (len(sorted_values) - 1))
    )
    return sorted_values[index]


def run_capacity(
    config: CapacityConfig,
    mode: str,
    corpus=None,
    store=None,
    populate_seconds: float = 0.0,
) -> CapacityResult:
    """Run one mode; returns its :class:`CapacityResult`.

    Pass ``corpus`` (from :func:`build_corpus`) to amortise row building
    across modes, or a pre-built ``store`` to skip population entirely.
    """
    if mode not in MODES:
        raise ValueError(f"unknown capacity mode: {mode!r}")
    if store is None:
        users, venues = corpus if corpus is not None else build_corpus(
            config
        )
        store, populate_seconds = build_store(config, mode, users, venues)
    schedules = build_schedules(config)
    batched = mode.endswith("batch")
    work: List[List[List[CheckIn]]] = [
        _chunk(rows, config.batch_size) if batched else [
            [row] for row in rows
        ]
        for rows in schedules
    ]
    stats = [_WriterStats() for _ in range(config.writers)]
    errors: List[BaseException] = []
    barrier = threading.Barrier(config.writers + 1)

    def writer(index: int) -> None:
        try:
            commit_one = store.add_checkin_committed
            commit_many = store.add_checkins_committed
            durations = stats[index].durations
            barrier.wait(timeout=60)
            for unit in work[index]:
                begin = time.perf_counter()
                if batched:
                    commit_many(unit)
                else:
                    commit_one(unit[0])
                durations.append(time.perf_counter() - begin)
        except BaseException as exc:  # re-raised by the driver
            errors.append(exc)

    threads = [
        threading.Thread(target=writer, args=(index,), daemon=True)
        for index in range(config.writers)
    ]
    for thread in threads:
        thread.start()
    barrier.wait(timeout=60)
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    if errors:
        raise errors[0]

    total = sum(len(rows) for rows in schedules)
    durations = sorted(
        duration for stat in stats for duration in stat.durations
    )
    p99_call = _percentile(durations, 0.99)
    return CapacityResult(
        mode=mode,
        store_kind=type(store).__name__,
        shards=getattr(store, "shard_count", 1),
        writers=config.writers,
        batch_size=config.batch_size if batched else 1,
        total_checkins=total,
        wall_seconds=wall,
        checkins_per_s=total / wall if wall > 0 else 0.0,
        p50_call_s=_percentile(durations, 0.50),
        p99_call_s=p99_call,
        max_call_s=durations[-1] if durations else 0.0,
        per_checkin_p99_s=(
            p99_call / config.batch_size if batched else p99_call
        ),
        watermark=store.event_seq_watermark(),
        populate_seconds=populate_seconds,
    )


def run_capacity_suite(
    config: CapacityConfig,
    modes: Sequence[str] = MODES,
    corpus=None,
) -> Dict[str, CapacityResult]:
    """Run several modes over one shared corpus; stores are freed between
    modes so full-scale runs never hold two table sets at once."""
    if corpus is None:
        corpus = build_corpus(config)
    results: Dict[str, CapacityResult] = {}
    for mode in modes:
        results[mode] = run_capacity(config, mode, corpus=corpus)
    return results


def speedup(
    results: Dict[str, CapacityResult],
    baseline: str = "single",
    candidate: str = "sharded-batch",
) -> float:
    """Throughput ratio candidate / baseline."""
    base = results[baseline].checkins_per_s
    return results[candidate].checkins_per_s / base if base > 0 else 0.0
