"""Normal-user check-in behaviour: event synthesis and global replay.

The generator turns :class:`~repro.workload.population.UserSpec` records
into timestamped check-in events, then :class:`EventReplayer` plays the
merged, time-ordered stream through the real service pipeline — GPS
verification, cheater code, rewards and all — so the resulting corpus has
exactly the structure the Chapter-4 analyses measure (recent-visitor list
dynamics included).

Normal users are written to *not* trip the cheater code: their check-ins
keep a minimum spacing, stay within their home metro, and travel happens in
contiguous multi-day trips with realistic gaps before and after.

Calibration constants, anchored to the thesis timeline and the §2.3
rules the honest population must clear:

* :data:`DEFAULT_HORIZON_DAYS` = 510 — the simulated service lifetime.
  Foursquare launched in March 2009 and the crawl ran in mid-2010
  (§3.2), roughly 510 days later; spreading each honest history over
  this window is what gives the Fig 4.1 recent-vs-total curve its
  shape, since recent-visitor lists retain only a venue's latest
  visitors.
* :data:`MIN_EVENT_GAP_S` = 30 min — the floor between one honest
  user's consecutive check-ins.  Combined with same-metro distances
  this clears every §2.3 trigger: far above the 1-minute spacing of
  the rapid-fire rule, and metro-scale hops at ≥30 min stay well under
  the super-human-speed ceiling.  The 1-hour same-venue rule is
  handled separately — the event synthesiser never revisits a venue
  inside an hour.
* :data:`TRIP_EDGE_BUFFER_S` = 24 h — dead air around each multi-day
  trip so the home→destination jump implies sub-airliner speed;
  without it honest travelers would land in the E15 threshold
  ablation's false-positive bucket.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.lbsn.models import CheckInStatus
from repro.lbsn.service import LbsnService
from repro.simnet.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.workload.population import UserSpec
from repro.workload.venues import GeneratedVenues

#: Simulated service lifetime before the crawl: March 2009 launch to the
#: August 2010 crawl is roughly 510 days.
DEFAULT_HORIZON_DAYS = 510.0

#: Minimum spacing between one normal user's check-ins; generously above
#: every cheater-code trigger for same-metro movement.
MIN_EVENT_GAP_S = 30.0 * 60.0

#: Buffer around a trip so home->destination travel time is plausible.
TRIP_EDGE_BUFFER_S = 24.0 * SECONDS_PER_HOUR


@dataclass(frozen=True)
class CheckInEvent:
    """One scheduled check-in: who, where, when."""

    timestamp: float
    user_id: int
    venue_id: int


@dataclass
class ReplayReport:
    """Outcome counts from replaying an event stream."""

    attempted: int = 0
    valid: int = 0
    flagged: int = 0
    rejected: int = 0

    def record(self, status: CheckInStatus) -> None:
        """Tally one replayed check-in outcome."""
        self.attempted += 1
        if status is CheckInStatus.VALID:
            self.valid += 1
        elif status is CheckInStatus.FLAGGED:
            self.flagged += 1
        else:
            self.rejected += 1


class BehaviorGenerator:
    """Synthesizes events for ordinary (non-persona) users."""

    def __init__(
        self,
        venues: GeneratedVenues,
        horizon_days: float = DEFAULT_HORIZON_DAYS,
        seed: int = 0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if horizon_days <= 0:
            raise ReproError(f"horizon must be positive: {horizon_days}")
        self.venues = venues
        self.horizon_s = horizon_days * SECONDS_PER_DAY
        #: All randomness flows through this instance (same-seed replay).
        self._rng = rng if rng is not None else random.Random(seed)
        # Per-pool zipf cumulative weights, cached by pool identity: venue
        # popularity is heavy-tailed (the thesis found 1.29 M venues with
        # exactly one check-in and 2.01 M with a single visitor), so city
        # exploration picks venues with weight 1/rank rather than uniformly.
        self._zipf_cache: Dict[int, List[float]] = {}

    def registration_time(self) -> float:
        """Sample when a user joined.

        Foursquare's user base grew steeply ("it draws in more than 10,000
        new members daily"), so registrations are weighted toward the end
        of the horizon: cumulative registrations proportional to t^2.
        """
        return self.horizon_s * math.sqrt(self._rng.random())

    def events_for(self, spec: UserSpec) -> List[CheckInEvent]:
        """Generate the full event list for one ordinary user."""
        if spec.target_checkins <= 0:
            return []
        registered = self.registration_time()
        active_span = self.horizon_s - registered
        if active_span < MIN_EVENT_GAP_S:
            registered = max(0.0, self.horizon_s - SECONDS_PER_DAY)
            active_span = self.horizon_s - registered

        times = self._spaced_times(registered, spec.target_checkins)
        trip = self._trip_window(spec, registered)
        home_pool = self._pool_for_city(spec.home_city.name)
        travel_pool = (
            self._pool_for_city(spec.travel_city.name)
            if spec.travel_city is not None
            else []
        )
        favorites = self._favorites(home_pool, spec.target_checkins)

        events: List[CheckInEvent] = []
        previous_venue: Optional[int] = None
        for timestamp in times:
            on_trip = (
                trip is not None
                and travel_pool
                and self._in_trip(timestamp, trip)
            )
            if on_trip:
                venue_id = self._zipf_pick(travel_pool)
                pool, in_favorites = travel_pool, False
            else:
                # Skip timestamps inside the trip's travel buffer: the user
                # is on a plane/road, not checking in.
                if trip is not None and self._in_buffer(timestamp, trip):
                    continue
                venue_id = self._pick_home_venue(favorites, home_pool)
                pool, in_favorites = home_pool, True
            attempts = 0
            while venue_id == previous_venue and len(pool) > 1 and attempts < 8:
                # The frequent-check-in rule refuses same-venue revisits
                # within the hour; with >= 30 min spacing a different venue
                # is always safe, so re-pick until it differs.
                if in_favorites:
                    venue_id = self._pick_home_venue(favorites, pool)
                else:
                    venue_id = self._zipf_pick(pool)
                attempts += 1
            events.append(
                CheckInEvent(
                    timestamp=timestamp,
                    user_id=spec.user_id,
                    venue_id=venue_id,
                )
            )
            previous_venue = venue_id
        return events

    # Internals --------------------------------------------------------

    def _spaced_times(self, start: float, count: int) -> List[float]:
        """Sorted timestamps in [start, horizon] with a minimum gap."""
        times = sorted(
            self._rng.uniform(start, self.horizon_s) for _ in range(count)
        )
        spaced: List[float] = []
        for timestamp in times:
            if spaced and timestamp - spaced[-1] < MIN_EVENT_GAP_S:
                timestamp = spaced[-1] + MIN_EVENT_GAP_S * self._rng.uniform(
                    1.0, 1.5
                )
            if timestamp > self.horizon_s:
                break
            spaced.append(timestamp)
        return spaced

    def _trip_window(
        self, spec: UserSpec, registered: float
    ) -> Optional[Tuple[float, float]]:
        if spec.travel_city is None:
            return None
        span = self.horizon_s - registered
        if span < 20.0 * SECONDS_PER_DAY:
            return None
        duration = self._rng.uniform(3.0, 10.0) * SECONDS_PER_DAY
        start = self._rng.uniform(
            registered + TRIP_EDGE_BUFFER_S,
            self.horizon_s - duration - TRIP_EDGE_BUFFER_S,
        )
        return (start, start + duration)

    @staticmethod
    def _in_trip(timestamp: float, trip: Tuple[float, float]) -> bool:
        return trip[0] <= timestamp <= trip[1]

    @staticmethod
    def _in_buffer(timestamp: float, trip: Tuple[float, float]) -> bool:
        return (
            trip[0] - TRIP_EDGE_BUFFER_S <= timestamp < trip[0]
            or trip[1] < timestamp <= trip[1] + TRIP_EDGE_BUFFER_S
        )

    def _pool_for_city(self, city_name: str) -> List[int]:
        pool = self.venues.venue_ids_by_city.get(city_name)
        if pool:
            return pool
        # Tiny worlds may lack venues in a given city; fall back to small
        # towns, then to the global pool.
        if self.venues.small_town_venue_ids:
            return self.venues.small_town_venue_ids
        return self.venues.venue_ids

    def _favorites(self, pool: Sequence[int], target: int) -> List[int]:
        """A user's habitual venues, zipf-weighted at pick time."""
        k = max(3, min(20, target // 5 + 3))
        k = min(k, len(pool))
        return [self._zipf_pick(pool) for _ in range(k)]

    def _pick_home_venue(
        self, favorites: Sequence[int], pool: Sequence[int]
    ) -> int:
        if favorites and self._rng.random() < 0.8:
            # Zipf over favorite rank: rank r picked with weight 1/(r+1).
            weights = [1.0 / (rank + 1.0) for rank in range(len(favorites))]
            return self._rng.choices(favorites, weights=weights, k=1)[0]
        return self._zipf_pick(pool)

    def _zipf_pick(self, pool: Sequence[int]) -> int:
        """Sample a venue from a pool with 1/rank popularity weights."""
        key = id(pool)
        cumulative = self._zipf_cache.get(key)
        if cumulative is None or len(cumulative) != len(pool):
            total = 0.0
            cumulative = []
            for rank in range(len(pool)):
                total += 1.0 / (rank + 1.0)
                cumulative.append(total)
            self._zipf_cache[key] = cumulative
        return self._rng.choices(pool, cum_weights=cumulative, k=1)[0]


class EventReplayer:
    """Plays a merged event stream through the real service pipeline."""

    def __init__(self, service: LbsnService) -> None:
        self.service = service

    def replay(self, events: Iterable[CheckInEvent]) -> ReplayReport:
        """Replay events in global time order and advance the clock.

        Events must be replayed in timestamp order for venue recent-visitor
        lists to evolve as they would live; this method sorts defensively.
        """
        ordered = sorted(events, key=lambda event: event.timestamp)
        report = ReplayReport()
        for event in ordered:
            venue = self.service.store.get_venue(event.venue_id)
            if venue is None:
                raise ReproError(f"event references unknown venue {event.venue_id}")
            result = self.service.check_in(
                user_id=event.user_id,
                venue_id=event.venue_id,
                reported_location=venue.location,
                timestamp=event.timestamp,
            )
            report.record(result.checkin.status)
        if ordered and ordered[-1].timestamp > self.service.clock.now():
            self.service.clock.advance_to(ordered[-1].timestamp)
        return report
