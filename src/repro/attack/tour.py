"""Virtual tours: snapping an intended path onto real venues (§3.3).

The thesis's semiautomatic tool lets the attacker say "move 500 yards to
the west"; the tool "will search for the venue that is the closest to the
target location".  :class:`VenueCatalog` is the attacker's knowledge of
where venues are — built from their *crawl database*, as in the thesis, or
(for tests) straight from the service — and :class:`TourPlanner` turns a
:class:`~repro.geo.path.VirtualPath` into the concrete venue sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.crawler.database import CrawlDatabase
from repro.errors import ReproError
from repro.geo.coordinates import GeoPoint
from repro.geo.grid import SpatialGrid
from repro.geo.path import VirtualPath, drift_m, spiral_path
from repro.lbsn.service import LbsnService


class VenueCatalog:
    """The attacker's spatial index of known venues."""

    def __init__(self) -> None:
        self._grid: SpatialGrid[int] = SpatialGrid(cell_size_deg=0.01)

    @classmethod
    def from_crawl_database(cls, database: CrawlDatabase) -> "VenueCatalog":
        """Build the catalog the way the thesis did: from crawled data.

        "We met the first requirement [automatically find location
        coordinates of victim venues] by crawling."
        """
        catalog = cls()
        for row in database.venues():
            catalog._grid.insert(row.venue_id, GeoPoint(row.latitude, row.longitude))
        return catalog

    @classmethod
    def from_service(cls, service: LbsnService) -> "VenueCatalog":
        """Build from ground truth (tests and oracle comparisons)."""
        catalog = cls()
        for venue in service.store.iter_venues():
            catalog._grid.insert(venue.venue_id, venue.location)
        return catalog

    def __len__(self) -> int:
        return len(self._grid)

    def add(self, venue_id: int, location: GeoPoint) -> None:
        """Add one venue to the catalog."""
        self._grid.insert(venue_id, location)

    def location_of(self, venue_id: int) -> Optional[GeoPoint]:
        """Known location of a venue."""
        return self._grid.location_of(venue_id)

    def nearest_venue(
        self,
        target: GeoPoint,
        exclude: Optional[Set[int]] = None,
        max_radius_m: float = 50_000.0,
    ) -> Optional[int]:
        """The venue closest to ``target``, optionally excluding some."""
        hit = self._grid.nearest(target, max_radius_m=max_radius_m, exclude=exclude)
        return None if hit is None else hit[0]


@dataclass
class TourStop:
    """One snapped stop: where we meant to go vs the venue we got."""

    intended: GeoPoint
    venue_id: int
    venue_location: GeoPoint


@dataclass
class PlannedTour:
    """A fully snapped tour ready for scheduling."""

    stops: List[TourStop] = field(default_factory=list)

    @property
    def venue_ids(self) -> List[int]:
        """The venue sequence."""
        return [stop.venue_id for stop in self.stops]

    def mean_drift_m(self) -> float:
        """Average intended-vs-actual distance (the Fig 3.5 observation)."""
        if not self.stops:
            return 0.0
        return drift_m(
            [stop.intended for stop in self.stops],
            [stop.venue_location for stop in self.stops],
        )


class TourPlanner:
    """Snaps virtual paths onto the venue catalog."""

    def __init__(self, catalog: VenueCatalog) -> None:
        self.catalog = catalog

    def plan(
        self,
        path: VirtualPath,
        revisit: bool = False,
        max_snap_radius_m: float = 5_000.0,
    ) -> PlannedTour:
        """Snap each waypoint after the start to its nearest venue.

        With ``revisit`` False (the default, and the thesis's behaviour —
        re-checking into a venue within the hour is refused anyway), each
        venue is used at most once.
        """
        tour = PlannedTour()
        used: Set[int] = set()
        for intended in path.waypoints()[1:]:
            exclude = used if not revisit else None
            venue_id = self.catalog.nearest_venue(
                intended, exclude=exclude, max_radius_m=max_snap_radius_m
            )
            if venue_id is None:
                # Nothing within range of this waypoint; skip it, as the
                # thesis's tool would keep moving.
                continue
            location = self.catalog.location_of(venue_id)
            tour.stops.append(
                TourStop(
                    intended=intended,
                    venue_id=venue_id,
                    venue_location=location,
                )
            )
            if not revisit:
                used.add(venue_id)
        return tour

    def plan_city_spiral(
        self,
        start: GeoPoint,
        steps: int,
        step_deg: float = 0.005,
    ) -> PlannedTour:
        """The Fig 3.5 experiment: a right-turning spiral from ``start``.

        "The desired moving distance for each step was 0.005 degrees,
        either longitude or latitude ... We started by moving north and
        then kept turning right."
        """
        if steps < 1:
            raise ReproError(f"steps must be >= 1: {steps}")
        path = spiral_path(start, steps=steps, step_deg=step_deg)
        return self.plan(path)
