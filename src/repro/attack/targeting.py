"""Victim selection through venue-profile analysis (§3.4).

"Since brute-force check-ins increase the chance that a cheater is caught,
a location cheater may gain intelligence from venue analyses after
crawling."  Everything here reads the attacker's *crawl database* — the
attacker never needs privileged access, which is the point the thesis makes
about limiting profile crawling (§5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.crawler.database import CrawlDatabase, VenueInfoRow


@dataclass
class TargetVenue:
    """A venue worth attacking, with the reason it was selected."""

    venue_id: int
    name: str
    latitude: float
    longitude: float
    special: Optional[str]
    reason: str


class VenueProfileAnalyzer:
    """Attack-target queries over crawled venue/user profiles."""

    def __init__(self, database: CrawlDatabase) -> None:
        self.database = database

    def easy_mayor_specials(self) -> List[TargetVenue]:
        """Mayor-only specials with **no current mayor** — prime targets.

        "An attacker may select the victim venues that provide special
        offers to their mayors and don't have a mayor yet ... Amongst the
        venues we have crawled, around 1000 venues fall into this
        category."
        """
        rows = self.database.select_venues(
            lambda v: v.special is not None
            and v.special_mayor_only
            and v.mayor_id is None
        )
        return [
            self._target(row, "mayor-only special with no mayor")
            for row in rows
        ]

    def uncontested_mayor_specials(self, max_visitors: int = 1) -> List[TargetVenue]:
        """Mayor-only specials whose venue has almost no visitors.

        Even with an incumbent, a venue with ~one visitor falls to a daily
        check-in cadence in days.
        """
        rows = self.database.select_venues(
            lambda v: v.special is not None
            and v.special_mayor_only
            and v.unique_visitors <= max_visitors
        )
        return [
            self._target(row, f"special with <= {max_visitors} visitors")
            for row in rows
        ]

    def no_mayorship_specials(self) -> List[TargetVenue]:
        """Specials that unlock on check-in count alone (§3.4).

        "We also discovered some special offers that do not require
        mayorship which are much easier to obtain."
        """
        rows = self.database.select_venues(
            lambda v: v.special is not None and not v.special_mayor_only
        )
        return [
            self._target(row, "special without mayorship requirement")
            for row in rows
        ]

    def mayorships_of_victim(self, victim_user_id: int) -> List[TargetVenue]:
        """Venues a victim is mayor of — the mayorship-denial target list.

        "To stop a user from getting any mayorship, the attacker will
        analyze venue profiles and find venues that the victim user is
        mayor of or has been to."
        """
        rows = self.database.select_venues(
            lambda v: v.mayor_id == victim_user_id
        )
        return [
            self._target(row, f"victim {victim_user_id} is mayor here")
            for row in rows
        ]

    def venues_visited_by_victim(self, victim_user_id: int) -> List[TargetVenue]:
        """Venues whose recent-visitor list contains the victim."""
        venue_ids = set(self.database.recent_venues_of_user(victim_user_id))
        rows = self.database.select_venues(lambda v: v.venue_id in venue_ids)
        return [
            self._target(row, f"victim {victim_user_id} recently visited")
            for row in rows
        ]

    def suspected_mayor_farmers(self, min_mayorships: int = 50) -> List[int]:
        """User IDs holding implausibly many mayorships (§3.4's discovery).

        Requires :meth:`CrawlDatabase.recompute_derived` to have run.
        """
        rows = self.database.select_users(
            lambda u: u.total_mayors >= min_mayorships
        )
        return sorted(row.user_id for row in rows)

    @staticmethod
    def _target(row: VenueInfoRow, reason: str) -> TargetVenue:
        return TargetVenue(
            venue_id=row.venue_id,
            name=row.name,
            latitude=row.latitude,
            longitude=row.longitude,
            special=row.special,
            reason=reason,
        )
