"""Cheater-code-evading check-in scheduling (§3.3).

"An attacker needs to organize coordinates ... into a schedule, which
states the sequence of venues to check into and the time interval between
the check-ins; and the schedule must follow all rules from the cheater
code."  The timing rule is the thesis's measured safe envelope:

    "we can check into venues less than 1 mile apart with a 5-minute
    interval without being detected as a cheater. So for distance D less
    than 1 mile, we should set T to 5 minutes, if D > 1 mile, we let
    T = D * 5 minutes."

The scheduler applies that rule, plus a one-hour hold-down per venue (the
frequent-check-in rule) and a rapid-fire guard, then executes the schedule
through any spoofing channel, advancing the simulated clock between stops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.attack.spoofing import SpoofingChannel, SpoofOutcome
from repro.attack.tour import PlannedTour, TourStop
from repro.geo.coordinates import METERS_PER_MILE, GeoPoint
from repro.geo.distance import haversine_m
from repro.lbsn.models import CheckInStatus
from repro.simnet.clock import SimClock

#: The thesis's base interval for sub-mile hops.
BASE_INTERVAL_S = 5.0 * 60.0
#: One-hour hold-down before revisiting the same venue.
SAME_VENUE_HOLD_S = 3_600.0


@dataclass(frozen=True)
class ScheduledCheckIn:
    """One schedule entry: venue, claimed location, fire time."""

    venue_id: int
    location: GeoPoint
    fire_at: float


@dataclass
class Schedule:
    """An ordered check-in plan."""

    entries: List[ScheduledCheckIn] = field(default_factory=list)

    @property
    def duration_s(self) -> float:
        """Time from first to last scheduled check-in."""
        if len(self.entries) < 2:
            return 0.0
        return self.entries[-1].fire_at - self.entries[0].fire_at

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)


def interval_for_distance(distance_m: float) -> float:
    """The thesis's timing rule: T = 5 min, or D[miles] * 5 min beyond 1 mi."""
    miles = distance_m / METERS_PER_MILE
    if miles <= 1.0:
        return BASE_INTERVAL_S
    return miles * BASE_INTERVAL_S


class CheckInScheduler:
    """Builds and executes cheater-code-safe schedules."""

    def __init__(self, clock: SimClock) -> None:
        self.clock = clock
        #: Where and when the channel last checked in, so a new schedule's
        #: FIRST stop is also spaced plausibly from the attacker's prior
        #: position — without this, chaining two schedules (tour then
        #: harvest) trips the super-human-speed rule on the hand-off.
        self._last_location: Optional[GeoPoint] = None
        self._last_time: Optional[float] = None

    def build(
        self,
        tour: PlannedTour,
        start_at: Optional[float] = None,
    ) -> Schedule:
        """Turn a planned tour into a timed schedule.

        Intervals follow :func:`interval_for_distance` between consecutive
        venue locations; a venue revisited within the hour is pushed out to
        the hold-down boundary.
        """
        schedule = Schedule()
        fire_at = self.clock.now() if start_at is None else start_at
        previous: Optional[TourStop] = None
        last_fire: Dict[int, float] = {}
        if (
            tour.stops
            and self._last_location is not None
            and self._last_time is not None
        ):
            lead_in = interval_for_distance(
                haversine_m(self._last_location, tour.stops[0].venue_location)
            )
            fire_at = max(fire_at, self._last_time + lead_in)
        for stop in tour.stops:
            if previous is not None:
                distance = haversine_m(
                    previous.venue_location, stop.venue_location
                )
                fire_at += interval_for_distance(distance)
            earliest_revisit = last_fire.get(stop.venue_id)
            if earliest_revisit is not None:
                fire_at = max(
                    fire_at, earliest_revisit + SAME_VENUE_HOLD_S + 60.0
                )
            schedule.entries.append(
                ScheduledCheckIn(
                    venue_id=stop.venue_id,
                    location=stop.venue_location,
                    fire_at=fire_at,
                )
            )
            last_fire[stop.venue_id] = fire_at
            previous = stop
        return schedule

    def execute(
        self, schedule: Schedule, channel: SpoofingChannel
    ) -> "ExecutionReport":
        """Run the schedule: advance the clock, spoof, check in, tally."""
        report = ExecutionReport(duration_s=schedule.duration_s)
        for entry in schedule:
            if entry.fire_at > self.clock.now():
                self.clock.advance_to(entry.fire_at)
            channel.set_location(entry.location)
            outcome = channel.check_in(entry.venue_id)
            report.record(entry, outcome)
            self._last_location = entry.location
            self._last_time = entry.fire_at
        return report


@dataclass
class ExecutionReport:
    """What the attacker got out of an executed schedule."""

    #: Simulated time from first to last check-in (filled by callers that
    #: track schedule spans, e.g. the fleet's makespan accounting).
    duration_s: float = 0.0
    attempts: int = 0
    rewarded: int = 0
    flagged: int = 0
    rejected: int = 0
    points: int = 0
    badges: List[str] = field(default_factory=list)
    mayorships_won: int = 0
    specials: List[str] = field(default_factory=list)
    outcomes: List[SpoofOutcome] = field(default_factory=list)

    def record(self, entry: ScheduledCheckIn, outcome: SpoofOutcome) -> None:
        """Tally one executed entry's outcome."""
        self.attempts += 1
        self.outcomes.append(outcome)
        if outcome.status is CheckInStatus.VALID:
            self.rewarded += 1
            self.points += outcome.points
            self.badges.extend(outcome.new_badges)
            if outcome.became_mayor:
                self.mayorships_won += 1
            if outcome.special:
                self.specials.append(outcome.special)
        elif outcome.status is CheckInStatus.FLAGGED:
            self.flagged += 1
        else:
            self.rejected += 1

    @property
    def detected(self) -> int:
        """Attempts the cheater code caught (flagged or rejected)."""
        return self.flagged + self.rejected

    @property
    def undetected(self) -> bool:
        """True when every attempt passed — the E4 success criterion."""
        return self.attempts > 0 and self.detected == 0
