"""The paper's core contribution: the location-cheating attack toolkit."""

from repro.attack.campaign import (
    CampaignReport,
    CheatingCampaign,
    greedy_route,
    tour_from_targets,
)
from repro.attack.scheduler import (
    BASE_INTERVAL_S,
    SAME_VENUE_HOLD_S,
    CheckInScheduler,
    ExecutionReport,
    Schedule,
    ScheduledCheckIn,
    interval_for_distance,
)
from repro.attack.spoofing import (
    ApiHookSpoofer,
    BluetoothSpoofer,
    EmulatorSpoofer,
    GpsModuleSpoofer,
    ServerApiSpoofer,
    SpoofingChannel,
    SpoofOutcome,
    build_emulator_attacker,
)
from repro.attack.targeting import TargetVenue, VenueProfileAnalyzer
from repro.attack.tour import PlannedTour, TourPlanner, TourStop, VenueCatalog

__all__ = [
    "CampaignReport",
    "CheatingCampaign",
    "greedy_route",
    "tour_from_targets",
    "BASE_INTERVAL_S",
    "SAME_VENUE_HOLD_S",
    "CheckInScheduler",
    "ExecutionReport",
    "Schedule",
    "ScheduledCheckIn",
    "interval_for_distance",
    "ApiHookSpoofer",
    "BluetoothSpoofer",
    "EmulatorSpoofer",
    "GpsModuleSpoofer",
    "ServerApiSpoofer",
    "SpoofingChannel",
    "SpoofOutcome",
    "build_emulator_attacker",
    "TargetVenue",
    "VenueProfileAnalyzer",
]

from repro.attack.fleet import AttackFleet, FleetReport, partition_targets
from repro.attack.naive import NaiveAutoCheckinBot, NaiveBotConfig

__all__ += [
    "AttackFleet",
    "FleetReport",
    "partition_targets",
    "NaiveAutoCheckinBot",
    "NaiveBotConfig",
]

from repro.attack.badmouth import (
    DEFAULT_SMEARS,
    BadmouthCampaign,
    BadmouthReport,
)

__all__ += [
    "DEFAULT_SMEARS",
    "BadmouthCampaign",
    "BadmouthReport",
]

from repro.attack.probing import ProbedEnvelope, RuleProber

__all__ += [
    "ProbedEnvelope",
    "RuleProber",
]
