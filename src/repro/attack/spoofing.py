"""The four GPS-spoofing channels of §3.1.

Each channel implements the same tiny interface — point the claimed
location somewhere, then check in — but compromises a *different layer* of
the stack, exactly as the thesis enumerates:

1. :class:`ApiHookSpoofer` — modify the open-source OS's GPS-related APIs.
2. :class:`GpsModuleSpoofer` / :class:`BluetoothSpoofer` — replace the GPS
   module itself (hardware hack, or a simulated Bluetooth GPS receiver).
3. :class:`ServerApiSpoofer` — skip the device entirely and feed fake
   coordinates to the service's public developer API.
4. :class:`EmulatorSpoofer` — run the client in a device emulator and set
   the simulated GPS via the console (the thesis's chosen method).

The service cannot distinguish any of them from a truthful client, which
is the vulnerability's root cause: "the lack of proper location
verification mechanisms".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol

from repro.device.bluetooth import BluetoothGpsModule, BluetoothGpsSimulator
from repro.device.client_app import LbsnClientApp
from repro.device.emulator import Device, DeviceEmulator
from repro.device.gps import FakeGpsModule
from repro.device.os_api import fixed_location_hook
from repro.errors import ReproError
from repro.geo.coordinates import GeoPoint
from repro.lbsn.api import parse_kv
from repro.lbsn.models import CheckInResult, CheckInStatus
from repro.lbsn.service import LbsnService
from repro.simnet.http import HttpTransport
from repro.simnet.network import Egress


@dataclass
class SpoofOutcome:
    """Channel-independent view of a check-in attempt's result."""

    status: CheckInStatus
    points: int = 0
    new_badges: List[str] = field(default_factory=list)
    became_mayor: bool = False
    special: Optional[str] = None
    warnings: List[str] = field(default_factory=list)

    @property
    def rewarded(self) -> bool:
        """Did the attempt earn rewards (i.e. fully pass verification)?"""
        return self.status is CheckInStatus.VALID

    @classmethod
    def from_result(cls, result: CheckInResult) -> "SpoofOutcome":
        """Convert a service-side result into the channel-neutral view."""
        return cls(
            status=result.checkin.status,
            points=result.points,
            new_badges=list(result.new_badges),
            became_mayor=result.became_mayor,
            special=(
                result.special_unlocked.description
                if result.special_unlocked
                else None
            ),
            warnings=list(result.warnings),
        )


class SpoofingChannel(Protocol):
    """Anything that can claim a location and check in with it."""

    def set_location(self, location: GeoPoint) -> None:
        """Choose the coordinates the next check-in will report."""
        ...

    def check_in(self, venue_id: int) -> SpoofOutcome:
        """Attempt a check-in at ``venue_id`` from the claimed location."""
        ...


class _ClientAppChannel:
    """Shared base: channels that drive the genuine client app."""

    def __init__(self, app: LbsnClientApp) -> None:
        self.app = app

    def check_in(self, venue_id: int) -> SpoofOutcome:
        """Check in through the genuine client app."""
        return SpoofOutcome.from_result(self.app.check_in(venue_id))


class ApiHookSpoofer(_ClientAppChannel):
    """Channel 1: hook the OS location API to return fake fixes."""

    def __init__(self, device: Device, app: LbsnClientApp) -> None:
        super().__init__(app)
        self.device = device

    def set_location(self, location: GeoPoint) -> None:
        """Install an OS hook reporting ``location``."""
        self.device.location_api.install_api_hook(fixed_location_hook(location))

    def restore(self) -> None:
        """Remove the hook, returning the OS to stock behaviour."""
        self.device.location_api.clear_api_hook()


class GpsModuleSpoofer(_ClientAppChannel):
    """Channel 2a: replace the physical GPS module with a faking one."""

    def __init__(self, device: Device, app: LbsnClientApp) -> None:
        super().__init__(app)
        self.module = FakeGpsModule()
        device.replace_gps_module(self.module)

    def set_location(self, location: GeoPoint) -> None:
        """Point the replaced GPS module at ``location``."""
        self.module.set_location(location)


class BluetoothSpoofer(_ClientAppChannel):
    """Channel 2b: pair the phone to a simulated Bluetooth GPS receiver."""

    def __init__(self, device: Device, app: LbsnClientApp) -> None:
        super().__init__(app)
        self.simulator = BluetoothGpsSimulator()
        device.replace_gps_module(BluetoothGpsModule(self.simulator))

    def set_location(self, location: GeoPoint) -> None:
        """Point the fake Bluetooth puck at ``location``."""
        self.simulator.set_location(location)


class EmulatorSpoofer(_ClientAppChannel):
    """Channel 4: the thesis's method — emulator console ``geo fix``."""

    def __init__(self, emulator: DeviceEmulator, app: LbsnClientApp) -> None:
        super().__init__(app)
        self.emulator = emulator

    def set_location(self, location: GeoPoint) -> None:
        # The Android console takes longitude first.
        reply = self.emulator.console.execute(
            f"geo fix {location.longitude} {location.latitude}"
        )
        if reply != "OK":
            raise ReproError(f"emulator console refused geo fix: {reply}")


class ServerApiSpoofer:
    """Channel 3: no device at all — POST fake coordinates to the API.

    "This method is more convenient to issue a large-scale cheating
    attack": no emulator, no client app, just an OAuth token and HTTP.
    """

    def __init__(
        self, transport: HttpTransport, egress: Egress, token: str
    ) -> None:
        self.transport = transport
        self.egress = egress
        self.token = token
        self._location: Optional[GeoPoint] = None

    def set_location(self, location: GeoPoint) -> None:
        """Choose the coordinates the next API call will claim."""
        self._location = location

    def check_in(self, venue_id: int) -> SpoofOutcome:
        """POST the check-in to the developer API with fake coordinates."""
        if self._location is None:
            raise ReproError("set_location before check_in")
        response = self.transport.post(
            "/api/checkin",
            self.egress,
            headers={"Authorization": f"Bearer {self.token}"},
            params={
                "venue_id": str(venue_id),
                "ll_lat": f"{self._location.latitude:.6f}",
                "ll_lng": f"{self._location.longitude:.6f}",
            },
        )
        payload: Dict[str, str] = parse_kv(response.body)
        status_text = payload.get("status", "rejected")
        try:
            status = CheckInStatus(status_text)
        except ValueError:
            status = CheckInStatus.REJECTED
        return SpoofOutcome(
            status=status,
            points=int(payload.get("points", "0") or 0),
            new_badges=[b for b in payload.get("badges", "").split(",") if b],
            became_mayor=payload.get("mayor") == "1",
            special=payload.get("special") or None,
            warnings=[w for w in payload.get("warnings", "").split(";") if w],
        )


def build_emulator_attacker(
    service: LbsnService,
    display_name: str = "Attacker",
    recovery_image: str = "vendor-recovery-2.2",
) -> tuple:
    """Convenience: the thesis's full E1 setup in one call.

    Registers a test user, boots an emulator, flashes the market-unlocking
    recovery image, installs the client, and returns
    ``(user, emulator, EmulatorSpoofer)``.
    """
    user = service.register_user(display_name)
    emulator = DeviceEmulator(service.clock)
    emulator.flash_recovery_image(recovery_image)
    app = LbsnClientApp(service, emulator.location_api, user.user_id)
    emulator.install_app(LbsnClientApp.APP_NAME, app)
    return user, emulator, EmulatorSpoofer(emulator, app)
