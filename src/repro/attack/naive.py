"""The baseline attacker: an Autosquare-style auto-check-in bot (§2.2).

"Software tools are available on the market that can automatically check
people into their desired venues, e.g., 'Autosquare' for Android.  The
basic cheating method worked in the early days of Foursquare ... and
obviously does not work now after the introduction of location verification
mechanism."

The bot spoofs GPS like the sophisticated attack (so it passes the GPS
check), but fires check-ins at a fixed short interval with no awareness of
the cheater code — the baseline the scheduler is compared against in the
E12 bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.attack.scheduler import ExecutionReport, ScheduledCheckIn
from repro.attack.spoofing import SpoofingChannel
from repro.attack.targeting import TargetVenue
from repro.errors import ReproError
from repro.geo.coordinates import GeoPoint
from repro.simnet.clock import SimClock


@dataclass
class NaiveBotConfig:
    """How recklessly the bot fires."""

    #: Fixed interval between check-ins, seconds.  Autosquare-era tools
    #: hammered every few minutes regardless of distance.
    interval_s: float = 120.0
    #: Whether the bot retries a venue it already hit (it doesn't track).
    revisit: bool = True


class NaiveAutoCheckinBot:
    """Fires down a target list at a fixed cadence, oblivious to rules."""

    def __init__(
        self,
        clock: SimClock,
        channel: SpoofingChannel,
        config: NaiveBotConfig = None,
    ) -> None:
        self.clock = clock
        self.channel = channel
        self.config = config or NaiveBotConfig()
        if self.config.interval_s <= 0:
            raise ReproError(
                f"interval must be positive: {self.config.interval_s}"
            )

    def run(self, targets: Sequence[TargetVenue]) -> ExecutionReport:
        """Check into every target, one per interval, in list order."""
        if not targets:
            raise ReproError("no targets")
        report = ExecutionReport()
        for target in targets:
            self.clock.advance(self.config.interval_s)
            location = GeoPoint(target.latitude, target.longitude)
            self.channel.set_location(location)
            outcome = self.channel.check_in(target.venue_id)
            entry = ScheduledCheckIn(
                venue_id=target.venue_id,
                location=location,
                fire_at=self.clock.now(),
            )
            report.record(entry, outcome)
        return report
