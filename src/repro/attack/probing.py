"""Experimental rule discovery — the thesis's own methodology (§2.3).

"The details of the cheater code are concealed from users. But we managed
to detect a few rules, through experiments."  The prober automates those
experiments with disposable accounts against any live service:

* the same-venue hold-down, by bisecting the revisit gap;
* the speed ceiling, by bisecting the implied travel speed over a fixed
  long hop;
* the rapid-fire interval, by bisecting the spacing of a 4-stop square
  blitz.

Discovered parameters feed a :class:`ProbedEnvelope` the scheduler can use
against services whose thresholds differ from Foursquare's published ones
— the generalisation the paper claims ("the methods may also apply to
other similar LBSs").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.geo.coordinates import GeoPoint
from repro.geo.distance import destination_point, haversine_m
from repro.lbsn.models import CheckInStatus
from repro.lbsn.service import LbsnService

#: A deserted probing ground far from organic traffic.
_PROBE_ANCHOR = GeoPoint(44.0, -101.5)


@dataclass
class ProbedEnvelope:
    """What the prober learned: the safe operating envelope."""

    #: Smallest revisit gap (seconds) the service accepted.
    same_venue_hold_s: float
    #: Highest implied speed (m/s) that went unflagged.
    safe_speed_mps: float
    #: Smallest burst spacing (seconds) that avoided the rapid-fire flag.
    rapid_fire_safe_gap_s: float

    def interval_for(self, distance_m: float, margin: float = 0.8) -> float:
        """A scheduler interval with a safety margin under the ceiling."""
        if distance_m <= 0:
            return self.rapid_fire_safe_gap_s
        return max(
            self.rapid_fire_safe_gap_s,
            distance_m / (self.safe_speed_mps * margin),
        )


class RuleProber:
    """Black-box discovery of the cheater code's thresholds.

    Each probe spins up disposable accounts and venues in an isolated
    area, so probing does not contaminate the attacker's real accounts —
    just as the thesis used a dedicated test user.
    """

    def __init__(
        self,
        service: LbsnService,
        resolution: float = 0.05,
        max_iterations: int = 24,
    ) -> None:
        if not 0 < resolution < 1:
            raise ReproError(f"resolution must be in (0,1): {resolution}")
        self.service = service
        self.resolution = resolution
        self.max_iterations = max_iterations
        self._probe_count = 0

    # Individual probes ---------------------------------------------------

    def probe_same_venue_hold(
        self, low_s: float = 60.0, high_s: float = 4.0 * 3_600.0
    ) -> float:
        """Bisect the smallest accepted revisit gap at one venue."""

        def accepted(gap_s: float) -> bool:
            user, venue = self._fresh_pair()
            base = self.service.clock.now()
            first = self.service.check_in(
                user.user_id, venue.venue_id, venue.location, timestamp=base
            )
            assert first.checkin.status is CheckInStatus.VALID
            second = self.service.check_in(
                user.user_id,
                venue.venue_id,
                venue.location,
                timestamp=base + gap_s,
            )
            return second.checkin.status is CheckInStatus.VALID

        return self._bisect_up(accepted, low_s, high_s)

    def probe_speed_ceiling(
        self,
        hop_m: float = 500_000.0,
        low_mps: float = 0.5,
        high_mps: float = 5_000.0,
    ) -> float:
        """Bisect the highest unflagged implied speed over a long hop."""

        def accepted(speed_mps: float) -> bool:
            user, venue = self._fresh_pair()
            other = self._fresh_venue(offset_m=hop_m)
            base = self.service.clock.now()
            first = self.service.check_in(
                user.user_id, venue.venue_id, venue.location, timestamp=base
            )
            assert first.checkin.status is CheckInStatus.VALID
            elapsed = haversine_m(venue.location, other.location) / speed_mps
            second = self.service.check_in(
                user.user_id,
                other.venue_id,
                other.location,
                timestamp=base + elapsed,
            )
            return second.checkin.status is CheckInStatus.VALID

        return self._bisect_down(accepted, low_mps, high_mps)

    def probe_rapid_fire_gap(
        self, low_s: float = 5.0, high_s: float = 1_800.0
    ) -> float:
        """Bisect the smallest safe spacing for a 4-stop square blitz."""

        def accepted(gap_s: float) -> bool:
            user, _ = self._fresh_pair()
            # Four venues inside one small square (well under 180 m).
            corner = self._fresh_venue()
            venues = [corner] + [
                self.service.create_venue(
                    f"Probe Corner {self._probe_count}-{index}",
                    destination_point(
                        corner.location, index * 90.0, 40.0 + 10.0 * index
                    ),
                )
                for index in range(1, 4)
            ]
            base = self.service.clock.now()
            for index, venue in enumerate(venues):
                result = self.service.check_in(
                    user.user_id,
                    venue.venue_id,
                    venue.location,
                    timestamp=base + index * gap_s,
                )
                if result.checkin.status is not CheckInStatus.VALID:
                    return False
            return True

        return self._bisect_up(accepted, low_s, high_s)

    def probe_all(self) -> ProbedEnvelope:
        """Run every probe and assemble the envelope."""
        return ProbedEnvelope(
            same_venue_hold_s=self.probe_same_venue_hold(),
            safe_speed_mps=self.probe_speed_ceiling(),
            rapid_fire_safe_gap_s=self.probe_rapid_fire_gap(),
        )

    # Bisection plumbing ---------------------------------------------------

    def _bisect_up(self, accepted, low, high) -> float:
        """Find the smallest accepted value in [low, high].

        Precondition: low rejected (or barely), high accepted.  Returns a
        value guaranteed accepted, within ``resolution`` of the boundary.
        """
        if accepted(low):
            return low
        if not accepted(high):
            raise ReproError("upper probe bound is still rejected")
        for _ in range(self.max_iterations):
            if (high - low) / max(high, 1e-9) <= self.resolution:
                break
            mid = (low + high) / 2.0
            if accepted(mid):
                high = mid
            else:
                low = mid
        return high

    def _bisect_down(self, accepted, low, high) -> float:
        """Find the largest accepted value in [low, high]."""
        if accepted(high):
            return high
        if not accepted(low):
            raise ReproError("lower probe bound is already rejected")
        for _ in range(self.max_iterations):
            if (high - low) / max(high, 1e-9) <= self.resolution:
                break
            mid = (low + high) / 2.0
            if accepted(mid):
                low = mid
            else:
                high = mid
        return low

    # Disposable fixtures ---------------------------------------------------

    def _fresh_pair(self):
        self._probe_count += 1
        user = self.service.register_user(f"Probe {self._probe_count}")
        venue = self._fresh_venue()
        return user, venue

    def _fresh_venue(self, offset_m: float = 0.0):
        self._probe_count += 1
        # Spread probe venues out so probes never interact.
        base = destination_point(
            _PROBE_ANCHOR, (self._probe_count * 13) % 360, self._probe_count * 777.0
        )
        location = (
            destination_point(base, 90.0, offset_m) if offset_m else base
        )
        return self.service.create_venue(
            f"Probe Venue {self._probe_count}", location
        )
