"""Multi-account attack orchestration (§3.3's scale-up).

"To achieve significant benefits from location cheating, attackers need to
be able to control a large number of users and make them check in
automatically."  The cheater code "detects cheating behavior on a per user
basis", so N accounts obeying the single-user envelope multiply the
attacker's coverage N-fold: the fleet partitions a target list
geographically and runs one cheater-code-safe campaign per account.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence

from repro.attack.campaign import greedy_route, tour_from_targets
from repro.attack.scheduler import CheckInScheduler, ExecutionReport
from repro.attack.spoofing import SpoofingChannel, build_emulator_attacker
from repro.attack.targeting import TargetVenue
from repro.errors import ReproError
from repro.lbsn.service import LbsnService

ChannelFactory = Callable[[LbsnService, str], SpoofingChannel]


def _default_channel_factory(service: LbsnService, name: str) -> SpoofingChannel:
    _, _, channel = build_emulator_attacker(service, display_name=name)
    return channel


def partition_targets(
    targets: Sequence[TargetVenue], accounts: int
) -> List[List[TargetVenue]]:
    """Split targets into geographically coherent per-account batches.

    Orders the list with a nearest-neighbour sweep, then slices it into
    contiguous chunks, so each account works one region and its schedule's
    inter-venue waits (T = D x 5 min) stay short.
    """
    if accounts < 1:
        raise ReproError(f"need at least one account: {accounts}")
    route = greedy_route(list(targets))
    if not route:
        return [[] for _ in range(accounts)]
    size = max(1, (len(route) + accounts - 1) // accounts)
    return [route[start : start + size] for start in range(0, len(route), size)]


@dataclass
class FleetReport:
    """Aggregate of all accounts' campaigns."""

    per_account: List[ExecutionReport] = field(default_factory=list)

    @property
    def accounts(self) -> int:
        """Number of attacker accounts that ran."""
        return len(self.per_account)

    @property
    def attempts(self) -> int:
        """Total attempts across the fleet."""
        return sum(r.attempts for r in self.per_account)

    @property
    def rewarded(self) -> int:
        """Total rewarded check-ins across the fleet."""
        return sum(r.rewarded for r in self.per_account)

    @property
    def detected(self) -> int:
        """Total detections across the fleet."""
        return sum(r.detected for r in self.per_account)

    @property
    def mayorships_won(self) -> int:
        """Total crowns captured across the fleet."""
        return sum(r.mayorships_won for r in self.per_account)

    @property
    def specials(self) -> List[str]:
        """All specials unlocked across the fleet."""
        collected: List[str] = []
        for report in self.per_account:
            collected.extend(report.specials)
        return collected

    @property
    def makespan_s(self) -> float:
        """Wall-clock (simulated) duration of the slowest account's sweep.

        Accounts run in parallel in the real attack; the simulation
        executes them sequentially against the shared clock, so per-account
        durations are tracked separately.
        """
        return max((r.duration_s for r in self.per_account), default=0.0)


class AttackFleet:
    """N spoofing accounts sweeping a partitioned target list."""

    def __init__(
        self,
        service: LbsnService,
        accounts: int,
        channel_factory: ChannelFactory = _default_channel_factory,
    ) -> None:
        if accounts < 1:
            raise ReproError(f"need at least one account: {accounts}")
        self.service = service
        self.channels: List[SpoofingChannel] = [
            channel_factory(service, f"Fleet Account {index + 1}")
            for index in range(accounts)
        ]

    def sweep(self, targets: Sequence[TargetVenue]) -> FleetReport:
        """Partition targets and run one campaign per account.

        Each account gets its own scheduler (its own position history);
        within the shared simulated clock the sweeps are interleaved, but
        every account's schedule independently satisfies the single-user
        rules, which is all the per-user cheater code checks.
        """
        batches = partition_targets(targets, len(self.channels))
        report = FleetReport()
        start_time = self.service.clock.now()
        for channel, batch in zip(self.channels, batches):
            if not batch:
                report.per_account.append(ExecutionReport())
                continue
            scheduler = CheckInScheduler(self.service.clock)
            tour = tour_from_targets(batch)
            schedule = scheduler.build(tour, start_at=self.service.clock.now())
            execution = scheduler.execute(schedule, channel)
            report.per_account.append(execution)
            # Real fleets run accounts in parallel; the shared simulated
            # clock only moves forward, so later accounts simply begin
            # later — which is *more* conservative for detection, and the
            # per-account duration_s still measures each parallel sweep.
        del start_time
        return report
